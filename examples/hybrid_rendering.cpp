// Hybrid rendering: the defining property of GauRast is that ONE rasterizer
// serves both primitive types (paper Sec. IV: "preserving the original
// capabilities for standard triangle mesh rendering"). This example renders
// (a) a triangle-mesh scene and (b) a Gaussian scene through the same
// HardwareRasterizer instance, verifies both against their software
// references, and renders a composite: Gaussian background + mesh overlay,
// as a robotics HUD would.
//
//   ./hybrid_rendering [--width 480] [--height 360] [--out hybrid]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/hw_rasterizer.hpp"
#include "mesh/primitives.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("Hybrid triangle + Gaussian rendering on one rasterizer");
  cli.add_flag("width", "480", "image width");
  cli.add_flag("height", "360", "image height");
  cli.add_flag("out", "hybrid", "output PPM prefix");
  if (!cli.parse(argc, argv)) return 0;
  const int w = cli.get_int("width");
  const int h = cli.get_int("height");

  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());

  // --- Triangle mode: torus + terrain ---------------------------------
  scene::GeneratorParams params;
  const scene::Camera camera = scene::default_camera(params, w, h);
  mesh::TriangleMesh world = mesh::make_terrain(48, 16.0f, 1.0f, 7);
  mesh::TriangleMesh torus = mesh::make_torus(32, 16, 2.0f, 0.7f);
  torus.transform(translation4({0.0f, 2.0f, 0.0f}));
  world.append(torus);

  const mesh::RasterOutput sw_tri = mesh::render_mesh(world, camera);
  const auto prims = mesh::build_primitives(world, camera);
  const core::HwRasterResult hw_tri =
      hw.rasterize_triangles(prims, w, h, {0.05f, 0.05f, 0.08f});
  std::cout << "Triangle mode: " << world.triangle_count() << " triangles, "
            << "hw vs sw max diff " << hw_tri.image.max_abs_diff(sw_tri.color)
            << ", " << hw_tri.timing.makespan_cycles << " cycles\n";

  // --- Gaussian mode: synthetic splat scene ----------------------------
  params.gaussian_count = 30000;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult sw_gauss = renderer.render(gscene, camera);
  const core::HwRasterResult hw_gauss = hw.rasterize_gaussians(
      sw_gauss.splats, sw_gauss.workload, renderer.config().blend);
  std::cout << "Gaussian mode: " << gscene.size() << " Gaussians, "
            << "hw vs sw max diff "
            << hw_gauss.image.max_abs_diff(sw_gauss.image) << ", "
            << hw_gauss.timing.makespan_cycles << " cycles\n";

  // --- Composite: Gaussian backdrop + mesh overlay ---------------------
  Image composite = hw_gauss.image;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) *
                                  static_cast<std::size_t>(w) +
                              static_cast<std::size_t>(x);
      // Mesh fragments (finite depth) overwrite the splat backdrop.
      if (sw_tri.depth[idx] < std::numeric_limits<float>::infinity()) {
        composite.at(x, y) = hw_tri.image.at(x, y);
      }
    }
  }
  const std::string prefix = cli.get_string("out");
  hw_tri.image.save_ppm(prefix + "_triangles.ppm");
  hw_gauss.image.save_ppm(prefix + "_gaussians.ppm");
  composite.save_ppm(prefix + "_composite.ppm");
  std::cout << "Wrote " << prefix << "_{triangles,gaussians,composite}.ppm\n";

  TablePrinter table({"Mode", "Pairs", "Cycles", "Utilization"});
  table.add_row({"Triangle", std::to_string(hw_tri.pairs_evaluated),
                 std::to_string(hw_tri.timing.makespan_cycles),
                 format_percent(hw_tri.utilization())});
  table.add_row({"Gaussian", std::to_string(hw_gauss.pairs_evaluated),
                 std::to_string(hw_gauss.timing.makespan_cycles),
                 format_percent(hw_gauss.utilization())});
  table.print(std::cout);
  return 0;
}
