// Trace-driven design exploration — the hardware-team workflow:
//   1. render a scene once through the functional model, capturing the
//      per-tile workload trace,
//   2. persist it (.gtr) and a 3DGS-format .ply of the scene,
//   3. replay the trace through many rasterizer configurations without
//      re-rendering, reporting runtime/utilization per configuration,
//   4. push a camera orbit through the CUDA-collaborative pipeline and
//      report delivered FPS and p99 frame-interval jitter.
//
//   ./trace_workflow [--gaussians 20000] [--views 12] [--out /tmp/gaurast]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/scheduler.hpp"
#include "core/profile_sim.hpp"
#include "core/trace.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"
#include "scene/ply_io.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("Trace-driven GauRast design exploration");
  cli.add_flag("gaussians", "20000", "synthetic scene size");
  cli.add_flag("views", "12", "camera-orbit view count");
  cli.add_flag("out", "gaurast_trace", "output file prefix");
  if (!cli.parse(argc, argv)) return 0;
  const std::string prefix = cli.get_string("out");

  // 1-2: render once, capture trace, persist scene + trace.
  scene::GeneratorParams params;
  params.gaussian_count = static_cast<std::uint64_t>(cli.get_int("gaussians"));
  const scene::GaussianScene gscene = scene::generate_scene(params);
  scene::save_ply(gscene, prefix + ".ply");
  const scene::Camera camera = scene::default_camera(params, 320, 240);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult frame = renderer.render(gscene, camera);
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  const core::HwRasterResult captured = hw.rasterize_gaussians(
      frame.splats, frame.workload, renderer.config().blend);
  core::save_trace(captured.tile_loads, prefix + ".gtr");
  const core::TraceSummary summary =
      core::summarize_trace(captured.tile_loads);
  std::cout << "Captured " << summary.tiles << " tiles, "
            << summary.total_pairs << " pairs (mean "
            << format_fixed(summary.mean_tile_pairs, 0) << "/tile, max "
            << summary.max_tile_pairs << ") -> " << prefix << ".gtr / "
            << prefix << ".ply\n";

  // 3: replay across configurations.
  print_banner(std::cout, "Trace replay across rasterizer configurations");
  const auto trace = core::load_trace(prefix + ".gtr");
  TablePrinter table({"Config", "Cycles", "Runtime", "Utilization"});
  struct Candidate {
    const char* label;
    core::RasterizerConfig cfg;
  };
  core::RasterizerConfig slow_mem = core::RasterizerConfig::prototype16();
  slow_mem.mem_bytes_per_cycle = 8.0;
  const Candidate candidates[] = {
      {"1x16 FP32", core::RasterizerConfig::prototype16()},
      {"1x16 FP32, 8B/cyc mem", slow_mem},
      {"4x16 FP32", [] {
         auto c = core::RasterizerConfig::prototype16();
         c.module_count = 4;
         return c;
       }()},
      {"1x16 FP16", core::RasterizerConfig::fp16(16)},
      {"15x20 FP32 (paper)", core::RasterizerConfig::scaled300()},
  };
  for (const Candidate& c : candidates) {
    const core::DesignTimelineResult r = core::replay_trace(trace, c.cfg);
    table.add_row({c.label, std::to_string(r.makespan_cycles),
                   format_time_ms(r.runtime_ms),
                   format_percent(r.utilization)});
  }
  table.print(std::cout);

  // 4: orbit trajectory through the collaborative pipeline (full scale).
  print_banner(std::cout, "Camera-orbit frame delivery (bicycle, full scale)");
  const int views = cli.get_int("views");
  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  const scene::SceneProfile base = scene::profile_by_name("bicycle");
  std::vector<core::FrameWork> frames;
  Pcg32 rng(7);
  for (int v = 0; v < views; ++v) {
    // View-to-view workload variation: +/-15% as the camera orbits.
    scene::SceneProfile view = base;
    const double wobble = 1.0 + 0.15 * std::sin(2.0 * 3.14159 * v / views) +
                          0.03 * rng.normal();
    view.pairs_per_pixel = base.pairs_per_pixel * std::max(0.5, wobble);
    const gpu::StageTimes t = cuda.frame_times(view);
    const core::ProfileSimulator sim(core::RasterizerConfig::scaled300());
    frames.push_back({t.stage12_ms(),
                      sim.simulate(view, static_cast<std::uint64_t>(v)).runtime_ms()});
  }
  const core::PipelineSeriesResult series = core::simulate_pipeline_series(frames);
  std::cout << "Delivered " << views << " frames: mean interval "
            << format_time_ms(series.mean_interval_ms()) << " ("
            << format_fixed(series.fps(), 1) << " FPS), p99 interval "
            << format_time_ms(series.p99_interval_ms()) << "\n";
  return 0;
}
