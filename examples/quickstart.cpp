// Quickstart: render a synthetic 3D Gaussian scene through the engine
// backend API — the one seam every execution path in this repo goes
// through. Creates the reference software backend and the GauRast
// hardware-model backend from the registry, verifies their images match
// bit-exactly (FP32), then sweeps every registered hardware operating point
// and reports its modeled Step-3 runtime, FPS and energy.
//
//   ./quickstart [--gaussians N] [--width W] [--height H] [--out prefix]

#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "scene/generator.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("GauRast quickstart: one scene through every engine backend");
  cli.add_flag("gaussians", "20000", "number of synthetic Gaussians");
  cli.add_flag("width", "400", "image width");
  cli.add_flag("height", "300", "image height");
  cli.add_flag("out", "quickstart", "output PPM prefix");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Build a synthetic scene (deterministic in the seed).
  scene::GeneratorParams params;
  params.gaussian_count = static_cast<std::uint64_t>(cli.get_int("gaussians"));
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const scene::Camera camera = scene::default_camera(
      params, cli.get_int("width"), cli.get_int("height"));
  std::cout << "Scene: " << gscene.size() << " Gaussians, camera "
            << camera.width() << "x" << camera.height() << "\n";

  // 2. The registry is the single catalogue of execution paths; any name
  // here works for `--backend` everywhere (CLI, serve, benches).
  std::cout << "\nRegistered backends:\n";
  for (const engine::BackendInfo& info : engine::list()) {
    std::cout << "  " << info.name << " — " << info.description << "\n";
  }

  // 3. Software reference vs GauRast hardware model, both through the same
  // interface. In FP32 the enhanced rasterizer is bit-exact.
  const engine::FrameOptions options;
  const std::unique_ptr<engine::RenderBackend> sw = engine::create("sw");
  const std::unique_ptr<engine::RenderBackend> hw = engine::create("gaurast");
  const engine::FrameOutput sw_out = sw->render(gscene, camera, options);
  const engine::FrameOutput hw_out = hw->render(gscene, camera, options);
  std::cout << "\nSoftware pipeline: " << sw_out.frame.splats.size()
            << " splats, " << sw_out.frame.workload.instance_count()
            << " tile instances, "
            << sw_out.frame.raster_stats.pairs_evaluated << " pairs ("
            << format_fixed(sw_out.frame.pairs_per_pixel(), 1)
            << " per pixel)\n";
  const float diff = hw_out.frame.image.max_abs_diff(sw_out.frame.image);
  std::cout << "Hardware vs software image max abs diff: " << diff
            << (diff == 0.0f ? "  (bit-exact)" : "") << "\n";

  // 4. Every registered hardware operating point serves the same frame;
  // the rows differ only in the modeled deployment metrics.
  TablePrinter table({"Backend", "Precision", "PEs", "Step-3 raster",
                      "Pipelined FPS", "Utilization", "Energy @SoC"});
  for (const engine::BackendInfo& info : engine::list()) {
    if (!info.capabilities.is_hardware_model) continue;
    // The gaurast frame is already in hand from step 3.
    const engine::FrameOutput out =
        info.name == "gaurast"
            ? hw_out
            : engine::create(info.name)->render(gscene, camera, options);
    table.add_row({info.name,
                   engine::precision_name(info.capabilities.default_precision),
                   std::to_string(info.rasterizer->total_pes()),
                   format_time_ms(out.hw->raster_model_ms),
                   format_fixed(out.hw->pipelined_fps(), 1),
                   format_percent(out.hw->utilization),
                   format_energy_mj(out.hw->energy_soc_mj)});
  }
  std::cout << "\nHardware operating points on this frame:\n";
  table.print(std::cout);

  const std::string prefix = cli.get_string("out");
  sw_out.frame.image.save_ppm(prefix + "_software.ppm");
  hw_out.frame.image.save_ppm(prefix + "_gaurast.ppm");
  std::cout << "Wrote " << prefix << "_software.ppm and " << prefix
            << "_gaurast.ppm\n";
  return 0;
}
