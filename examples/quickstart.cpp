// Quickstart: render a synthetic 3D Gaussian scene with the software
// reference pipeline, then hand Step 3 to the GauRast hardware model, verify
// the images match exactly, and report the modeled cycle count and energy.
//
//   ./quickstart [--gaussians N] [--width W] [--height H] [--out prefix]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/device.hpp"
#include "core/energy.hpp"
#include "core/hw_rasterizer.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("GauRast quickstart: software vs hardware-model rendering");
  cli.add_flag("gaussians", "20000", "number of synthetic Gaussians");
  cli.add_flag("width", "400", "image width");
  cli.add_flag("height", "300", "image height");
  cli.add_flag("out", "quickstart", "output PPM prefix");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Build a synthetic scene (deterministic in the seed).
  scene::GeneratorParams params;
  params.gaussian_count = static_cast<std::uint64_t>(cli.get_int("gaussians"));
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const scene::Camera camera = scene::default_camera(
      params, cli.get_int("width"), cli.get_int("height"));
  std::cout << "Scene: " << gscene.size() << " Gaussians, camera "
            << camera.width() << "x" << camera.height() << "\n";

  // 2. Software reference: Steps 1-3 on the "CUDA cores".
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult sw = renderer.render(gscene, camera);
  std::cout << "Software pipeline: " << sw.splats.size() << " splats, "
            << sw.workload.instance_count() << " tile instances, "
            << sw.raster_stats.pairs_evaluated << " pairs ("
            << format_fixed(sw.pairs_per_pixel(), 1) << " per pixel)\n";

  // 3. Hardware model: Step 3 on the GauRast 16-PE prototype.
  const core::RasterizerConfig config = core::RasterizerConfig::prototype16();
  const core::HardwareRasterizer hw(config);
  const core::HwRasterResult hwres = hw.rasterize_gaussians(
      sw.splats, sw.workload, renderer.config().blend);

  const float diff = hwres.image.max_abs_diff(sw.image);
  std::cout << "Hardware vs software image max abs diff: " << diff
            << (diff == 0.0f ? "  (bit-exact)" : "") << "\n";

  const core::EnergyModel energy(config);
  const core::EnergyBreakdown e =
      energy.from_counters(hwres.counters, hwres.runtime_ms());
  TablePrinter table({"Metric", "Value"});
  table.add_row({"Cycles", std::to_string(hwres.timing.makespan_cycles)});
  table.add_row({"Runtime @1GHz", format_time_ms(hwres.runtime_ms())});
  table.add_row({"PE utilization", format_percent(hwres.utilization())});
  table.add_row({"Energy (28nm)", format_energy_mj(e.total_mj())});
  table.add_row({"Avg power", format_fixed(e.average_power_w(hwres.runtime_ms()), 2) + " W"});
  table.print(std::cout);

  const std::string prefix = cli.get_string("out");
  sw.image.save_ppm(prefix + "_software.ppm");
  hwres.image.save_ppm(prefix + "_gaurast.ppm");
  std::cout << "Wrote " << prefix << "_software.ppm and " << prefix
            << "_gaurast.ppm\n";

  // The same flow through the one-object public API: a Jetson-class device
  // whose rasterizer carries the paper's scaled 300-PE enhancement.
  const core::GauRastDevice device;
  const core::DeviceGaussianFrame dev = device.render(gscene, camera);
  std::cout << "\nGauRastDevice (scaled 300-PE deployment):\n"
            << "  raster " << format_time_ms(dev.raster_model_ms)
            << ", stages 1-2 " << format_time_ms(dev.stage12_model_ms)
            << ", pipelined " << format_fixed(dev.pipelined_fps(), 1)
            << " FPS\n"
            << "  enhancement silicon: "
            << format_fixed(device.enhancement_area_mm2(), 2) << " mm2 ("
            << format_percent(device.enhancement_soc_fraction(), 2)
            << " of the SoC), module power "
            << format_fixed(device.module_power_w(), 2) << " W\n";
  return 0;
}
