// AR/VR edge-deployment scenario (one of the paper's motivating
// applications, Fig. 1): a headset on a Jetson-class SoC rendering the
// NeRF-360 scenes. Sweeps all scenes under both pipelines and reports
// whether each configuration clears a target frame rate with and without
// GauRast, using the calibrated cost models.
//
//   ./edge_arvr_deployment [--target-fps 30] [--variant original|mini]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/profile_sim.hpp"
#include "core/scheduler.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "scene/profile.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("AR/VR edge deployment: does the headset hit its frame rate?");
  cli.add_flag("target-fps", "30", "application frame-rate requirement");
  cli.add_flag("variant", "both", "3DGS pipeline: original, mini, or both");
  if (!cli.parse(argc, argv)) return 0;
  const double target = cli.get_double("target-fps");
  const std::string variant = cli.get_string("variant");

  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  const core::ProfileSimulator sim(core::RasterizerConfig::scaled300());

  auto run = [&](const char* title,
                 const std::vector<scene::SceneProfile>& profiles) {
    print_banner(std::cout, title);
    TablePrinter table({"Scene", "CUDA-only FPS", "GauRast FPS",
                        "Meets " + format_fixed(target, 0) + " FPS?",
                        "Frame latency"});
    int passing = 0;
    for (const auto& profile : profiles) {
      const gpu::StageTimes t = cuda.frame_times(profile);
      const core::ProfileSimResult hw = sim.simulate(profile);
      const core::EndToEndResult e2e =
          core::schedule_frame(t, hw.runtime_ms());
      const bool ok = e2e.pipelined_fps() >= target;
      passing += ok ? 1 : 0;
      table.add_row({profile.name, format_fixed(e2e.cuda_only_fps(), 1),
                     format_fixed(e2e.pipelined_fps(), 1), ok ? "yes" : "no",
                     format_time_ms(e2e.pipeline_latency_ms())});
    }
    table.print(std::cout);
    std::cout << passing << "/" << profiles.size()
              << " scenes meet the target with GauRast (0 without).\n";
  };

  if (variant == "original" || variant == "both") {
    run("AR/VR deployment — original 3DGS pipeline",
        scene::nerf360_profiles());
  }
  if (variant == "mini" || variant == "both") {
    run("AR/VR deployment — Mini-Splatting pipeline",
        scene::nerf360_mini_profiles());
  }
  std::cout << "\nNote: pipeline latency is one full stage1-2 + stage3 pass;\n"
               "AR/VR apps hide it with late-stage reprojection.\n";
  return 0;
}
