// Design-space exploration: size a GauRast deployment for an application
// frame-rate target (e.g. a 30 FPS autonomous-driving perception loop on the
// `garden`-class outdoor scenes, paper Fig. 1). Sweeps module count, PE
// count, and precision; reports runtime, end-to-end FPS, added silicon and
// power so an SoC architect can pick the smallest sufficient configuration.
//
//   ./design_space [--scene garden] [--target-fps 30]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/area.hpp"
#include "core/profile_sim.hpp"
#include "core/scheduler.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "scene/profile.hpp"

int main(int argc, char** argv) {
  using namespace gaurast;
  CliParser cli("GauRast design-space exploration");
  cli.add_flag("scene", "garden", "NeRF-360 scene profile");
  cli.add_flag("target-fps", "30", "application frame-rate target");
  cli.add_flag("variant", "mini", "3DGS pipeline: original or mini");
  if (!cli.parse(argc, argv)) return 0;

  const scene::PipelineVariant variant =
      cli.get_string("variant") == "original"
          ? scene::PipelineVariant::kOriginal
          : scene::PipelineVariant::kMiniSplatting;
  const scene::SceneProfile profile =
      scene::profile_by_name(cli.get_string("scene"), variant);
  const double target = cli.get_double("target-fps");

  const gpu::GpuConfig host = gpu::orin_nx_10w();
  const gpu::CudaCostModel cuda(host);
  const gpu::StageTimes stage_times = cuda.frame_times(profile);

  print_banner(std::cout, "Design-space sweep — scene '" + profile.name +
                              "', target " + format_fixed(target, 0) + " FPS");
  std::cout << "CUDA-only baseline: "
            << format_fixed(1000.0 / stage_times.total_ms(), 1)
            << " FPS (stage1-2 " << format_time_ms(stage_times.stage12_ms())
            << ", raster " << format_time_ms(stage_times.raster_ms) << ")\n\n";

  TablePrinter table({"Config", "PEs", "Precision", "Raster", "E2E FPS",
                      "Added area @SoC", "Power", "Meets target"});
  struct Candidate {
    int modules;
    int pes;
    core::Precision precision;
  };
  const Candidate candidates[] = {
      {1, 16, core::Precision::kFp32},  {2, 16, core::Precision::kFp32},
      {4, 16, core::Precision::kFp32},  {8, 16, core::Precision::kFp32},
      {15, 16, core::Precision::kFp32}, {15, 20, core::Precision::kFp32},
      {2, 16, core::Precision::kFp16},  {4, 16, core::Precision::kFp16},
  };
  for (const Candidate& c : candidates) {
    core::RasterizerConfig cfg = core::RasterizerConfig::prototype16();
    cfg.module_count = c.modules;
    cfg.pes_per_module = c.pes;
    cfg.precision = c.precision;
    const core::ProfileSimulator sim(cfg);
    const core::ProfileSimResult r = sim.simulate(profile);
    const core::EndToEndResult e2e =
        core::schedule_frame(stage_times, r.runtime_ms());
    const core::AreaModel area(cfg);
    const bool ok = e2e.pipelined_fps() >= target;
    table.add_row(
        {std::to_string(c.modules) + "x" + std::to_string(c.pes),
         std::to_string(cfg.total_pes()),
         c.precision == core::Precision::kFp16 ? "FP16" : "FP32",
         format_time_ms(r.runtime_ms()), format_fixed(e2e.pipelined_fps(), 1),
         format_fixed(area.enhanced_soc_mm2(), 3) + " mm2",
         format_fixed(r.power_w_soc(), 2) + " W", ok ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nOnce Step 3 drops below the stage1-2 time, more PEs stop\n"
               "helping end-to-end: the CUDA stages become the pipeline\n"
               "bottleneck (paper Sec. IV-C).\n";
  return 0;
}
