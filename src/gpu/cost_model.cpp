#include "gpu/cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gaurast::gpu {

CudaCostModel::CudaCostModel(GpuConfig config) : config_(std::move(config)) {
  GAURAST_CHECK(config_.fma_rate_gfma > 0.0);
  GAURAST_CHECK(config_.mem_bw_gbps > 0.0);
}

double CudaCostModel::preprocess_ms(const scene::SceneProfile& profile) const {
  const auto n = static_cast<double>(profile.gaussian_count);
  const double sh_floats = static_cast<double>(
      (profile.sh_degree + 1) * (profile.sh_degree + 1) * 3);
  const double read_bytes = n * (3 + 3 + 4 + 1 + sh_floats) * 4.0;
  const double write_bytes = n * kSplatWriteBytes;
  const double mem_s =
      (read_bytes + write_bytes) / (config_.effective_bw_gbps() * 1e9);
  const double compute_s =
      n * kPreprocessFmaPerGaussian / (config_.fma_rate_gfma * 1e9);
  return 1000.0 * std::max(mem_s, compute_s);
}

double CudaCostModel::sort_ms(const scene::SceneProfile& profile) const {
  const auto instances = static_cast<double>(profile.tile_instances());
  const double bytes = instances * kSortBytesPerInstance;
  return 1000.0 * bytes / (config_.effective_bw_gbps() * 1e9);
}

double CudaCostModel::raster_ms(const scene::SceneProfile& profile) const {
  const auto pairs = static_cast<double>(profile.total_pairs());
  const double fma = pairs * profile.cuda_fma_per_pair *
                     config_.sw_raster_overhead;
  return 1000.0 * fma / (config_.fma_rate_gfma * 1e9);
}

CudaCostModel::RasterKernelBreakdown CudaCostModel::raster_breakdown(
    const scene::SceneProfile& profile) const {
  RasterKernelBreakdown b;
  b.compute_ms = raster_ms(profile);
  // DRAM side: every sorted instance is fetched once per tile (36 B of
  // splat parameters; intra-tile reuse happens in shared memory), plus one
  // framebuffer write per pixel (16 B RGBA-float).
  const double bytes =
      static_cast<double>(profile.tile_instances()) * 36.0 +
      static_cast<double>(profile.pixel_count()) * 16.0;
  b.memory_ms = 1000.0 * bytes / (config_.effective_bw_gbps() * 1e9);
  return b;
}

StageTimes CudaCostModel::frame_times(const scene::SceneProfile& profile) const {
  StageTimes t;
  t.preprocess_ms = preprocess_ms(profile);
  t.sort_ms = sort_ms(profile);
  t.raster_ms = raster_ms(profile);
  return t;
}

double CudaCostModel::raster_energy_mj(const scene::SceneProfile& profile) const {
  return raster_ms(profile) * config_.active_power_w;  // ms * W = mJ
}

double CudaCostModel::triangle_render_ms(std::uint64_t triangles,
                                         std::uint64_t pixels,
                                         double overdraw) const {
  // Fixed-function rasterizers sustain ~1 triangle/cycle setup and fill at
  // tens of pixels/cycle; vertex shading runs on the SMs (~120 FMA/vertex).
  const double setup_s = static_cast<double>(triangles) / 1.0e9;
  const double fill_s =
      static_cast<double>(pixels) * overdraw / 32.0 / 1.0e9;
  const double vertex_s = static_cast<double>(triangles) * 3.0 * 120.0 /
                          (config_.fma_rate_gfma * 1e9);
  return 1000.0 * (setup_s + fill_s + vertex_s);
}

double CudaCostModel::nerf_render_ms(std::uint64_t pixels, int samples_per_ray,
                                     double mlp_fma_per_sample) const {
  const double fma = static_cast<double>(pixels) *
                     static_cast<double>(samples_per_ray) * mlp_fma_per_sample;
  return 1000.0 * fma / (config_.fma_rate_gfma * 1e9);
}

}  // namespace gaurast::gpu
