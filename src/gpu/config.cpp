#include "gpu/config.hpp"

namespace gaurast::gpu {

GpuConfig orin_nx_10w() {
  GpuConfig c;
  c.name = "Jetson Orin NX (10W)";
  // 1024 CUDA cores * 612 MHz sustained at the 10 W cap.
  c.fma_rate_gfma = 626.7;
  c.mem_bw_gbps = 102.4;  // LPDDR5
  c.mem_efficiency = 0.70;
  c.sw_raster_overhead = 1.0;
  c.tdp_w = 10.0;
  // GPU + DRAM active power while the rasterization kernel saturates the
  // SMs under the 10 W board cap.
  c.active_power_w = 8.0;
  // Die area of the Orin SoC class and the effective area of its
  // fixed-function raster units (GPC rasterizers); the paper scales GauRast
  // to match the latter.
  c.soc_area_mm2 = 155.0;
  c.rasterizer_area_mm2 = 2.4;
  return c;
}

GpuConfig xavier_nx() {
  GpuConfig c;
  c.name = "Jetson Xavier NX (15W)";
  c.fma_rate_gfma = 422.0;  // 384 cores * 1.1 GHz
  c.mem_bw_gbps = 59.7;     // LPDDR4x
  c.mem_efficiency = 0.70;
  c.sw_raster_overhead = 1.0;
  c.tdp_w = 15.0;
  c.active_power_w = 10.0;
  c.soc_area_mm2 = 350.0;
  c.rasterizer_area_mm2 = 2.0;
  return c;
}

GpuConfig orin_agx_32w() {
  GpuConfig c;
  c.name = "Jetson AGX Orin (32W)";
  // 2048 CUDA cores at ~930 MHz sustained in the 32 W power mode.
  c.fma_rate_gfma = 1905.0;
  c.mem_bw_gbps = 204.8;  // 256-bit LPDDR5
  c.mem_efficiency = 0.70;
  c.sw_raster_overhead = 1.0;
  c.tdp_w = 32.0;
  c.active_power_w = 24.0;
  // The full Orin die; its GPC rasterizer budget scales with the doubled
  // GPC count relative to the NX configuration.
  c.soc_area_mm2 = 455.0;
  c.rasterizer_area_mm2 = 4.8;
  return c;
}

GpuConfig m2_pro() {
  GpuConfig c;
  c.name = "Apple M2 Pro GPU";
  // 2.6x the Orin NX FP32 capability (paper Sec. V-D).
  c.fma_rate_gfma = 626.7 * 2.6;
  c.mem_bw_gbps = 200.0;
  c.mem_efficiency = 0.70;
  // OpenSplat's Metal rasterization kernel is less tuned than the reference
  // CUDA kernel; calibrated so GauRast's bicycle-scene speedup over the
  // M2 Pro software path lands at the paper's 11.2x.
  c.sw_raster_overhead = 1.34;
  c.tdp_w = 30.0;
  c.active_power_w = 22.0;
  c.soc_area_mm2 = 289.0;
  c.rasterizer_area_mm2 = 3.4;
  return c;
}

}  // namespace gaurast::gpu
