// Edge-GPU configurations for the CUDA-software baseline model.
//
// These describe the *host* SoCs the paper measures against: the NVIDIA
// Jetson Orin NX at its 10 W power cap (primary baseline), the Jetson Xavier
// NX (GSCore's baseline, Sec. V-C), and the Apple M2 Pro GPU (portability
// experiment, Sec. V-D). Rates are sustained figures at the stated power
// mode, not peak datasheet numbers.
#pragma once

#include <string>

namespace gaurast::gpu {

struct GpuConfig {
  std::string name;

  /// Sustained FP32 FMA rate (GFMA/s = 1e9 fused multiply-adds per second).
  double fma_rate_gfma = 0.0;

  /// DRAM bandwidth (GB/s) and achievable efficiency for streaming kernels.
  double mem_bw_gbps = 0.0;
  double mem_efficiency = 0.7;

  /// Multiplier on a workload's calibrated FMA-per-pair cost, capturing the
  /// software stack: 1.0 for the tuned reference CUDA kernels; >1 for less
  /// optimized ports (e.g. OpenSplat on Metal).
  double sw_raster_overhead = 1.0;

  /// Board power cap and the active power attributable to the GPU + DRAM
  /// while the rasterization kernel runs (used for baseline energy).
  double tdp_w = 0.0;
  double active_power_w = 0.0;

  /// SoC die area (mm^2) and the effective area of its triangle-rasterizer
  /// fixed-function units — the budget GauRast's scaled configuration
  /// matches (paper: 15 modules ~ the Orin NX rasterizer area, and the
  /// Gaussian enhancement is ~0.2% of the SoC).
  double soc_area_mm2 = 0.0;
  double rasterizer_area_mm2 = 0.0;

  double effective_bw_gbps() const { return mem_bw_gbps * mem_efficiency; }
};

/// Jetson Orin NX, 10 W power mode: 1024 CUDA cores at ~612 MHz sustained.
GpuConfig orin_nx_10w();

/// Jetson Xavier NX (15 W): 384 CUDA cores at ~1.1 GHz. GSCore's host.
GpuConfig xavier_nx();

/// Jetson AGX Orin (32 W mode): the larger Orin sibling — roughly 3x the
/// Orin NX 10 W sustained FP32 rate with double the DRAM bandwidth. Host of
/// the engine registry's "orin-agx" operating point.
GpuConfig orin_agx_32w();

/// Apple M2 Pro GPU: 2.6x the Orin NX FP32 rate (paper Sec. V-D), with the
/// OpenSplat software stack overhead on its rasterization kernel.
GpuConfig m2_pro();

}  // namespace gaurast::gpu
