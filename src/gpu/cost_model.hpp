// Roofline + divergence cost model of the CUDA software 3DGS pipeline.
//
// This substitutes for the paper's Nsight Systems measurements on the Jetson
// Orin NX (Sec. II-B, V-A). Each stage is modeled with the mechanism that
// dominates it on a real device:
//
//   Step 1 (preprocess): memory-bound streaming — every Gaussian's 59 float
//     attributes are read and ~16 floats of splat state written; compute
//     (~600 FMA for projection + degree-3 SH) is the roofline alternative.
//   Step 2 (sort): bandwidth-bound device radix sort — each of the 4
//     radix passes reads and writes the 12-byte (key, payload) records.
//   Step 3 (raster): compute/divergence-bound — the per-scene calibrated
//     FMA-equivalents per evaluated splat-pixel pair (SceneProfile) divided
//     by the GPU's sustained FMA rate.
//
// The same model also prices triangle rendering and a vanilla-NeRF volume
// renderer for the Table I methodology comparison.
#pragma once

#include "gpu/config.hpp"
#include "scene/profile.hpp"

namespace gaurast::gpu {

/// Per-frame stage times for the CUDA-only pipeline.
struct StageTimes {
  double preprocess_ms = 0.0;
  double sort_ms = 0.0;
  double raster_ms = 0.0;

  double stage12_ms() const { return preprocess_ms + sort_ms; }
  double total_ms() const { return preprocess_ms + sort_ms + raster_ms; }
  double fps() const { return total_ms() > 0 ? 1000.0 / total_ms() : 0.0; }
  double raster_share() const {
    return total_ms() > 0 ? raster_ms / total_ms() : 0.0;
  }
};

class CudaCostModel {
 public:
  explicit CudaCostModel(GpuConfig config);

  const GpuConfig& config() const { return config_; }

  /// Step 1: roofline over attribute streaming vs projection/SH compute.
  double preprocess_ms(const scene::SceneProfile& profile) const;

  /// Step 2: radix-sort bandwidth over the duplicated tile instances.
  double sort_ms(const scene::SceneProfile& profile) const;

  /// Step 3: calibrated pair cost over the sustained FMA rate.
  double raster_ms(const scene::SceneProfile& profile) const;

  /// Compute-vs-memory decomposition of the Step-3 kernel: arithmetic time
  /// at the calibrated pair cost vs DRAM time for streaming the sorted
  /// splat instances and writing the framebuffer. Shows the kernel is
  /// compute/divergence-bound on this class of SoC, which is why a pair-rate
  /// accelerator (GauRast) pays off.
  struct RasterKernelBreakdown {
    double compute_ms = 0.0;
    double memory_ms = 0.0;
    bool compute_bound() const { return compute_ms >= memory_ms; }
  };
  RasterKernelBreakdown raster_breakdown(const scene::SceneProfile& profile) const;

  StageTimes frame_times(const scene::SceneProfile& profile) const;

  /// Energy attributed to Step 3 (mJ): raster time x active GPU power.
  double raster_energy_mj(const scene::SceneProfile& profile) const;

  /// Triangle-mesh rendering cost for a mesh of `triangles` covering
  /// `pixels` with the given overdraw, on the GPU's *fixed-function*
  /// pipeline (Table I "Fast" row).
  double triangle_render_ms(std::uint64_t triangles, std::uint64_t pixels,
                            double overdraw = 2.0) const;

  /// Vanilla-NeRF volume rendering cost at the given resolution (Table I
  /// "Slow" row): samples_per_ray MLP evaluations per pixel on CUDA cores.
  double nerf_render_ms(std::uint64_t pixels, int samples_per_ray = 192,
                        double mlp_fma_per_sample = 524288.0) const;

  // Modeling constants, exposed for tests and documentation.
  static constexpr double kPreprocessFmaPerGaussian = 600.0;
  static constexpr double kSplatWriteBytes = 64.0;  ///< Step-1 output/Gaussian
  static constexpr double kSortBytesPerInstance = 96.0;  ///< 4 passes x 24 B

 private:
  GpuConfig config_;
};

}  // namespace gaurast::gpu
