// Small fast-math helpers for the optimized raster kernel.
//
// The fast kernel's inner loop stays bit-identical to the reference
// implementation by never changing the arithmetic of a *blended* pair; it
// only skips work whose result is provably discarded. The helpers here
// encode those provably-safe shortcuts (and the batch width the kernel
// vectorizes over) so the bounds live next to their justification and can
// be unit-tested in isolation.
#pragma once

#include <cmath>
#include <limits>

namespace gaurast {

/// Pixels per row batch in the fast raster kernel. Lanes are independent
/// scalar pixels laid out for auto-vectorization; 8 matches one AVX float
/// register and divides every supported tile size (8/16/32/64).
inline constexpr int kRasterLaneWidth = 8;

/// Absolute slack (in Gaussian-power space, i.e. log-alpha units) subtracted
/// from the analytic cutoff below. float log/exp round to ~1 ulp (~1e-7
/// relative, so ~1e-6 absolute over the reachable power range); 1e-3 dwarfs
/// the combined rounding of the cutoff computation and the reference
/// kernel's own opacity * exp(power) evaluation.
inline constexpr float kAlphaCutoffSlack = 1e-3f;

/// Conservative lower bound on the Gaussian exponent `power`: whenever
/// power < alpha_cutoff_power(alpha_min, opacity), the reference kernel's
///   alpha = min(alpha_max, opacity * exp(power))
/// is guaranteed to land below alpha_min, i.e. the pair is discarded by the
/// blend threshold. The fast kernel uses this to skip the exp() for pairs
/// that cannot contribute, without ever skipping a pair the reference
/// kernel blends (which would break bit-identity).
///
/// Derivation: opacity * exp(power) < alpha_min  <=>
/// power < log(alpha_min / opacity); kAlphaCutoffSlack absorbs rounding.
inline float alpha_cutoff_power(float alpha_min, float opacity) {
  if (!(alpha_min > 0.0f)) {
    // alpha_min <= 0 blends every pair (even alpha == 0), so no power is
    // provably discardable: -inf is below nothing, not even power == -inf
    // (an overflowed exponent must still blend as the reference's exact
    // alpha == 0 no-op in this regime).
    return -std::numeric_limits<float>::infinity();
  }
  if (std::isnan(opacity)) {
    // No bound is provable through a NaN: never skip, so the kernel
    // evaluates the pair with the reference arithmetic (where
    // min(alpha_max, NaN) blends at alpha_max).
    return -std::numeric_limits<float>::infinity();
  }
  if (opacity <= 0.0f) {
    // alpha <= 0 < alpha_min for every power: always discardable (+inf
    // powers never reach the cutoff test — the power > 0 guard runs first).
    return std::numeric_limits<float>::infinity();
  }
  return std::log(alpha_min / opacity) - kAlphaCutoffSlack;
}

}  // namespace gaurast
