#include "gsmath/conic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gaurast {

Mat3f covariance3d(Quatf rotation, Vec3f scale) {
  GAURAST_CHECK_MSG(scale.x >= 0.0f && scale.y >= 0.0f && scale.z >= 0.0f,
                    "negative Gaussian scale");
  const Mat3f r = rotation.to_matrix();
  const Mat3f s = Mat3f::diagonal(scale);
  const Mat3f rs = r * s;  // M = R S; Sigma = M M^T
  return rs * rs.transposed();
}

Cov2 project_covariance(const Mat3f& cov3d, Vec3f mean_view, float focal_x,
                        float focal_y, float tan_fovx, float tan_fovy,
                        const Mat3f& view_rot) {
  // Clamp the projected position to 1.3x the frustum, as in the reference
  // implementation: the affine approximation degrades at extreme angles.
  const float limx = 1.3f * tan_fovx;
  const float limy = 1.3f * tan_fovy;
  const float z = mean_view.z;
  GAURAST_CHECK_MSG(z > 0.0f, "project_covariance needs positive view depth");
  const float txtz = std::clamp(mean_view.x / z, -limx, limx);
  const float tytz = std::clamp(mean_view.y / z, -limy, limy);
  const float tx = txtz * z;
  const float ty = tytz * z;

  // Jacobian of the perspective projection at the Gaussian center.
  Mat3f jac;
  jac.m = {focal_x / z, 0.0f, -(focal_x * tx) / (z * z),
           0.0f, focal_y / z, -(focal_y * ty) / (z * z),
           0.0f, 0.0f, 0.0f};

  const Mat3f t = jac * view_rot;
  const Mat3f cov = t * cov3d * t.transposed();

  Cov2 out;
  out.a = cov.at(0, 0) + 0.3f;  // low-pass dilation (reference impl.)
  out.b = cov.at(0, 1);
  out.c = cov.at(1, 1) + 0.3f;
  return out;
}

bool invert_covariance(const Cov2& cov, Conic2& conic_out) {
  const float det = cov.det();
  if (!(det > 0.0f) || !std::isfinite(det)) return false;
  const float inv = 1.0f / det;
  conic_out.a = cov.c * inv;
  conic_out.b = -cov.b * inv;
  conic_out.c = cov.a * inv;
  return true;
}

float splat_radius(const Cov2& cov) {
  float l1 = 0.0f, l2 = 0.0f;
  cov2_eigenvalues(cov, l1, l2);
  return std::ceil(3.0f * std::sqrt(std::max(l1, 0.0f)));
}

void cov2_eigenvalues(const Cov2& cov, float& lambda1, float& lambda2) {
  const float mid = 0.5f * cov.trace();
  const float disc = std::sqrt(std::max(mid * mid - cov.det(), 0.1f));
  lambda1 = mid + disc;
  lambda2 = mid - disc;
}

}  // namespace gaurast
