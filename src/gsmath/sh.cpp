#include "gsmath/sh.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gaurast {

namespace {
// Real SH constants as used in the reference 3DGS renderer.
constexpr float kSh0 = 0.28209479177387814f;
constexpr float kSh1 = 0.4886025119029199f;
constexpr float kSh2[5] = {1.0925484305920792f, -1.0925484305920792f,
                           0.31539156525252005f, -1.0925484305920792f,
                           0.5462742152960396f};
constexpr float kSh3[7] = {-0.5900435899266435f, 2.890611442640554f,
                           -0.4570457994644658f, 0.3731763325901154f,
                           -0.4570457994644658f, 1.445305721320277f,
                           -0.5900435899266435f};
}  // namespace

void sh_basis(Vec3f dir, int degree, std::array<float, kMaxShBasis>& out) {
  GAURAST_CHECK(degree >= 0 && degree <= 3);
  out.fill(0.0f);
  out[0] = kSh0;
  if (degree < 1) return;
  const float x = dir.x, y = dir.y, z = dir.z;
  out[1] = -kSh1 * y;
  out[2] = kSh1 * z;
  out[3] = -kSh1 * x;
  if (degree < 2) return;
  const float xx = x * x, yy = y * y, zz = z * z;
  const float xy = x * y, yz = y * z, xz = x * z;
  out[4] = kSh2[0] * xy;
  out[5] = kSh2[1] * yz;
  out[6] = kSh2[2] * (2.0f * zz - xx - yy);
  out[7] = kSh2[3] * xz;
  out[8] = kSh2[4] * (xx - yy);
  if (degree < 3) return;
  out[9] = kSh3[0] * y * (3.0f * xx - yy);
  out[10] = kSh3[1] * xy * z;
  out[11] = kSh3[2] * y * (4.0f * zz - xx - yy);
  out[12] = kSh3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
  out[13] = kSh3[4] * x * (4.0f * zz - xx - yy);
  out[14] = kSh3[5] * z * (xx - yy);
  out[15] = kSh3[6] * x * (xx - 3.0f * yy);
}

Vec3f eval_sh_color(const ShCoefficients& coeffs, int degree, Vec3f dir) {
  const float n = dir.norm();
  const Vec3f d = n > 0.0f ? dir / n : Vec3f{0.0f, 0.0f, 1.0f};
  std::array<float, kMaxShBasis> basis;
  sh_basis(d, degree, basis);
  Vec3f c{0.0f, 0.0f, 0.0f};
  for (std::size_t i = 0; i < sh_basis_count(degree); ++i) {
    c += coeffs[i] * basis[i];
  }
  c += Vec3f{0.5f, 0.5f, 0.5f};
  return {c.x < 0 ? 0 : c.x, c.y < 0 ? 0 : c.y, c.z < 0 ? 0 : c.z};
}

Vec3f sh_dc_from_rgb(Vec3f rgb) {
  return (rgb - Vec3f{0.5f, 0.5f, 0.5f}) / kSh0;
}

}  // namespace gaurast
