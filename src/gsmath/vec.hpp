// Small fixed-size vectors used throughout the renderer and simulators.
//
// Plain aggregates with value semantics; all operations are constexpr-capable
// and header-only so the rasterizer inner loops inline fully.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace gaurast {

struct Vec2f {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2f() = default;
  constexpr Vec2f(float x_, float y_) : x(x_), y(y_) {}

  constexpr Vec2f operator+(Vec2f o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2f operator-(Vec2f o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2f operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2f operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2f operator-() const { return {-x, -y}; }
  constexpr Vec2f& operator+=(Vec2f o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2f& operator-=(Vec2f o) { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2f&) const = default;

  constexpr float dot(Vec2f o) const { return x * o.x + y * o.y; }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
};

struct Vec3f {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3f() = default;
  constexpr Vec3f(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3f operator+(Vec3f o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3f operator-(Vec3f o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3f operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3f operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3f operator-() const { return {-x, -y, -z}; }
  constexpr Vec3f& operator+=(Vec3f o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3f& operator-=(Vec3f o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3f& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3f&) const = default;

  constexpr float dot(Vec3f o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3f cross(Vec3f o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
  Vec3f normalized() const {
    const float n = norm();
    GAURAST_CHECK(n > 0.0f);
    return *this / n;
  }
  /// Component-wise product (used for color modulation).
  constexpr Vec3f hadamard(Vec3f o) const { return {x * o.x, y * o.y, z * o.z}; }

  constexpr float operator[](std::size_t i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }
};

struct Vec4f {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float w = 0.0f;

  constexpr Vec4f() = default;
  constexpr Vec4f(float x_, float y_, float z_, float w_)
      : x(x_), y(y_), z(z_), w(w_) {}
  constexpr Vec4f(Vec3f v, float w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

  constexpr Vec4f operator+(Vec4f o) const {
    return {x + o.x, y + o.y, z + o.z, w + o.w};
  }
  constexpr Vec4f operator-(Vec4f o) const {
    return {x - o.x, y - o.y, z - o.z, w - o.w};
  }
  constexpr Vec4f operator*(float s) const { return {x * s, y * s, z * s, w * s}; }
  constexpr bool operator==(const Vec4f&) const = default;

  constexpr float dot(Vec4f o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
  constexpr Vec3f xyz() const { return {x, y, z}; }
};

constexpr Vec2f operator*(float s, Vec2f v) { return v * s; }
constexpr Vec3f operator*(float s, Vec3f v) { return v * s; }
constexpr Vec4f operator*(float s, Vec4f v) { return v * s; }

inline float clampf(float v, float lo, float hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace gaurast
