#include "gsmath/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace gaurast {

Image::Image(int width, int height, Vec3f fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
  GAURAST_CHECK(width > 0 && height > 0);
}

Vec3f& Image::at(int x, int y) {
  GAURAST_CHECK_MSG(x >= 0 && x < width_ && y >= 0 && y < height_,
                    "pixel (" << x << "," << y << ") out of " << width_ << "x"
                              << height_);
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

const Vec3f& Image::at(int x, int y) const {
  return const_cast<Image*>(this)->at(x, y);
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path);
  os << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  for (const Vec3f& p : pixels_) {
    const auto to_byte = [](float v) {
      return static_cast<std::uint8_t>(clampf(v, 0.0f, 1.0f) * 255.0f + 0.5f);
    };
    const std::uint8_t rgb[3] = {to_byte(p.x), to_byte(p.y), to_byte(p.z)};
    os.write(reinterpret_cast<const char*>(rgb), 3);
  }
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

double Image::psnr(const Image& reference) const {
  GAURAST_CHECK(width_ == reference.width_ && height_ == reference.height_);
  double mse = 0.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    const Vec3f d = pixels_[i] - reference.pixels_[i];
    mse += static_cast<double>(d.norm2());
  }
  mse /= static_cast<double>(pixels_.size() * 3);
  if (mse <= 0.0) return 1e9;
  return 10.0 * std::log10(1.0 / mse);
}

float Image::max_abs_diff(const Image& reference) const {
  GAURAST_CHECK(width_ == reference.width_ && height_ == reference.height_);
  float worst = 0.0f;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    const Vec3f d = pixels_[i] - reference.pixels_[i];
    worst = std::max({worst, std::abs(d.x), std::abs(d.y), std::abs(d.z)});
  }
  return worst;
}

double Image::mean_luminance() const {
  double sum = 0.0;
  for (const Vec3f& p : pixels_) {
    sum += static_cast<double>(p.x + p.y + p.z);
  }
  return pixels_.empty() ? 0.0 : sum / (3.0 * static_cast<double>(pixels_.size()));
}

}  // namespace gaurast
