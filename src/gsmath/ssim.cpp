#include "gsmath/ssim.hpp"

#include <vector>

#include "common/error.hpp"

namespace gaurast {

namespace {
double luminance(const Vec3f& c) {
  return 0.299 * static_cast<double>(c.x) + 0.587 * static_cast<double>(c.y) +
         0.114 * static_cast<double>(c.z);
}
}  // namespace

double ssim(const Image& a, const Image& b) {
  GAURAST_CHECK(a.width() == b.width() && a.height() == b.height());
  GAURAST_CHECK_MSG(a.width() >= 8 && a.height() >= 8,
                    "ssim needs at least 8x8 images");
  constexpr int kWin = 8;
  constexpr int kStride = 4;
  constexpr double kC1 = 0.01 * 0.01;  // (K1 * L)^2, L = 1
  constexpr double kC2 = 0.03 * 0.03;

  // Precompute luminance planes.
  std::vector<double> la(a.pixel_count()), lb(b.pixel_count());
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const std::size_t i = static_cast<std::size_t>(y) *
                                static_cast<std::size_t>(a.width()) +
                            static_cast<std::size_t>(x);
      la[i] = luminance(a.at(x, y));
      lb[i] = luminance(b.at(x, y));
    }
  }

  double total = 0.0;
  std::size_t windows = 0;
  for (int y0 = 0; y0 + kWin <= a.height(); y0 += kStride) {
    for (int x0 = 0; x0 + kWin <= a.width(); x0 += kStride) {
      double mu_a = 0, mu_b = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(a.width()) +
                                static_cast<std::size_t>(x);
          mu_a += la[i];
          mu_b += lb[i];
        }
      }
      constexpr double kN = kWin * kWin;
      mu_a /= kN;
      mu_b /= kN;
      double var_a = 0, var_b = 0, cov = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          const std::size_t i = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(a.width()) +
                                static_cast<std::size_t>(x);
          const double da = la[i] - mu_a;
          const double db = lb[i] - mu_b;
          var_a += da * da;
          var_b += db * db;
          cov += da * db;
        }
      }
      var_a /= kN - 1;
      var_b /= kN - 1;
      cov /= kN - 1;
      const double s = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                       ((mu_a * mu_a + mu_b * mu_b + kC1) *
                        (var_a + var_b + kC2));
      total += s;
      ++windows;
    }
  }
  GAURAST_CHECK(windows > 0);
  return total / static_cast<double>(windows);
}

}  // namespace gaurast
