// Camera and viewport transforms shared by the Gaussian and triangle
// pipelines.
#pragma once

#include "gsmath/mat.hpp"
#include "gsmath/vec.hpp"

namespace gaurast {

/// Right-handed look-at view matrix (camera looks down -Z in view space,
/// +X right, +Y up). `eye` must differ from `target`.
Mat4f look_at(Vec3f eye, Vec3f target, Vec3f up);

/// OpenGL-style perspective projection. fov_y in radians, aspect = w/h,
/// near/far > 0. Maps view-space z in [-near, -far] to NDC z in [-1, 1].
Mat4f perspective(float fov_y, float aspect, float z_near, float z_far);

/// NDC [-1,1]^2 to pixel coordinates; pixel centers at integer+0.5.
/// Y is flipped so row 0 is the top of the image.
Mat4f viewport(int width, int height);

/// Rotation about an axis, as a 4x4 (for camera orbits and mesh animation).
Mat4f rotation4(Vec3f axis, float radians);

/// Translation 4x4.
Mat4f translation4(Vec3f t);

/// Uniform/axis scale 4x4.
Mat4f scale4(Vec3f s);

/// Focal length in pixels for a given vertical FOV and image height:
/// fy = height / (2 tan(fov_y / 2)).
float focal_from_fov(float fov_y, int image_size);

}  // namespace gaurast
