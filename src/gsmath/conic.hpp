// EWA splat projection and conic math.
//
// Projecting a 3D Gaussian to the image plane (Zwicker et al. EWA splatting,
// as adopted by 3DGS) yields a 2D covariance Sigma' = J W Sigma W^T J^T where
// W is the view rotation and J the local affine approximation of the
// perspective projection. The screen-space density test evaluated per pixel
// by both the CUDA kernel and the GauRast PE uses the *conic* (inverse
// covariance): power = -1/2 d^T Conic d.
#pragma once

#include "gsmath/mat.hpp"
#include "gsmath/quat.hpp"
#include "gsmath/vec.hpp"

namespace gaurast {

/// Builds the 3D covariance Sigma = R S S^T R^T from quaternion rotation and
/// per-axis scales (must be >= 0). Returned matrix is symmetric PSD.
Mat3f covariance3d(Quatf rotation, Vec3f scale);

/// Symmetric 2x2 covariance as (a, b, c) for [[a, b], [b, c]].
struct Cov2 {
  float a = 0.0f;
  float b = 0.0f;
  float c = 0.0f;

  constexpr float det() const { return a * c - b * b; }
  constexpr float trace() const { return a + c; }
};

/// Conic (inverse covariance) with the same symmetric layout.
struct Conic2 {
  float a = 0.0f;
  float b = 0.0f;
  float c = 0.0f;
};

/// Projects a 3D covariance into screen space.
///   mean_view:  Gaussian center in view space (z < 0 in our convention is
///               handled by the caller passing positive depth; here we use
///               the 3DGS convention with +z forward).
///   focal_x/y:  focals in pixels.
///   tan_fovx/y: clamping bounds for the local affine approximation.
/// Applies the reference implementation's +0.3 px^2 low-pass dilation on the
/// diagonal, which guarantees a minimum 2D footprint (anti-aliasing floor).
Cov2 project_covariance(const Mat3f& cov3d, Vec3f mean_view, float focal_x,
                        float focal_y, float tan_fovx, float tan_fovy,
                        const Mat3f& view_rot);

/// Inverts a 2D covariance to a conic. Returns false if the covariance is
/// (numerically) degenerate, in which case the splat is culled.
bool invert_covariance(const Cov2& cov, Conic2& conic_out);

/// Conservative pixel radius of the splat: 3 standard deviations along the
/// major eigen-axis, ceil'ed — identical to the reference implementation.
float splat_radius(const Cov2& cov);

/// Evaluates the Gaussian power at pixel offset d from the center:
/// -0.5 * (conic.a dx^2 + conic.c dy^2) - conic.b dx dy.
/// alpha = opacity * exp(power) when power <= 0.
/// The association (squares first, then scale by the conic terms) is fixed —
/// the GauRast PE datapath performs the identical operation order, which is
/// what makes hardware/software images bit-equal in FP32.
constexpr float gaussian_power(const Conic2& conic, Vec2f d) {
  const float dx2 = d.x * d.x;
  const float dy2 = d.y * d.y;
  const float dxdy = d.x * d.y;
  return -0.5f * (conic.a * dx2 + conic.c * dy2) - conic.b * dxdy;
}

/// Eigenvalues of a symmetric 2x2 covariance (lambda1 >= lambda2).
void cov2_eigenvalues(const Cov2& cov, float& lambda1, float& lambda2);

}  // namespace gaurast
