// Structural similarity (SSIM) between two RGB images.
//
// Used by the FP16-variant quality checks: PSNR alone under-reports
// structured error, and the 3DGS literature reports SSIM alongside PSNR.
// This is the standard single-scale SSIM with an 8x8 sliding window
// (stride 4) over the per-pixel luminance, K1 = 0.01, K2 = 0.03, L = 1.
#pragma once

#include "gsmath/image.hpp"

namespace gaurast {

/// Mean SSIM over the luminance channel; 1.0 for identical images.
/// Images must have equal dimensions of at least 8x8.
double ssim(const Image& a, const Image& b);

}  // namespace gaurast
