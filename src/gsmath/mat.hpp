// Small dense matrices (2x2, 3x3, 4x4), row-major, header-only.
//
// These back the EWA splat projection (Jacobian * view * covariance chains),
// camera transforms for both rendering pipelines, and the conic math in the
// PE datapath model.
#pragma once

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "gsmath/vec.hpp"

namespace gaurast {

/// Symmetric-friendly 2x2 matrix. m = [[a, b], [c, d]].
struct Mat2f {
  float a = 0.0f, b = 0.0f, c = 0.0f, d = 0.0f;

  constexpr Mat2f() = default;
  constexpr Mat2f(float a_, float b_, float c_, float d_)
      : a(a_), b(b_), c(c_), d(d_) {}

  static constexpr Mat2f identity() { return {1, 0, 0, 1}; }

  constexpr Mat2f operator+(Mat2f o) const {
    return {a + o.a, b + o.b, c + o.c, d + o.d};
  }
  constexpr Mat2f operator*(float s) const { return {a * s, b * s, c * s, d * s}; }
  constexpr Mat2f operator*(Mat2f o) const {
    return {a * o.a + b * o.c, a * o.b + b * o.d,
            c * o.a + d * o.c, c * o.b + d * o.d};
  }
  constexpr Vec2f operator*(Vec2f v) const {
    return {a * v.x + b * v.y, c * v.x + d * v.y};
  }
  constexpr Mat2f transposed() const { return {a, c, b, d}; }
  constexpr float det() const { return a * d - b * c; }
  constexpr float trace() const { return a + d; }

  /// Inverse; requires |det| > 0 (callers guard degenerate covariances).
  Mat2f inverse() const {
    const float dt = det();
    GAURAST_CHECK_MSG(dt != 0.0f, "singular 2x2 matrix");
    const float inv = 1.0f / dt;
    return {d * inv, -b * inv, -c * inv, a * inv};
  }
};

/// 3x3 matrix, row-major storage.
struct Mat3f {
  std::array<float, 9> m{};  // m[r*3 + c]

  constexpr Mat3f() = default;

  static constexpr Mat3f identity() {
    Mat3f r;
    r.m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    return r;
  }

  static constexpr Mat3f from_rows(Vec3f r0, Vec3f r1, Vec3f r2) {
    Mat3f r;
    r.m = {r0.x, r0.y, r0.z, r1.x, r1.y, r1.z, r2.x, r2.y, r2.z};
    return r;
  }

  static constexpr Mat3f diagonal(Vec3f d) {
    Mat3f r;
    r.m = {d.x, 0, 0, 0, d.y, 0, 0, 0, d.z};
    return r;
  }

  constexpr float at(std::size_t r, std::size_t c) const { return m[r * 3 + c]; }
  constexpr float& at(std::size_t r, std::size_t c) { return m[r * 3 + c]; }

  constexpr Mat3f operator*(const Mat3f& o) const {
    Mat3f r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        float s = 0;
        for (std::size_t k = 0; k < 3; ++k) s += at(i, k) * o.at(k, j);
        r.at(i, j) = s;
      }
    return r;
  }

  constexpr Vec3f operator*(Vec3f v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
  }

  constexpr Mat3f operator*(float s) const {
    Mat3f r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = m[i] * s;
    return r;
  }

  constexpr Mat3f operator+(const Mat3f& o) const {
    Mat3f r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = m[i] + o.m[i];
    return r;
  }

  constexpr Mat3f transposed() const {
    Mat3f r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.at(i, j) = at(j, i);
    return r;
  }

  constexpr float det() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) -
           m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  }
};

/// 4x4 matrix, row-major; used for view/projection transforms.
struct Mat4f {
  std::array<float, 16> m{};  // m[r*4 + c]

  constexpr Mat4f() = default;

  static constexpr Mat4f identity() {
    Mat4f r;
    r.m = {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1};
    return r;
  }

  constexpr float at(std::size_t r, std::size_t c) const { return m[r * 4 + c]; }
  constexpr float& at(std::size_t r, std::size_t c) { return m[r * 4 + c]; }

  constexpr Mat4f operator*(const Mat4f& o) const {
    Mat4f r;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) {
        float s = 0;
        for (std::size_t k = 0; k < 4; ++k) s += at(i, k) * o.at(k, j);
        r.at(i, j) = s;
      }
    return r;
  }

  constexpr Vec4f operator*(Vec4f v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z + m[3] * v.w,
            m[4] * v.x + m[5] * v.y + m[6] * v.z + m[7] * v.w,
            m[8] * v.x + m[9] * v.y + m[10] * v.z + m[11] * v.w,
            m[12] * v.x + m[13] * v.y + m[14] * v.z + m[15] * v.w};
  }

  constexpr Mat4f transposed() const {
    Mat4f r;
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j) r.at(i, j) = at(j, i);
    return r;
  }

  /// Upper-left 3x3 block (rotation/scale part).
  constexpr Mat3f upper3x3() const {
    Mat3f r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r.at(i, j) = at(i, j);
    return r;
  }

  /// Transforms a point (w=1) and divides by the resulting w.
  Vec3f transform_point(Vec3f p) const {
    const Vec4f h = (*this) * Vec4f(p, 1.0f);
    GAURAST_CHECK_MSG(h.w != 0.0f, "projective point at infinity");
    return h.xyz() / h.w;
  }

  /// Transforms a direction (w=0), no perspective divide.
  constexpr Vec3f transform_dir(Vec3f d) const {
    return ((*this) * Vec4f(d, 0.0f)).xyz();
  }
};

}  // namespace gaurast
