// RGB float image with PPM export and comparison metrics.
//
// Shared by the 3DGS software pipeline, the triangle reference rasterizer and
// the GauRast functional model; image-equality between software and hardware
// paths is the repo's analogue of the paper's RTL-vs-software validation.
#pragma once

#include <string>
#include <vector>

#include "gsmath/vec.hpp"

namespace gaurast {

class Image {
 public:
  Image() = default;
  Image(int width, int height, Vec3f fill = {0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const { return pixels_.size(); }

  Vec3f& at(int x, int y);
  const Vec3f& at(int x, int y) const;

  const std::vector<Vec3f>& pixels() const { return pixels_; }
  std::vector<Vec3f>& pixels() { return pixels_; }

  /// Writes a binary PPM (P6), clamping each channel to [0, 1].
  void save_ppm(const std::string& path) const;

  /// Peak signal-to-noise ratio against a same-sized reference (dB, higher
  /// is closer; identical images return +inf represented as 1e9).
  double psnr(const Image& reference) const;

  /// Largest absolute per-channel difference against a reference.
  float max_abs_diff(const Image& reference) const;

  /// Mean of all channel values (quick content sanity probe in tests).
  double mean_luminance() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Vec3f> pixels_;
};

}  // namespace gaurast
