// Real spherical harmonics up to degree 3 for view-dependent Gaussian color.
//
// 3DGS stores each Gaussian's color as SH coefficients (up to 16 per channel)
// and evaluates them along the camera->Gaussian direction during
// preprocessing (Step 1). Basis constants and the 0.5 offset match the
// reference implementation (Kerbl et al. 2023).
#pragma once

#include <array>
#include <cstddef>

#include "gsmath/vec.hpp"

namespace gaurast {

/// Number of SH basis functions for a given degree (0..3): (deg+1)^2.
constexpr std::size_t sh_basis_count(int degree) {
  return static_cast<std::size_t>((degree + 1) * (degree + 1));
}

inline constexpr std::size_t kMaxShBasis = sh_basis_count(3);  // 16

/// Per-channel SH coefficient block for one Gaussian: coeff[basis] is RGB.
using ShCoefficients = std::array<Vec3f, kMaxShBasis>;

/// Evaluates the real SH basis functions at unit direction `dir` into `out`,
/// for bases 0..(degree+1)^2-1. degree must be in [0, 3].
void sh_basis(Vec3f dir, int degree, std::array<float, kMaxShBasis>& out);

/// Evaluates SH color along `dir` (need not be normalized): sum_i b_i(dir)
/// * coeff[i] + 0.5, clamped to be non-negative — exactly the reference
/// 3DGS computeColorFromSH behaviour.
Vec3f eval_sh_color(const ShCoefficients& coeffs, int degree, Vec3f dir);

/// Inverse of the degree-0 mapping: given a target RGB, the DC coefficient
/// that reproduces it with eval_sh_color at degree 0.
Vec3f sh_dc_from_rgb(Vec3f rgb);

}  // namespace gaurast
