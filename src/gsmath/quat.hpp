// Unit quaternions for Gaussian orientation.
//
// 3DGS parameterizes each Gaussian's covariance as R(q) S S^T R(q)^T with q a
// unit quaternion and S a diagonal scale. This header provides the quaternion
// type and the q -> rotation-matrix conversion used by both the scene
// generator and the preprocessing stage.
#pragma once

#include <cmath>

#include "gsmath/mat.hpp"
#include "gsmath/vec.hpp"

namespace gaurast {

struct Quatf {
  float w = 1.0f;
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Quatf() = default;
  constexpr Quatf(float w_, float x_, float y_, float z_)
      : w(w_), x(x_), y(y_), z(z_) {}

  static constexpr Quatf identity() { return {1, 0, 0, 0}; }

  /// Axis-angle constructor; axis need not be normalized.
  static Quatf from_axis_angle(Vec3f axis, float radians) {
    const Vec3f a = axis.normalized();
    const float h = 0.5f * radians;
    const float s = std::sin(h);
    return {std::cos(h), a.x * s, a.y * s, a.z * s};
  }

  constexpr float norm2() const { return w * w + x * x + y * y + z * z; }
  float norm() const { return std::sqrt(norm2()); }

  Quatf normalized() const {
    const float n = norm();
    GAURAST_CHECK(n > 0.0f);
    return {w / n, x / n, y / n, z / n};
  }

  constexpr Quatf conjugate() const { return {w, -x, -y, -z}; }

  /// Hamilton product.
  constexpr Quatf operator*(Quatf o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  /// Rotation matrix for the (normalized) quaternion. Matches the reference
  /// 3DGS CUDA implementation's build_rotation().
  Mat3f to_matrix() const {
    const Quatf q = normalized();
    const float r = q.w, i = q.x, j = q.y, k = q.z;
    Mat3f out;
    out.m = {1 - 2 * (j * j + k * k), 2 * (i * j - r * k), 2 * (i * k + r * j),
             2 * (i * j + r * k), 1 - 2 * (i * i + k * k), 2 * (j * k - r * i),
             2 * (i * k - r * j), 2 * (j * k + r * i), 1 - 2 * (i * i + j * j)};
    return out;
  }

  constexpr Vec3f rotate(Vec3f v) const {
    // v' = q v q*; expanded via the rotation matrix is cheaper but this form
    // is kept for clarity in non-hot paths.
    const Quatf p{0.0f, v.x, v.y, v.z};
    const Quatf r = (*this) * p * conjugate();
    return {r.x, r.y, r.z};
  }
};

}  // namespace gaurast
