#include "gsmath/transform.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gsmath/quat.hpp"

namespace gaurast {

Mat4f look_at(Vec3f eye, Vec3f target, Vec3f up) {
  const Vec3f delta = target - eye;
  GAURAST_CHECK_MSG(delta.norm2() > 0.0f, "look_at eye == target");
  const Vec3f f = delta.normalized();        // forward
  const Vec3f s = f.cross(up).normalized();  // right
  const Vec3f u = s.cross(f);                // true up
  Mat4f m = Mat4f::identity();
  m.m = {s.x,  s.y,  s.z,  -s.dot(eye),
         u.x,  u.y,  u.z,  -u.dot(eye),
         -f.x, -f.y, -f.z, f.dot(eye),
         0,    0,    0,    1};
  return m;
}

Mat4f perspective(float fov_y, float aspect, float z_near, float z_far) {
  GAURAST_CHECK(fov_y > 0.0f && aspect > 0.0f);
  GAURAST_CHECK(z_near > 0.0f && z_far > z_near);
  const float t = std::tan(0.5f * fov_y);
  Mat4f m;  // zero-initialized
  m.at(0, 0) = 1.0f / (aspect * t);
  m.at(1, 1) = 1.0f / t;
  m.at(2, 2) = -(z_far + z_near) / (z_far - z_near);
  m.at(2, 3) = -2.0f * z_far * z_near / (z_far - z_near);
  m.at(3, 2) = -1.0f;
  return m;
}

Mat4f viewport(int width, int height) {
  GAURAST_CHECK(width > 0 && height > 0);
  const float w = static_cast<float>(width);
  const float h = static_cast<float>(height);
  Mat4f m = Mat4f::identity();
  m.at(0, 0) = 0.5f * w;
  m.at(0, 3) = 0.5f * w;
  m.at(1, 1) = -0.5f * h;  // flip Y: NDC +1 -> row 0
  m.at(1, 3) = 0.5f * h;
  return m;
}

Mat4f rotation4(Vec3f axis, float radians) {
  const Mat3f r = Quatf::from_axis_angle(axis, radians).to_matrix();
  Mat4f m = Mat4f::identity();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) m.at(i, j) = r.at(i, j);
  return m;
}

Mat4f translation4(Vec3f t) {
  Mat4f m = Mat4f::identity();
  m.at(0, 3) = t.x;
  m.at(1, 3) = t.y;
  m.at(2, 3) = t.z;
  return m;
}

Mat4f scale4(Vec3f s) {
  Mat4f m = Mat4f::identity();
  m.at(0, 0) = s.x;
  m.at(1, 1) = s.y;
  m.at(2, 2) = s.z;
  return m;
}

float focal_from_fov(float fov_y, int image_size) {
  GAURAST_CHECK(fov_y > 0.0f && image_size > 0);
  return static_cast<float>(image_size) / (2.0f * std::tan(0.5f * fov_y));
}

}  // namespace gaurast
