// Fixed-size worker pool with a bounded task queue.
//
// The building block of the render service (runtime/service.hpp): producers
// enqueue type-erased tasks, workers drain them FIFO. The queue bound is the
// service's backpressure mechanism — submit() blocks the producer while the
// queue is full, try_submit() refuses instead (open-loop load shedding).
// Shutdown is graceful: intake stops, every task already accepted still runs,
// then the workers join. Mirrors the request/handler worker-queue idiom of
// classic serving systems rather than one-thread-per-request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gaurast::runtime {

struct ThreadPoolConfig {
  /// Number of worker threads; must be >= 1.
  int workers = 1;
  /// Maximum tasks waiting to start (tasks already running do not count);
  /// must be >= 1. This bound is what callers feel as backpressure.
  std::size_t queue_capacity = 64;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolConfig config);
  /// Equivalent to shutdown(): drains accepted tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is at capacity. Throws
  /// gaurast::Error if the pool is (or becomes, while blocked) shut down.
  void submit(std::function<void()> task) GAURAST_EXCLUDES(mutex_);

  /// Non-blocking submit: returns false (dropping the task) when the queue
  /// is full or the pool is shut down.
  bool try_submit(std::function<void()> task) GAURAST_EXCLUDES(mutex_);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Tasks submitted concurrently with the wait may extend it.
  void wait_idle() GAURAST_EXCLUDES(mutex_);

  /// Stops intake, runs every already-accepted task, joins the workers.
  /// Idempotent; called by the destructor.
  void shutdown() GAURAST_EXCLUDES(mutex_);

  int worker_count() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return config_.queue_capacity; }

  /// Snapshot of tasks waiting to start (racy by nature; for stats only).
  std::size_t queue_depth() const GAURAST_EXCLUDES(mutex_);
  /// Tasks that have finished running (including failed ones).
  std::uint64_t tasks_executed() const GAURAST_EXCLUDES(mutex_);
  /// Tasks that exited by throwing; the exception is swallowed (wrap work
  /// in std::packaged_task to propagate errors through a future instead).
  std::uint64_t tasks_failed() const GAURAST_EXCLUDES(mutex_);
  /// Cumulative wall time workers spent running tasks, across all workers.
  /// utilization = busy_ms / (worker_count * observation window).
  double busy_ms() const GAURAST_EXCLUDES(mutex_);

 private:
  void worker_loop();
  /// One completed task's bookkeeping; `failed`/`elapsed_ns` describe it.
  void note_task_done(bool failed, std::uint64_t elapsed_ns)
      GAURAST_REQUIRES(mutex_);

  ThreadPoolConfig config_;
  mutable common::Mutex mutex_;
  common::CondVar queue_not_empty_;  // workers sleep here
  common::CondVar queue_not_full_;   // blocked producers sleep here
  common::CondVar all_idle_;         // wait_idle + shutdown-waiter sleepers
  std::deque<std::function<void()>> queue_ GAURAST_GUARDED_BY(mutex_);
  /// Written once by the constructor; shutdown() joins through it after
  /// intake is closed. Not guarded: the vector itself is immutable from the
  /// moment the constructor returns (std::thread::join is thread-safe).
  std::vector<std::thread> workers_;
  int running_tasks_ GAURAST_GUARDED_BY(mutex_) = 0;
  bool shutdown_ GAURAST_GUARDED_BY(mutex_) = false;
  bool joined_ GAURAST_GUARDED_BY(mutex_) = false;
  std::uint64_t tasks_executed_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t tasks_failed_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t busy_ns_ GAURAST_GUARDED_BY(mutex_) = 0;
};

}  // namespace gaurast::runtime
