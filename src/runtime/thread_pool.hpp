// Fixed-size worker pool with a bounded task queue.
//
// The building block of the render service (runtime/service.hpp): producers
// enqueue type-erased tasks, workers drain them FIFO. The queue bound is the
// service's backpressure mechanism — submit() blocks the producer while the
// queue is full, try_submit() refuses instead (open-loop load shedding).
// Shutdown is graceful: intake stops, every task already accepted still runs,
// then the workers join. Mirrors the request/handler worker-queue idiom of
// classic serving systems rather than one-thread-per-request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gaurast::runtime {

struct ThreadPoolConfig {
  /// Number of worker threads; must be >= 1.
  int workers = 1;
  /// Maximum tasks waiting to start (tasks already running do not count);
  /// must be >= 1. This bound is what callers feel as backpressure.
  std::size_t queue_capacity = 64;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolConfig config);
  /// Equivalent to shutdown(): drains accepted tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is at capacity. Throws
  /// gaurast::Error if the pool is (or becomes, while blocked) shut down.
  void submit(std::function<void()> task);

  /// Non-blocking submit: returns false (dropping the task) when the queue
  /// is full or the pool is shut down.
  bool try_submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Tasks submitted concurrently with the wait may extend it.
  void wait_idle();

  /// Stops intake, runs every already-accepted task, joins the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  int worker_count() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return config_.queue_capacity; }

  /// Snapshot of tasks waiting to start (racy by nature; for stats only).
  std::size_t queue_depth() const;
  /// Tasks that have finished running (including failed ones).
  std::uint64_t tasks_executed() const;
  /// Tasks that exited by throwing; the exception is swallowed (wrap work
  /// in std::packaged_task to propagate errors through a future instead).
  std::uint64_t tasks_failed() const;
  /// Cumulative wall time workers spent running tasks, across all workers.
  /// utilization = busy_ms / (worker_count * observation window).
  double busy_ms() const;

 private:
  void worker_loop();

  ThreadPoolConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable queue_not_empty_;  // workers sleep here
  std::condition_variable queue_not_full_;   // blocked producers sleep here
  std::condition_variable all_idle_;         // wait_idle sleepers
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int running_tasks_ = 0;
  bool shutdown_ = false;
  bool joined_ = false;
  std::uint64_t tasks_executed_ = 0;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t busy_ns_ = 0;
};

}  // namespace gaurast::runtime
