// StagePipeline — the stage-pipelined frame scheduler.
//
// Decomposes every frame into the pipeline's three explicit stages
// (preprocess -> sort -> raster, the engine::RenderBackend stage seam) and
// runs each stage on its own bounded-queue ThreadPool, so stage N of frame
// A overlaps stage N-1 of frame B — the staged, bounded-queue decomposition
// high-rate acquisition systems use to turn per-item latency into sustained
// throughput. The inter-stage queues reuse the ThreadPool's backpressure
// semantics: a stage worker that finishes an item blocks handing it to a
// full downstream queue, so a slow raster stage throttles preprocess
// instead of ballooning memory. Workers are apportioned per stage
// (StageWorkers), which is the scheduler's tuning knob: give the heaviest
// stage the most workers.
//
// Output contract: a frame through the stage pipeline is bit-identical to
// the same frame through RenderBackend::render() — the stage entry points
// are the monolithic path's own factored-out pieces, never a second
// implementation.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "engine/backend.hpp"
#include "runtime/job.hpp"
#include "runtime/thread_pool.hpp"

namespace gaurast::runtime {

inline constexpr int kStageCount = 3;

/// "preprocess" | "sort" | "raster" for stage index 0 | 1 | 2.
const char* stage_name(int stage);

/// Worker apportionment across the three stages. The default gives the
/// raster stage two workers because Step 3 dominates per-frame cost on
/// every recorded configuration (see BENCH_pipeline.json).
struct StageWorkers {
  int preprocess = 1;
  int sort = 1;
  int raster = 2;

  int total() const { return preprocess + sort + raster; }
  int at(int stage) const;
};

/// Parses "P,S,R" (three comma-separated positive ints, e.g. "1,1,2");
/// throws gaurast::Error naming the expected shape otherwise.
StageWorkers stage_workers_from_string(const std::string& spec);
std::string to_string(const StageWorkers& workers);

/// Aggregated per-stage statistics snapshot; latencies in milliseconds.
struct StageSnapshot {
  std::string name;
  int workers = 0;
  std::uint64_t completed = 0;    ///< stage executions finished
  double service_mean_ms = 0.0;   ///< mean stage execution time
  double mean_queue_depth = 0.0;  ///< stage queue depth, sampled per enqueue
  /// Cumulative time executing this stage's work. Time a worker spends
  /// parked on downstream backpressure is NOT busy time — utilization
  /// derived from this tells you which stage needs workers, not which
  /// stage is blocked.
  double busy_ms = 0.0;
  /// busy / (workers * observation wall); filled by whoever owns the wall
  /// clock (RenderService::stats()), 0 until then.
  double utilization = 0.0;
};

/// The scheduler itself. Owns one ThreadPool per stage; frames travel
/// between stages as heap-allocated jobs whose promise resolves when the
/// raster stage finishes. Thread-safe for any number of submitters.
class StagePipeline {
 public:
  using Clock = std::chrono::steady_clock;

  struct Config {
    StageWorkers workers;
    /// Capacity of each stage's queue (the entry queue and both inter-stage
    /// queues) — what submitters and upstream stages feel as backpressure.
    std::size_t queue_capacity = 64;
  };

  /// `backend` must advertise supports_stage_pipeline and outlive the
  /// pipeline; `on_complete` is invoked (on a raster worker) with every
  /// successful JobResult before its future resolves.
  StagePipeline(Config config, const engine::RenderBackend& backend,
                engine::FrameOptions options,
                std::function<void(const JobResult&)> on_complete);
  /// Drains in-flight frames stage by stage, then joins all workers.
  ~StagePipeline();

  StagePipeline(const StagePipeline&) = delete;
  StagePipeline& operator=(const StagePipeline&) = delete;

  /// Schedules a frame, blocking while the preprocess queue is full.
  /// `precompute` (nullable) is the camera-independent per-scene state
  /// shared across frames of request.scene; `enqueue_time` anchors the
  /// job's latency accounting. Throws gaurast::Error after shutdown().
  std::future<JobResult> submit(
      RenderRequest request,
      std::shared_ptr<const pipeline::ScenePrecompute> precompute,
      Clock::time_point enqueue_time);

  /// Non-blocking submit; std::nullopt when the preprocess queue is full.
  std::optional<std::future<JobResult>> try_submit(
      RenderRequest request,
      std::shared_ptr<const pipeline::ScenePrecompute> precompute,
      Clock::time_point enqueue_time);

  /// Blocks until every accepted frame has left every stage. Waiting runs
  /// front to back: once stage N is idle nothing can re-enter it, because
  /// only stage N-1 workers feed it.
  void drain();

  /// Stops intake, then shuts the stage pools down front to back so every
  /// accepted frame still flows through all three stages (a draining
  /// upstream pool may block on a full downstream queue; the downstream
  /// pool's intake stays open until its upstream has fully drained, so the
  /// pipeline always makes progress). Idempotent.
  void shutdown();

  int worker_count() const { return config_.workers.total(); }
  std::size_t queue_capacity() const { return config_.queue_capacity; }

  /// Depth of the preprocess (entry) queue — the submit-side backpressure
  /// signal, mirroring ThreadPool::queue_depth.
  std::size_t entry_queue_depth() const;

  /// Cumulative busy time across all stage workers.
  double busy_ms() const;

  /// Per-stage snapshots in stage order (utilization left 0; see
  /// StageSnapshot).
  std::vector<StageSnapshot> snapshots() const;

 private:
  struct Job;

  void run_stage(int stage, const std::shared_ptr<Job>& job);
  /// Enqueues `job` into `stage`'s pool, recording the queue-depth sample;
  /// on refused intake the job's promise carries the error.
  void forward(int stage, std::shared_ptr<Job> job);
  void finish(Job& job, engine::FrameOutput output);

  /// Records one enqueue into `stage` (count + queue-depth sample).
  void note_enqueued(int stage, std::size_t depth)
      GAURAST_EXCLUDES(stats_mutex_);

  Config config_;
  const engine::RenderBackend* backend_;
  engine::FrameOptions options_;
  std::function<void(const JobResult&)> on_complete_;
  std::array<std::unique_ptr<ThreadPool>, kStageCount> pools_;

  mutable common::Mutex stats_mutex_;
  struct StageCounters {
    std::uint64_t enqueued = 0;
    std::uint64_t completed = 0;
    double queue_depth_sum = 0.0;
    double service_sum_ms = 0.0;
  };
  std::array<StageCounters, kStageCount> counters_
      GAURAST_GUARDED_BY(stats_mutex_);
};

}  // namespace gaurast::runtime
