// Load generation for the render service.
//
// Produces scenario-diverse request streams over generated scenes: a mix of
// scene sizes (small props up to heavy NeRF-360-ish clusters), orbit and
// dolly camera paths, and two arrival disciplines — closed-loop (submit as
// fast as the service's bounded queue accepts; measures capacity) and
// open-loop Poisson (submit on an exponential clock regardless of service
// state; measures behavior under offered load, with queue-full rejections
// counted as shed traffic). Everything is seeded through common/prng, so a
// (seed, config) pair always replays the exact same traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/service.hpp"
#include "scene/camera.hpp"

namespace gaurast::runtime {

enum class ArrivalModel {
  kClosedLoop,  ///< backpressure-paced: submit() blocks on the full queue
  kPoisson,     ///< open-loop: exponential inter-arrivals, rejects counted
};

/// Parses "closed" | "poisson"; throws gaurast::Error otherwise.
ArrivalModel arrival_from_string(const std::string& name);
const char* to_string(ArrivalModel arrival);

enum class CameraPathKind {
  kOrbit,  ///< circle around the scene at fixed radius
  kDolly,  ///< push in / pull out along a fixed viewing direction
};

struct WorkloadConfig {
  std::uint64_t seed = 42;
  int jobs = 32;
  int width = 160;
  int height = 120;
  ArrivalModel arrival = ArrivalModel::kClosedLoop;
  double rate_hz = 120.0;  ///< offered load for ArrivalModel::kPoisson
  /// Gaussian counts of the scene classes traffic is drawn from; requests
  /// pick one uniformly, so repeated picks exercise the per-scene cache.
  std::vector<std::uint64_t> scene_sizes = {2000, 8000, 20000};
  /// Per-request deadline budget (ms), pinned at submit time; the worker
  /// sheds jobs whose budget expires in the queue (counted in
  /// ServiceStats::deadline_dropped). 0 = no deadline.
  int deadline_ms = 0;
};

/// One generated request, before scene resolution against a service.
struct WorkloadRequest {
  std::string scene_key;          ///< canonical key ("synthetic:<n>@<seed>")
  std::uint64_t gaussian_count = 0;
  std::uint64_t scene_seed = 0;   ///< generator seed for this scene class
  CameraPathKind path = CameraPathKind::kOrbit;
  scene::Camera camera;
  double arrival_offset_ms = 0.0; ///< from run start (0 under closed loop)
};

/// Deterministically expands a config into its request stream.
std::vector<WorkloadRequest> generate_workload(const WorkloadConfig& config);

struct WorkloadRunResult {
  ServiceStats stats;           ///< service snapshot after the run drained
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;   ///< Poisson arrivals shed on a full queue
};

/// Drives a service with the config's traffic: resolves each request's scene
/// through the service cache, submits under the arrival model, and drains.
WorkloadRunResult run_workload(RenderService& service,
                               const WorkloadConfig& config);

}  // namespace gaurast::runtime
