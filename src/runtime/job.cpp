#include "runtime/job.hpp"

#include "common/error.hpp"

namespace gaurast::runtime {

Backend backend_from_string(const std::string& name) {
  if (name == "sw") return Backend::kSoftware;
  if (name == "gaurast") return Backend::kGauRast;
  if (name == "gscore") return Backend::kGScore;
  throw Error("unknown backend '" + name + "' (expected sw|gaurast|gscore)");
}

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kSoftware: return "sw";
    case Backend::kGauRast: return "gaurast";
    case Backend::kGScore: return "gscore";
  }
  return "?";
}

JobResult RenderJob::execute() const {
  GAURAST_CHECK(request_.scene != nullptr);
  JobResult result;
  result.frame = renderer_->render(*request_.scene, request_.camera);
  result.job_id = request_.id;
  return result;
}

JobResult SimulateJob::execute() const {
  GAURAST_CHECK(request_.scene != nullptr);
  JobResult result;
  // Steps 1-2 on this worker (the "CUDA cores" of the collaborative split).
  result.frame = renderer_->prepare(*request_.scene, request_.camera);
  // Step 3 on the shared hardware model, consuming the sorted workload.
  const core::HwRasterResult hw = hw_->rasterize_gaussians(
      result.frame.splats, result.frame.workload, renderer_->config().blend);
  result.frame.image = hw.image;
  result.frame.raster_stats.pairs_evaluated = hw.pairs_evaluated;
  result.frame.raster_stats.pairs_blended = hw.pairs_blended;
  result.raster_model_ms = hw.runtime_ms();
  result.hw_utilization = hw.utilization();
  result.job_id = request_.id;
  return result;
}

}  // namespace gaurast::runtime
