#include "runtime/job.hpp"

#include "common/error.hpp"

namespace gaurast::runtime {

JobResult FrameJob::execute() const {
  GAURAST_CHECK(request_.scene != nullptr);
  JobResult result;
  engine::FrameOutput out =
      backend_->render(*request_.scene, request_.camera, options_);
  result.frame = std::move(out.frame);
  if (out.hw) {
    result.raster_model_ms = out.hw->raster_model_ms;
    result.hw_utilization = out.hw->utilization;
  }
  result.job_id = request_.id;
  return result;
}

}  // namespace gaurast::runtime
