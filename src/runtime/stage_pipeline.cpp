#include "runtime/stage_pipeline.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace gaurast::runtime {

namespace {

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             d)
      .count();
}

}  // namespace

const char* stage_name(int stage) {
  switch (stage) {
    case 0: return "preprocess";
    case 1: return "sort";
    case 2: return "raster";
  }
  return "?";
}

int StageWorkers::at(int stage) const {
  switch (stage) {
    case 0: return preprocess;
    case 1: return sort;
    case 2: return raster;
  }
  return 0;
}

StageWorkers stage_workers_from_string(const std::string& spec) {
  const auto malformed = [&spec]() -> Error {
    return Error("malformed stage-worker spec '" + spec +
                 "' (expected three comma-separated positive counts "
                 "preprocess,sort,raster — e.g. '1,1,2')");
  };
  int counts[kStageCount];
  std::istringstream is(spec);
  for (int stage = 0; stage < kStageCount; ++stage) {
    if (stage > 0) {
      char comma = 0;
      if (!(is >> comma) || comma != ',') throw malformed();
    }
    if (!(is >> counts[stage]) || counts[stage] < 1) throw malformed();
  }
  char trailing = 0;
  if (is >> trailing) throw malformed();
  return StageWorkers{counts[0], counts[1], counts[2]};
}

std::string to_string(const StageWorkers& workers) {
  return std::to_string(workers.preprocess) + "," +
         std::to_string(workers.sort) + "," + std::to_string(workers.raster);
}

/// One frame in flight. Travels between stages as a shared_ptr captured by
/// the stage tasks; the promise resolves (value or error) exactly once.
struct StagePipeline::Job {
  Job(RenderRequest request_in, engine::FrameOptions options_in,
      Clock::time_point enqueue_time_in)
      : request(std::move(request_in)),
        options(std::move(options_in)),
        enqueue_time(enqueue_time_in) {}

  RenderRequest request;
  engine::FrameOptions options;  ///< per-job copy carrying the precompute
  std::promise<JobResult> promise;
  pipeline::FrameResult frame;   ///< stage 0 fills, 1 extends, 2 consumes
  Clock::time_point enqueue_time;
  double stage_ms[kStageCount] = {0.0, 0.0, 0.0};
};

StagePipeline::StagePipeline(Config config,
                             const engine::RenderBackend& backend,
                             engine::FrameOptions options,
                             std::function<void(const JobResult&)> on_complete)
    : config_(config),
      backend_(&backend),
      options_(std::move(options)),
      on_complete_(std::move(on_complete)) {
  GAURAST_CHECK(config_.queue_capacity >= 1);
  for (int stage = 0; stage < kStageCount; ++stage) {
    GAURAST_CHECK(config_.workers.at(stage) >= 1);
    pools_[stage] = std::make_unique<ThreadPool>(ThreadPoolConfig{
        config_.workers.at(stage), config_.queue_capacity});
  }
}

StagePipeline::~StagePipeline() { shutdown(); }

std::future<JobResult> StagePipeline::submit(
    RenderRequest request,
    std::shared_ptr<const pipeline::ScenePrecompute> precompute,
    Clock::time_point enqueue_time) {
  GAURAST_CHECK(request.scene != nullptr);
  engine::FrameOptions options = options_;
  options.scene_precompute = std::move(precompute);
  auto job = std::make_shared<Job>(std::move(request), std::move(options),
                                   enqueue_time);
  std::future<JobResult> future = job->promise.get_future();
  // Sample the depth first, count only after the pool accepts (submit can
  // block on a full queue or throw after shutdown) — same order as
  // try_submit, so the enqueue counters never include refused intake.
  const std::size_t depth = pools_[0]->queue_depth();
  pools_[0]->submit([this, job] { run_stage(0, job); });
  note_enqueued(0, depth);
  return future;
}

std::optional<std::future<JobResult>> StagePipeline::try_submit(
    RenderRequest request,
    std::shared_ptr<const pipeline::ScenePrecompute> precompute,
    Clock::time_point enqueue_time) {
  GAURAST_CHECK(request.scene != nullptr);
  engine::FrameOptions options = options_;
  options.scene_precompute = std::move(precompute);
  auto job = std::make_shared<Job>(std::move(request), std::move(options),
                                   enqueue_time);
  std::future<JobResult> future = job->promise.get_future();
  const std::size_t depth = pools_[0]->queue_depth();
  if (!pools_[0]->try_submit([this, job] { run_stage(0, job); })) {
    return std::nullopt;
  }
  note_enqueued(0, depth);
  return future;
}

void StagePipeline::run_stage(int stage, const std::shared_ptr<Job>& job) {
  const Clock::time_point start = Clock::now();
  engine::FrameOutput output;
  try {
    switch (stage) {
      case 0:
        job->frame = backend_->stage_preprocess(*job->request.scene,
                                                job->request.camera,
                                                job->options);
        break;
      case 1:
        backend_->stage_sort(job->frame, job->options);
        break;
      case 2:
        output = backend_->stage_raster(std::move(job->frame), job->options);
        break;
    }
  } catch (...) {
    // A stage failure resolves the caller's future with the error; the job
    // leaves the pipeline here and never reaches the later stages.
    job->promise.set_exception(std::current_exception());
    return;
  }
  job->stage_ms[stage] = to_ms(Clock::now() - start);
  {
    common::MutexLock lock(stats_mutex_);
    ++counters_[static_cast<std::size_t>(stage)].completed;
    counters_[static_cast<std::size_t>(stage)].service_sum_ms +=
        job->stage_ms[stage];
  }
  if (stage + 1 < kStageCount) {
    forward(stage + 1, job);
  } else {
    finish(*job, std::move(output));
  }
}

void StagePipeline::forward(int stage, std::shared_ptr<Job> job) {
  const std::size_t depth = pools_[stage]->queue_depth();
  try {
    // Blocking submit: a full downstream queue parks this (upstream) worker
    // — the pipeline's backpressure. Only shutdown() ordering violations
    // could make this throw, and shutdown() drains front to back precisely
    // so it cannot; the catch is defense in depth for the caller's future.
    pools_[stage]->submit([this, stage, job] { run_stage(stage, job); });
  } catch (...) {
    job->promise.set_exception(std::current_exception());
    return;
  }
  note_enqueued(stage, depth);
}

void StagePipeline::note_enqueued(int stage, std::size_t depth) {
  common::MutexLock lock(stats_mutex_);
  StageCounters& counters = counters_[static_cast<std::size_t>(stage)];
  ++counters.enqueued;
  counters.queue_depth_sum += static_cast<double>(depth);
}

void StagePipeline::finish(Job& job, engine::FrameOutput output) {
  JobResult result;
  result.frame = std::move(output.frame);
  if (output.hw) {
    result.raster_model_ms = output.hw->raster_model_ms;
    result.hw_utilization = output.hw->utilization;
  }
  result.job_id = job.request.id;
  const Clock::time_point end = Clock::now();
  result.latency_ms = to_ms(end - job.enqueue_time);
  // In a pipeline "service" is time actually executing on some stage
  // worker; the remainder of the latency is time parked in stage queues.
  for (double ms : job.stage_ms) result.service_ms += ms;
  result.queue_wait_ms = result.latency_ms - result.service_ms;
  if (result.queue_wait_ms < 0.0) result.queue_wait_ms = 0.0;
  if (on_complete_) on_complete_(result);
  if (job.request.on_complete) job.request.on_complete(result);
  job.promise.set_value(std::move(result));
}

void StagePipeline::drain() {
  // Front to back: a stage is fed only by its predecessor's workers (a
  // worker blocked forwarding still counts as running), so once stage N
  // reports idle nothing new can enter stage N+1 from upstream.
  for (auto& pool : pools_) pool->wait_idle();
}

void StagePipeline::shutdown() {
  for (auto& pool : pools_) pool->shutdown();
}

std::size_t StagePipeline::entry_queue_depth() const {
  return pools_[0]->queue_depth();
}

double StagePipeline::busy_ms() const {
  // From the measured per-stage execution times, NOT ThreadPool::busy_ms():
  // a pool's task clock keeps running while an upstream worker is parked in
  // forward() on a full downstream queue, and utilization derived from that
  // would report a blocked stage as busy — exactly the signal an operator
  // apportioning stage workers must not see.
  common::MutexLock lock(stats_mutex_);
  double total = 0.0;
  for (const StageCounters& counters : counters_) {
    total += counters.service_sum_ms;
  }
  return total;
}

std::vector<StageSnapshot> StagePipeline::snapshots() const {
  std::vector<StageSnapshot> stages(kStageCount);
  common::MutexLock lock(stats_mutex_);
  for (int stage = 0; stage < kStageCount; ++stage) {
    StageSnapshot& s = stages[static_cast<std::size_t>(stage)];
    const StageCounters& c = counters_[static_cast<std::size_t>(stage)];
    s.name = stage_name(stage);
    s.workers = config_.workers.at(stage);
    s.completed = c.completed;
    if (c.completed > 0) {
      s.service_mean_ms = c.service_sum_ms / static_cast<double>(c.completed);
    }
    if (c.enqueued > 0) {
      s.mean_queue_depth =
          c.queue_depth_sum / static_cast<double>(c.enqueued);
    }
    s.busy_ms = c.service_sum_ms;
  }
  return stages;
}

}  // namespace gaurast::runtime
