#include "runtime/workload.hpp"

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "scene/store.hpp"

namespace gaurast::runtime {

namespace {

constexpr float kPi = 3.14159265358979323846f;
constexpr float kSceneRadius = 4.0f;  // GeneratorParams default

/// Camera on a circle around the cluster, matching the generator's default
/// evaluation viewpoint geometry (2.2x radius, slightly elevated).
scene::Camera orbit_camera(double angle, int width, int height) {
  const float r = 2.2f * kSceneRadius;
  const Vec3f eye{r * std::cos(static_cast<float>(angle)),
                  0.6f * kSceneRadius,
                  r * std::sin(static_cast<float>(angle))};
  return scene::Camera(width, height, 0.9f, eye,
                       Vec3f{0.0f, 0.3f * kSceneRadius, 0.0f});
}

/// Camera pushing in/out along a fixed direction: radius sweeps 1.5x-3.0x
/// of the scene radius, so near views are heavy (large splat footprints)
/// and far views light — the per-request load diversity a real viewer
/// session produces.
scene::Camera dolly_camera(double angle, double t, int width, int height) {
  const float r =
      kSceneRadius * (1.5f + 1.5f * static_cast<float>(t));
  const Vec3f eye{r * std::cos(static_cast<float>(angle)),
                  0.6f * kSceneRadius,
                  r * std::sin(static_cast<float>(angle))};
  return scene::Camera(width, height, 0.9f, eye,
                       Vec3f{0.0f, 0.3f * kSceneRadius, 0.0f});
}

}  // namespace

ArrivalModel arrival_from_string(const std::string& name) {
  if (name == "closed") return ArrivalModel::kClosedLoop;
  if (name == "poisson") return ArrivalModel::kPoisson;
  throw Error("unknown arrival model '" + name +
              "' (expected closed|poisson)");
}

const char* to_string(ArrivalModel arrival) {
  switch (arrival) {
    case ArrivalModel::kClosedLoop: return "closed";
    case ArrivalModel::kPoisson: return "poisson";
  }
  return "?";
}

std::vector<WorkloadRequest> generate_workload(const WorkloadConfig& config) {
  GAURAST_CHECK(config.jobs >= 1);
  GAURAST_CHECK(!config.scene_sizes.empty());
  GAURAST_CHECK(config.width > 0 && config.height > 0);
  GAURAST_CHECK(config.arrival != ArrivalModel::kPoisson ||
                config.rate_hz > 0.0);

  Pcg32 rng(config.seed);
  std::vector<WorkloadRequest> requests;
  requests.reserve(static_cast<std::size_t>(config.jobs));
  double arrival_ms = 0.0;
  for (int i = 0; i < config.jobs; ++i) {
    const std::uint64_t size = config.scene_sizes[rng.next_below(
        static_cast<std::uint32_t>(config.scene_sizes.size()))];
    // Per-class scene seed: a fixed function of (run seed, class size) so
    // every request for a class names the same scene (cache-friendly) while
    // different run seeds explore different scenes.
    const std::uint64_t scene_seed = SplitMix64(config.seed ^ size).next();
    const bool orbit = rng.uniform() < 0.5;
    const double angle = rng.uniform(0.0, 2.0 * kPi);
    const double t = rng.uniform();
    if (config.arrival == ArrivalModel::kPoisson) {
      arrival_ms += rng.exponential(config.rate_hz) * 1000.0;
    }
    requests.push_back(WorkloadRequest{
        scene::synthetic_scene_key(size, scene_seed),
        size,
        scene_seed,
        orbit ? CameraPathKind::kOrbit : CameraPathKind::kDolly,
        orbit ? orbit_camera(angle, config.width, config.height)
              : dolly_camera(angle, t, config.width, config.height),
        config.arrival == ArrivalModel::kPoisson ? arrival_ms : 0.0});
  }
  return requests;
}

WorkloadRunResult run_workload(RenderService& service,
                               const WorkloadConfig& config) {
  using Clock = std::chrono::steady_clock;
  const std::vector<WorkloadRequest> requests = generate_workload(config);

  WorkloadRunResult result;
  // Touch every scene class before the arrival clock starts: the first
  // load is session setup (a client's scene upload), not per-frame
  // traffic. The warmed pointers are dropped immediately rather than held
  // for the pass — holding them would pin every class at once and a
  // byte-budgeted scene store could never evict. Each request then
  // resolves through the store exactly like a served request does.
  for (const WorkloadRequest& req : requests) {
    (void)service.scene(req.scene_key);
  }

  std::vector<std::future<JobResult>> futures;
  futures.reserve(requests.size());
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const WorkloadRequest& req = requests[i];
    const ScenePtr shared = service.scene(req.scene_key);
    if (config.arrival == ArrivalModel::kPoisson) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          req.arrival_offset_ms)));
      RenderRequest request{shared, req.camera};
      if (config.deadline_ms > 0) {
        request.deadline =
            Clock::now() + std::chrono::milliseconds(config.deadline_ms);
      }
      if (auto future = service.try_submit(std::move(request))) {
        futures.push_back(std::move(*future));
        ++result.accepted;
      } else {
        ++result.rejected;
      }
    } else {
      RenderRequest request{shared, req.camera};
      if (config.deadline_ms > 0) {
        request.deadline =
            Clock::now() + std::chrono::milliseconds(config.deadline_ms);
      }
      futures.push_back(service.submit(std::move(request)));
      ++result.accepted;
    }
  }
  for (std::future<JobResult>& f : futures) f.get();
  service.drain();
  result.stats = service.stats();
  return result;
}

}  // namespace gaurast::runtime
