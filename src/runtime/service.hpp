// RenderService — the concurrent render-serving front end.
//
// Owns an executor (a monolithic ThreadPool or a stage-pipelined
// StagePipeline, per ServiceConfig::mode), a per-scene cache, and the
// shared (const, therefore thread-safe) engine::RenderBackend serving
// every job. Callers resolve a scene through the cache, submit()
// RenderRequests, and get futures back; the bounded queues provide
// backpressure (submit blocks, try_submit rejects). Every completion feeds
// the aggregated service statistics: throughput, p50/p95/p99 latency,
// queue wait, queue depth, worker utilization, and — under pipelined
// execution — the per-stage breakdown. These are the serving-side metrics
// the paper's FPS claims translate into under sustained multi-user
// traffic.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "engine/backend.hpp"
#include "engine/registry.hpp"
#include "runtime/job.hpp"
#include "runtime/stage_pipeline.hpp"
#include "runtime/thread_pool.hpp"
#include "scene/store.hpp"

namespace gaurast::runtime {

/// How the service turns a request into a finished frame.
enum class ExecutionMode {
  /// One pool worker runs all three stages of a job back to back — the
  /// classic request/handler shape; inter-frame parallelism only.
  kMonolithic,
  /// A StagePipeline runs each stage on its own bounded-queue pool, so
  /// stages of different frames overlap and workers are apportioned per
  /// stage. Requires a backend whose capabilities advertise
  /// supports_stage_pipeline; frames are bit-identical to monolithic.
  kPipelined,
};

/// Parses "monolithic" | "pipelined"; throws gaurast::Error otherwise.
ExecutionMode execution_mode_from_string(const std::string& name);
const char* to_string(ExecutionMode mode);

struct ServiceConfig {
  /// Pool size under ExecutionMode::kMonolithic (ignored when pipelined —
  /// stage_workers apportions the pipeline's workers instead).
  int workers = 1;
  ExecutionMode mode = ExecutionMode::kMonolithic;
  /// Per-stage worker apportionment under ExecutionMode::kPipelined; the
  /// service's total worker count is stage_workers.total().
  StageWorkers stage_workers;
  /// Request-queue bound (monolithic) or per-stage queue bound (pipelined).
  std::size_t queue_capacity = 64;
  /// Registry key resolved through engine::create() at service
  /// construction — any registered backend serves, built-in or not.
  std::string backend = "gaurast";
  /// Creation-time backend options (e.g. an external rasterizer config for
  /// backends whose capabilities accept one).
  engine::BackendOptions backend_options;
  /// Per-job pipeline settings. num_threads here is intra-frame (Step-2
  /// binning + Step-3 tile) parallelism on backends that support raster
  /// threads, multiplying with the worker-level inter-frame parallelism.
  /// `renderer.kernel` selects the Step-3 software kernel on backends whose
  /// capabilities advertise kernel selection; with the fast kernel, each
  /// pool worker reuses its thread-local pipeline::RasterScratch arena
  /// across jobs (workers are long-lived threads), so sustained serving
  /// performs no per-job SoA staging allocations after warm-up.
  pipeline::RendererConfig renderer;
  /// When set, served directly instead of resolving `backend` in the
  /// registry — for injecting a caller-constructed (e.g. test-double)
  /// backend.
  std::shared_ptr<const engine::RenderBackend> backend_instance;
  /// Resolves canonical scene keys for scene(); nullptr = a default
  /// scene::SyntheticSource (so "synthetic:<n>@<seed>" always serves).
  /// Inject a PlyDirectorySource, FunctionSource, or test double here.
  std::shared_ptr<const scene::SceneSource> scene_source;
  /// Scene-store accounted-byte budget (quantized payloads + precompute);
  /// 0 = unbounded. Over-budget residency triggers strict LRU eviction of
  /// unpinned scenes.
  std::size_t scene_budget_bytes = 0;
  /// Per-scene quantized-payload admission cap; 0 = none. Scenes over it
  /// are rejected with gaurast::Error, never materialized.
  std::size_t max_scene_bytes = 0;
};

/// Aggregated snapshot; all latencies in milliseconds.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< try_submit refusals (queue full)
  /// Accepted jobs whose deadline passed in the queue: shed by the worker
  /// before rendering (monolithic executor). Not counted in `completed` —
  /// the latency/throughput figures describe rendered frames only.
  std::uint64_t deadline_dropped = 0;

  double wall_ms = 0.0;  ///< first submit -> last completion (or now)
  double throughput_fps = 0.0;

  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double queue_wait_mean_ms = 0.0;
  double service_mean_ms = 0.0;

  double mean_queue_depth = 0.0;   ///< sampled at each submit
  double worker_utilization = 0.0; ///< busy time / (workers * wall)

  // Scene-store counters (scene::SceneStoreStats, surfaced per shard and
  // summed fleet-wide). hits/misses keep their historical names.
  std::uint64_t scene_cache_hits = 0;
  std::uint64_t scene_cache_misses = 0;
  std::uint64_t scene_evictions = 0;
  std::uint64_t scene_rejected = 0;
  std::uint64_t scene_resident_bytes = 0;
  std::uint64_t scene_peak_resident_bytes = 0;
  std::uint64_t scene_resident_count = 0;

  /// Per-stage breakdown (latency, queue depth, utilization) in stage
  /// order; empty under ExecutionMode::kMonolithic.
  std::vector<StageSnapshot> stages;
};

/// Renders the stats as an aligned two-column table (common/table idiom).
void print_service_stats(std::ostream& os, const ServiceStats& stats);

/// One flat JSON object ({"submitted":...,"latency_p99_ms":...}) so bench
/// and CLI reports are machine-readable and diffable across PRs.
std::string service_stats_json(const ServiceStats& stats);

class RenderService {
 public:
  explicit RenderService(ServiceConfig config);
  /// Drains in-flight work and stops the pool.
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  const ServiceConfig& config() const { return config_; }
  int worker_count() const;

  /// The backend every job is served through (registry-created from
  /// config().backend unless an instance was injected).
  const engine::RenderBackend& backend() const { return *backend_; }

  /// Resolves `key` through the scene store: a canonical scene key
  /// ("synthetic:<n>@<seed>", "ply:<path>", or whatever the injected
  /// SceneSource accepts), loaded single-flight on first request and
  /// served from the byte-budgeted cache afterwards. The returned pointer
  /// pins the scene against eviction for its lifetime. Throws
  /// gaurast::Error on resolution failure or admission rejection.
  ScenePtr scene(const std::string& key);

  /// The store every scene() call resolves through.
  const scene::SceneStore& scene_store() const { return store_; }

  /// Scenes currently resident in the store (eviction shrinks this).
  std::size_t cached_scene_count() const;

  /// Scenes whose camera-independent precompute the pipelined executor has
  /// built so far (one per distinct scene served; see
  /// pipeline::precompute_scene). Always 0 under monolithic execution.
  std::size_t cached_precompute_count() const;

  /// Schedules a request, blocking while the queue is full (closed-loop
  /// backpressure). Throws gaurast::Error after shutdown().
  std::future<JobResult> submit(RenderRequest request);

  /// Non-blocking submit; std::nullopt (and a `rejected` tick in the stats)
  /// when the queue is full — open-loop load shedding.
  std::optional<std::future<JobResult>> try_submit(RenderRequest request);

  /// Blocks until every accepted job has completed.
  void drain();

  /// Stops intake, drains accepted jobs, joins the workers. Idempotent.
  void shutdown();

  ServiceStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  JobResult execute(RenderRequest request, Clock::time_point enqueue_time);
  std::function<JobResult()> make_task(RenderRequest request);
  /// Assigns the request's job id (pipelined path; make_task does it for
  /// the monolithic one).
  void stamp_request(RenderRequest& request) GAURAST_EXCLUDES(stats_mutex_);
  /// Camera-independent per-scene state, computed on the first pipelined
  /// job for each distinct scene and shared by every later frame of it.
  std::shared_ptr<const pipeline::ScenePrecompute> precompute_for(
      const ScenePtr& scene) GAURAST_EXCLUDES(precompute_mutex_);
  std::size_t entry_queue_depth() const;
  void note_submitted(std::size_t queue_depth) GAURAST_EXCLUDES(stats_mutex_);
  void retract_submitted(std::size_t queue_depth)
      GAURAST_EXCLUDES(stats_mutex_);
  /// Rolls back a refused submission AND counts the rejection in one
  /// critical section, so a concurrent stats() snapshot never sees the
  /// retraction without the reject tick (or vice versa).
  void note_rejected(std::size_t queue_depth) GAURAST_EXCLUDES(stats_mutex_);
  void record_completion(const JobResult& result)
      GAURAST_EXCLUDES(stats_mutex_);
  void record_deadline_drop() GAURAST_EXCLUDES(stats_mutex_);

  ServiceConfig config_;
  std::shared_ptr<const engine::RenderBackend> backend_;
  engine::FrameOptions frame_options_;
  /// The byte-budgeted scene cache behind scene(); owns the hit/miss/
  /// eviction/residency counters surfaced in ServiceStats.
  scene::SceneStore store_;
  /// Exactly one executor exists, per config_.mode.
  std::unique_ptr<ThreadPool> pool_;          ///< monolithic
  std::unique_ptr<StagePipeline> pipeline_;   ///< pipelined

  mutable common::Mutex precompute_mutex_;
  /// Fallback precompute cache for scenes submitted directly (never
  /// resolved through the store — store scenes carry their precompute as
  /// an accounted attachment instead). Keyed by scene address; the weak
  /// pointer detects both expiry and address reuse, so a reloaded scene
  /// at a recycled address can never see a stale entry.
  std::map<const scene::GaussianScene*,
           std::pair<std::weak_ptr<const scene::GaussianScene>,
                     std::shared_ptr<const pipeline::ScenePrecompute>>>
      precompute_cache_ GAURAST_GUARDED_BY(precompute_mutex_);

  mutable common::Mutex stats_mutex_;
  std::uint64_t next_job_id_ GAURAST_GUARDED_BY(stats_mutex_) = 1;
  std::uint64_t submitted_ GAURAST_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t completed_ GAURAST_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t rejected_ GAURAST_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t deadline_dropped_ GAURAST_GUARDED_BY(stats_mutex_) = 0;
  double queue_depth_sum_ GAURAST_GUARDED_BY(stats_mutex_) = 0.0;
  double queue_wait_sum_ms_ GAURAST_GUARDED_BY(stats_mutex_) = 0.0;
  double service_sum_ms_ GAURAST_GUARDED_BY(stats_mutex_) = 0.0;
  std::vector<double> latencies_ms_ GAURAST_GUARDED_BY(stats_mutex_);
  std::optional<Clock::time_point> first_submit_
      GAURAST_GUARDED_BY(stats_mutex_);
  std::optional<Clock::time_point> last_completion_
      GAURAST_GUARDED_BY(stats_mutex_);
};

}  // namespace gaurast::runtime
