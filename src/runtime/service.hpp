// RenderService — the concurrent render-serving front end.
//
// Owns a ThreadPool, a per-scene cache, and the shared (const, therefore
// thread-safe) engine::RenderBackend serving every job. Callers resolve a
// scene
// through the cache, submit() RenderRequests, and get futures back; the
// bounded pool queue provides backpressure (submit blocks, try_submit
// rejects). Every completion feeds the aggregated service statistics:
// throughput, p50/p95/p99 latency, queue wait, queue depth, and worker
// utilization — the serving-side metrics the paper's FPS claims translate
// into under sustained multi-user traffic.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/registry.hpp"
#include "runtime/job.hpp"
#include "runtime/thread_pool.hpp"

namespace gaurast::runtime {

struct ServiceConfig {
  int workers = 1;
  std::size_t queue_capacity = 64;
  /// Registry key resolved through engine::create() at service
  /// construction — any registered backend serves, built-in or not.
  std::string backend = "gaurast";
  /// Creation-time backend options (e.g. an external rasterizer config for
  /// backends whose capabilities accept one).
  engine::BackendOptions backend_options;
  /// Per-job pipeline settings. num_threads here is intra-frame (Step-2
  /// binning + Step-3 tile) parallelism on backends that support raster
  /// threads, multiplying with the worker-level inter-frame parallelism.
  /// `renderer.kernel` selects the Step-3 software kernel on backends whose
  /// capabilities advertise kernel selection; with the fast kernel, each
  /// pool worker reuses its thread-local pipeline::RasterScratch arena
  /// across jobs (workers are long-lived threads), so sustained serving
  /// performs no per-job SoA staging allocations after warm-up.
  pipeline::RendererConfig renderer;
  /// When set, served directly instead of resolving `backend` in the
  /// registry — for injecting a caller-constructed (e.g. test-double)
  /// backend.
  std::shared_ptr<const engine::RenderBackend> backend_instance;
};

/// Aggregated snapshot; all latencies in milliseconds.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< try_submit refusals (queue full)

  double wall_ms = 0.0;  ///< first submit -> last completion (or now)
  double throughput_fps = 0.0;

  double latency_mean_ms = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double queue_wait_mean_ms = 0.0;
  double service_mean_ms = 0.0;

  double mean_queue_depth = 0.0;   ///< sampled at each submit
  double worker_utilization = 0.0; ///< busy time / (workers * wall)

  std::uint64_t scene_cache_hits = 0;
  std::uint64_t scene_cache_misses = 0;
};

/// Renders the stats as an aligned two-column table (common/table idiom).
void print_service_stats(std::ostream& os, const ServiceStats& stats);

/// One flat JSON object ({"submitted":...,"latency_p99_ms":...}) so bench
/// and CLI reports are machine-readable and diffable across PRs.
std::string service_stats_json(const ServiceStats& stats);

class RenderService {
 public:
  explicit RenderService(ServiceConfig config);
  /// Drains in-flight work and stops the pool.
  ~RenderService();

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  const ServiceConfig& config() const { return config_; }
  int worker_count() const { return pool_.worker_count(); }

  /// The backend every job is served through (registry-created from
  /// config().backend unless an instance was injected).
  const engine::RenderBackend& backend() const { return *backend_; }

  /// Returns the cached scene for `key`, invoking `loader` only on the
  /// first request for that key. Loading holds the cache lock, so identical
  /// concurrent requests load once (and other keys wait; scene loads are
  /// rare and front-loaded in practice).
  ScenePtr scene(const std::string& key,
                 const std::function<scene::GaussianScene()>& loader);
  std::size_t cached_scene_count() const;

  /// Schedules a request, blocking while the queue is full (closed-loop
  /// backpressure). Throws gaurast::Error after shutdown().
  std::future<JobResult> submit(RenderRequest request);

  /// Non-blocking submit; std::nullopt (and a `rejected` tick in the stats)
  /// when the queue is full — open-loop load shedding.
  std::optional<std::future<JobResult>> try_submit(RenderRequest request);

  /// Blocks until every accepted job has completed.
  void drain();

  /// Stops intake, drains accepted jobs, joins the workers. Idempotent.
  void shutdown();

  ServiceStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  JobResult execute(RenderRequest request, Clock::time_point enqueue_time);
  std::function<JobResult()> make_task(RenderRequest request);
  void note_submitted(std::size_t queue_depth);
  void retract_submitted(std::size_t queue_depth);
  void record_completion(const JobResult& result);

  ServiceConfig config_;
  std::shared_ptr<const engine::RenderBackend> backend_;
  engine::FrameOptions frame_options_;
  ThreadPool pool_;

  mutable std::mutex scene_mutex_;
  std::map<std::string, ScenePtr> scene_cache_;

  mutable std::mutex stats_mutex_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  double queue_depth_sum_ = 0.0;
  double queue_wait_sum_ms_ = 0.0;
  double service_sum_ms_ = 0.0;
  std::vector<double> latencies_ms_;
  std::optional<Clock::time_point> first_submit_;
  std::optional<Clock::time_point> last_completion_;
};

}  // namespace gaurast::runtime
