// Schedulable units of rendering work.
//
// A job wraps one frame's worth of the existing pipeline so the service can
// run it on a pooled worker and hand the caller a future. Two kinds mirror
// the repo's two execution paths:
//
//  * RenderJob   — all three pipeline steps in software on the worker
//                  (the reference renderer; backend "sw").
//  * SimulateJob — Steps 1-2 (prepare) in software on the worker, then the
//                  depth-sorted TileWorkload is handed to the GauRast
//                  hardware model for Step 3, exactly the paper's
//                  CUDA-collaborative split (backends "gaurast"/"gscore";
//                  the latter is the FP16 GSCore-throughput-matched config).
//
// Both paths are deterministic functions of the request: images are
// bit-identical no matter which worker runs the job or how many workers the
// service has.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/hw_rasterizer.hpp"
#include "pipeline/renderer.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::runtime {

/// Scenes are shared immutably between the cache and in-flight jobs; all
/// pipeline entry points take const references, so concurrent readers are
/// safe without copies.
using ScenePtr = std::shared_ptr<const scene::GaussianScene>;

/// Which Step-3 executor serves requests.
enum class Backend {
  kSoftware,  ///< reference CPU rasterizer (pipeline::rasterize)
  kGauRast,   ///< GauRast hardware model, paper's scaled 300-PE deployment
  kGScore,    ///< FP16 GauRast sized to GSCore's published throughput
};

/// Parses "sw" | "gaurast" | "gscore"; throws gaurast::Error otherwise.
Backend backend_from_string(const std::string& name);
const char* to_string(Backend backend);

/// One frame request: an immutable shared scene plus a camera.
struct RenderRequest {
  ScenePtr scene;
  scene::Camera camera;
  std::uint64_t id = 0;  ///< assigned by the service at submit time
};

/// What the caller's future resolves to.
struct JobResult {
  pipeline::FrameResult frame;  ///< image + workload + per-step stats

  /// Modeled Step-3 time on the hardware rasterizer (SimulateJob only;
  /// 0 for RenderJob, whose Step 3 ran in software).
  double raster_model_ms = 0.0;
  double hw_utilization = 0.0;  ///< PE utilization (SimulateJob only)

  std::uint64_t job_id = 0;
  double queue_wait_ms = 0.0;  ///< submit -> job start
  double service_ms = 0.0;     ///< job start -> job end
  double latency_ms = 0.0;     ///< submit -> job end
};

/// Software path: scene + camera -> FrameResult, all steps on the worker.
class RenderJob {
 public:
  RenderJob(const pipeline::GaussianRenderer& renderer, RenderRequest request)
      : renderer_(&renderer), request_(std::move(request)) {}

  JobResult execute() const;

 private:
  const pipeline::GaussianRenderer* renderer_;
  RenderRequest request_;
};

/// Collaborative path: prepare() on the CPU worker, Step 3 on the hardware
/// model. The HardwareRasterizer is const-shared across workers.
class SimulateJob {
 public:
  SimulateJob(const pipeline::GaussianRenderer& renderer,
              const core::HardwareRasterizer& hw, RenderRequest request)
      : renderer_(&renderer), hw_(&hw), request_(std::move(request)) {}

  JobResult execute() const;

 private:
  const pipeline::GaussianRenderer* renderer_;
  const core::HardwareRasterizer* hw_;
  RenderRequest request_;
};

}  // namespace gaurast::runtime
