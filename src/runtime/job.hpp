// Schedulable unit of rendering work.
//
// A FrameJob wraps one frame request against an engine::RenderBackend so
// the service can run it on a pooled worker and hand the caller a future.
// Which executor serves Step 3 — the reference software rasterizer, the
// GauRast hardware model, or any other registered operating point — is
// entirely the backend's concern; the job is the same shape for all of
// them. (The paper's CUDA-collaborative split lives inside the hardware
// backends: Steps 1-2 in software on the worker, the depth-sorted
// TileWorkload handed to the enhanced-rasterizer model for Step 3.)
//
// Jobs are deterministic functions of the request: images are bit-identical
// no matter which worker runs the job or how many workers the service has.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "engine/backend.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::runtime {

struct JobResult;

/// Scenes are shared immutably between the cache and in-flight jobs; all
/// backend entry points take const references, so concurrent readers are
/// safe without copies.
using ScenePtr = std::shared_ptr<const scene::GaussianScene>;

/// One frame request: an immutable shared scene plus a camera.
struct RenderRequest {
  RenderRequest(ScenePtr scene_in, scene::Camera camera_in)
      : scene(std::move(scene_in)), camera(std::move(camera_in)) {}

  ScenePtr scene;
  scene::Camera camera;
  std::uint64_t id = 0;  ///< assigned by the service at submit time

  /// Absolute completion deadline. A worker that dequeues the job after
  /// this instant sheds it instead of rendering: the result comes back with
  /// deadline_expired set (and no frame), on_complete still fires, and the
  /// drop is counted in ServiceStats. Unset = render unconditionally.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Optional completion hook, invoked on the worker that finishes the job
  /// (after the service records the completion, before the future
  /// resolves). This is the bridge event-driven callers use instead of
  /// blocking on the future — net::Server posts the result back onto its
  /// event loop from here. Must not throw.
  std::function<void(const JobResult&)> on_complete;
};

/// What the caller's future resolves to.
struct JobResult {
  pipeline::FrameResult frame;  ///< image + workload + per-step stats

  /// Modeled Step-3 time on the hardware rasterizer (hardware-model
  /// backends only; 0 when Step 3 ran in software).
  double raster_model_ms = 0.0;
  double hw_utilization = 0.0;  ///< PE utilization (hardware models only)

  std::uint64_t job_id = 0;
  double queue_wait_ms = 0.0;  ///< submit -> job start
  double service_ms = 0.0;     ///< job start -> job end
  double latency_ms = 0.0;     ///< submit -> job end

  /// The request's deadline had already passed when a worker dequeued it:
  /// the job was shed without rendering and `frame` is empty. Callers that
  /// bridge to the wire answer RenderStatus::kDeadlineExceeded.
  bool deadline_expired = false;
};

/// One frame through one backend. The backend is const-shared across
/// workers (engine::RenderBackend's thread-safety contract); the options
/// are held by value so a job never outlives a caller's temporary.
class FrameJob {
 public:
  FrameJob(const engine::RenderBackend& backend, engine::FrameOptions options,
           RenderRequest request)
      : backend_(&backend),
        options_(std::move(options)),
        request_(std::move(request)) {}

  JobResult execute() const;

 private:
  const engine::RenderBackend* backend_;
  engine::FrameOptions options_;
  RenderRequest request_;
};

}  // namespace gaurast::runtime
