#include "runtime/service.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/table.hpp"

namespace gaurast::runtime {

namespace {

double to_ms(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             d)
      .count();
}

/// Exact nearest-rank percentile over an ascending-sorted sample set. One
/// O(n log n) sort per stats() snapshot beats a histogram's binning error
/// for the p99 of a modest-sized run.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(sorted.size()) - 1.0,
      std::ceil(q * static_cast<double>(sorted.size())) - 1.0));
  return sorted[rank];
}

/// The backend every job runs through: the injected instance when the
/// caller supplied one, otherwise a registry creation of the named key.
std::shared_ptr<const engine::RenderBackend> resolve_backend(
    const ServiceConfig& cfg) {
  if (cfg.backend_instance) return cfg.backend_instance;
  return engine::create(cfg.backend, cfg.backend_options);
}

engine::FrameOptions frame_options_for(const ServiceConfig& cfg) {
  engine::FrameOptions options;
  options.pipeline = cfg.renderer;
  return options;
}

scene::SceneStoreConfig store_config_for(const ServiceConfig& cfg) {
  scene::SceneStoreConfig store;
  store.max_bytes = cfg.scene_budget_bytes;
  store.max_scene_bytes = cfg.max_scene_bytes;
  store.source = cfg.scene_source
                     ? cfg.scene_source
                     : std::make_shared<const scene::SyntheticSource>();
  return store;
}

/// Accounted bytes of a precompute attachment (its two per-Gaussian
/// arrays; the struct header is noise next to them).
std::size_t precompute_bytes(const pipeline::ScenePrecompute& p) {
  return p.cov3d.size() * sizeof(Mat3f) +
         p.raster_cutoff.size() * sizeof(float);
}

}  // namespace

ExecutionMode execution_mode_from_string(const std::string& name) {
  if (name == "monolithic") return ExecutionMode::kMonolithic;
  if (name == "pipelined") return ExecutionMode::kPipelined;
  throw Error("unknown execution mode '" + name +
              "' (expected monolithic|pipelined)");
}

const char* to_string(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kMonolithic: return "monolithic";
    case ExecutionMode::kPipelined: return "pipelined";
  }
  return "?";
}

RenderService::RenderService(ServiceConfig config)
    : config_(std::move(config)),
      backend_(resolve_backend(config_)),
      frame_options_(frame_options_for(config_)),
      store_(store_config_for(config_)) {
  if (config_.mode == ExecutionMode::kPipelined) {
    if (!backend_->capabilities().supports_stage_pipeline) {
      const std::vector<std::string> accepting =
          engine::registry().names_where([](const engine::Capabilities& c) {
            return c.supports_stage_pipeline;
          });
      throw Error("backend '" + backend_->name() +
                  "' does not support stage-pipelined execution; backends "
                  "that do: " +
                  engine::join_names(accepting));
    }
    pipeline_ = std::make_unique<StagePipeline>(
        StagePipeline::Config{config_.stage_workers, config_.queue_capacity},
        *backend_, frame_options_,
        [this](const JobResult& result) { record_completion(result); });
  } else {
    pool_ = std::make_unique<ThreadPool>(
        ThreadPoolConfig{config_.workers, config_.queue_capacity});
  }
}

RenderService::~RenderService() { shutdown(); }

int RenderService::worker_count() const {
  return pool_ ? pool_->worker_count() : pipeline_->worker_count();
}

ScenePtr RenderService::scene(const std::string& key) {
  return store_.acquire(key);
}

std::size_t RenderService::cached_scene_count() const {
  return store_.resident_scenes();
}

std::shared_ptr<const pipeline::ScenePrecompute> RenderService::precompute_for(
    const ScenePtr& scene) {
  // Store-resident scenes carry their precompute as an accounted
  // attachment: it is charged against the byte budget, evicted with its
  // entry, and reused across demote/re-dequantize cycles (valid because
  // dequantization is bit-stable).
  const float alpha_min = config_.renderer.blend.alpha_min;
  const auto build = [&scene, alpha_min](std::size_t& bytes) {
    auto built = std::make_shared<const pipeline::ScenePrecompute>(
        pipeline::precompute_scene(*scene, alpha_min));
    bytes = precompute_bytes(*built);
    return std::shared_ptr<const void>(built);
  };
  if (auto attached = store_.attachment(scene.get(), build)) {
    return std::static_pointer_cast<const pipeline::ScenePrecompute>(
        attached);
  }

  // Directly-injected scene (never acquired from the store): the fallback
  // cache. The weak key pins nothing, so a dropped scene's entry expires
  // — and an entry is only trusted if its weak pointer still resolves to
  // this exact scene, which makes address reuse after a reload a miss
  // instead of a stale precompute (the old cached_scene_count() /
  // precompute disagreement).
  common::MutexLock lock(precompute_mutex_);
  const auto it = precompute_cache_.find(scene.get());
  if (it != precompute_cache_.end()) {
    if (const auto live = it->second.first.lock(); live.get() == scene.get()) {
      return it->second.second;
    }
    precompute_cache_.erase(it);
  }
  // Sweep entries whose scene died so reload-heavy serving cannot grow
  // the map without bound.
  for (auto sweep = precompute_cache_.begin();
       sweep != precompute_cache_.end();) {
    if (sweep->second.first.expired()) {
      sweep = precompute_cache_.erase(sweep);
    } else {
      ++sweep;
    }
  }
  // Computed under the lock, like scene loads: first-touch work is rare and
  // front-loaded, and duplicating it for concurrent first requests would
  // cost more than making the second requester wait.
  auto precompute = std::make_shared<const pipeline::ScenePrecompute>(
      pipeline::precompute_scene(*scene, alpha_min));
  precompute_cache_.emplace(
      scene.get(),
      std::make_pair(std::weak_ptr<const scene::GaussianScene>(scene),
                     precompute));
  return precompute;
}

std::size_t RenderService::cached_precompute_count() const {
  std::size_t count = store_.attachment_count();
  common::MutexLock lock(precompute_mutex_);
  for (const auto& [addr, entry] : precompute_cache_) {
    if (!entry.first.expired()) ++count;
  }
  return count;
}

JobResult RenderService::execute(RenderRequest request,
                                 Clock::time_point enqueue_time) {
  // The request is consumed by the job; keep its completion hook alive so
  // it fires with the final timed result.
  auto on_complete = std::move(request.on_complete);
  request.on_complete = nullptr;
  const Clock::time_point start = Clock::now();
  if (request.deadline && start > *request.deadline) {
    // The deadline passed while the job sat in the queue: rendering now
    // would burn a worker on a frame nobody can use. Shed it — but the job
    // still completes its lifecycle (future resolves, on_complete fires),
    // so no accepted job is ever lost.
    JobResult result;
    result.job_id = request.id;
    result.deadline_expired = true;
    result.queue_wait_ms = to_ms(start - enqueue_time);
    result.latency_ms = result.queue_wait_ms;
    record_deadline_drop();
    if (on_complete) on_complete(result);
    return result;
  }
  JobResult result =
      FrameJob(*backend_, frame_options_, std::move(request)).execute();
  const Clock::time_point end = Clock::now();
  result.queue_wait_ms = to_ms(start - enqueue_time);
  result.service_ms = to_ms(end - start);
  result.latency_ms = to_ms(end - enqueue_time);
  record_completion(result);
  if (on_complete) on_complete(result);
  return result;
}

void RenderService::stamp_request(RenderRequest& request) {
  GAURAST_CHECK(request.scene != nullptr);
  common::MutexLock lock(stats_mutex_);
  request.id = next_job_id_++;
}

std::function<JobResult()> RenderService::make_task(RenderRequest request) {
  const Clock::time_point enqueue_time = Clock::now();
  stamp_request(request);
  return [this, request = std::move(request), enqueue_time]() mutable {
    return execute(std::move(request), enqueue_time);
  };
}

void RenderService::note_submitted(std::size_t queue_depth) {
  common::MutexLock lock(stats_mutex_);
  ++submitted_;
  queue_depth_sum_ += static_cast<double>(queue_depth);
  if (!first_submit_) first_submit_ = Clock::now();
}

void RenderService::retract_submitted(std::size_t queue_depth) {
  common::MutexLock lock(stats_mutex_);
  --submitted_;
  queue_depth_sum_ -= static_cast<double>(queue_depth);
}

void RenderService::note_rejected(std::size_t queue_depth) {
  common::MutexLock lock(stats_mutex_);
  --submitted_;
  queue_depth_sum_ -= static_cast<double>(queue_depth);
  ++rejected_;
}

void RenderService::record_completion(const JobResult& result) {
  common::MutexLock lock(stats_mutex_);
  ++completed_;
  queue_wait_sum_ms_ += result.queue_wait_ms;
  service_sum_ms_ += result.service_ms;
  latencies_ms_.push_back(result.latency_ms);
  last_completion_ = Clock::now();
}

void RenderService::record_deadline_drop() {
  common::MutexLock lock(stats_mutex_);
  // Not a completion: the latency samples and throughput describe rendered
  // frames only. The drop has its own counter.
  ++deadline_dropped_;
  last_completion_ = Clock::now();
}

std::size_t RenderService::entry_queue_depth() const {
  return pool_ ? pool_->queue_depth() : pipeline_->entry_queue_depth();
}

std::future<JobResult> RenderService::submit(RenderRequest request) {
  if (pipeline_) {
    const Clock::time_point enqueue_time = Clock::now();
    stamp_request(request);
    auto precompute = precompute_for(request.scene);
    const std::size_t depth = entry_queue_depth();
    note_submitted(depth);
    try {
      return pipeline_->submit(std::move(request), std::move(precompute),
                               enqueue_time);
    } catch (...) {
      retract_submitted(depth);
      throw;
    }
  }
  auto task = std::make_shared<std::packaged_task<JobResult()>>(
      make_task(std::move(request)));
  std::future<JobResult> future = task->get_future();
  // Count the submission before the pool can run it, so a snapshot never
  // shows more completions than submissions; roll back if intake refuses
  // (pool already shut down).
  const std::size_t depth = pool_->queue_depth();
  note_submitted(depth);
  try {
    pool_->submit([task] { (*task)(); });
  } catch (...) {
    retract_submitted(depth);
    throw;
  }
  return future;
}

std::optional<std::future<JobResult>> RenderService::try_submit(
    RenderRequest request) {
  if (pipeline_) {
    const Clock::time_point enqueue_time = Clock::now();
    stamp_request(request);
    auto precompute = precompute_for(request.scene);
    const std::size_t depth = entry_queue_depth();
    note_submitted(depth);
    auto future = pipeline_->try_submit(std::move(request),
                                        std::move(precompute), enqueue_time);
    if (!future) note_rejected(depth);
    return future;
  }
  auto task = std::make_shared<std::packaged_task<JobResult()>>(
      make_task(std::move(request)));
  std::future<JobResult> future = task->get_future();
  const std::size_t depth = pool_->queue_depth();
  note_submitted(depth);
  if (!pool_->try_submit([task] { (*task)(); })) {
    note_rejected(depth);
    return std::nullopt;
  }
  return future;
}

void RenderService::drain() {
  if (pipeline_) {
    pipeline_->drain();
  } else {
    pool_->wait_idle();
  }
  // Render pins released with the drained jobs; re-fit the scene budget so
  // an idle service is not left holding a transient overshoot.
  store_.trim();
}

void RenderService::shutdown() {
  if (pipeline_) {
    pipeline_->shutdown();
  } else {
    pool_->shutdown();
  }
}

ServiceStats RenderService::stats() const {
  ServiceStats s;
  std::vector<double> latencies;
  Clock::time_point window_begin{};
  Clock::time_point window_end{};
  bool have_window = false;
  {
    common::MutexLock lock(stats_mutex_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.deadline_dropped = deadline_dropped_;
    latencies = latencies_ms_;
    if (first_submit_) {
      window_begin = *first_submit_;
      window_end = last_completion_ ? *last_completion_ : Clock::now();
      have_window = true;
    }
    if (submitted_ > 0) {
      s.mean_queue_depth = queue_depth_sum_ / static_cast<double>(submitted_);
    }
    if (completed_ > 0) {
      s.queue_wait_mean_ms =
          queue_wait_sum_ms_ / static_cast<double>(completed_);
      s.service_mean_ms = service_sum_ms_ / static_cast<double>(completed_);
    }
  }
  const scene::SceneStoreStats store_stats = store_.stats();
  s.scene_cache_hits = store_stats.hits;
  s.scene_cache_misses = store_stats.misses;
  s.scene_evictions = store_stats.evictions;
  s.scene_rejected = store_stats.rejected;
  s.scene_resident_bytes = store_stats.resident_bytes;
  s.scene_peak_resident_bytes = store_stats.peak_resident_bytes;
  s.scene_resident_count = store_stats.resident_scenes;
  if (have_window) s.wall_ms = to_ms(window_end - window_begin);
  if (s.wall_ms > 0.0) {
    s.throughput_fps = static_cast<double>(s.completed) * 1000.0 / s.wall_ms;
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    std::sort(latencies.begin(), latencies.end());
    s.latency_mean_ms = sum / static_cast<double>(latencies.size());
    s.latency_max_ms = latencies.back();
    s.latency_p50_ms = percentile_sorted(latencies, 0.50);
    s.latency_p95_ms = percentile_sorted(latencies, 0.95);
    s.latency_p99_ms = percentile_sorted(latencies, 0.99);
  }
  const double busy_ms = pool_ ? pool_->busy_ms() : pipeline_->busy_ms();
  if (s.wall_ms > 0.0 && worker_count() > 0) {
    s.worker_utilization = std::min(
        1.0, busy_ms / (s.wall_ms * static_cast<double>(worker_count())));
  }
  if (pipeline_) {
    s.stages = pipeline_->snapshots();
    for (StageSnapshot& stage : s.stages) {
      if (s.wall_ms > 0.0 && stage.workers > 0) {
        stage.utilization = std::min(
            1.0, stage.busy_ms /
                     (s.wall_ms * static_cast<double>(stage.workers)));
      }
    }
  }
  return s;
}

void print_service_stats(std::ostream& os, const ServiceStats& stats) {
  TablePrinter table({"Metric", "Value"});
  table.add_row({"Jobs completed", std::to_string(stats.completed) + " / " +
                                       std::to_string(stats.submitted)});
  if (stats.rejected > 0) {
    table.add_row({"Jobs rejected", std::to_string(stats.rejected)});
  }
  if (stats.deadline_dropped > 0) {
    table.add_row(
        {"Deadline drops", std::to_string(stats.deadline_dropped)});
  }
  table.add_row({"Wall time", format_time_ms(stats.wall_ms)});
  table.add_row({"Throughput", format_fixed(stats.throughput_fps, 1) + " fps"});
  table.add_row({"Latency p50", format_time_ms(stats.latency_p50_ms)});
  table.add_row({"Latency p95", format_time_ms(stats.latency_p95_ms)});
  table.add_row({"Latency p99", format_time_ms(stats.latency_p99_ms)});
  table.add_row({"Latency mean/max", format_time_ms(stats.latency_mean_ms) +
                                         " / " +
                                         format_time_ms(stats.latency_max_ms)});
  table.add_row({"Queue wait mean", format_time_ms(stats.queue_wait_mean_ms)});
  table.add_row(
      {"Mean queue depth", format_fixed(stats.mean_queue_depth, 2)});
  table.add_row(
      {"Worker utilization", format_percent(stats.worker_utilization)});
  for (const StageSnapshot& stage : stats.stages) {
    table.add_row({"Stage " + stage.name,
                   std::to_string(stage.workers) + "w, " +
                       format_time_ms(stage.service_mean_ms) + " mean, q " +
                       format_fixed(stage.mean_queue_depth, 2) + ", " +
                       format_percent(stage.utilization)});
  }
  table.add_row({"Scene cache",
                 std::to_string(stats.scene_cache_hits) + " hits / " +
                     std::to_string(stats.scene_cache_misses) + " misses"});
  table.add_row({"Scene store",
                 std::to_string(stats.scene_resident_count) + " resident (" +
                     std::to_string(stats.scene_resident_bytes) + " B, peak " +
                     std::to_string(stats.scene_peak_resident_bytes) + " B), " +
                     std::to_string(stats.scene_evictions) + " evicted, " +
                     std::to_string(stats.scene_rejected) + " rejected"});
  table.print(os);
}

std::string service_stats_json(const ServiceStats& stats) {
  std::ostringstream os;
  os << "{\"submitted\":" << stats.submitted
     << ",\"completed\":" << stats.completed
     << ",\"rejected\":" << stats.rejected
     << ",\"deadline_dropped\":" << stats.deadline_dropped
     << ",\"wall_ms\":" << stats.wall_ms
     << ",\"throughput_fps\":" << stats.throughput_fps
     << ",\"latency_mean_ms\":" << stats.latency_mean_ms
     << ",\"latency_p50_ms\":" << stats.latency_p50_ms
     << ",\"latency_p95_ms\":" << stats.latency_p95_ms
     << ",\"latency_p99_ms\":" << stats.latency_p99_ms
     << ",\"latency_max_ms\":" << stats.latency_max_ms
     << ",\"queue_wait_mean_ms\":" << stats.queue_wait_mean_ms
     << ",\"service_mean_ms\":" << stats.service_mean_ms
     << ",\"mean_queue_depth\":" << stats.mean_queue_depth
     << ",\"worker_utilization\":" << stats.worker_utilization
     << ",\"scene_cache_hits\":" << stats.scene_cache_hits
     << ",\"scene_cache_misses\":" << stats.scene_cache_misses
     << ",\"scene_evictions\":" << stats.scene_evictions
     << ",\"scene_rejected\":" << stats.scene_rejected
     << ",\"scene_resident_bytes\":" << stats.scene_resident_bytes
     << ",\"scene_peak_resident_bytes\":" << stats.scene_peak_resident_bytes
     << ",\"scene_resident_count\":" << stats.scene_resident_count
     << ",\"stages\":[";
  for (std::size_t i = 0; i < stats.stages.size(); ++i) {
    const StageSnapshot& stage = stats.stages[i];
    os << (i ? "," : "") << "{\"name\":\"" << stage.name
       << "\",\"workers\":" << stage.workers
       << ",\"completed\":" << stage.completed
       << ",\"service_mean_ms\":" << stage.service_mean_ms
       << ",\"mean_queue_depth\":" << stage.mean_queue_depth
       << ",\"utilization\":" << stage.utilization << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace gaurast::runtime
