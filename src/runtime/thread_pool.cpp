#include "runtime/thread_pool.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace gaurast::runtime {

ThreadPool::ThreadPool(ThreadPoolConfig config) : config_(config) {
  GAURAST_CHECK(config_.workers >= 1);
  GAURAST_CHECK(config_.queue_capacity >= 1);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  common::MutexLock lock(mutex_);
  // Explicit predicate loops (not wait(lock, pred)) throughout: the thread
  // safety analysis sees these guarded reads under the lock held here,
  // whereas a predicate lambda is analyzed as an unlocked function.
  while (!shutdown_ && queue_.size() >= config_.queue_capacity) {
    queue_not_full_.wait(lock);
  }
  if (shutdown_) {
    throw Error("ThreadPool::submit after shutdown");
  }
  queue_.push_back(std::move(task));
  queue_not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  common::MutexLock lock(mutex_);
  if (shutdown_ || queue_.size() >= config_.queue_capacity) return false;
  queue_.push_back(std::move(task));
  queue_not_empty_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  common::MutexLock lock(mutex_);
  while (!queue_.empty() || running_tasks_ != 0) {
    all_idle_.wait(lock);
  }
}

void ThreadPool::shutdown() {
  {
    common::MutexLock lock(mutex_);
    if (shutdown_) {
      // Another caller is joining the workers; wait for it so shutdown()
      // returning always means the pool is fully stopped.
      while (!joined_) all_idle_.wait(lock);
      return;
    }
    shutdown_ = true;
    queue_not_empty_.notify_all();
    queue_not_full_.notify_all();
  }
  // Join outside the lock: draining workers still need it to pop tasks.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  common::MutexLock lock(mutex_);
  joined_ = true;
  all_idle_.notify_all();
}

std::size_t ThreadPool::queue_depth() const {
  common::MutexLock lock(mutex_);
  return queue_.size();
}

std::uint64_t ThreadPool::tasks_executed() const {
  common::MutexLock lock(mutex_);
  return tasks_executed_;
}

std::uint64_t ThreadPool::tasks_failed() const {
  common::MutexLock lock(mutex_);
  return tasks_failed_;
}

double ThreadPool::busy_ms() const {
  common::MutexLock lock(mutex_);
  return static_cast<double>(busy_ns_) * 1e-6;
}

void ThreadPool::note_task_done(bool failed, std::uint64_t elapsed_ns) {
  --running_tasks_;
  ++tasks_executed_;
  tasks_failed_ += failed ? 1 : 0;
  busy_ns_ += elapsed_ns;
  if (queue_.empty() && running_tasks_ == 0) all_idle_.notify_all();
}

void ThreadPool::worker_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) {
        queue_not_empty_.wait(lock);
      }
      // Graceful drain: exit only once the queue is empty, so every task
      // accepted before shutdown still runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_tasks_;
      queue_not_full_.notify_one();
    }
    const Clock::time_point start = Clock::now();
    bool failed = false;
    try {
      task();
    } catch (...) {
      // A task that throws must not take the worker (and the process, via
      // std::terminate) down with it. Futures propagate job errors; a raw
      // submitted lambda that throws is counted and otherwise dropped.
      failed = true;
    }
    const Clock::time_point end = Clock::now();
    {
      common::MutexLock lock(mutex_);
      note_task_done(failed,
                     static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             end - start)
                             .count()));
    }
  }
}

}  // namespace gaurast::runtime
