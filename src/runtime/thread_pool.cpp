#include "runtime/thread_pool.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace gaurast::runtime {

ThreadPool::ThreadPool(ThreadPoolConfig config) : config_(config) {
  GAURAST_CHECK(config_.workers >= 1);
  GAURAST_CHECK(config_.queue_capacity >= 1);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_not_full_.wait(lock, [this] {
    return shutdown_ || queue_.size() < config_.queue_capacity;
  });
  if (shutdown_) {
    throw Error("ThreadPool::submit after shutdown");
  }
  queue_.push_back(std::move(task));
  queue_not_empty_.notify_one();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_ || queue_.size() >= config_.queue_capacity) return false;
  queue_.push_back(std::move(task));
  queue_not_empty_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && running_tasks_ == 0; });
}

void ThreadPool::shutdown() {
  bool closer = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!shutdown_) {
      shutdown_ = true;
      closer = true;
      queue_not_empty_.notify_all();
      queue_not_full_.notify_all();
    } else if (!joined_) {
      // Another caller is joining the workers; wait for it so shutdown()
      // returning always means the pool is fully stopped.
      all_idle_.wait(lock, [this] { return joined_; });
      return;
    } else {
      return;
    }
  }
  if (closer) {
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    joined_ = true;
    all_idle_.notify_all();
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

std::uint64_t ThreadPool::tasks_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_failed_;
}

double ThreadPool::busy_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(busy_ns_) * 1e-6;
}

void ThreadPool::worker_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return shutdown_ || !queue_.empty(); });
      // Graceful drain: exit only once the queue is empty, so every task
      // accepted before shutdown still runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_tasks_;
      queue_not_full_.notify_one();
    }
    const Clock::time_point start = Clock::now();
    bool failed = false;
    try {
      task();
    } catch (...) {
      // A task that throws must not take the worker (and the process, via
      // std::terminate) down with it. Futures propagate job errors; a raw
      // submitted lambda that throws is counted and otherwise dropped.
      failed = true;
    }
    const Clock::time_point end = Clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_tasks_;
      ++tasks_executed_;
      tasks_failed_ += failed ? 1 : 0;
      busy_ns_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count());
      if (queue_.empty() && running_tasks_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace gaurast::runtime
