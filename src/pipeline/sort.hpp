// Step 2 of the 3DGS pipeline (paper Fig. 3(c)): tile duplication and
// depth sorting.
//
// Each splat is duplicated once per 16x16 screen tile its 3-sigma bounding
// box overlaps; instances are keyed (tile_id << 32) | float_bits(depth) and
// radix-sorted, yielding per-tile, front-to-back splat lists — exactly the
// structure the reference CUDA implementation builds with its device-wide
// sort, and the structure GauRast's tile buffers are filled from.
#pragma once

#include <cstdint>
#include <vector>

#include "pipeline/preprocess.hpp"

namespace gaurast::pipeline {

/// Screen tiling parameters. 16x16 matches the reference implementation and
/// the paper's tile-buffer granularity.
struct TileGrid {
  int tile_size = 16;
  int width = 0;   ///< image width, pixels
  int height = 0;  ///< image height, pixels

  int tiles_x() const { return (width + tile_size - 1) / tile_size; }
  int tiles_y() const { return (height + tile_size - 1) / tile_size; }
  std::uint32_t tile_count() const {
    return static_cast<std::uint32_t>(tiles_x()) *
           static_cast<std::uint32_t>(tiles_y());
  }
};

/// One duplicated splat instance: which splat, in which tile, at what depth.
struct TileInstance {
  std::uint64_t key = 0;        ///< (tile << 32) | depth bits
  std::uint32_t splat_index = 0;

  std::uint32_t tile() const { return static_cast<std::uint32_t>(key >> 32); }
};

/// Contiguous range of sorted instances belonging to one tile.
struct TileRange {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t size() const { return end - begin; }
};

/// The sorted work structure consumed by Step 3 (software or hardware).
struct TileWorkload {
  TileGrid grid;
  std::vector<TileInstance> instances;  ///< sorted by key
  std::vector<TileRange> ranges;        ///< one per tile

  std::uint64_t instance_count() const { return instances.size(); }
};

struct SortStats {
  std::uint64_t splats_in = 0;
  std::uint64_t instances = 0;     ///< after duplication
  double instances_per_splat = 0;  ///< duplication factor
};

/// How a splat's tile footprint is computed during duplication.
///
/// kBoundingBox is the reference implementation's behaviour: a square of
/// side 2*radius (3 sigma of the major axis) around the mean. kTightEllipse
/// replaces it with the axis-aligned extent of the region where alpha can
/// reach alpha_min — still strictly conservative (never drops a contributing
/// pixel, so images are unchanged) but much tighter for anisotropic or faint
/// splats. This is the shape-aware culling idea dedicated accelerators like
/// GSCore implement in hardware; here it is a Step-2 software refinement the
/// paper lists as orthogonal future work.
enum class CullingMode {
  kBoundingBox,
  kTightEllipse,
};

/// Order-preserving key for a positive depth: monotone in depth. Depth
/// validity (>= 0, not NaN) is checked once per workload build by
/// validate_splat_depths(), not per call — this is hot-loop code, so it
/// carries only a debug assert.
std::uint32_t depth_key_bits(float depth);

/// One-time validation at workload build: every splat depth must be
/// non-negative (and not NaN) for depth_key_bits' bit-pattern ordering to
/// hold. Throws gaurast::Error naming the first offending splat index.
/// Called by duplicate_to_tiles/sort_splats before any key is built.
void validate_splat_depths(const std::vector<Splat2D>& splats);

/// Builds tile instances for all splats (duplication step).
std::vector<TileInstance> duplicate_to_tiles(
    const std::vector<Splat2D>& splats, const TileGrid& grid,
    CullingMode mode = CullingMode::kBoundingBox, float alpha_min = 1.0f / 255.0f);

/// Axis-aligned half-extents (rx, ry) of the region where this splat's
/// alpha can reach `alpha_min`; used by kTightEllipse. Returns false when
/// the splat can never reach alpha_min (fully culled).
bool tight_splat_extent(const Splat2D& splat, float alpha_min, float& rx,
                        float& ry);

/// Stable LSD radix sort on the full 64-bit key (8 passes of 8 bits).
void radix_sort_instances(std::vector<TileInstance>& instances);

/// Runs duplication + sort + range identification.
///
/// num_threads == 1 is the serial reference path (global radix sort over
/// the full 64-bit key). num_threads > 1 switches to parallel binning:
/// each thread duplicates a contiguous splat chunk and histograms it per
/// tile, a merge turns the histograms into exact per-tile write offsets
/// (which double as the final TileRanges), threads scatter their instances
/// straight into tile buckets, and each tile's bucket is depth-sorted with
/// a stable per-tile counting sort over the 32 depth-key bits. The result
/// is bit-identical to the serial path — same instances, same ranges, same
/// per-tile depth order — for any thread count (enforced by
/// raster_fast_test).
TileWorkload sort_splats(const std::vector<Splat2D>& splats,
                         const TileGrid& grid, SortStats* stats = nullptr,
                         CullingMode mode = CullingMode::kBoundingBox,
                         float alpha_min = 1.0f / 255.0f, int num_threads = 1);

}  // namespace gaurast::pipeline
