#include "pipeline/rasterize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "gsmath/conic.hpp"
#include "gsmath/fastmath.hpp"

namespace gaurast::pipeline {

const char* to_string(RasterKernel kernel) {
  return kernel == RasterKernel::kFast ? "fast" : "reference";
}

RasterKernel raster_kernel_from_string(const std::string& name) {
  if (name == "reference") return RasterKernel::kReference;
  if (name == "fast") return RasterKernel::kFast;
  throw Error("unknown raster kernel '" + name +
              "'; expected 'reference' or 'fast'");
}

float eval_splat_alpha(const Splat2D& splat, Vec2f pixel,
                       const BlendParams& params) {
  const Vec2f d = pixel - splat.mean;
  const float power = gaussian_power(splat.conic, d);
  if (power > 0.0f) return 0.0f;
  const float alpha = splat.opacity * std::exp(power);
  return std::min(params.alpha_max, alpha);
}

bool accumulate(PixelBlendState& state, float alpha, Vec3f color,
                const BlendParams& params) {
  if (alpha < params.alpha_min) return false;
  state.accumulated += color * (alpha * state.transmittance);
  state.transmittance *= (1.0f - alpha);
  return true;
}

namespace {

/// Rasterizes tiles [tile_begin, tile_end) into `image`, accumulating stats
/// into `*stats` when kCollectStats. Tiles write disjoint pixels, so
/// concurrent workers are safe. Templating hoists the stats bookkeeping out
/// of the stats-off instantiation entirely — when the caller passed no
/// RasterStats, the inner loop carries zero accounting overhead.
template <bool kCollectStats>
void rasterize_tile_span(const std::vector<Splat2D>& splats,
                         const TileWorkload& work, const BlendParams& params,
                         std::uint32_t tile_begin, std::uint32_t tile_end,
                         Image& image, RasterStats* stats) {
  const TileGrid& grid = work.grid;
  const int tiles_x = grid.tiles_x();
  for (std::uint32_t tile_id = tile_begin; tile_id < tile_end; ++tile_id) {
    const TileRange range = work.ranges[tile_id];
    if (range.size() == 0) continue;
    const int tx = static_cast<int>(tile_id) % tiles_x;
    const int ty = static_cast<int>(tile_id) / tiles_x;
    const int px0 = tx * grid.tile_size;
    const int py0 = ty * grid.tile_size;
    const int px1 = std::min(px0 + grid.tile_size, grid.width);
    const int py1 = std::min(py0 + grid.tile_size, grid.height);

    // Reference-kernel iteration order: each pixel walks the depth-sorted
    // splat list until its transmittance crosses the threshold.
    for (int py = py0; py < py1; ++py) {
      for (int px = px0; px < px1; ++px) {
        PixelBlendState st;
        const Vec2f pixel{static_cast<float>(px) + 0.5f,
                          static_cast<float>(py) + 0.5f};
        for (std::uint32_t i = range.begin; i < range.end; ++i) {
          if (st.transmittance < params.transmittance_min) {
            if constexpr (kCollectStats) ++stats->pixels_terminated;
            break;
          }
          const Splat2D& sp = splats[work.instances[i].splat_index];
          if constexpr (kCollectStats) {
            ++stats->pairs_evaluated;
            ++stats->pairs_per_tile[tile_id];
          }
          const float alpha = eval_splat_alpha(sp, pixel, params);
          if (accumulate(st, alpha, sp.color, params)) {
            if constexpr (kCollectStats) ++stats->pairs_blended;
          }
        }
        image.at(px, py) =
            st.accumulated + params.background * st.transmittance;
      }
    }
  }
}

}  // namespace

namespace detail {

void raster_span_reference(const std::vector<Splat2D>& splats,
                           const TileWorkload& work, const BlendParams& params,
                           std::uint32_t tile_begin, std::uint32_t tile_end,
                           Image& image, RasterStats* stats) {
  if (stats) {
    rasterize_tile_span<true>(splats, work, params, tile_begin, tile_end,
                              image, stats);
  } else {
    rasterize_tile_span<false>(splats, work, params, tile_begin, tile_end,
                               image, nullptr);
  }
}

}  // namespace detail

Image rasterize(const std::vector<Splat2D>& splats, const TileWorkload& work,
                const BlendParams& params, RasterStats* stats, int num_threads,
                RasterKernel kernel, const ScenePrecompute* precompute) {
  Image image(work.grid.width, work.grid.height);
  rasterize_into(image, splats, work, params, stats, num_threads, kernel,
                 precompute);
  return image;
}

void rasterize_into(Image& image, const std::vector<Splat2D>& splats,
                    const TileWorkload& work, const BlendParams& params,
                    RasterStats* stats, int num_threads, RasterKernel kernel,
                    const ScenePrecompute* precompute) {
  GAURAST_CHECK(num_threads >= 1);
  const TileGrid& grid = work.grid;
  GAURAST_CHECK(image.width() == grid.width && image.height() == grid.height);
  for (Vec3f& pixel : image.pixels()) pixel = params.background;
  const std::uint32_t tiles = grid.tile_count();

  // The fast kernel's exp()-skip bound depends only on frame-constant
  // inputs (alpha_min, opacity), so compute it once per splat here rather
  // than per duplicated tile instance during staging — or, when the caller
  // supplies a matching per-scene precompute, gather the values it already
  // holds (identical floats: same alpha_cutoff_power of the same inputs).
  std::vector<float> cutoffs;
  if (kernel == RasterKernel::kFast) {
    const bool reuse = precompute != nullptr &&
                       precompute->cutoff_alpha_min == params.alpha_min &&
                       !precompute->raster_cutoff.empty();
    cutoffs.resize(splats.size());
    for (std::size_t i = 0; i < splats.size(); ++i) {
      cutoffs[i] =
          reuse ? precompute->raster_cutoff[splats[i].source_id]
                : alpha_cutoff_power(params.alpha_min, splats[i].opacity);
    }
  }
  const auto span = [&](std::uint32_t begin, std::uint32_t end,
                        RasterStats* local) {
    if (kernel == RasterKernel::kFast) {
      detail::raster_span_fast(splats, work, params, cutoffs.data(), begin,
                               end, image, local);
    } else {
      detail::raster_span_reference(splats, work, params, begin, end, image,
                                    local);
    }
  };

  if (num_threads == 1 || tiles < 2) {
    if (stats) {
      RasterStats local;
      local.pairs_per_tile.assign(tiles, 0);
      span(0, tiles, &local);
      *stats = std::move(local);
    } else {
      span(0, tiles, nullptr);
    }
    return;
  }

  const auto workers = static_cast<std::uint32_t>(
      std::min<std::uint32_t>(static_cast<std::uint32_t>(num_threads), tiles));
  std::vector<RasterStats> per_thread(stats ? workers : 0);
  for (auto& st : per_thread) st.pairs_per_tile.assign(tiles, 0);
  common::parallel_for_workers(workers, [&](std::size_t w) {
    const auto worker = static_cast<std::uint32_t>(w);
    const std::uint32_t begin = tiles * worker / workers;
    const std::uint32_t end = tiles * (worker + 1) / workers;
    span(begin, end, stats ? &per_thread[worker] : nullptr);
  });

  if (stats) {
    RasterStats merged;
    merged.pairs_per_tile.assign(tiles, 0);
    for (const RasterStats& st : per_thread) {
      merged.pairs_evaluated += st.pairs_evaluated;
      merged.pairs_blended += st.pairs_blended;
      merged.pixels_terminated += st.pixels_terminated;
      for (std::uint32_t t = 0; t < tiles; ++t) {
        merged.pairs_per_tile[t] += st.pairs_per_tile[t];
      }
    }
    *stats = std::move(merged);
  }
}

}  // namespace gaurast::pipeline
