#include "pipeline/rasterize.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "gsmath/conic.hpp"

namespace gaurast::pipeline {

float eval_splat_alpha(const Splat2D& splat, Vec2f pixel,
                       const BlendParams& params) {
  const Vec2f d = pixel - splat.mean;
  const float power = gaussian_power(splat.conic, d);
  if (power > 0.0f) return 0.0f;
  const float alpha = splat.opacity * std::exp(power);
  return std::min(params.alpha_max, alpha);
}

bool accumulate(PixelBlendState& state, float alpha, Vec3f color,
                const BlendParams& params) {
  if (alpha < params.alpha_min) return false;
  state.accumulated += color * (alpha * state.transmittance);
  state.transmittance *= (1.0f - alpha);
  return true;
}

namespace {

/// Rasterizes tiles [tile_begin, tile_end) into `image`, accumulating stats
/// into `local`. Tiles write disjoint pixels, so concurrent workers are safe.
void rasterize_tile_span(const std::vector<Splat2D>& splats,
                         const TileWorkload& work, const BlendParams& params,
                         std::uint32_t tile_begin, std::uint32_t tile_end,
                         Image& image, RasterStats& local) {
  const TileGrid& grid = work.grid;
  const int tiles_x = grid.tiles_x();
  for (std::uint32_t tile_id = tile_begin; tile_id < tile_end; ++tile_id) {
    const TileRange range = work.ranges[tile_id];
    if (range.size() == 0) continue;
    const int tx = static_cast<int>(tile_id) % tiles_x;
    const int ty = static_cast<int>(tile_id) / tiles_x;
    const int px0 = tx * grid.tile_size;
    const int py0 = ty * grid.tile_size;
    const int px1 = std::min(px0 + grid.tile_size, grid.width);
    const int py1 = std::min(py0 + grid.tile_size, grid.height);

    // Reference-kernel iteration order: each pixel walks the depth-sorted
    // splat list until its transmittance crosses the threshold.
    for (int py = py0; py < py1; ++py) {
      for (int px = px0; px < px1; ++px) {
        PixelBlendState st;
        const Vec2f pixel{static_cast<float>(px) + 0.5f,
                          static_cast<float>(py) + 0.5f};
        for (std::uint32_t i = range.begin; i < range.end; ++i) {
          if (st.transmittance < params.transmittance_min) {
            ++local.pixels_terminated;
            break;
          }
          const Splat2D& sp = splats[work.instances[i].splat_index];
          ++local.pairs_evaluated;
          ++local.pairs_per_tile[tile_id];
          const float alpha = eval_splat_alpha(sp, pixel, params);
          if (accumulate(st, alpha, sp.color, params)) {
            ++local.pairs_blended;
          }
        }
        image.at(px, py) =
            st.accumulated + params.background * st.transmittance;
      }
    }
  }
}

}  // namespace

Image rasterize(const std::vector<Splat2D>& splats, const TileWorkload& work,
                const BlendParams& params, RasterStats* stats,
                int num_threads) {
  GAURAST_CHECK(num_threads >= 1);
  const TileGrid& grid = work.grid;
  Image image(grid.width, grid.height, params.background);
  const std::uint32_t tiles = grid.tile_count();

  if (num_threads == 1 || tiles < 2) {
    RasterStats local;
    local.pairs_per_tile.assign(tiles, 0);
    rasterize_tile_span(splats, work, params, 0, tiles, image, local);
    if (stats) *stats = std::move(local);
    return image;
  }

  const auto workers = static_cast<std::uint32_t>(
      std::min<std::uint32_t>(static_cast<std::uint32_t>(num_threads), tiles));
  std::vector<RasterStats> per_thread(workers);
  for (auto& st : per_thread) st.pairs_per_tile.assign(tiles, 0);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    const std::uint32_t begin = tiles * w / workers;
    const std::uint32_t end = tiles * (w + 1) / workers;
    threads.emplace_back([&, w, begin, end] {
      rasterize_tile_span(splats, work, params, begin, end, image,
                          per_thread[w]);
    });
  }
  for (auto& t : threads) t.join();

  if (stats) {
    RasterStats merged;
    merged.pairs_per_tile.assign(tiles, 0);
    for (const RasterStats& st : per_thread) {
      merged.pairs_evaluated += st.pairs_evaluated;
      merged.pairs_blended += st.pairs_blended;
      merged.pixels_terminated += st.pixels_terminated;
      for (std::uint32_t t = 0; t < tiles; ++t) {
        merged.pairs_per_tile[t] += st.pairs_per_tile[t];
      }
    }
    *stats = std::move(merged);
  }
  return image;
}

}  // namespace gaurast::pipeline
