// Step 1 of the 3DGS pipeline (paper Fig. 3(b)): frustum culling, EWA
// projection of each 3D Gaussian to a 2D screen-space splat, SH-to-RGB color
// conversion along the view ray, and depth computation.
#pragma once

#include <cstdint>
#include <vector>

#include "gsmath/conic.hpp"
#include "gsmath/vec.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::pipeline {

/// A projected 2D Gaussian — the primitive Step 3 rasterizes. The per-pixel
/// datapath consumes exactly 9 FP values (conic a/b/c, mean x/y, opacity,
/// color r/g/b), matching the paper's Table II input width; depth feeds the
/// Step 2 sort only.
struct Splat2D {
  Vec2f mean;           ///< screen-space center, pixels
  Conic2 conic;         ///< inverse 2D covariance
  float opacity = 0.0f;
  Vec3f color;          ///< RGB from SH evaluation
  float depth = 0.0f;   ///< view-space depth (sort key)
  float radius = 0.0f;  ///< conservative 3-sigma pixel radius
  std::uint32_t source_id = 0;  ///< index into the source scene
};

struct PreprocessStats {
  std::uint64_t gaussians_in = 0;
  std::uint64_t culled_frustum = 0;    ///< behind near plane / out of view
  std::uint64_t culled_degenerate = 0; ///< singular projected covariance
  std::uint64_t splats_out = 0;
};

/// Camera-independent per-scene state, shared across every frame of one
/// scene: the 3D covariance of each Gaussian (rotation/scale never change
/// between frames, so recomputing covariance3d per frame is pure waste when
/// the same scene serves many cameras) and the fast raster kernel's
/// exp()-skip cutoff (a pure function of opacity and the blend threshold).
/// Built once by precompute_scene() and shared immutably across frames;
/// rendering with a precompute is bit-identical to rendering without one —
/// the same arithmetic runs, just earlier and once.
struct ScenePrecompute {
  std::vector<Mat3f> cov3d;  ///< one per scene Gaussian, in scene order
  /// gsmath::alpha_cutoff_power(cutoff_alpha_min, opacity) per Gaussian;
  /// consumers index it by Splat2D::source_id and must check that their
  /// blend threshold matches cutoff_alpha_min (falling back to the inline
  /// computation otherwise — never a wrong value, only a missed reuse).
  std::vector<float> raster_cutoff;
  float cutoff_alpha_min = 0.0f;
};

/// Computes the camera-independent per-scene state above; `alpha_min` is
/// the blend threshold raster_cutoff is built for (BlendParams::alpha_min
/// of the configuration that will render the scene). Deterministic in
/// (scene, alpha_min).
ScenePrecompute precompute_scene(const scene::GaussianScene& scene,
                                 float alpha_min = 1.0f / 255.0f);

/// Runs Step 1 for every Gaussian in the scene. Deterministic; splats retain
/// scene order (the sort in Step 2 establishes depth order). `precompute`,
/// when non-null, must have been built from `scene` and replaces the
/// per-Gaussian covariance3d computation with a lookup (bit-identical
/// output either way).
std::vector<Splat2D> preprocess(const scene::GaussianScene& scene,
                                const scene::Camera& camera,
                                PreprocessStats* stats = nullptr,
                                const ScenePrecompute* precompute = nullptr);

/// Projects a single Gaussian; returns false if culled. Exposed for unit
/// tests and for the GauRast CUDA-collaborative scheduler model, which keeps
/// Step 1 on the (modeled) CUDA cores. `precompute` as in preprocess().
bool project_gaussian(const scene::GaussianScene& scene, std::size_t index,
                      const scene::Camera& camera, Splat2D& out,
                      const ScenePrecompute* precompute = nullptr);

}  // namespace gaurast::pipeline
