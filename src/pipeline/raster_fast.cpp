// The optimized Step-3 host kernel (RasterKernel::kFast).
//
// Same arithmetic as the reference kernel, restructured for host-CPU
// throughput:
//
//  * Per-tile SoA staging: each tile's splats are gathered once through the
//    instances[i].splat_index indirection into flat scratch arrays, so the
//    pixel loops stream contiguous floats instead of re-chasing a 48-byte
//    AoS record per (pixel, splat) pair.
//  * Row batches: pixels are processed kRasterLaneWidth at a time with
//    per-lane transmittance/accumulator arrays and a branch-light lane loop
//    the compiler can auto-vectorize; a batch early-outs of the splat walk
//    as soon as every lane has saturated.
//  * exp() cutoff: alpha_cutoff_power() gives a conservative power bound
//    below which the reference kernel provably discards the pair
//    (alpha < alpha_min), so the transcendental is skipped for pairs that
//    cannot contribute.
//
// Bit-identity with the reference kernel is a hard contract (the fast
// kernel must remain a drop-in for the oracle the hardware model is
// validated against): blended pairs execute the exact reference operation
// sequence — acc += color * (alpha * T); T *= (1 - alpha) — and the skip
// conditions only ever drop pairs the reference discards. Stats totals
// (pairs_evaluated, pairs_blended, pixels_terminated, pairs_per_tile) also
// match exactly; the stats-off instantiation carries no accounting at all.

#include <algorithm>
#include <cmath>

#include "gsmath/fastmath.hpp"
#include "pipeline/rasterize.hpp"

namespace gaurast::pipeline {

void RasterScratch::ensure(std::size_t n) {
  if (mean_x.size() >= n) return;
  mean_x.resize(n);
  mean_y.resize(n);
  conic_a.resize(n);
  conic_b.resize(n);
  conic_c.resize(n);
  opacity.resize(n);
  cutoff.resize(n);
  color_r.resize(n);
  color_g.resize(n);
  color_b.resize(n);
}

RasterScratch& thread_raster_scratch() {
  thread_local RasterScratch scratch;
  return scratch;
}

namespace {

template <bool kCollectStats>
void raster_tile_fast(const std::vector<Splat2D>& splats,
                      const TileWorkload& work, const BlendParams& params,
                      const float* splat_cutoffs, std::uint32_t tile_id,
                      Image& image, RasterStats* stats,
                      RasterScratch& scratch) {
  const TileGrid& grid = work.grid;
  const TileRange range = work.ranges[tile_id];
  const std::size_t count = range.size();
  if (count == 0) return;

  // Stage the tile's splats once: after this, the pixel loops never touch
  // the instance list or the AoS splat records again.
  scratch.ensure(count);
  float* const mx = scratch.mean_x.data();
  float* const my = scratch.mean_y.data();
  float* const ca = scratch.conic_a.data();
  float* const cb = scratch.conic_b.data();
  float* const cc = scratch.conic_c.data();
  float* const op = scratch.opacity.data();
  float* const cut = scratch.cutoff.data();
  float* const cr = scratch.color_r.data();
  float* const cg = scratch.color_g.data();
  float* const cbl = scratch.color_b.data();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t index = work.instances[range.begin + i].splat_index;
    const Splat2D& sp = splats[index];
    mx[i] = sp.mean.x;
    my[i] = sp.mean.y;
    ca[i] = sp.conic.a;
    cb[i] = sp.conic.b;
    cc[i] = sp.conic.c;
    op[i] = sp.opacity;
    cut[i] = splat_cutoffs[index];
    cr[i] = sp.color.x;
    cg[i] = sp.color.y;
    cbl[i] = sp.color.z;
  }

  const int tiles_x = grid.tiles_x();
  const int tx = static_cast<int>(tile_id) % tiles_x;
  const int ty = static_cast<int>(tile_id) / tiles_x;
  const int px0 = tx * grid.tile_size;
  const int py0 = ty * grid.tile_size;
  const int px1 = std::min(px0 + grid.tile_size, grid.width);
  const int py1 = std::min(py0 + grid.tile_size, grid.height);

  constexpr int kW = kRasterLaneWidth;
  const float t_min = params.transmittance_min;
  const float alpha_min = params.alpha_min;
  const float alpha_max = params.alpha_max;
  // alpha_min <= 0 changes the discard semantics: a guarded (power > 0)
  // pair has alpha == 0, which then still *blends* (0 < alpha_min is
  // false). The lane loop handles that branch explicitly so the kernel
  // stays exact for every BlendParams, not just the defaults.
  const bool blend_zero_alpha = !(alpha_min > 0.0f);

  for (int py = py0; py < py1; ++py) {
    const float pyc = static_cast<float>(py) + 0.5f;
    for (int bx = px0; bx < px1; bx += kW) {
      const int lanes = std::min(kW, px1 - bx);
      float acc_r[kW] = {};
      float acc_g[kW] = {};
      float acc_b[kW] = {};
      float tr[kW];
      float pxc[kW];
      bool counted[kW] = {};  // pixels_terminated bookkeeping (stats only)
      for (int j = 0; j < lanes; ++j) {
        tr[j] = 1.0f;
        pxc[j] = static_cast<float>(bx + j) + 0.5f;
      }

      for (std::size_t i = 0; i < count; ++i) {
        // Saturation check first, exactly as the reference kernel checks
        // transmittance before evaluating each pair. A lane that crossed
        // the threshold with splats still pending counts as terminated
        // (once); when every lane is saturated the batch abandons the
        // remaining splats.
        int live = 0;
        for (int j = 0; j < lanes; ++j) {
          if (tr[j] < t_min) {
            if constexpr (kCollectStats) {
              if (!counted[j]) {
                counted[j] = true;
                ++stats->pixels_terminated;
              }
            }
          } else {
            ++live;
          }
        }
        if (live == 0) break;
        if constexpr (kCollectStats) {
          stats->pairs_evaluated += static_cast<std::uint64_t>(live);
          stats->pairs_per_tile[tile_id] += static_cast<std::uint64_t>(live);
        }

        const float smx = mx[i];
        const float sa = ca[i];
        const float sb = cb[i];
        const float sc = cc[i];
        const float sop = op[i];
        const float scut = cut[i];
        const float sr = cr[i];
        const float sg = cg[i];
        const float sbl = cbl[i];
        const float dy = pyc - my[i];
        const float dy2 = dy * dy;

        for (int j = 0; j < lanes; ++j) {
          const float t = tr[j];
          if (t < t_min) continue;  // saturated lane: reference broke out
          const float dx = pxc[j] - smx;
          const float dx2 = dx * dx;
          const float dxdy = dx * dy;
          // Same association as gsmath::gaussian_power — bit-equal power.
          const float power = -0.5f * (sa * dx2 + sc * dy2) - sb * dxdy;
          if (power > 0.0f) {
            // Reference numerical guard: alpha = 0. Only blends (as an
            // exact no-op product) when alpha_min <= 0.
            if (blend_zero_alpha) {
              const float w = 0.0f * t;
              acc_r[j] += sr * w;
              acc_g[j] += sg * w;
              acc_b[j] += sbl * w;
              tr[j] = t * 1.0f;
              if constexpr (kCollectStats) ++stats->pairs_blended;
            }
            continue;
          }
          if (power < scut) continue;  // provably alpha < alpha_min: no exp
          const float alpha = std::min(alpha_max, sop * std::exp(power));
          if (alpha < alpha_min) continue;
          const float w = alpha * t;
          acc_r[j] += sr * w;
          acc_g[j] += sg * w;
          acc_b[j] += sbl * w;
          tr[j] = t * (1.0f - alpha);
          if constexpr (kCollectStats) ++stats->pairs_blended;
        }
      }

      for (int j = 0; j < lanes; ++j) {
        Vec3f& out = image.at(bx + j, py);
        out.x = acc_r[j] + params.background.x * tr[j];
        out.y = acc_g[j] + params.background.y * tr[j];
        out.z = acc_b[j] + params.background.z * tr[j];
      }
    }
  }
}

}  // namespace

namespace detail {

void raster_span_fast(const std::vector<Splat2D>& splats,
                      const TileWorkload& work, const BlendParams& params,
                      const float* splat_cutoffs, std::uint32_t tile_begin,
                      std::uint32_t tile_end, Image& image,
                      RasterStats* stats) {
  RasterScratch& scratch = thread_raster_scratch();
  if (stats) {
    for (std::uint32_t t = tile_begin; t < tile_end; ++t) {
      raster_tile_fast<true>(splats, work, params, splat_cutoffs, t, image,
                             stats, scratch);
    }
  } else {
    for (std::uint32_t t = tile_begin; t < tile_end; ++t) {
      raster_tile_fast<false>(splats, work, params, splat_cutoffs, t, image,
                              nullptr, scratch);
    }
  }
}

}  // namespace detail

}  // namespace gaurast::pipeline
