// End-to-end 3DGS software renderer: Step 1 -> Step 2 -> Step 3.
//
// This is the complete reference pipeline (paper Fig. 3). Its FrameResult
// exposes the intermediate TileWorkload so the GauRast hardware simulators
// can take over Step 3 on exactly the data the CUDA cores would hand them
// (the CUDA-collaborative split of paper Sec. IV-C).
#pragma once

#include <optional>

#include "gsmath/image.hpp"
#include "pipeline/preprocess.hpp"
#include "pipeline/rasterize.hpp"
#include "pipeline/sort.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::pipeline {

struct RendererConfig {
  int tile_size = 16;
  BlendParams blend;
  bool collect_stats = true;
  /// Step-2 duplication mode; kTightEllipse is the shape-aware-culling
  /// extension (see pipeline/sort.hpp), off by default to match the
  /// reference pipeline.
  CullingMode culling = CullingMode::kBoundingBox;
  /// Host threads for Steps 2-3: Step 2 switches to parallel tile binning
  /// and Step 3 fans tiles across threads when > 1. Both stages are
  /// bit-identical for any thread count.
  int num_threads = 1;
  /// Which Step-3 software kernel runs (see pipeline/rasterize.hpp);
  /// kReference is the scalar oracle, kFast the optimized bit-identical
  /// kernel. Hardware-model backends ignore this (their Step 3 is the
  /// modeled rasterizer).
  RasterKernel kernel = RasterKernel::kReference;
};

/// Everything produced while rendering one frame.
struct FrameResult {
  Image image;
  std::vector<Splat2D> splats;   ///< Step 1 output
  TileWorkload workload;         ///< Step 2 output
  PreprocessStats preprocess_stats;
  SortStats sort_stats;
  RasterStats raster_stats;

  /// Mean evaluated splat-pixel pairs per output pixel.
  double pairs_per_pixel() const {
    return raster_stats.mean_pairs_per_pixel(
        static_cast<std::uint64_t>(image.width()) *
        static_cast<std::uint64_t>(image.height()));
  }
};

/// Thread-safety: a GaussianRenderer holds only immutable configuration, and
/// render()/prepare() take the scene by const reference and touch no shared
/// mutable state, so one instance (and one scene) may be shared across any
/// number of concurrent callers — the contract the runtime::RenderService
/// workers rely on when they fan frames out over a cached scene.
class GaussianRenderer {
 public:
  explicit GaussianRenderer(RendererConfig config = {});

  /// Renders one frame through all three steps. `precompute`, when non-null,
  /// must have been built from `scene` (pipeline::precompute_scene) and
  /// skips the camera-independent part of Step 1; output is bit-identical
  /// either way.
  FrameResult render(const scene::GaussianScene& scene,
                     const scene::Camera& camera,
                     const ScenePrecompute* precompute = nullptr) const;

  /// Steps 1 + 2 only (what the CUDA cores retain under GauRast
  /// scheduling). The result's image is not yet allocated — Step-3
  /// executors consume splats + workload (whose grid carries the frame
  /// dimensions) and produce the image themselves.
  FrameResult prepare(const scene::GaussianScene& scene,
                      const scene::Camera& camera,
                      const ScenePrecompute* precompute = nullptr) const;

  // Per-stage entry points. A frame is exactly
  //   begin_frame -> sort_frame -> raster_frame,
  // and prepare()/render() are compositions of them, so a stage-pipelined
  // scheduler that runs each stage on a different worker produces
  // bit-identical frames to the monolithic calls by construction.

  /// Step 1 only: projects the scene's Gaussians into screen-space splats
  /// and seeds the tile grid (the frame's dimension carrier for the later
  /// stages).
  FrameResult begin_frame(const scene::GaussianScene& scene,
                          const scene::Camera& camera,
                          const ScenePrecompute* precompute = nullptr) const;

  /// Step 2 only: builds the depth-sorted TileWorkload from frame.splats
  /// over the grid begin_frame seeded.
  void sort_frame(FrameResult& frame) const;

  /// Step 3 only: rasterizes the sorted workload into frame.image,
  /// allocating it on the calling thread if not already grid-sized.
  /// `precompute` supplies the fast kernel's per-scene raster cutoffs
  /// (bit-identical output either way; see pipeline::rasterize).
  void raster_frame(FrameResult& frame,
                    const ScenePrecompute* precompute = nullptr) const;

  const RendererConfig& config() const { return config_; }

 private:
  RendererConfig config_;
};

}  // namespace gaurast::pipeline
