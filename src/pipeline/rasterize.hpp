// Step 3 of the 3DGS pipeline (paper Fig. 3(d)-(e)): Gaussian rasterization —
// per-pixel alpha evaluation and front-to-back color accumulation.
//
// This is the reference software implementation of the operator GauRast
// accelerates; the hardware model executes eval_splat_alpha/accumulate with
// identical arithmetic so images match exactly (paper Sec. V-A validation).
#pragma once

#include <cstdint>
#include <vector>

#include "gsmath/image.hpp"
#include "pipeline/sort.hpp"

namespace gaurast::pipeline {

/// Blending constants of the reference implementation.
struct BlendParams {
  float alpha_min = 1.0f / 255.0f;  ///< discard contributions below this
  float alpha_max = 0.99f;          ///< clamp per-splat alpha
  float transmittance_min = 1e-4f;  ///< early termination threshold on T
  Vec3f background{0.0f, 0.0f, 0.0f};
};

/// Per-splat-per-pixel alpha evaluation:
///   power = -1/2 d^T Conic d,  alpha = min(alpha_max, opacity * exp(power)).
/// Returns alpha, or 0 when power > 0 (numerical guard, as in the
/// reference kernel). `d` is pixel_center - splat_mean.
float eval_splat_alpha(const Splat2D& splat, Vec2f pixel,
                       const BlendParams& params);

/// Running blend state of one pixel.
struct PixelBlendState {
  Vec3f accumulated{0, 0, 0};
  float transmittance = 1.0f;
  bool terminated() const { return transmittance < 1e-4f; }
};

/// Applies one splat contribution front-to-back:
///   C += T * alpha * color;  T *= (1 - alpha).
/// Skips alphas below params.alpha_min. Returns true if applied.
bool accumulate(PixelBlendState& state, float alpha, Vec3f color,
                const BlendParams& params);

/// Per-frame Step 3 statistics (these are the quantities SceneProfile
/// captures at full scale).
struct RasterStats {
  std::uint64_t pairs_evaluated = 0;  ///< splat-pixel alpha evaluations
  std::uint64_t pairs_blended = 0;    ///< passed the alpha_min threshold
  std::uint64_t pixels_terminated = 0;
  std::vector<std::uint64_t> pairs_per_tile;  ///< load per tile (for the sim)

  double mean_pairs_per_pixel(std::uint64_t pixels) const {
    return pixels == 0 ? 0.0
                       : static_cast<double>(pairs_evaluated) /
                             static_cast<double>(pixels);
  }
};

/// Rasterizes the sorted tile workload over all pixels. Mirrors the
/// reference CUDA kernel: every pixel of a tile walks the tile's
/// depth-sorted splat list, evaluating alpha and accumulating until the
/// transmittance threshold. Tiles are independent, so `num_threads` > 1
/// splits them across host threads with bit-identical results (per-thread
/// statistics are merged deterministically).
Image rasterize(const std::vector<Splat2D>& splats, const TileWorkload& work,
                const BlendParams& params, RasterStats* stats = nullptr,
                int num_threads = 1);

}  // namespace gaurast::pipeline
