// Step 3 of the 3DGS pipeline (paper Fig. 3(d)-(e)): Gaussian rasterization —
// per-pixel alpha evaluation and front-to-back color accumulation.
//
// This is the reference software implementation of the operator GauRast
// accelerates; the hardware model executes eval_splat_alpha/accumulate with
// identical arithmetic so images match exactly (paper Sec. V-A validation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gsmath/image.hpp"
#include "pipeline/sort.hpp"

namespace gaurast::pipeline {

/// Which Step-3 software kernel executes the tile workload.
///
/// kReference is the scalar oracle: per-pixel front-to-back blending exactly
/// as the paper's CUDA kernel (and the GauRast PE datapath) computes it.
/// kFast is the optimized host kernel: it stages each tile's splats once
/// into SoA scratch arrays, walks pixels in fixed-width row batches the
/// compiler can auto-vectorize, and skips exp() for pairs provably below
/// the blend threshold — while remaining bit-identical to kReference
/// (enforced by the raster_fast_test golden matrix).
enum class RasterKernel {
  kReference,
  kFast,
};

/// "reference" | "fast" — the spelling used by CLI flags and JSON reports.
const char* to_string(RasterKernel kernel);

/// Parses "reference" | "fast"; throws gaurast::Error (naming the valid
/// spellings) otherwise.
RasterKernel raster_kernel_from_string(const std::string& name);

/// Blending constants of the reference implementation.
struct BlendParams {
  float alpha_min = 1.0f / 255.0f;  ///< discard contributions below this
  float alpha_max = 0.99f;          ///< clamp per-splat alpha
  float transmittance_min = 1e-4f;  ///< early termination threshold on T
  Vec3f background{0.0f, 0.0f, 0.0f};
};

/// Per-splat-per-pixel alpha evaluation:
///   power = -1/2 d^T Conic d,  alpha = min(alpha_max, opacity * exp(power)).
/// Returns alpha, or 0 when power > 0 (numerical guard, as in the
/// reference kernel). `d` is pixel_center - splat_mean.
float eval_splat_alpha(const Splat2D& splat, Vec2f pixel,
                       const BlendParams& params);

/// Running blend state of one pixel.
struct PixelBlendState {
  Vec3f accumulated{0, 0, 0};
  float transmittance = 1.0f;
  bool terminated() const { return transmittance < 1e-4f; }
};

/// Applies one splat contribution front-to-back:
///   C += T * alpha * color;  T *= (1 - alpha).
/// Skips alphas below params.alpha_min. Returns true if applied.
bool accumulate(PixelBlendState& state, float alpha, Vec3f color,
                const BlendParams& params);

/// Per-frame Step 3 statistics (these are the quantities SceneProfile
/// captures at full scale).
struct RasterStats {
  std::uint64_t pairs_evaluated = 0;  ///< splat-pixel alpha evaluations
  std::uint64_t pairs_blended = 0;    ///< passed the alpha_min threshold
  std::uint64_t pixels_terminated = 0;
  std::vector<std::uint64_t> pairs_per_tile;  ///< load per tile (for the sim)

  double mean_pairs_per_pixel(std::uint64_t pixels) const {
    return pixels == 0 ? 0.0
                       : static_cast<double>(pairs_evaluated) /
                             static_cast<double>(pixels);
  }
};

/// Per-thread scratch arena for the fast kernel's SoA tile staging. The
/// vectors only ever grow, so a long-lived thread (a serve worker, the CLI
/// main thread) stops allocating after its first frame — staging becomes a
/// copy into already-warm buffers instead of a per-tile malloc.
struct RasterScratch {
  std::vector<float> mean_x, mean_y;
  std::vector<float> conic_a, conic_b, conic_c;
  std::vector<float> opacity, cutoff;
  std::vector<float> color_r, color_g, color_b;

  /// Grows every array to hold at least `n` splats; never shrinks.
  void ensure(std::size_t n);

  /// Staged capacity in splats (what ensure() has grown to so far).
  std::size_t capacity() const { return mean_x.size(); }
};

/// The calling thread's scratch arena, reused across frames for the
/// lifetime of the thread (this is what lets the runtime serve loop render
/// job after job without per-job staging allocations).
RasterScratch& thread_raster_scratch();

namespace detail {
/// Reference (scalar oracle) kernel over tiles [tile_begin, tile_end).
/// `stats` may be null, in which case no counter is touched (the stats-off
/// instantiation carries zero bookkeeping in the inner loop).
void raster_span_reference(const std::vector<Splat2D>& splats,
                           const TileWorkload& work, const BlendParams& params,
                           std::uint32_t tile_begin, std::uint32_t tile_end,
                           Image& image, RasterStats* stats);

/// Fast kernel over tiles [tile_begin, tile_end); bit-identical images and
/// identical stats totals to raster_span_reference. Uses the calling
/// thread's RasterScratch. `splat_cutoffs` holds one precomputed
/// gsmath::alpha_cutoff_power value per splat (computed once per frame by
/// rasterize(), not per duplicated tile instance).
void raster_span_fast(const std::vector<Splat2D>& splats,
                      const TileWorkload& work, const BlendParams& params,
                      const float* splat_cutoffs, std::uint32_t tile_begin,
                      std::uint32_t tile_end, Image& image,
                      RasterStats* stats);
}  // namespace detail

/// Rasterizes the sorted tile workload over all pixels. Mirrors the
/// reference CUDA kernel: every pixel of a tile walks the tile's
/// depth-sorted splat list, evaluating alpha and accumulating until the
/// transmittance threshold. Tiles are independent, so `num_threads` > 1
/// splits them across host threads with bit-identical results (per-thread
/// statistics are merged deterministically). `kernel` selects the Step-3
/// software kernel; both produce bit-identical images and stats.
/// `precompute` (nullable) supplies the per-scene raster cutoffs the fast
/// kernel otherwise recomputes each frame; it is consulted only when its
/// cutoff_alpha_min matches params.alpha_min, so passing it is always safe.
Image rasterize(const std::vector<Splat2D>& splats, const TileWorkload& work,
                const BlendParams& params, RasterStats* stats = nullptr,
                int num_threads = 1,
                RasterKernel kernel = RasterKernel::kReference,
                const ScenePrecompute* precompute = nullptr);

/// Allocation-free variant: rasterizes into `image`, which must already
/// have the workload's grid dimensions. Every pixel is overwritten
/// (background fill, then blending), so the result is bit-identical to
/// rasterize() whatever `image` held before. This is what lets a frame
/// reuse the buffer its preprocess stage allocated instead of paying a
/// second image allocation in Step 3.
void rasterize_into(Image& image, const std::vector<Splat2D>& splats,
                    const TileWorkload& work, const BlendParams& params,
                    RasterStats* stats = nullptr, int num_threads = 1,
                    RasterKernel kernel = RasterKernel::kReference,
                    const ScenePrecompute* precompute = nullptr);

}  // namespace gaurast::pipeline
