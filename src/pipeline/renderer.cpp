#include "pipeline/renderer.hpp"

#include "common/error.hpp"

namespace gaurast::pipeline {

GaussianRenderer::GaussianRenderer(RendererConfig config)
    : config_(config) {
  GAURAST_CHECK(config_.tile_size > 0 && config_.tile_size <= 64);
}

FrameResult GaussianRenderer::prepare(const scene::GaussianScene& scene,
                                      const scene::Camera& camera) const {
  FrameResult result;
  result.splats = preprocess(scene, camera, &result.preprocess_stats);
  TileGrid grid;
  grid.tile_size = config_.tile_size;
  grid.width = camera.width();
  grid.height = camera.height();
  result.workload = sort_splats(result.splats, grid, &result.sort_stats,
                                config_.culling, config_.blend.alpha_min,
                                config_.num_threads);
  result.image = Image(camera.width(), camera.height(),
                       config_.blend.background);
  return result;
}

FrameResult GaussianRenderer::render(const scene::GaussianScene& scene,
                                     const scene::Camera& camera) const {
  FrameResult result = prepare(scene, camera);
  result.image =
      rasterize(result.splats, result.workload, config_.blend,
                config_.collect_stats ? &result.raster_stats : nullptr,
                config_.num_threads, config_.kernel);
  return result;
}

}  // namespace gaurast::pipeline
