#include "pipeline/renderer.hpp"

#include "common/error.hpp"

namespace gaurast::pipeline {

GaussianRenderer::GaussianRenderer(RendererConfig config)
    : config_(config) {
  GAURAST_CHECK(config_.tile_size > 0 && config_.tile_size <= 64);
}

FrameResult GaussianRenderer::begin_frame(
    const scene::GaussianScene& scene, const scene::Camera& camera,
    const ScenePrecompute* precompute) const {
  FrameResult result;
  // Seed the tile grid now (it is the frame's dimension carrier for the
  // later stages); the image itself is allocated by raster_frame, on the
  // thread that will write it — under a stage pipeline that is a different
  // worker, and a buffer allocated where it is filled avoids hauling
  // untouched pages through the inter-stage queues.
  result.workload.grid.tile_size = config_.tile_size;
  result.workload.grid.width = camera.width();
  result.workload.grid.height = camera.height();
  result.splats =
      preprocess(scene, camera, &result.preprocess_stats, precompute);
  return result;
}

void GaussianRenderer::sort_frame(FrameResult& frame) const {
  const TileGrid grid = frame.workload.grid;
  GAURAST_CHECK(grid.width > 0 && grid.height > 0);
  frame.workload = sort_splats(frame.splats, grid, &frame.sort_stats,
                               config_.culling, config_.blend.alpha_min,
                               config_.num_threads);
}

void GaussianRenderer::raster_frame(FrameResult& frame,
                                    const ScenePrecompute* precompute) const {
  const TileGrid& grid = frame.workload.grid;
  if (frame.image.width() != grid.width ||
      frame.image.height() != grid.height) {
    frame.image = Image(grid.width, grid.height);
  }
  // rasterize_into overwrites every pixel (background first), so a reused
  // or fresh buffer gives bit-identical output to rasterize().
  rasterize_into(frame.image, frame.splats, frame.workload, config_.blend,
                 config_.collect_stats ? &frame.raster_stats : nullptr,
                 config_.num_threads, config_.kernel, precompute);
}

FrameResult GaussianRenderer::prepare(const scene::GaussianScene& scene,
                                      const scene::Camera& camera,
                                      const ScenePrecompute* precompute) const {
  FrameResult result = begin_frame(scene, camera, precompute);
  sort_frame(result);
  return result;
}

FrameResult GaussianRenderer::render(const scene::GaussianScene& scene,
                                     const scene::Camera& camera,
                                     const ScenePrecompute* precompute) const {
  FrameResult result = prepare(scene, camera, precompute);
  raster_frame(result, precompute);
  return result;
}

}  // namespace gaurast::pipeline
