#include "pipeline/sort.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace gaurast::pipeline {

std::uint32_t depth_key_bits(float depth) {
  GAURAST_CHECK_MSG(depth >= 0.0f, "negative depth " << depth);
  std::uint32_t bits;
  std::memcpy(&bits, &depth, sizeof(bits));
  // Positive IEEE-754 floats compare like their bit patterns.
  return bits;
}

bool tight_splat_extent(const Splat2D& splat, float alpha_min, float& rx,
                        float& ry) {
  GAURAST_CHECK(alpha_min > 0.0f);
  if (splat.opacity <= alpha_min) return false;
  // alpha(d) = opacity * exp(-1/2 d^T C d) >= alpha_min defines the ellipse
  // 1/2 d^T C d <= ln(opacity / alpha_min) =: q. Its axis-aligned extent is
  // sqrt(2 q * Cov_xx), sqrt(2 q * Cov_yy) with Cov = C^-1.
  const float q = std::log(splat.opacity / alpha_min);
  const float det = splat.conic.a * splat.conic.c - splat.conic.b * splat.conic.b;
  if (!(det > 0.0f)) return false;
  const float cov_xx = splat.conic.c / det;
  const float cov_yy = splat.conic.a / det;
  rx = std::sqrt(std::max(2.0f * q * cov_xx, 0.0f));
  ry = std::sqrt(std::max(2.0f * q * cov_yy, 0.0f));
  return rx > 0.0f && ry > 0.0f;
}

std::vector<TileInstance> duplicate_to_tiles(const std::vector<Splat2D>& splats,
                                             const TileGrid& grid,
                                             CullingMode mode,
                                             float alpha_min) {
  GAURAST_CHECK(grid.width > 0 && grid.height > 0 && grid.tile_size > 0);
  std::vector<TileInstance> instances;
  instances.reserve(splats.size() * 2);
  const int tx_count = grid.tiles_x();
  const int ty_count = grid.tiles_y();
  for (std::uint32_t s = 0; s < splats.size(); ++s) {
    const Splat2D& sp = splats[s];
    float rx = sp.radius;
    float ry = sp.radius;
    if (mode == CullingMode::kTightEllipse) {
      if (!tight_splat_extent(sp, alpha_min, rx, ry)) continue;
      // Never exceed the reference bounding square (the tight extent is a
      // subset of the 3-sigma box by construction, but guard numerics).
      rx = std::min(rx, sp.radius);
      ry = std::min(ry, sp.radius);
    }
    // Tile span of the splat's bounding rectangle, clamped to the screen.
    int tx0 = static_cast<int>(std::floor((sp.mean.x - rx) /
                                          static_cast<float>(grid.tile_size)));
    int tx1 = static_cast<int>(std::floor((sp.mean.x + rx) /
                                          static_cast<float>(grid.tile_size)));
    int ty0 = static_cast<int>(std::floor((sp.mean.y - ry) /
                                          static_cast<float>(grid.tile_size)));
    int ty1 = static_cast<int>(std::floor((sp.mean.y + ry) /
                                          static_cast<float>(grid.tile_size)));
    tx0 = std::max(tx0, 0);
    ty0 = std::max(ty0, 0);
    tx1 = std::min(tx1, tx_count - 1);
    ty1 = std::min(ty1, ty_count - 1);
    if (tx0 > tx1 || ty0 > ty1) continue;  // entirely off-screen
    const std::uint32_t dkey = depth_key_bits(sp.depth);
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        const std::uint64_t tile =
            static_cast<std::uint64_t>(ty) * static_cast<std::uint64_t>(tx_count) +
            static_cast<std::uint64_t>(tx);
        instances.push_back(TileInstance{(tile << 32) | dkey, s});
      }
    }
  }
  return instances;
}

void radix_sort_instances(std::vector<TileInstance>& instances) {
  if (instances.size() < 2) return;
  std::vector<TileInstance> scratch(instances.size());
  // LSD radix over 8 byte-digits of the 64-bit key; stable per pass, so the
  // final order is (tile, depth) ascending with insertion order as the tie
  // break — identical semantics to the reference implementation's sort.
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    std::array<std::size_t, 256> histogram{};
    for (const TileInstance& ti : instances) {
      ++histogram[(ti.key >> shift) & 0xFFu];
    }
    // Skip passes where every key shares the digit (common for high bytes).
    bool trivial = false;
    for (std::size_t d = 0; d < 256; ++d) {
      if (histogram[d] == instances.size()) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::array<std::size_t, 256> offsets{};
    std::size_t running = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      offsets[d] = running;
      running += histogram[d];
    }
    for (const TileInstance& ti : instances) {
      scratch[offsets[(ti.key >> shift) & 0xFFu]++] = ti;
    }
    instances.swap(scratch);
  }
}

TileWorkload sort_splats(const std::vector<Splat2D>& splats,
                         const TileGrid& grid, SortStats* stats,
                         CullingMode mode, float alpha_min) {
  TileWorkload work;
  work.grid = grid;
  work.instances = duplicate_to_tiles(splats, grid, mode, alpha_min);
  radix_sort_instances(work.instances);

  work.ranges.assign(grid.tile_count(), TileRange{});
  // Identify per-tile ranges in one sweep over the sorted keys.
  const auto n = static_cast<std::uint32_t>(work.instances.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t tile = work.instances[i].tile();
    GAURAST_CHECK_MSG(tile < work.ranges.size(), "tile id out of range");
    if (i == 0 || work.instances[i - 1].tile() != tile) {
      work.ranges[tile].begin = i;
    }
    work.ranges[tile].end = i + 1;
  }
  if (stats) {
    stats->splats_in = splats.size();
    stats->instances = work.instances.size();
    stats->instances_per_splat =
        splats.empty() ? 0.0
                       : static_cast<double>(work.instances.size()) /
                             static_cast<double>(splats.size());
  }
  return work;
}

}  // namespace gaurast::pipeline
