#include "pipeline/sort.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/parallel_for.hpp"

namespace gaurast::pipeline {

std::uint32_t depth_key_bits(float depth) {
  // Validated once per workload by validate_splat_depths(); only a debug
  // assert here so the per-instance hot loop carries no branch in Release.
  GAURAST_DCHECK(depth >= 0.0f);
  std::uint32_t bits;
  std::memcpy(&bits, &depth, sizeof(bits));
  // Positive IEEE-754 floats compare like their bit patterns.
  return bits;
}

void validate_splat_depths(const std::vector<Splat2D>& splats) {
  for (std::size_t i = 0; i < splats.size(); ++i) {
    // !(depth >= 0) also catches NaN, whose bit pattern sorts arbitrarily.
    if (!(splats[i].depth >= 0.0f)) {
      throw Error("sort_splats: splat " + std::to_string(i) +
                  " has invalid depth " + std::to_string(splats[i].depth) +
                  " (depth keys require finite non-negative depths)");
    }
  }
}

bool tight_splat_extent(const Splat2D& splat, float alpha_min, float& rx,
                        float& ry) {
  GAURAST_CHECK(alpha_min > 0.0f);
  if (splat.opacity <= alpha_min) return false;
  // alpha(d) = opacity * exp(-1/2 d^T C d) >= alpha_min defines the ellipse
  // 1/2 d^T C d <= ln(opacity / alpha_min) =: q. Its axis-aligned extent is
  // sqrt(2 q * Cov_xx), sqrt(2 q * Cov_yy) with Cov = C^-1.
  const float q = std::log(splat.opacity / alpha_min);
  const float det = splat.conic.a * splat.conic.c - splat.conic.b * splat.conic.b;
  if (!(det > 0.0f)) return false;
  const float cov_xx = splat.conic.c / det;
  const float cov_yy = splat.conic.a / det;
  rx = std::sqrt(std::max(2.0f * q * cov_xx, 0.0f));
  ry = std::sqrt(std::max(2.0f * q * cov_yy, 0.0f));
  return rx > 0.0f && ry > 0.0f;
}

namespace {

/// Clamped tile span [tx0, tx1] x [ty0, ty1] of one splat's footprint under
/// `mode`; false when the splat lands on no tile (culled or off-screen).
/// Shared by the serial duplication path and the parallel binning path so
/// the two can never diverge.
bool splat_tile_span(const Splat2D& sp, const TileGrid& grid, CullingMode mode,
                     float alpha_min, int& tx0, int& tx1, int& ty0, int& ty1) {
  float rx = sp.radius;
  float ry = sp.radius;
  if (mode == CullingMode::kTightEllipse) {
    if (!tight_splat_extent(sp, alpha_min, rx, ry)) return false;
    // Never exceed the reference bounding square (the tight extent is a
    // subset of the 3-sigma box by construction, but guard numerics).
    rx = std::min(rx, sp.radius);
    ry = std::min(ry, sp.radius);
  }
  // Tile span of the splat's bounding rectangle, clamped to the screen.
  const auto ts = static_cast<float>(grid.tile_size);
  tx0 = static_cast<int>(std::floor((sp.mean.x - rx) / ts));
  tx1 = static_cast<int>(std::floor((sp.mean.x + rx) / ts));
  ty0 = static_cast<int>(std::floor((sp.mean.y - ry) / ts));
  ty1 = static_cast<int>(std::floor((sp.mean.y + ry) / ts));
  tx0 = std::max(tx0, 0);
  ty0 = std::max(ty0, 0);
  tx1 = std::min(tx1, grid.tiles_x() - 1);
  ty1 = std::min(ty1, grid.tiles_y() - 1);
  return tx0 <= tx1 && ty0 <= ty1;
}

/// Stable ascending sort of one tile's bucket by the low 32 depth-key bits
/// (every key in a bucket shares its tile high bits). Insertion sort for
/// short buckets; 4-pass LSD counting sort through `scratch` otherwise.
/// Both are stable, so ties keep splat order — the serial sort's tie break.
void sort_tile_bucket_by_depth(TileInstance* first, std::size_t n,
                               std::vector<TileInstance>& scratch) {
  if (n < 2) return;
  if (n < 32) {
    for (std::size_t i = 1; i < n; ++i) {
      const TileInstance x = first[i];
      std::size_t j = i;
      while (j > 0 && first[j - 1].key > x.key) {
        first[j] = first[j - 1];
        --j;
      }
      first[j] = x;
    }
    return;
  }
  if (scratch.size() < n) scratch.resize(n);
  TileInstance* src = first;
  TileInstance* dst = scratch.data();
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = pass * 8;
    std::array<std::uint32_t, 256> histogram{};
    for (std::size_t i = 0; i < n; ++i) {
      ++histogram[(src[i].key >> shift) & 0xFFu];
    }
    bool trivial = false;
    for (std::size_t d = 0; d < 256; ++d) {
      if (histogram[d] == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::array<std::uint32_t, 256> offsets{};
    std::uint32_t running = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      offsets[d] = running;
      running += histogram[d];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i].key >> shift) & 0xFFu]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != first) std::copy(src, src + n, first);
}

/// The parallel Step-2 path: per-thread duplication + tile histograms, a
/// histogram merge that doubles as range identification, a direct scatter
/// into tile buckets (no global sort), and per-tile depth sorts fanned
/// across the threads. Deterministic and bit-identical to the serial path.
void parallel_bin_and_sort(const std::vector<Splat2D>& splats,
                           const TileGrid& grid, CullingMode mode,
                           float alpha_min, int num_threads,
                           TileWorkload& work) {
  validate_splat_depths(splats);
  const std::uint32_t tiles = grid.tile_count();
  const auto n_splats = splats.size();
  const auto workers = static_cast<std::size_t>(std::min<std::size_t>(
      static_cast<std::size_t>(num_threads), std::max<std::size_t>(n_splats, 1)));

  // Pass 1 — duplicate: thread w covers the contiguous splat chunk
  // [n*w/W, n*(w+1)/W), appending instances in splat order and counting
  // per tile. Chunks are contiguous, so concatenating the locals in thread
  // order reproduces the serial duplication order exactly.
  std::vector<std::vector<TileInstance>> local(workers);
  std::vector<std::vector<std::uint32_t>> local_counts(
      workers, std::vector<std::uint32_t>(tiles, 0));
  common::parallel_for_workers(workers, [&](std::size_t w) {
    const std::size_t begin = n_splats * w / workers;
    const std::size_t end = n_splats * (w + 1) / workers;
    std::vector<TileInstance>& out = local[w];
    std::vector<std::uint32_t>& counts = local_counts[w];
    out.reserve((end - begin) * 2);
    const int tiles_x = grid.tiles_x();
    for (std::size_t s = begin; s < end; ++s) {
      int tx0, tx1, ty0, ty1;
      if (!splat_tile_span(splats[s], grid, mode, alpha_min, tx0, tx1,
                           ty0, ty1)) {
        continue;
      }
      const std::uint32_t dkey = depth_key_bits(splats[s].depth);
      for (int ty = ty0; ty <= ty1; ++ty) {
        for (int tx = tx0; tx <= tx1; ++tx) {
          const std::uint64_t tile =
              static_cast<std::uint64_t>(ty) *
                  static_cast<std::uint64_t>(tiles_x) +
              static_cast<std::uint64_t>(tx);
          out.push_back(TileInstance{(tile << 32) | dkey,
                                     static_cast<std::uint32_t>(s)});
          ++counts[static_cast<std::uint32_t>(tile)];
        }
      }
    }
  });

  // Merge — exclusive prefix over (tile, thread) gives every thread an
  // exact write cursor per tile; the per-tile totals are the final ranges.
  std::vector<std::uint32_t> tile_begin(tiles + 1, 0);
  std::vector<std::vector<std::uint32_t>> cursor(
      workers, std::vector<std::uint32_t>(tiles, 0));
  std::uint32_t running = 0;
  for (std::uint32_t t = 0; t < tiles; ++t) {
    tile_begin[t] = running;
    for (std::size_t w = 0; w < workers; ++w) {
      cursor[w][t] = running;
      running += local_counts[w][t];
    }
  }
  tile_begin[tiles] = running;

  work.instances.resize(running);
  work.ranges.assign(tiles, TileRange{});
  for (std::uint32_t t = 0; t < tiles; ++t) {
    // Empty tiles keep the default {0, 0} range, matching the serial
    // sweep's untouched entries bit-for-bit.
    if (tile_begin[t + 1] > tile_begin[t]) {
      work.ranges[t] = TileRange{tile_begin[t], tile_begin[t + 1]};
    }
  }

  // Pass 2 — scatter into tile buckets (stable: thread order == splat
  // order), then pass 3 — per-tile depth sort, tiles fanned across threads.
  common::parallel_for_workers(workers, [&](std::size_t w) {
    std::vector<std::uint32_t>& cur = cursor[w];
    for (const TileInstance& ti : local[w]) {
      work.instances[cur[ti.tile()]++] = ti;
    }
  });
  common::parallel_for_workers(workers, [&](std::size_t w) {
    std::vector<TileInstance> scratch;
    for (std::uint32_t t = static_cast<std::uint32_t>(w); t < tiles;
         t += static_cast<std::uint32_t>(workers)) {
      sort_tile_bucket_by_depth(work.instances.data() + tile_begin[t],
                                tile_begin[t + 1] - tile_begin[t], scratch);
    }
  });
}

}  // namespace

std::vector<TileInstance> duplicate_to_tiles(const std::vector<Splat2D>& splats,
                                             const TileGrid& grid,
                                             CullingMode mode,
                                             float alpha_min) {
  GAURAST_CHECK(grid.width > 0 && grid.height > 0 && grid.tile_size > 0);
  validate_splat_depths(splats);
  std::vector<TileInstance> instances;
  instances.reserve(splats.size() * 2);
  const int tx_count = grid.tiles_x();
  for (std::uint32_t s = 0; s < splats.size(); ++s) {
    int tx0, tx1, ty0, ty1;
    if (!splat_tile_span(splats[s], grid, mode, alpha_min, tx0, tx1, ty0,
                         ty1)) {
      continue;
    }
    const std::uint32_t dkey = depth_key_bits(splats[s].depth);
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        const std::uint64_t tile =
            static_cast<std::uint64_t>(ty) * static_cast<std::uint64_t>(tx_count) +
            static_cast<std::uint64_t>(tx);
        instances.push_back(TileInstance{(tile << 32) | dkey, s});
      }
    }
  }
  return instances;
}

void radix_sort_instances(std::vector<TileInstance>& instances) {
  if (instances.size() < 2) return;
  std::vector<TileInstance> scratch(instances.size());
  // LSD radix over 8 byte-digits of the 64-bit key; stable per pass, so the
  // final order is (tile, depth) ascending with insertion order as the tie
  // break — identical semantics to the reference implementation's sort.
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    std::array<std::size_t, 256> histogram{};
    for (const TileInstance& ti : instances) {
      ++histogram[(ti.key >> shift) & 0xFFu];
    }
    // Skip passes where every key shares the digit (common for high bytes).
    bool trivial = false;
    for (std::size_t d = 0; d < 256; ++d) {
      if (histogram[d] == instances.size()) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;
    std::array<std::size_t, 256> offsets{};
    std::size_t running = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      offsets[d] = running;
      running += histogram[d];
    }
    for (const TileInstance& ti : instances) {
      scratch[offsets[(ti.key >> shift) & 0xFFu]++] = ti;
    }
    instances.swap(scratch);
  }
}

TileWorkload sort_splats(const std::vector<Splat2D>& splats,
                         const TileGrid& grid, SortStats* stats,
                         CullingMode mode, float alpha_min, int num_threads) {
  GAURAST_CHECK(num_threads >= 1);
  GAURAST_CHECK(grid.width > 0 && grid.height > 0 && grid.tile_size > 0);
  TileWorkload work;
  work.grid = grid;
  if (num_threads == 1) {
    work.instances = duplicate_to_tiles(splats, grid, mode, alpha_min);
    radix_sort_instances(work.instances);

    work.ranges.assign(grid.tile_count(), TileRange{});
    // Identify per-tile ranges in one sweep over the sorted keys.
    const auto n = static_cast<std::uint32_t>(work.instances.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t tile = work.instances[i].tile();
      GAURAST_DCHECK(tile < work.ranges.size());
      if (i == 0 || work.instances[i - 1].tile() != tile) {
        work.ranges[tile].begin = i;
      }
      work.ranges[tile].end = i + 1;
    }
  } else {
    parallel_bin_and_sort(splats, grid, mode, alpha_min, num_threads, work);
  }
  if (stats) {
    stats->splats_in = splats.size();
    stats->instances = work.instances.size();
    stats->instances_per_splat =
        splats.empty() ? 0.0
                       : static_cast<double>(work.instances.size()) /
                             static_cast<double>(splats.size());
  }
  return work;
}

}  // namespace gaurast::pipeline
