#include "pipeline/preprocess.hpp"

#include <cmath>

#include "common/error.hpp"
#include "gsmath/fastmath.hpp"
#include "gsmath/sh.hpp"

namespace gaurast::pipeline {

namespace {
constexpr float kNearPlane = 0.2f;  // matches the reference implementation
}

ScenePrecompute precompute_scene(const scene::GaussianScene& scene,
                                 float alpha_min) {
  ScenePrecompute pre;
  pre.cov3d.reserve(scene.size());
  pre.raster_cutoff.reserve(scene.size());
  pre.cutoff_alpha_min = alpha_min;
  for (std::size_t i = 0; i < scene.size(); ++i) {
    pre.cov3d.push_back(
        covariance3d(scene.rotations()[i], scene.scales()[i]));
    pre.raster_cutoff.push_back(
        alpha_cutoff_power(alpha_min, scene.opacities()[i]));
  }
  return pre;
}

bool project_gaussian(const scene::GaussianScene& scene, std::size_t index,
                      const scene::Camera& camera, Splat2D& out,
                      const ScenePrecompute* precompute) {
  // Per-Gaussian contract checks: debug-only, like every other per-element
  // invariant on the hot path (callers loop this over the whole scene).
  GAURAST_DCHECK(index < scene.size());
  GAURAST_DCHECK(precompute == nullptr ||
                 precompute->cov3d.size() == scene.size());
  const Vec3f world = scene.positions()[index];
  const Vec3f view = camera.to_view(world);
  if (view.z <= kNearPlane) return false;

  // Generous screen-bounds cull, as in the reference implementation: keep
  // anything whose center projects within 1.3x the frustum.
  const float lim_x = 1.3f * camera.tan_half_fov_x() * view.z;
  const float lim_y = 1.3f * camera.tan_half_fov_y() * view.z;
  if (std::abs(view.x) > lim_x || std::abs(view.y) > lim_y) return false;

  const Mat3f cov3d =
      precompute != nullptr
          ? precompute->cov3d[index]
          : covariance3d(scene.rotations()[index], scene.scales()[index]);
  const Cov2 cov2d = project_covariance(
      cov3d, view, camera.focal_x(), camera.focal_y(), camera.tan_half_fov_x(),
      camera.tan_half_fov_y(), camera.view_rotation());

  Conic2 conic;
  if (!invert_covariance(cov2d, conic)) return false;

  out.mean = camera.view_to_pixel(view);
  out.conic = conic;
  out.opacity = scene.opacities()[index];
  out.depth = view.z;
  out.radius = splat_radius(cov2d);
  out.color = eval_sh_color(scene.sh()[index], scene.sh_degree(),
                            world - camera.eye());
  out.source_id = static_cast<std::uint32_t>(index);
  return out.radius > 0.0f;
}

std::vector<Splat2D> preprocess(const scene::GaussianScene& scene,
                                const scene::Camera& camera,
                                PreprocessStats* stats,
                                const ScenePrecompute* precompute) {
  std::vector<Splat2D> splats;
  splats.reserve(scene.size());
  PreprocessStats local;
  local.gaussians_in = scene.size();
  for (std::size_t i = 0; i < scene.size(); ++i) {
    Splat2D s;
    const Vec3f view = camera.to_view(scene.positions()[i]);
    if (view.z <= kNearPlane) {
      ++local.culled_frustum;
      continue;
    }
    if (!project_gaussian(scene, i, camera, s, precompute)) {
      // project_gaussian re-checks the frustum; failures here beyond the
      // near-plane test are degenerate covariances or off-screen centers.
      const float lim_x = 1.3f * camera.tan_half_fov_x() * view.z;
      const float lim_y = 1.3f * camera.tan_half_fov_y() * view.z;
      if (std::abs(view.x) > lim_x || std::abs(view.y) > lim_y) {
        ++local.culled_frustum;
      } else {
        ++local.culled_degenerate;
      }
      continue;
    }
    splats.push_back(s);
  }
  local.splats_out = splats.size();
  if (stats) *stats = local;
  return splats;
}

}  // namespace gaurast::pipeline
