#include "common/fault.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/mutex.hpp"
#include "common/prng.hpp"

namespace gaurast::fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

/// FNV-1a over the point name: folds each rule's point into its PCG32
/// stream seed so two rules on different points draw independent streams
/// from the same plan seed.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

struct RuleState {
  Rule rule;
  Pcg32 rng;  // per-rule stream: plan seed x point name x rule index
};

/// All armed state lives behind one mutex; the lock is only ever taken when
/// a plan is armed (the macro's relaxed-load fast path short-circuits
/// first) or while (dis)arming, so disarmed production code never contends.
struct Registry {
  common::Mutex mutex;
  bool armed GAURAST_GUARDED_BY(mutex) = false;
  std::vector<RuleState> rules GAURAST_GUARDED_BY(mutex);
  std::map<std::string, std::uint64_t> hits GAURAST_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

[[noreturn]] void parse_error(const std::string& spec, const std::string& why) {
  throw Error("bad fault plan '" + spec + "': " + why);
}

double parse_probability(const std::string& spec, const std::string& text) {
  std::size_t used = 0;
  double p = -1.0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    parse_error(spec, "bad probability '" + text + "'");
  }
  if (used != text.size() || p < 0.0 || p > 1.0) {
    parse_error(spec, "probability '" + text + "' not in [0, 1]");
  }
  return p;
}

std::uint64_t parse_count(const std::string& spec, const std::string& text,
                          const char* what) {
  std::size_t used = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(text, &used);
  } catch (const std::exception&) {
    parse_error(spec, std::string("bad ") + what + " '" + text + "'");
  }
  if (used != text.size()) {
    parse_error(spec, std::string("bad ") + what + " '" + text + "'");
  }
  return static_cast<std::uint64_t>(n);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

Rule parse_rule(const std::string& spec, const std::string& text) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() != 3) {
    parse_error(spec, "rule '" + text + "' is not point:action:trigger");
  }
  Rule rule;
  rule.point = fields[0];
  if (rule.point.empty()) {
    parse_error(spec, "rule '" + text + "' has an empty point name");
  }

  const std::string& action = fields[1];
  const std::size_t eq = action.find('=');
  const std::string verb = action.substr(0, eq);
  if (verb == "error") {
    rule.action = Action::kError;
  } else if (verb == "drop") {
    rule.action = Action::kDrop;
  } else if (verb == "crash") {
    rule.action = Action::kCrash;
  } else if (verb == "delay") {
    rule.action = Action::kDelay;
    if (eq == std::string::npos) {
      parse_error(spec, "delay needs a millisecond argument (delay=MS)");
    }
    rule.delay_ms = static_cast<int>(
        parse_count(spec, action.substr(eq + 1), "delay"));
  } else {
    parse_error(spec, "unknown action '" + verb + "'");
  }
  if (verb != "delay" && eq != std::string::npos) {
    parse_error(spec, "action '" + verb + "' takes no argument");
  }

  const std::string& trigger = fields[2];
  if (trigger.rfind("p=", 0) == 0) {
    rule.probability = parse_probability(spec, trigger.substr(2));
  } else if (trigger.rfind("nth=", 0) == 0) {
    rule.nth = parse_count(spec, trigger.substr(4), "nth");
    if (rule.nth == 0) {
      parse_error(spec, "nth trigger is 1-based; nth=0 never fires");
    }
  } else {
    parse_error(spec, "unknown trigger '" + trigger + "' (want p=P or nth=N)");
  }
  return rule;
}

}  // namespace

const char* to_string(Action action) {
  switch (action) {
    case Action::kNone:
      return "none";
    case Action::kError:
      return "error";
    case Action::kDelay:
      return "delay";
    case Action::kDrop:
      return "drop";
    case Action::kCrash:
      return "crash";
  }
  return "unknown";
}

Plan parse_plan(const std::string& spec) {
  Plan plan;
  bool saw_rule = false;
  for (const std::string& part : split(spec, ';')) {
    if (part.empty()) {
      continue;
    }
    if (!saw_rule && plan.rules.empty() && part.rfind("seed=", 0) == 0) {
      plan.seed = parse_count(spec, part.substr(5), "seed");
      continue;
    }
    plan.rules.push_back(parse_rule(spec, part));
    saw_rule = true;
  }
  if (plan.rules.empty()) {
    parse_error(spec, "no rules");
  }
  return plan;
}

void arm(const Plan& plan) {
  Registry& reg = registry();
  common::MutexLock lock(reg.mutex);
  reg.rules.clear();
  reg.hits.clear();
  std::uint64_t index = 0;
  for (const Rule& rule : plan.rules) {
    SplitMix64 mix(plan.seed ^ hash_name(rule.point) ^ (index * 0x9E37ULL));
    reg.rules.push_back(RuleState{rule, Pcg32(mix.next())});
    ++index;
  }
  reg.armed = true;
  internal::g_armed.store(true, std::memory_order_relaxed);
}

void arm(const std::string& spec) { arm(parse_plan(spec)); }

void disarm() {
  Registry& reg = registry();
  common::MutexLock lock(reg.mutex);
  internal::g_armed.store(false, std::memory_order_relaxed);
  reg.armed = false;
  reg.rules.clear();
  reg.hits.clear();
}

bool arm_from_env() {
  const char* spec = std::getenv("GAURAST_FAULT_PLAN");
  if (spec == nullptr || spec[0] == '\0') {
    return false;
  }
  arm(std::string(spec));
  return true;
}

Hit evaluate(const char* point) {
  Action action = Action::kNone;
  int delay_ms = 0;
  {
    Registry& reg = registry();
    common::MutexLock lock(reg.mutex);
    if (!reg.armed) {
      return {};
    }
    const std::uint64_t hit = ++reg.hits[point];
    for (RuleState& rs : reg.rules) {
      if (rs.rule.point != point) {
        continue;
      }
      bool fire = false;
      if (rs.rule.nth > 0) {
        fire = hit == rs.rule.nth;
      } else if (rs.rule.probability >= 0.0) {
        fire = rs.rng.uniform() < rs.rule.probability;
      }
      if (fire) {
        action = rs.rule.action;
        delay_ms = rs.rule.delay_ms;
        break;
      }
    }
  }
  // Act outside the lock: a sleeping rule must not serialize other points.
  if (action == Action::kCrash) {
    // A crashed worker does not unwind, flush, or run atexit hooks.
    ::_exit(86);
  }
  if (action == Action::kDelay && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return Hit{action, delay_ms};
}

void inject(const char* point) {
  const Hit hit = evaluate(point);
  if (hit.action == Action::kError || hit.action == Action::kDrop) {
    throw InjectedFault(point, hit.action);
  }
}

}  // namespace gaurast::fault
