// Minimal leveled logger for simulators and harnesses.
//
// Benchmark binaries print their results through common/table.hpp; the logger
// is for progress/diagnostic chatter and is silenced below the global level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gaurast {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the mutable global minimum level (default: kWarn so tests and
/// benches stay quiet unless asked).
LogLevel& global_log_level();

/// Emits one log line to stderr if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace gaurast

#define GAURAST_LOG(level) ::gaurast::detail::LogLine(::gaurast::LogLevel::level)
#define GAURAST_DEBUG GAURAST_LOG(kDebug)
#define GAURAST_INFO GAURAST_LOG(kInfo)
#define GAURAST_WARN GAURAST_LOG(kWarn)
#define GAURAST_ERROR GAURAST_LOG(kError)
