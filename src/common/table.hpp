// Aligned text tables and CSV output for benchmark harnesses.
//
// Every bench binary regenerating a paper table/figure prints through
// TablePrinter so the rows/series mirror the paper's presentation and can be
// diffed run-to-run.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gaurast {

/// Builds a fixed-column text table, then renders it with aligned columns.
/// Numeric cells should be pre-formatted by the caller (see format_* below).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders to the stream with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats a ratio like "23.4x".
std::string format_ratio(double value, int digits = 1);

/// Formats milliseconds with an adaptive unit (us/ms/s).
std::string format_time_ms(double ms);

/// Formats an energy in millijoules with adaptive unit (uJ/mJ/J).
std::string format_energy_mj(double mj);

/// Formats a percentage like "80.3%".
std::string format_percent(double fraction, int digits = 1);

/// Prints a section banner used between experiments in a bench binary.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace gaurast
