#include "common/logging.hpp"

namespace gaurast {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(global_log_level())) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::cerr << "[gaurast:" << tag << "] " << message << '\n';
}

}  // namespace gaurast
