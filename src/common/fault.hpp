// Deterministic fault injection: named fault points + seeded fault plans.
//
// Production code marks its failure seams with GAURAST_FAULT_POINT("name").
// When no plan is armed (the default, and the only state production ever
// runs in) a fault point is one relaxed atomic load and a not-taken branch —
// it injects nothing, allocates nothing, and takes no lock. Tests and the
// load generator arm a FaultPlan (in code, or via the GAURAST_FAULT_PLAN
// environment variable) to make specific points misbehave on demand:
//
//   plan   := [seed=N;]rule(;rule)*
//   rule   := point:action[=arg]:trigger
//   action := error | delay=MS | drop | crash
//   trigger:= p=PROB | nth=N
//
//   GAURAST_FAULT_PLAN='seed=7;cluster.forward:error:p=0.3' gaurast serve
//
// `error` and `drop` throw InjectedFault from the fault point (callers that
// need drop-specific handling, e.g. closing a connection instead of
// erroring it, use evaluate() directly); `delay=MS` sleeps; `crash` exits
// the process immediately, as a crashed worker would. Triggers are
// deterministic: `nth=N` fires on exactly the N-th hit of the point
// (1-based), `p=PROB` draws from a PCG32 stream seeded from the plan seed
// and the point name, so the same plan against the same execution order
// injects the same faults. Arming (FaultPlan construction, plan parsing,
// env reads) is confined to this module and test code — enforced by the
// `fault-points` rule of tools/lint_invariants.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gaurast::fault {

/// What an armed rule does to its fault point when the trigger fires.
enum class Action : std::uint8_t {
  kNone = 0,  ///< trigger did not fire — proceed normally
  kError,     ///< throw InjectedFault from the fault point
  kDelay,     ///< sleep delay_ms, then proceed
  kDrop,      ///< connection-drop: InjectedFault from inject(); seams with
              ///< drop-specific handling (close the fd) use evaluate()
  kCrash,     ///< _exit the process immediately (a crashed worker)
};

const char* to_string(Action action);

/// Thrown by a fault point whose armed rule fired with `error` (or `drop`,
/// when the seam has no drop-specific handling).
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& point, Action action)
      : Error("injected fault at " + point + " (" + to_string(action) + ")"),
        action_(action) {}

  Action action() const { return action_; }

 private:
  Action action_;
};

/// One armed rule: when `point` is hit and the trigger fires, take `action`.
/// Exactly one of `probability` (>= 0) or `nth` (> 0) is the trigger.
struct Rule {
  std::string point;
  Action action = Action::kError;
  int delay_ms = 0;          ///< kDelay only
  double probability = -1.0; ///< trigger: fire with this probability
  std::uint64_t nth = 0;     ///< trigger: fire on exactly the nth hit
};

/// A seeded set of rules. Same plan + same hit order => same injections.
struct Plan {
  std::uint64_t seed = 1;
  std::vector<Rule> rules;
};

/// Parses the GAURAST_FAULT_PLAN spec syntax (see file comment).
/// Throws gaurast::Error on malformed specs.
Plan parse_plan(const std::string& spec);

/// Arms `plan` process-wide (replacing any armed plan) / disarms it.
void arm(const Plan& plan);
void arm(const std::string& spec);
void disarm();

/// Arms from the GAURAST_FAULT_PLAN environment variable if set and
/// non-empty. Returns true when a plan was armed.
bool arm_from_env();

namespace internal {
extern std::atomic<bool> g_armed;
}  // namespace internal

/// Fast path: false (one relaxed load) unless a plan is armed.
inline bool armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Result of hitting a fault point: the action to take (kNone when no rule
/// fired). Delay sleeping for kDelay has already happened inside evaluate();
/// the caller handles kError / kDrop / kCrash-survivors itself.
struct Hit {
  Action action = Action::kNone;
  int delay_ms = 0;
};

/// Records a hit of `point` against the armed plan and returns what fired.
/// kDelay rules sleep here and report the action taken; kCrash rules _exit
/// and do not return. Callers use this (instead of inject()) when kDrop
/// needs seam-specific handling.
Hit evaluate(const char* point);

/// evaluate() + default behaviour: throws InjectedFault for kError and
/// kDrop, returns normally otherwise.
void inject(const char* point);

}  // namespace gaurast::fault

/// The instrumentation macro production seams use. Disarmed cost: one
/// relaxed atomic load.
#define GAURAST_FAULT_POINT(point)            \
  do {                                        \
    if (::gaurast::fault::armed()) {          \
      ::gaurast::fault::inject(point);        \
    }                                         \
  } while (false)
