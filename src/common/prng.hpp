// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in this repository (synthetic scene generation,
// workload sampling, property-test sweeps) flows through these generators so
// every run is reproducible from a single 64-bit seed. We implement PCG32
// (O'Neill 2014) seeded via SplitMix64, rather than <random>, because the
// standard engines' streams are not guaranteed identical across standard
// library implementations.
#pragma once

#include <cstdint>

namespace gaurast {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand one user seed
/// into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32: 64-bit state, 32-bit output permuted congruential generator.
/// Deterministic across platforms; passes BigCrush for our purposes.
class Pcg32 {
 public:
  /// Seeds state and stream-selector from a single seed via SplitMix64.
  explicit Pcg32(std::uint64_t seed = 0x853C49E6748FEA9BULL);

  /// Uniform 32-bit integer.
  std::uint32_t next_u32();

  /// Uniform 64-bit integer (two draws).
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (caches the second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)). Used for Gaussian-scale sampling
  /// and heavy-tailed per-tile load distributions.
  double lognormal(double mu, double sigma);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // stream selector, always odd
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gaurast
