#include "common/chart.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/error.hpp"

namespace gaurast {

BarChart::BarChart(std::string title, std::string unit)
    : title_(std::move(title)), unit_(std::move(unit)) {}

void BarChart::add_bar(const std::string& label, double value) {
  GAURAST_CHECK_MSG(value >= 0.0, "negative bar value " << value);
  bars_.push_back({label, value});
}

void BarChart::print(std::ostream& os, int width) const {
  GAURAST_CHECK(width > 0);
  os << title_ << (unit_.empty() ? "" : " [" + unit_ + "]") << '\n';
  if (bars_.empty()) return;
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const ChartBar& b : bars_) {
    max_value = std::max(max_value, b.value);
    label_width = std::max(label_width, b.label.size());
  }
  for (const ChartBar& b : bars_) {
    const int filled =
        max_value > 0.0
            ? static_cast<int>(b.value / max_value * width + 0.5)
            : 0;
    os << "  " << std::left << std::setw(static_cast<int>(label_width))
       << b.label << " |" << std::string(static_cast<std::size_t>(filled), '#')
       << std::string(static_cast<std::size_t>(width - filled), ' ') << "| "
       << std::setprecision(3) << b.value << '\n';
  }
}

void BarChart::print_dat(std::ostream& os) const {
  os << "# " << title_ << (unit_.empty() ? "" : " (" + unit_ + ")") << '\n';
  for (const ChartBar& b : bars_) {
    os << b.label << ' ' << b.value << '\n';
  }
}

}  // namespace gaurast
