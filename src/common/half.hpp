// IEEE 754 binary16 (half precision) emulation.
//
// The GauRast FP16 variant (paper Sec. V-C, GSCore comparison) computes the
// Gaussian datapath in half precision. We emulate binary16 in software:
// values are stored as 16-bit patterns and every arithmetic operation
// round-trips through float with round-to-nearest-even conversion, which is
// exactly the behaviour of an FP16 FMA-less datapath that normalizes after
// each operation.
#pragma once

#include <cstdint>

namespace gaurast {

/// Converts a float to the nearest IEEE binary16 bit pattern
/// (round-to-nearest-even, with overflow to infinity and gradual underflow
/// to subnormals).
std::uint16_t float_to_half_bits(float value);

/// Converts an IEEE binary16 bit pattern to float (exact).
float half_bits_to_float(std::uint16_t bits);

/// Value type wrapping a binary16 pattern. Arithmetic is performed in float
/// and rounded back to binary16 after every operation.
class Half {
 public:
  Half() = default;
  explicit Half(float value) : bits_(float_to_half_bits(value)) {}

  static Half from_bits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return half_bits_to_float(bits_); }
  std::uint16_t bits() const { return bits_; }

  bool is_nan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  bool is_inf() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) == 0;
  }

  friend Half operator+(Half a, Half b) {
    return Half(a.to_float() + b.to_float());
  }
  friend Half operator-(Half a, Half b) {
    return Half(a.to_float() - b.to_float());
  }
  friend Half operator*(Half a, Half b) {
    return Half(a.to_float() * b.to_float());
  }
  friend Half operator/(Half a, Half b) {
    return Half(a.to_float() / b.to_float());
  }
  friend bool operator==(Half a, Half b) { return a.bits_ == b.bits_; }
  friend bool operator!=(Half a, Half b) { return !(a == b); }

 private:
  std::uint16_t bits_ = 0;
};

/// Rounds a float through binary16 and back; convenience for datapaths that
/// keep float storage but model FP16 unit precision.
inline float round_to_half(float value) {
  return half_bits_to_float(float_to_half_bits(value));
}

}  // namespace gaurast
