#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gaurast {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GAURAST_CHECK(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  GAURAST_CHECK_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, expected "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << quote(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_ratio(double value, int digits) {
  return format_fixed(value, digits) + "x";
}

std::string format_time_ms(double ms) {
  if (ms < 0.1) return format_fixed(ms * 1000.0, 1) + " us";
  if (ms < 1000.0) return format_fixed(ms, ms < 10 ? 2 : 1) + " ms";
  return format_fixed(ms / 1000.0, 2) + " s";
}

std::string format_energy_mj(double mj) {
  if (mj < 0.1) return format_fixed(mj * 1000.0, 1) + " uJ";
  if (mj < 1000.0) return format_fixed(mj, mj < 10 ? 2 : 1) + " mJ";
  return format_fixed(mj / 1000.0, 2) + " J";
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace gaurast
