#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/error.hpp"

namespace gaurast {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  GAURAST_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{default_value, help, std::nullopt, false, {}};
}

void CliParser::add_repeatable_flag(const std::string& name,
                                    const std::string& help) {
  GAURAST_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{"", help, std::nullopt, true, {}};
}

bool CliParser::parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw CliParseError("unknown flag --" + name +
                          "; run with --help to list supported flags");
    }
    if (!have_value) {
      // Boolean-style flags (default "true"/"false") may omit the value.
      const bool boolish = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      // A lookahead that is itself a --flag is never consumed as a value,
      // so `--out --synthetic 5` errors instead of eating `--synthetic`.
      const bool next_is_flag =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (boolish && (i + 1 >= argc || next_is_flag)) {
        value = "true";
      } else if (i + 1 < argc && !next_is_flag) {
        value = argv[++i];
      } else {
        throw CliParseError("flag --" + name +
                            " needs a value; run with --help for usage");
      }
    }
    it->second.value = value;  // last occurrence, so set_flags() still works
    if (it->second.repeatable) it->second.values.push_back(value);
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  GAURAST_CHECK_MSG(it != flags_.end(), "flag --" << name << " not declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

int CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || !end || *end != '\0') {
    throw CliParseError("flag --" + name + "=" + s + " is not an integer");
  }
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
    throw CliParseError("flag --" + name + "=" + s + " is out of range");
  }
  return static_cast<int>(v);
}

std::vector<std::string> CliParser::set_flags() const {
  std::vector<std::string> names;
  for (const auto& [name, flag] : flags_) {
    if (flag.value.has_value()) names.push_back(name);
  }
  return names;
}

std::uint64_t CliParser::get_uint64(const std::string& name) const {
  const std::string s = get_string(name);
  // strtoull skips whitespace and silently wraps negatives, so accept only
  // strings that start with a digit.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    throw CliParseError("flag --" + name + "=" + s +
                        " is not a non-negative integer");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (!end || *end != '\0') {
    throw CliParseError("flag --" + name + "=" + s +
                        " is not a non-negative integer");
  }
  if (errno == ERANGE) {
    throw CliParseError("flag --" + name + "=" + s + " is out of range");
  }
  return static_cast<std::uint64_t>(v);
}

int CliParser::get_positive_int(const std::string& name) const {
  const int v = get_int(name);
  if (v <= 0) {
    throw CliParseError("flag --" + name + "=" + get_string(name) +
                        " must be a positive integer");
  }
  return v;
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || !end || *end != '\0') {
    throw CliParseError("flag --" + name + "=" + s + " is not a number");
  }
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
    throw CliParseError("flag --" + name + "=" + s + " is out of range");
  }
  return v;
}

std::vector<std::string> CliParser::get_strings(const std::string& name) const {
  const Flag& f = find(name);
  GAURAST_CHECK_MSG(f.repeatable, "flag --" << name << " is not repeatable");
  std::vector<std::string> out;
  for (const std::string& occurrence : f.values) {
    std::size_t begin = 0;
    while (begin <= occurrence.size()) {
      const std::size_t comma = occurrence.find(',', begin);
      const std::size_t end =
          comma == std::string::npos ? occurrence.size() : comma;
      if (end > begin) out.push_back(occurrence.substr(begin, end - begin));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw CliParseError("flag --" + name + "=" + s + " is not boolean");
}

void CliParser::print_usage(std::ostream& os) const {
  os << description_ << "\n\nUsage: " << program_name_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << '\n';
  }
}

}  // namespace gaurast
