#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>

#include "common/error.hpp"

namespace gaurast {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  GAURAST_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      auto it = flags_.find(name);
      GAURAST_CHECK_MSG(it != flags_.end(), "unknown flag --" << name);
      // Boolean-style flags (default "true"/"false") may omit the value.
      const bool boolish = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (boolish && (i + 1 >= argc ||
                      std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else {
        GAURAST_CHECK_MSG(i + 1 < argc, "flag --" << name << " needs a value");
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    GAURAST_CHECK_MSG(it != flags_.end(), "unknown flag --" << name);
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  GAURAST_CHECK_MSG(it != flags_.end(), "flag --" << name << " not declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

int CliParser::get_int(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  GAURAST_CHECK_MSG(end && *end == '\0', "flag --" << name << "=" << s
                                                   << " is not an integer");
  return static_cast<int>(v);
}

double CliParser::get_double(const std::string& name) const {
  const std::string s = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  GAURAST_CHECK_MSG(end && *end == '\0', "flag --" << name << "=" << s
                                                   << " is not a number");
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string s = get_string(name);
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  GAURAST_CHECK_MSG(false, "flag --" << name << "=" << s << " is not boolean");
  return false;
}

void CliParser::print_usage(std::ostream& os) const {
  os << description_ << "\n\nUsage: " << program_name_ << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << '\n';
  }
}

}  // namespace gaurast
