// Annotated mutex primitives — the only locking vocabulary of the project.
//
// gaurast::common::Mutex wraps std::mutex as a Clang Thread Safety Analysis
// capability, MutexLock is the RAII guard the analysis understands, and
// CondVar is a condition variable that waits on a MutexLock. Declare shared
// state with GAURAST_GUARDED_BY(mutex_) next to the Mutex member and every
// clang build proves, at compile time, that the state is only touched with
// the lock held (see common/thread_annotations.hpp). On GCC the annotations
// vanish and these are zero-cost forwarding wrappers.
//
// Condition-wait idiom: write the predicate as an explicit loop so the
// analysis sees the guarded reads happen with the lock held —
//
//   common::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);   // ready_ is GAURAST_GUARDED_BY(mutex_)
//
// (a predicate lambda, as in std::condition_variable::wait(lock, pred),
// would be analyzed as a separate function that appears to read ready_
// without the lock).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace gaurast::common {

class GAURAST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GAURAST_ACQUIRE() { mutex_.lock(); }
  void unlock() GAURAST_RELEASE() { mutex_.unlock(); }
  bool try_lock() GAURAST_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII lock for a Mutex; the analysis tracks the capability for the
/// lifetime of the scope. CondVar::wait releases and reacquires it through
/// the underlying std::unique_lock, which is invisible to (and safe under)
/// the analysis: the capability is held both before and after the wait.
class GAURAST_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GAURAST_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() GAURAST_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over MutexLock. Purely a rendezvous point — it guards
/// nothing itself, so it carries no capability annotations.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock` and sleeps; the lock is reacquired before
  /// return. Spurious wakeups happen: always wait in a predicate loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait: returns false if `timeout_ms` elapsed without a notify,
  /// true otherwise. The same predicate-loop discipline applies — this is
  /// for interruptible periodic work (re-check the stop flag, then the
  /// deadline), not for synchronization by timeout.
  bool wait_for(MutexLock& lock, int timeout_ms) {
    return cv_.wait_for(lock.lock_, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gaurast::common
