// Clang Thread Safety Analysis attribute macros.
//
// These wrap Clang's capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so lock
// discipline is proven at compile time on every clang build: declare which
// mutex guards which state (GAURAST_GUARDED_BY), which functions must be
// called with a lock held (GAURAST_REQUIRES) or must not be
// (GAURAST_EXCLUDES), and `-Wthread-safety -Werror` (enabled for all clang
// builds in the top-level CMakeLists) rejects any access that violates the
// declared discipline. On compilers without the analysis (GCC, MSVC) every
// macro expands to nothing, so the annotations are pure documentation there
// and the build is unchanged.
//
// Use the annotated gaurast::common::Mutex / MutexLock / CondVar wrappers
// (common/mutex.hpp) rather than raw std primitives — the analysis only
// sees capabilities it has been told about, and tools/lint_invariants.py
// enforces that nothing outside src/common and src/runtime touches the raw
// std types.
#pragma once

#if defined(__clang__)
#define GAURAST_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GAURAST_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Marks a class as a capability (lockable). The string argument names the
/// capability kind in diagnostics, e.g. GAURAST_CAPABILITY("mutex").
#define GAURAST_CAPABILITY(x) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (e.g. MutexLock).
#define GAURAST_SCOPED_CAPABILITY \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define GAURAST_GUARDED_BY(x) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the pointed-to data (not the pointer itself) is guarded.
#define GAURAST_PT_GUARDED_BY(x) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller.
#define GAURAST_REQUIRES(...) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return). With no
/// argument, the annotated member function acquires `this`.
#define GAURAST_ACQUIRE(...) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define GAURAST_RELEASE(...) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts to acquire; the first argument is the return value
/// that signals success, e.g. GAURAST_TRY_ACQUIRE(true).
#define GAURAST_TRY_ACQUIRE(...) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (the function acquires them
/// itself; holding them on entry would self-deadlock a non-recursive mutex).
#define GAURAST_EXCLUDES(...) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts at runtime (by contract, not by code) that the capability is
/// held; informs the analysis without acquiring anything.
#define GAURAST_ASSERT_CAPABILITY(x) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability.
#define GAURAST_RETURN_CAPABILITY(x) \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where the
/// locking pattern is correct but inexpressible; every use needs a comment
/// saying why.
#define GAURAST_NO_THREAD_SAFETY_ANALYSIS \
  GAURAST_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
