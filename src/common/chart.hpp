// ASCII bar charts for the figure-reproducing benches.
//
// The paper's evaluation artifacts are mostly bar charts (Figs. 4, 10, 11);
// rendering the same series as text bars next to the tables makes a bench
// run visually comparable to the paper page without any plotting
// dependency. Also emits gnuplot-ready .dat blocks for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gaurast {

/// One bar: label + value (values must be >= 0).
struct ChartBar {
  std::string label;
  double value = 0.0;
};

/// A grouped bar chart: one group of bars per series entry.
class BarChart {
 public:
  explicit BarChart(std::string title, std::string unit = "");

  void add_bar(const std::string& label, double value);

  /// Renders horizontal bars scaled to `width` characters.
  void print(std::ostream& os, int width = 48) const;

  /// Emits a two-column gnuplot .dat block (label value).
  void print_dat(std::ostream& os) const;

  std::size_t size() const { return bars_.size(); }

 private:
  std::string title_;
  std::string unit_;
  std::vector<ChartBar> bars_;
};

}  // namespace gaurast
