// Tiny command-line flag parser for examples and bench harnesses.
//
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gaurast {

/// User-facing command-line parse error (unknown flag, missing value).
/// Unlike GAURAST_CHECK failures these carry no file/line internals: the
/// message is meant to be printed verbatim to the end user.
class CliParseError : public Error {
 public:
  explicit CliParseError(const std::string& what) : Error(what) {}
};

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Declares a flag with a default value (string form) and help text.
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Declares a flag that may be given multiple times (and whose value may
  /// itself be a comma-separated list); read it back with get_strings().
  /// Repeatable flags have no default — absent means an empty list.
  void add_repeatable_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws gaurast::CliParseError on unknown flags or malformed input; the
  /// message names the offending flag and suggests --help.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  int get_int(const std::string& name) const;
  /// Full-range non-negative 64-bit value (PRNG seeds); rejects signs,
  /// non-integers and overflow.
  std::uint64_t get_uint64(const std::string& name) const;
  /// Like get_int but additionally rejects values <= 0 (sizes, counts).
  int get_positive_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Every value of a repeatable flag, in command-line order, with each
  /// occurrence additionally split on commas ("--shard a:1 --shard b:2,c:3"
  /// yields three entries). Empty list when the flag was never given.
  std::vector<std::string> get_strings(const std::string& name) const;

  /// Positional arguments left after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of flags the user explicitly set (not defaults), in lexicographic
  /// order. Lets multi-command drivers reject flags that are declared
  /// globally but meaningless for the active command.
  std::vector<std::string> set_flags() const;

  void print_usage(std::ostream& os) const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
    bool repeatable = false;
    std::vector<std::string> values;  ///< repeatable flags only
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gaurast
