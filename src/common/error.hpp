// Error handling primitives shared by every gaurast library.
//
// Invariant violations in simulator configuration or datapath wiring are
// programming errors, not recoverable conditions, so the CHECK macros throw
// gaurast::Error which carries the failing expression and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gaurast {

/// Exception type thrown on contract violations (bad configs, broken
/// invariants). Carries a formatted message with source location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "GAURAST_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gaurast

/// Always-on contract check; throws gaurast::Error on failure.
#define GAURAST_CHECK(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::gaurast::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                        \
  } while (false)

/// Contract check with a streamed message: GAURAST_CHECK_MSG(x > 0, "x=" << x)
#define GAURAST_CHECK_MSG(expr, stream_expr)                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream gaurast_check_os_;                               \
      gaurast_check_os_ << stream_expr;                                   \
      ::gaurast::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                             gaurast_check_os_.str());    \
    }                                                                     \
  } while (false)

/// Debug-only contract check for per-element invariants inside hot loops.
/// Active in Debug builds (same throw-on-failure semantics as
/// GAURAST_CHECK); compiles to nothing in Release so validated-once data
/// (e.g. splat depths checked at workload build) is not re-checked per
/// instance on the hot path.
#ifdef NDEBUG
// sizeof keeps expr's operands odr-referenced without evaluating them, so a
// variable used only in a DCHECK doesn't become -Wunused in Release.
#define GAURAST_DCHECK(expr)     \
  do {                           \
    (void)sizeof((expr) ? 1 : 0); \
  } while (false)
#else
#define GAURAST_DCHECK(expr) GAURAST_CHECK(expr)
#endif
