#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace gaurast {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  GAURAST_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  GAURAST_CHECK(count_ > 0);
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GAURAST_CHECK(hi > lo);
  GAURAST_CHECK(bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  GAURAST_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0
                          : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "h[" << lo_ << ',' << hi_ << ")x" << counts_.size() << ':';
  for (auto c : counts_) os << ' ' << c;
  return os.str();
}

}  // namespace gaurast
