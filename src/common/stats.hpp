// Streaming summary statistics and histograms.
//
// Used by the simulators (per-tile occupancy, queue depths, per-pixel blend
// depth) and by the workload calibration machinery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gaurast {

/// Welford streaming accumulator: count, mean, variance, min, max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bin linear histogram over [lo, hi); out-of-range samples clamp into
/// the first/last bin so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Value below which `q` (0..1) of the mass lies (linear within a bin).
  double quantile(double q) const;

  /// Compact one-line render for logs: "h[0,10)x8: 3 1 0 ...".
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gaurast
