// Fork-join worker spawning — the project's only sanctioned way to run
// short-lived intra-frame parallelism outside the runtime's ThreadPool.
//
// The pipeline kernels (Step-2 parallel binning, Step-3 tile raster) fan a
// frame's work across N worker threads that live exactly as long as the
// call; tools/lint_invariants.py forbids naked std::thread outside
// src/common and src/runtime, so they use this helper instead. Long-lived
// concurrency (serving, stage pipelines) belongs on runtime::ThreadPool,
// whose queues are bounded and whose shared state is lock-annotated.
#pragma once

#include <cstddef>
#include <functional>

namespace gaurast::common {

/// Runs body(worker) for every worker index in [0, workers) on `workers`
/// freshly spawned threads and joins them all before returning. Every
/// worker gets its own thread (worker 0 included), so thread_local state in
/// `body` — e.g. pipeline::RasterScratch — behaves identically for all
/// indices. An exception escaping `body` terminates the process, exactly
/// like an exception escaping a raw std::thread: keep bodies nonthrowing.
void parallel_for_workers(std::size_t workers,
                          const std::function<void(std::size_t)>& body);

}  // namespace gaurast::common
