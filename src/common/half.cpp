#include "common/half.hpp"

#include <bit>
#include <cstring>

namespace gaurast {

namespace {
std::uint32_t float_bits(float f) {
  std::uint32_t u;
  static_assert(sizeof(u) == sizeof(f));
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
}  // namespace

std::uint16_t float_to_half_bits(float value) {
  const std::uint32_t f = float_bits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mantissa = f & 0x7FFFFFu;

  if (((f >> 23) & 0xFFu) == 0xFFu) {
    // Inf or NaN. Preserve NaN-ness by forcing a mantissa bit.
    const std::uint16_t nan_payload =
        mantissa != 0 ? static_cast<std::uint16_t>(0x0200u | (mantissa >> 13))
                      : static_cast<std::uint16_t>(0);
    return static_cast<std::uint16_t>(sign | 0x7C00u | nan_payload);
  }

  if (exponent >= 0x1F) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exponent <= 0) {
    // Subnormal half or zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);  // underflow
    // Add implicit bit, then shift into subnormal position.
    mantissa |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exponent);
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  // Normal case: round mantissa from 23 to 10 bits, to nearest even.
  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t rem = mantissa & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {
      // Mantissa overflow bumps the exponent.
      half_mant = 0;
      if (exponent + 1 >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00u);
      return static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | half_mant);
}

float half_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1Fu;
  std::uint32_t mantissa = bits & 0x3FFu;

  if (exponent == 0x1Fu) {
    // Inf / NaN.
    return bits_float(sign | 0x7F800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalize.
    std::int32_t e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x400u) == 0);
    mantissa &= 0x3FFu;
    const std::uint32_t f_exp = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_float(sign | (f_exp << 23) | (mantissa << 13));
  }
  const std::uint32_t f_exp = exponent - 15 + 127;
  return bits_float(sign | (f_exp << 23) | (mantissa << 13));
}

}  // namespace gaurast
