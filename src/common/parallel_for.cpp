#include "common/parallel_for.hpp"

#include <thread>
#include <vector>

namespace gaurast::common {

void parallel_for_workers(std::size_t workers,
                          const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t worker = 0; worker < workers; ++worker) {
    threads.emplace_back([&body, worker] { body(worker); });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace gaurast::common
