#include "common/prng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gaurast {

Pcg32::Pcg32(std::uint64_t seed) {
  SplitMix64 mix(seed);
  state_ = mix.next();
  inc_ = mix.next() | 1ULL;
  // Advance once so trivially related seeds diverge immediately.
  (void)next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  GAURAST_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::uniform() {
  // 53 random bits -> double in [0, 1).
  const std::uint64_t bits = next_u64() >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so the log is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Pcg32::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Pcg32::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Pcg32::exponential(double lambda) {
  GAURAST_CHECK(lambda > 0.0);
  return -std::log(1.0 - uniform()) / lambda;
}

}  // namespace gaurast
