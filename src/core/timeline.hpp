// Tile-level timing engine shared by the functional hardware rasterizer and
// the full-scale profile simulator.
//
// Execution model (paper Fig. 7(b)): the dispatch controller hands tiles to
// rasterizer modules as they free up. Within a module, ping-pong tile
// buffers overlap the memory fill of the next tile with PE-block compute on
// the current one; a tile's compute can only start once its fill completed
// AND the previous tile's compute finished (the PE block is shared), and a
// fill can only start once the buffer it targets was released.
//
// The dispatch controller feeds PEs from a shared per-tile pair queue
// (work-conserving), so a tile's compute time is ceil(pairs / (PEs x
// pair-rate)) plus pipeline fill/drain — the per-cycle detailed simulator
// measures the same quantity event-by-event and tests validate the two
// against each other (the repo's analogue of the paper's RTL-vs-simulator
// validation).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "sim/kernel.hpp"

namespace gaurast::core {

/// The work one tile presents to a module.
struct TileLoad {
  std::uint64_t pairs = 0;       ///< primitive-pixel pairs to evaluate
  std::uint64_t fill_bytes = 0;  ///< primitive + pixel-state traffic
};

/// Timing result for one module's tile sequence.
struct ModuleTimelineResult {
  sim::Cycle busy_cycles = 0;     ///< cycle the last compute retires
  sim::Cycle compute_cycles = 0;  ///< sum of per-tile compute times
  sim::Cycle stall_cycles = 0;    ///< compute waiting on fills
  std::uint64_t pairs = 0;
};

/// Computes one tile's PE-block compute cycles for a config.
sim::Cycle tile_compute_cycles(const TileLoad& tile,
                               const RasterizerConfig& config);

/// Computes one tile's fill cycles through the module's memory interface.
sim::Cycle tile_fill_cycles(const TileLoad& tile,
                            const RasterizerConfig& config);

/// Runs the ping-pong timeline for one module over its tile sequence.
ModuleTimelineResult run_module_timeline(const std::vector<TileLoad>& tiles,
                                         const RasterizerConfig& config);

/// Dispatches tiles across all modules (greedy earliest-available, matching
/// the dispatch controller) and returns the whole-design makespan.
struct DesignTimelineResult {
  sim::Cycle makespan_cycles = 0;
  double runtime_ms = 0.0;
  double utilization = 0.0;  ///< pairs / (makespan * peak pair rate)
  std::uint64_t pairs = 0;
  sim::Cycle stall_cycles = 0;  ///< summed over modules
};

DesignTimelineResult run_design_timeline(const std::vector<TileLoad>& tiles,
                                         const RasterizerConfig& config);

}  // namespace gaurast::core
