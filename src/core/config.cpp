#include "core/config.hpp"

#include "common/error.hpp"

namespace gaurast::core {

void RasterizerConfig::validate() const {
  GAURAST_CHECK(pes_per_module > 0 && pes_per_module <= 1024);
  GAURAST_CHECK(module_count > 0 && module_count <= 256);
  GAURAST_CHECK(clock_ghz > 0.0 && clock_ghz <= 4.0);
  GAURAST_CHECK(tile_size > 0 && tile_size <= 64);
  GAURAST_CHECK(tile_buffer_bytes >= 1024);
  GAURAST_CHECK(mem_bytes_per_cycle > 0.0);
  GAURAST_CHECK(pipeline_depth >= 1);
  // The tile buffer must at least hold the pixel state plus one primitive.
  const std::size_t pixel_bytes =
      static_cast<std::size_t>(pixels_per_tile()) * pixel_state_bytes(precision);
  GAURAST_CHECK_MSG(tile_buffer_bytes >
                        pixel_bytes + gaussian_primitive_bytes(precision),
                    "tile buffer too small for pixel state");
}

RasterizerConfig RasterizerConfig::prototype16() {
  RasterizerConfig c;
  c.pes_per_module = 16;
  c.module_count = 1;
  c.clock_ghz = 1.0;
  c.precision = Precision::kFp32;
  return c;
}

RasterizerConfig RasterizerConfig::scaled240() {
  RasterizerConfig c = prototype16();
  c.module_count = 15;
  return c;
}

RasterizerConfig RasterizerConfig::scaled300() {
  RasterizerConfig c = prototype16();
  c.module_count = 15;
  c.pes_per_module = 20;
  return c;
}

RasterizerConfig RasterizerConfig::fp16(int pes, int modules) {
  RasterizerConfig c = prototype16();
  c.precision = Precision::kFp16;
  c.pes_per_module = pes;
  c.module_count = modules;
  return c;
}

std::size_t gaussian_primitive_bytes(Precision precision) {
  return 9 * (precision == Precision::kFp16 ? 2 : 4);
}

std::size_t triangle_primitive_bytes(Precision precision) {
  return 9 * (precision == Precision::kFp16 ? 2 : 4);
}

std::size_t pixel_state_bytes(Precision precision) {
  return 4 * (precision == Precision::kFp16 ? 2 : 4);  // RGB + T
}

}  // namespace gaurast::core
