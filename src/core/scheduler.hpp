// CUDA-collaborative scheduling model (paper Sec. IV-C, Fig. 8).
//
// Under GauRast, the CUDA cores keep Steps 1-2 (preprocessing + sorting)
// while the enhanced rasterizer executes Step 3; consecutive frames pipeline
// so the steady-state frame interval is max(T_steps12, T_step3) rather than
// the sum. This module turns per-stage times into end-to-end FPS for the
// three deployment modes compared in Fig. 11: CUDA-only, GauRast
// non-pipelined (ablation), and GauRast pipelined.
#pragma once

#include <vector>

#include "gpu/cost_model.hpp"

namespace gaurast::core {

struct EndToEndResult {
  // Inputs echoed for reporting.
  double stage12_ms = 0.0;        ///< Steps 1-2 on the CUDA cores
  double cuda_raster_ms = 0.0;    ///< Step 3 on the CUDA cores (baseline)
  double gaurast_raster_ms = 0.0; ///< Step 3 on the enhanced rasterizer

  /// Baseline: everything on the CUDA cores, sequential.
  double cuda_only_frame_ms() const { return stage12_ms + cuda_raster_ms; }
  double cuda_only_fps() const { return 1000.0 / cuda_only_frame_ms(); }

  /// GauRast without cross-frame pipelining (ablation): stages serialize.
  double serial_frame_ms() const { return stage12_ms + gaurast_raster_ms; }
  double serial_fps() const { return 1000.0 / serial_frame_ms(); }

  /// GauRast with CUDA-collaborative pipelining: steady-state interval is
  /// the slower of the two pipeline halves.
  double pipelined_frame_ms() const {
    return stage12_ms > gaurast_raster_ms ? stage12_ms : gaurast_raster_ms;
  }
  double pipelined_fps() const { return 1000.0 / pipelined_frame_ms(); }

  /// First-frame latency under pipelining (fill the pipeline once).
  double pipeline_latency_ms() const {
    return stage12_ms + gaurast_raster_ms;
  }

  double end_to_end_speedup() const {
    return cuda_only_frame_ms() / pipelined_frame_ms();
  }
  double raster_speedup() const {
    return gaurast_raster_ms > 0.0 ? cuda_raster_ms / gaurast_raster_ms : 0.0;
  }
};

/// Combines the GPU cost model's stage times with a GauRast Step-3 runtime.
EndToEndResult schedule_frame(const gpu::StageTimes& cuda_times,
                              double gaurast_raster_ms);

/// Simulates `frames` frames through the two-stage pipeline explicitly
/// (Fig. 8's timeline) and returns the completion time of the last frame —
/// used by tests to confirm the closed-form steady-state interval.
double simulate_pipeline_ms(double stage12_ms, double stage3_ms, int frames);

/// Per-frame workload of a camera trajectory (stage times vary view to
/// view as the visible Gaussian set changes).
struct FrameWork {
  double stage12_ms = 0.0;
  double stage3_ms = 0.0;
};

/// Result of pushing a varying frame sequence through the pipeline.
struct PipelineSeriesResult {
  std::vector<double> completion_ms;  ///< absolute completion time per frame
  std::vector<double> interval_ms;    ///< frame-to-frame delivery interval

  double mean_interval_ms() const;
  double p99_interval_ms() const;  ///< worst-case-ish delivery jitter
  double fps() const { return 1000.0 / mean_interval_ms(); }
};

/// Explicit two-resource pipeline over a varying per-frame workload — the
/// trajectory-level version of Fig. 8, used to study frame-time jitter.
PipelineSeriesResult simulate_pipeline_series(
    const std::vector<FrameWork>& frames);

}  // namespace gaurast::core
