#include "core/detailed_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace gaurast::core {

namespace {

enum class BufferState { kFree, kFilling, kLatency, kReady, kDraining };

/// One ping-pong tile buffer.
struct Buffer {
  BufferState state = BufferState::kFree;
  std::size_t tile_index = 0;
  std::uint64_t bytes_remaining = 0;
  sim::Cycle latency_remaining = 0;
  std::uint64_t sequence = 0;  ///< fill order, for in-order consumption
};

/// The whole module as one clocked unit: a fetcher filling buffers through
/// a serialized memory interface, and a PE block draining them in order.
class DetailedModule final : public sim::ClockedModule {
 public:
  DetailedModule(const std::vector<TileLoad>& tiles,
                 const RasterizerConfig& config)
      : tiles_(tiles), config_(config) {}

  void evaluate(sim::Cycle) override {
    tick_fetch();
    tick_pe_block();
  }

  void commit(sim::Cycle) override {}

  bool idle() const override {
    return next_tile_to_fill_ >= tiles_.size() && !pe_active_ &&
           buffers_[0].state == BufferState::kFree &&
           buffers_[1].state == BufferState::kFree;
  }

  std::string name() const override { return "gaurast.detailed_module"; }

  std::uint64_t pairs_retired() const { return pairs_retired_; }
  std::uint64_t fill_stalls() const { return fill_stalls_; }

 private:
  void tick_fetch() {
    // Advance latency pipes.
    for (Buffer& b : buffers_) {
      if (b.state == BufferState::kLatency) {
        if (b.latency_remaining > 0) --b.latency_remaining;
        if (b.latency_remaining == 0) b.state = BufferState::kReady;
      }
    }
    // Stream bytes of the in-flight transfer (one transfer at a time).
    for (Buffer& b : buffers_) {
      if (b.state != BufferState::kFilling) continue;
      const auto step = static_cast<std::uint64_t>(
          std::ceil(config_.mem_bytes_per_cycle));
      b.bytes_remaining = b.bytes_remaining > step ? b.bytes_remaining - step : 0;
      if (b.bytes_remaining == 0) {
        b.state = BufferState::kLatency;
        b.latency_remaining = config_.mem_latency;
      }
      return;  // memory interface is busy this cycle
    }
    // Start the next fill into a free buffer.
    if (next_tile_to_fill_ >= tiles_.size()) return;
    for (Buffer& b : buffers_) {
      if (b.state == BufferState::kFree) {
        b.state = BufferState::kFilling;
        b.tile_index = next_tile_to_fill_;
        b.bytes_remaining = std::max<std::uint64_t>(
            tiles_[next_tile_to_fill_].fill_bytes, 1);
        b.sequence = fill_sequence_++;
        ++next_tile_to_fill_;
        return;
      }
    }
  }

  void tick_pe_block() {
    if (!pe_active_) {
      // Consume the oldest Ready buffer (in fill order).
      Buffer* pick = nullptr;
      for (Buffer& b : buffers_) {
        if (b.state == BufferState::kReady &&
            (pick == nullptr || b.sequence < pick->sequence)) {
          pick = &b;
        }
      }
      if (pick == nullptr) {
        if (next_tile_to_fill_ < tiles_.size() ||
            buffers_[0].state != BufferState::kFree ||
            buffers_[1].state != BufferState::kFree) {
          ++fill_stalls_;
        }
        return;
      }
      pick->state = BufferState::kDraining;
      active_buffer_ = pick;
      pe_active_ = true;
      drain_remaining_ = static_cast<sim::Cycle>(config_.pipeline_depth);
      pairs_remaining_ = tiles_[pick->tile_index].pairs;
      return;  // issue starts next cycle, matching the analytic +depth term
    }
    // The dispatch controller feeds all PEs from the shared pair queue.
    const auto rate = static_cast<std::uint64_t>(config_.pes_per_module) *
                      static_cast<std::uint64_t>(config_.pairs_per_cycle_per_pe());
    if (pairs_remaining_ > 0) {
      const std::uint64_t done = std::min(pairs_remaining_, rate);
      pairs_remaining_ -= done;
      pairs_retired_ += done;
    } else {
      // Pipeline drain after the last issue.
      if (drain_remaining_ > 1) {
        --drain_remaining_;
        return;
      }
      active_buffer_->state = BufferState::kFree;
      active_buffer_ = nullptr;
      pe_active_ = false;
    }
  }

  const std::vector<TileLoad>& tiles_;
  RasterizerConfig config_;
  Buffer buffers_[2];
  std::size_t next_tile_to_fill_ = 0;
  std::uint64_t fill_sequence_ = 0;
  std::uint64_t pairs_remaining_ = 0;
  bool pe_active_ = false;
  Buffer* active_buffer_ = nullptr;
  sim::Cycle drain_remaining_ = 0;
  std::uint64_t pairs_retired_ = 0;
  std::uint64_t fill_stalls_ = 0;
};

}  // namespace

DetailedSimResult run_detailed_module_sim(const std::vector<TileLoad>& tiles,
                                          const RasterizerConfig& config,
                                          sim::Cycle max_cycles) {
  config.validate();
  DetailedModule module(tiles, config);
  sim::SimKernel kernel;
  kernel.add_module(&module);
  const sim::Cycle cycles = kernel.run(max_cycles);

  DetailedSimResult result;
  result.cycles = cycles;
  result.pairs = module.pairs_retired();
  result.fill_stall_cycles = module.fill_stalls();
  const double slots = static_cast<double>(cycles) *
                       static_cast<double>(config.pes_per_module) *
                       static_cast<double>(config.pairs_per_cycle_per_pe());
  result.utilization =
      slots > 0.0 ? static_cast<double>(result.pairs) / slots : 0.0;
  return result;
}

}  // namespace gaurast::core
