#include "core/device.hpp"

#include <utility>

#include "common/error.hpp"

namespace gaurast::core {

GauRastDevice::GauRastDevice(RasterizerConfig rasterizer, gpu::GpuConfig host,
                             EnergyTable energy)
    : rasterizer_(rasterizer),
      host_(std::move(host)),
      energy_table_(energy),
      hw_(rasterizer),
      cuda_(host_),
      area_(rasterizer, AreaTable{}),
      energy_(rasterizer, energy) {
  rasterizer_.validate();
}

double GauRastDevice::stage12_ms_for(const pipeline::FrameResult& frame) const {
  // Build an ad-hoc profile from the frame's *measured* workload so the
  // CUDA model prices exactly what this frame did.
  scene::SceneProfile p;
  p.name = "frame";
  p.gaussian_count = frame.preprocess_stats.gaussians_in;
  p.width = frame.workload.grid.width;
  p.height = frame.workload.grid.height;
  p.sh_degree = 3;
  p.tile_instances_per_gaussian =
      frame.preprocess_stats.gaussians_in == 0
          ? 0.0
          : static_cast<double>(frame.workload.instance_count()) /
                static_cast<double>(frame.preprocess_stats.gaussians_in);
  p.pairs_per_pixel = 1.0;  // unused by the stage 1-2 models
  return cuda_.preprocess_ms(p) + cuda_.sort_ms(p);
}

DeviceGaussianFrame GauRastDevice::raster_prepared(
    pipeline::FrameResult& frame,
    const pipeline::RendererConfig& pipeline_config) const {
  // Step 3 on the enhanced rasterizer. Non-const so the image can be moved
  // into the frame below instead of copied a second time.
  HwRasterResult hw = hw_.rasterize_gaussians(frame.splats, frame.workload,
                                              pipeline_config.blend);

  DeviceGaussianFrame out;
  out.image = hw.image;
  out.pairs_evaluated = hw.pairs_evaluated;
  out.utilization = hw.utilization();
  out.raster_model_ms = hw.runtime_ms();
  out.stage12_model_ms = stage12_ms_for(frame);
  out.pipelined_frame_ms =
      out.stage12_model_ms > out.raster_model_ms ? out.stage12_model_ms
                                                 : out.raster_model_ms;
  const EnergyBreakdown proto =
      energy_.from_counters(hw.counters, hw.runtime_ms());
  out.energy_soc = energy_.at_soc_node(proto);
  frame.image = std::move(hw.image);
  frame.raster_stats.pairs_evaluated = hw.pairs_evaluated;
  frame.raster_stats.pairs_blended = hw.pairs_blended;
  return out;
}

DeviceGaussianFrame GauRastDevice::render(
    const scene::GaussianScene& scene, const scene::Camera& camera,
    const pipeline::RendererConfig& pipeline_config,
    pipeline::FrameResult* out_frame) const {
  const pipeline::GaussianRenderer renderer(pipeline_config);
  // Steps 1-2 on the "CUDA cores" (functionally here on the CPU).
  pipeline::FrameResult frame = renderer.prepare(scene, camera);
  DeviceGaussianFrame out = raster_prepared(frame, pipeline_config);
  if (out_frame != nullptr) *out_frame = std::move(frame);
  return out;
}

DeviceMeshFrame GauRastDevice::render_mesh(const mesh::TriangleMesh& mesh,
                                           const scene::Camera& camera,
                                           Vec3f background) const {
  const auto prims = mesh::build_primitives(mesh, camera);
  const HwRasterResult hw = hw_.rasterize_triangles(
      prims, camera.width(), camera.height(), background);
  DeviceMeshFrame out;
  out.image = hw.image;
  out.pairs_evaluated = hw.pairs_evaluated;
  out.raster_model_ms = hw.runtime_ms();
  out.utilization = hw.utilization();
  return out;
}

double GauRastDevice::enhancement_area_mm2() const {
  return area_.enhanced_soc_mm2();
}

double GauRastDevice::enhancement_soc_fraction() const {
  return area_.soc_fraction(host_);
}

double GauRastDevice::module_power_w() const {
  return energy_.typical_module_power_w();
}

}  // namespace gaurast::core
