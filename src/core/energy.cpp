#include "core/energy.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "core/pe.hpp"

namespace gaurast::core {

double dvfs_voltage(const EnergyTable& table, double clock_ghz) {
  GAURAST_CHECK(clock_ghz > 0.0);
  const double v = table.nominal_vdd *
                   (0.6 + 0.4 * clock_ghz / table.nominal_clock_ghz);
  return std::clamp(v, 0.7, 1.2);
}

EnergyTable dvfs_scaled_table(const EnergyTable& table, double clock_ghz) {
  const double v_ratio = dvfs_voltage(table, clock_ghz) / table.nominal_vdd;
  EnergyTable out = table;
  const double dyn = v_ratio * v_ratio;
  out.fp_add_pj *= dyn;
  out.fp_mul_pj *= dyn;
  out.fp_div_pj *= dyn;
  out.fp_exp_pj *= dyn;
  out.fp_cmp_pj *= dyn;
  out.sram_pj_per_byte *= dyn;
  out.module_leakage_w *= v_ratio;
  return out;
}

EnergyModel::EnergyModel(RasterizerConfig config, EnergyTable table)
    : config_(config), table_(table) {
  config_.validate();
}

double EnergyModel::op_energy_pj(const char* op_name) const {
  const double scale =
      config_.precision == Precision::kFp16 ? table_.fp16_scale : 1.0;
  const std::string name(op_name);
  if (name == sim::ops::kFp32Add) return table_.fp_add_pj * scale;
  if (name == sim::ops::kFp32Mul) return table_.fp_mul_pj * scale;
  if (name == sim::ops::kFp32Div) return table_.fp_div_pj * scale;
  if (name == sim::ops::kFp32Exp) return table_.fp_exp_pj * scale;
  if (name == sim::ops::kFp32Cmp) return table_.fp_cmp_pj * scale;
  GAURAST_CHECK_MSG(false, "unknown op " << name);
  return 0.0;
}

EnergyBreakdown EnergyModel::from_counters(const sim::CounterSet& counters,
                                           double runtime_ms) const {
  EnergyBreakdown e;
  double datapath_pj = 0.0;
  for (const char* op : {sim::ops::kFp32Add, sim::ops::kFp32Mul,
                         sim::ops::kFp32Div, sim::ops::kFp32Exp,
                         sim::ops::kFp32Cmp}) {
    datapath_pj += static_cast<double>(counters.get(op)) * op_energy_pj(op);
  }
  datapath_pj *= (1.0 + table_.control_overhead);
  const double buffer_bytes =
      static_cast<double>(counters.get(sim::ops::kBufRead) +
                          counters.get(sim::ops::kBufWrite));
  const double buffer_pj = buffer_bytes * table_.sram_pj_per_byte *
                           (1.0 + table_.control_overhead);
  e.datapath_mj = datapath_pj * 1e-9;  // pJ -> mJ
  e.buffer_mj = buffer_pj * 1e-9;
  e.leakage_mj = table_.module_leakage_w *
                 static_cast<double>(config_.module_count) * runtime_ms;
  return e;
}

EnergyBreakdown EnergyModel::from_pair_statistics(
    std::uint64_t pairs, double blended_fraction,
    std::uint64_t primitive_fetches, double runtime_ms) const {
  GAURAST_CHECK(blended_fraction >= 0.0 && blended_fraction <= 1.0);
  // Ops per fully-blended pair and per early-rejected pair, from the PE
  // datapath inventory (core/pe.hpp). Rejected pairs stop after the alpha
  // threshold: 4 adds, 7 muls, 1 exp, ~2 cmps.
  const GaussianPairOps full{};
  const double pj_full =
      static_cast<double>(full.adds) * op_energy_pj(sim::ops::kFp32Add) +
      static_cast<double>(full.muls) * op_energy_pj(sim::ops::kFp32Mul) +
      static_cast<double>(full.exps) * op_energy_pj(sim::ops::kFp32Exp) +
      static_cast<double>(full.cmps + 1) * op_energy_pj(sim::ops::kFp32Cmp);
  const double pj_reject =
      4.0 * op_energy_pj(sim::ops::kFp32Add) +
      7.0 * op_energy_pj(sim::ops::kFp32Mul) +
      1.0 * op_energy_pj(sim::ops::kFp32Exp) +
      2.0 * op_energy_pj(sim::ops::kFp32Cmp);

  EnergyBreakdown e;
  const double n = static_cast<double>(pairs);
  const double datapath_pj =
      n * (blended_fraction * pj_full + (1.0 - blended_fraction) * pj_reject) *
      (1.0 + table_.control_overhead);
  const double buffer_pj =
      (n * kBufferBytesPerPair +
       static_cast<double>(primitive_fetches) *
           static_cast<double>(gaussian_primitive_bytes(config_.precision))) *
      table_.sram_pj_per_byte * (1.0 + table_.control_overhead);
  e.datapath_mj = datapath_pj * 1e-9;
  e.buffer_mj = buffer_pj * 1e-9;
  e.leakage_mj = table_.module_leakage_w *
                 static_cast<double>(config_.module_count) * runtime_ms;
  return e;
}

EnergyBreakdown EnergyModel::at_soc_node(const EnergyBreakdown& prototype) const {
  EnergyBreakdown e;
  e.datapath_mj = prototype.datapath_mj * table_.soc_node_scale;
  e.buffer_mj = prototype.buffer_mj * table_.soc_node_scale;
  e.leakage_mj = prototype.leakage_mj * table_.soc_node_scale;
  return e;
}

double EnergyModel::typical_module_power_w() const {
  // One module, every PE retiring one blended pair per cycle.
  const double pairs_per_s = static_cast<double>(config_.pes_per_module) *
                             config_.pairs_per_cycle_per_pe() *
                             config_.clock_ghz * 1e9;
  const GaussianPairOps full{};
  const double pj_pair =
      (static_cast<double>(full.adds) * op_energy_pj(sim::ops::kFp32Add) +
       static_cast<double>(full.muls) * op_energy_pj(sim::ops::kFp32Mul) +
       static_cast<double>(full.exps) * op_energy_pj(sim::ops::kFp32Exp) +
       static_cast<double>(full.cmps + 1) * op_energy_pj(sim::ops::kFp32Cmp) +
       kBufferBytesPerPair * table_.sram_pj_per_byte) *
      (1.0 + table_.control_overhead);
  return pairs_per_s * pj_pair * 1e-12 + table_.module_leakage_w;
}

}  // namespace gaurast::core
