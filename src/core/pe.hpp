// Processing Element functional datapath (paper Fig. 7(c), Table II).
//
// Each PE supports two modes sharing one arithmetic pool:
//   Triangle mode (pre-existing): coordinate shift -> edge-function
//     intersection detection -> barycentric (UV) weight via the dedicated
//     divider -> min-depth color hold.
//   Gaussian mode (the enhancement): coordinate shift -> conic quadratic
//     form + dedicated exponentiation unit -> color weight -> front-to-back
//     accumulation.
//
// The functional arithmetic is byte-identical to the software pipelines
// (pipeline/rasterize.hpp, mesh/raster.hpp) so hardware-model images match
// the software reference exactly; every retired operation is tallied into a
// CounterSet using the *hardware* op inventory (incremental edge evaluation
// for triangles), which feeds the energy model.
#pragma once

#include "core/config.hpp"
#include "mesh/raster.hpp"
#include "pipeline/rasterize.hpp"
#include "sim/counters.hpp"

namespace gaurast::core {

/// Static resource inventory of one PE, as synthesized (paper Sec. IV-B):
/// the triangle rasterizer contributes 9 adders, 9 multipliers and one
/// divider; Gaussian support adds 2 adders, 1 multiplier and 1 exp unit.
struct PeResources {
  int shared_adders = 9;
  int shared_multipliers = 9;
  int triangle_dividers = 1;
  int gaussian_adders = 2;
  int gaussian_multipliers = 1;
  int gaussian_exp_units = 1;

  int total_adders() const { return shared_adders + gaussian_adders; }
  int total_multipliers() const {
    return shared_multipliers + gaussian_multipliers;
  }
};

/// Result of one Gaussian pair evaluation.
struct GaussianPairResult {
  float alpha = 0.0f;    ///< post-clamp alpha
  bool blended = false;  ///< passed the 1/255 threshold and was accumulated
};

/// The PE's Gaussian-mode per-pair operation: evaluates alpha at the pixel
/// and, if above threshold, performs the front-to-back accumulate on
/// `state`. In FP16 mode every intermediate rounds through binary16.
/// Tallies datapath ops into `counters`.
GaussianPairResult pe_gaussian_pair(const pipeline::Splat2D& splat,
                                    Vec2f pixel,
                                    pipeline::PixelBlendState& state,
                                    const pipeline::BlendParams& params,
                                    Precision precision,
                                    sim::CounterSet& counters);

/// The PE's triangle-mode per-pair operation: coverage test, attribute
/// interpolation and min-depth color hold against (depth, color).
/// Returns true when the fragment won the depth test.
bool pe_triangle_pair(const mesh::ScreenTriangle& tri, Vec2f pixel,
                      float& depth_state, Vec3f& color_state,
                      Precision precision, sim::CounterSet& counters);

/// Per-primitive triangle setup cost (the divider use); call once per
/// triangle entering a PE block.
void pe_triangle_setup(sim::CounterSet& counters);

/// Op tallies charged per *fully blended* Gaussian pair, exposed for
/// Table II reproduction and energy-model unit tests.
struct GaussianPairOps {
  std::uint64_t adds = 8;  ///< 2 shift + 2 power sum + 3 accumulate + (1-a)
  std::uint64_t muls = 12; ///< 6 quadratic form + o*exp + T*a + 3 color + T update
  std::uint64_t exps = 1;
  std::uint64_t cmps = 2;  ///< alpha clamp + threshold
};

/// Op tallies charged per covered triangle pair (incremental edge form).
struct TrianglePairOps {
  std::uint64_t adds = 9;  ///< 3 edge increments + depth/attr accumulation
  std::uint64_t muls = 9;  ///< barycentric scale + attribute interpolation
  std::uint64_t cmps = 4;  ///< 3 inside tests + depth compare
};

}  // namespace gaurast::core
