// GauRast hardware rasterizer — functional + cycle model.
//
// Consumes exactly what the CUDA cores hand the enhanced rasterizer under
// the collaborative schedule: the depth-sorted TileWorkload (Gaussian mode)
// or the post-vertex-stage primitive stream (triangle mode). Produces
// (a) the rendered image via the PE functional datapath — bit-identical to
// the software reference in FP32 — and (b) cycle counts via the tile-level
// timeline, plus op counters for the energy model.
#pragma once

#include "core/config.hpp"
#include "core/energy.hpp"
#include "core/timeline.hpp"
#include "gsmath/image.hpp"
#include "mesh/raster.hpp"
#include "pipeline/rasterize.hpp"
#include "sim/counters.hpp"

namespace gaurast::core {

struct HwRasterResult {
  Image image;
  DesignTimelineResult timing;
  sim::CounterSet counters;
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t pairs_blended = 0;
  /// The tile-load sequence the timing was computed from; persist with
  /// core/trace.hpp to replay timing sweeps without re-rendering.
  std::vector<TileLoad> tile_loads;

  double runtime_ms() const { return timing.runtime_ms; }
  double utilization() const { return timing.utilization; }
  double blended_fraction() const {
    return pairs_evaluated == 0
               ? 0.0
               : static_cast<double>(pairs_blended) /
                     static_cast<double>(pairs_evaluated);
  }
};

class HardwareRasterizer {
 public:
  explicit HardwareRasterizer(RasterizerConfig config);

  const RasterizerConfig& config() const { return config_; }

  /// Gaussian mode: rasterizes the sorted splat workload. `params` must
  /// match the software run for image-equality comparisons.
  HwRasterResult rasterize_gaussians(const std::vector<pipeline::Splat2D>& splats,
                                     const pipeline::TileWorkload& work,
                                     const pipeline::BlendParams& params) const;

  /// Triangle mode: rasterizes a post-vertex-stage primitive stream,
  /// preserving the original rasterizer's functionality. Primitives are
  /// binned to tiles and z-buffered per pixel.
  HwRasterResult rasterize_triangles(const std::vector<mesh::ScreenTriangle>& prims,
                                     int width, int height,
                                     Vec3f background) const;

 private:
  RasterizerConfig config_;
};

}  // namespace gaurast::core
