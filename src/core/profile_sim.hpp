// Full-scale GauRast simulation driven by scene workload profiles.
//
// The NeRF-360 scenes induce billions of splat-pixel pairs per frame — far
// beyond what the functional model needs to replay pair-by-pair to predict
// timing. ProfileSimulator instead synthesizes the per-tile load
// distribution from a SceneProfile (total pairs, tile-duplication factor,
// tile-load skew), then runs the *same* tile-level timeline the functional
// hardware model uses. It reports runtime, utilization, and energy at both
// the 28 nm prototype node and the baseline SoC's node.
//
// This is the "cycle-accurate simulator for fast evaluation of the
// scaled-up design" of paper Sec. V-A; tests validate its timeline against
// the per-cycle detailed model on small workloads.
#pragma once

#include "core/config.hpp"
#include "core/energy.hpp"
#include "core/timeline.hpp"
#include "scene/profile.hpp"

namespace gaurast::core {

struct ProfileSimResult {
  DesignTimelineResult timing;
  EnergyBreakdown energy_28nm;
  EnergyBreakdown energy_soc;  ///< scaled to the baseline SoC's node
  std::uint64_t pairs = 0;
  std::uint64_t tile_instances = 0;

  double runtime_ms() const { return timing.runtime_ms; }
  double utilization() const { return timing.utilization; }
  double power_w_soc() const {
    return energy_soc.average_power_w(timing.runtime_ms);
  }
};

class ProfileSimulator {
 public:
  explicit ProfileSimulator(RasterizerConfig config, EnergyTable energy = {});

  /// Simulates one frame of the profile's workload. Deterministic in seed.
  ProfileSimResult simulate(const scene::SceneProfile& profile,
                            std::uint64_t seed = 1) const;

  const RasterizerConfig& config() const { return config_; }

  /// Fraction of evaluated pairs that complete the full blend datapath (the
  /// rest reject at the 1/255 alpha threshold). Tile-based rasterization
  /// evaluates every pixel of a tile against every listed splat, so small
  /// splats reject most pairs; rendered synthetic scenes measure ~0.05-0.3
  /// depending on splat-size mix. 0.15 is the statistical-energy-model
  /// default.
  static constexpr double kBlendedFraction = 0.15;

 private:
  RasterizerConfig config_;
  EnergyModel energy_model_;
};

}  // namespace gaurast::core
