#include "core/pe.hpp"

#include <cmath>

#include "common/half.hpp"

namespace gaurast::core {

namespace {

using sim::ops::kFp32Add;
using sim::ops::kFp32Cmp;
using sim::ops::kFp32Div;
using sim::ops::kFp32Exp;
using sim::ops::kFp32Mul;

/// Rounds through binary16 when the datapath is FP16; identity for FP32.
inline float q(float v, Precision p) {
  return p == Precision::kFp16 ? round_to_half(v) : v;
}

}  // namespace

GaussianPairResult pe_gaussian_pair(const pipeline::Splat2D& splat,
                                    Vec2f pixel,
                                    pipeline::PixelBlendState& state,
                                    const pipeline::BlendParams& params,
                                    Precision precision,
                                    sim::CounterSet& counters) {
  GaussianPairResult result;

  // Subtask 1 — coordinate shift (2 adders).
  const float dx = q(pixel.x - splat.mean.x, precision);
  const float dy = q(pixel.y - splat.mean.y, precision);
  counters.increment(kFp32Add, 2);

  // Subtask 2 — Gaussian probability: power = -1/2 d^T Conic d.
  // 6 multipliers + 2 adders, then the dedicated exp unit.
  const float dx2 = q(dx * dx, precision);
  const float dy2 = q(dy * dy, precision);
  const float dxdy = q(dx * dy, precision);
  const float qa = q(splat.conic.a * dx2, precision);
  const float qc = q(splat.conic.c * dy2, precision);
  const float qb = q(splat.conic.b * dxdy, precision);
  counters.increment(kFp32Mul, 6);
  const float power =
      q(-0.5f * q(qa + qc, precision) - qb, precision);
  counters.increment(kFp32Add, 2);

  // Numerical guard identical to the reference kernel.
  counters.increment(kFp32Cmp, 1);
  if (power > 0.0f) return result;

  const float e = q(std::exp(power), precision);
  counters.increment(kFp32Exp, 1);
  float alpha = q(splat.opacity * e, precision);
  counters.increment(kFp32Mul, 1);
  // Alpha clamp.
  counters.increment(kFp32Cmp, 1);
  if (alpha > params.alpha_max) alpha = params.alpha_max;
  result.alpha = alpha;

  // Threshold: contributions below 1/255 are skipped.
  counters.increment(kFp32Cmp, 1);
  if (alpha < params.alpha_min) return result;

  // Subtask 3 — color weight (T * alpha, then per-channel scale).
  const float w = q(state.transmittance * alpha, precision);
  counters.increment(kFp32Mul, 1);
  const Vec3f weighted{q(splat.color.x * w, precision),
                       q(splat.color.y * w, precision),
                       q(splat.color.z * w, precision)};
  counters.increment(kFp32Mul, 3);

  // Subtask 4 — color accumulation and transmittance update.
  state.accumulated = {q(state.accumulated.x + weighted.x, precision),
                       q(state.accumulated.y + weighted.y, precision),
                       q(state.accumulated.z + weighted.z, precision)};
  counters.increment(kFp32Add, 3);
  const float one_minus = q(1.0f - alpha, precision);
  state.transmittance = q(state.transmittance * one_minus, precision);
  counters.increment(kFp32Add, 1);
  counters.increment(kFp32Mul, 1);

  result.blended = true;
  return result;
}

bool pe_triangle_pair(const mesh::ScreenTriangle& tri, Vec2f pixel,
                      float& depth_state, Vec3f& color_state,
                      Precision precision, sim::CounterSet& counters) {
  // The functional math mirrors mesh::eval_triangle_at exactly (FP32) so
  // hardware images equal the reference renderer. The *counted* ops use the
  // hardware form: three incremental edge updates per pixel step.
  const mesh::TriangleFragment frag = mesh::eval_triangle_at(tri, pixel);
  counters.increment(kFp32Add, 3);   // edge increments
  counters.increment(kFp32Cmp, 3);   // inside tests
  if (!frag.inside) return false;

  // Barycentric weights (3 muls by 1/2A from setup) + attribute
  // interpolation (depth 3 muls/2 adds handled below, color 3 MACs counted
  // as the remaining shared-unit work).
  counters.increment(kFp32Mul, 9);
  counters.increment(kFp32Add, 6);
  counters.increment(kFp32Cmp, 1);   // depth compare

  float depth = frag.depth;
  Vec3f color = frag.color;
  if (precision == Precision::kFp16) {
    depth = round_to_half(depth);
    color = {round_to_half(color.x), round_to_half(color.y),
             round_to_half(color.z)};
  }
  if (depth < depth_state) {
    depth_state = depth;
    color_state = color;
    return true;
  }
  return false;
}

void pe_triangle_setup(sim::CounterSet& counters) {
  counters.increment(kFp32Div, 1);  // 1 / (2 * area)
  counters.increment(kFp32Mul, 2);
  counters.increment(kFp32Add, 5);
}

}  // namespace gaurast::core
