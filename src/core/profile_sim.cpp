#include "core/profile_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace gaurast::core {

ProfileSimulator::ProfileSimulator(RasterizerConfig config, EnergyTable energy)
    : config_(config), energy_model_(config, energy) {
  config_.validate();
}

ProfileSimResult ProfileSimulator::simulate(const scene::SceneProfile& profile,
                                            std::uint64_t seed) const {
  GAURAST_CHECK_MSG(profile.total_pairs() > 0, "empty profile workload");
  const std::uint64_t tiles = profile.tile_count(config_.tile_size);
  GAURAST_CHECK(tiles > 0);

  // Sample per-tile pair loads from a log-normal matched to the profile's
  // coefficient of variation, then renormalize so the total is exact.
  Pcg32 rng(seed ^ 0x9AF1u);
  const double cv = std::max(profile.tile_load_cv, 0.01);
  const double sigma2 = std::log(1.0 + cv * cv);
  const double sigma = std::sqrt(sigma2);
  std::vector<double> raw(tiles);
  double raw_sum = 0.0;
  for (auto& r : raw) {
    r = rng.lognormal(-0.5 * sigma2, sigma);  // mean 1
    raw_sum += r;
  }
  GAURAST_CHECK(raw_sum > 0.0);

  const auto total_pairs = static_cast<double>(profile.total_pairs());
  const auto total_instances = static_cast<double>(profile.tile_instances());
  const double prim_bytes =
      static_cast<double>(gaussian_primitive_bytes(config_.precision));
  const double px_bytes =
      static_cast<double>(pixel_state_bytes(config_.precision)) *
      config_.pixels_per_tile();

  std::vector<TileLoad> loads;
  loads.reserve(tiles);
  std::uint64_t pair_acc = 0;
  std::uint64_t inst_acc = 0;
  for (std::uint64_t t = 0; t < tiles; ++t) {
    const double share = raw[t] / raw_sum;
    TileLoad load;
    load.pairs = static_cast<std::uint64_t>(share * total_pairs);
    // Tile instances track pair load (heavier tiles hold more primitives).
    const auto instances =
        static_cast<std::uint64_t>(share * total_instances);
    load.fill_bytes = static_cast<std::uint64_t>(
        static_cast<double>(instances) * prim_bytes + px_bytes);
    pair_acc += load.pairs;
    inst_acc += instances;
    loads.push_back(load);
  }
  // Rounding remainder goes to the heaviest tile so totals are conserved.
  if (pair_acc < profile.total_pairs()) {
    auto heaviest = std::max_element(
        loads.begin(), loads.end(),
        [](const TileLoad& a, const TileLoad& b) { return a.pairs < b.pairs; });
    heaviest->pairs += profile.total_pairs() - pair_acc;
  }

  ProfileSimResult result;
  result.timing = run_design_timeline(loads, config_);
  result.pairs = profile.total_pairs();
  result.tile_instances = profile.tile_instances();
  result.energy_28nm = energy_model_.from_pair_statistics(
      result.pairs, kBlendedFraction, result.tile_instances,
      result.timing.runtime_ms);
  result.energy_soc = energy_model_.at_soc_node(result.energy_28nm);
  return result;
}

}  // namespace gaurast::core
