// Plain-text (key = value) serialization of RasterizerConfig.
//
// Lets experiments pin a hardware configuration in a versionable file and
// lets the examples/benches accept `--config file` instead of code edits.
// Format: one `key = value` per line, `#` comments, unknown keys rejected.
#pragma once

#include <string>

#include "core/config.hpp"

namespace gaurast::core {

/// Writes every field of the config.
void save_config(const RasterizerConfig& config, const std::string& path);

/// Reads a config written by save_config (or hand-authored). Fields absent
/// from the file keep the prototype16() defaults; unknown keys or malformed
/// values throw gaurast::Error. The result is validate()d before returning.
RasterizerConfig load_config(const std::string& path);

/// String forms used in the file ("fp32" / "fp16").
std::string precision_to_string(Precision precision);
Precision precision_from_string(const std::string& text);

}  // namespace gaurast::core
