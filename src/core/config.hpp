// GauRast enhanced-rasterizer configuration (paper Sec. IV).
//
// One rasterizer module is the unit the paper prototypes: 16 PEs, ping-pong
// tile buffers, dispatch controller and result collector, clocked at 1 GHz in
// 28 nm. The evaluated deployment scales to 15 module instances; the paper
// states a 300-PE total (15 x 16 = 240 — we expose both readings as presets
// and use the stated 300-PE aggregate for headline numbers).
#pragma once

#include <cstddef>

#include "sim/kernel.hpp"

namespace gaurast::core {

enum class Precision { kFp32, kFp16 };

struct RasterizerConfig {
  int pes_per_module = 16;
  int module_count = 1;
  double clock_ghz = 1.0;
  Precision precision = Precision::kFp32;

  int tile_size = 16;  ///< pixels per tile edge (matches 3DGS tiling)

  /// Capacity of each ping-pong tile buffer (bytes). Holds the tile's
  /// primitive queue (36 B per Gaussian: 9 FP32 values) plus pixel state.
  std::size_t tile_buffer_bytes = 64 * 1024;

  /// Cache/memory interface per module: sustained bytes per cycle and fixed
  /// access latency (paper Fig. 7(b) "Cache/Memory Interface").
  double mem_bytes_per_cycle = 64.0;
  sim::Cycle mem_latency = 40;

  /// PE pipeline depth: cycles from operand issue to writeback; adds a
  /// fill/drain overhead per tile.
  int pipeline_depth = 4;

  /// Splat-pixel pairs retired per PE per cycle. FP32 PEs retire 1; the
  /// FP16 re-implementation (Sec. V-C) packs two half-width lanes and
  /// double-pumps the shared datapath for 4 pairs/cycle.
  int pairs_per_cycle_per_pe() const {
    return precision == Precision::kFp16 ? 4 : 1;
  }

  int total_pes() const { return pes_per_module * module_count; }

  /// Aggregate pair throughput (pairs/s) at full utilization.
  double peak_pairs_per_second() const {
    return static_cast<double>(total_pes()) * pairs_per_cycle_per_pe() *
           clock_ghz * 1e9;
  }

  int pixels_per_tile() const { return tile_size * tile_size; }

  /// Validates invariants; throws gaurast::Error on nonsense.
  void validate() const;

  /// The synthesized 16-PE prototype (28 nm, 1 GHz, FP32).
  static RasterizerConfig prototype16();

  /// Literal scaling of the prototype: 15 modules x 16 PEs = 240 PEs.
  static RasterizerConfig scaled240();

  /// The paper's stated evaluation aggregate: 300 PEs across 15 modules.
  static RasterizerConfig scaled300();

  /// FP16 variant used for the GSCore comparison (Sec. V-C).
  static RasterizerConfig fp16(int pes, int modules = 1);
};

/// Bytes of one Gaussian primitive in the tile buffer: conic(3) + mean(2) +
/// opacity(1) + color(3) = 9 FP values (Table II input width).
std::size_t gaussian_primitive_bytes(Precision precision);

/// Bytes of one triangle primitive (9 FP geometry values plus interpolants;
/// we charge the same 9-value width the paper's Table II lists).
std::size_t triangle_primitive_bytes(Precision precision);

/// Per-pixel blend state held in the tile buffer: RGB accumulator + T.
std::size_t pixel_state_bytes(Precision precision);

}  // namespace gaurast::core
