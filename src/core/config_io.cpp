#include "core/config_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gaurast::core {

std::string precision_to_string(Precision precision) {
  return precision == Precision::kFp16 ? "fp16" : "fp32";
}

Precision precision_from_string(const std::string& text) {
  if (text == "fp32") return Precision::kFp32;
  if (text == "fp16") return Precision::kFp16;
  GAURAST_CHECK_MSG(false, "unknown precision '" << text << "'");
  return Precision::kFp32;
}

void save_config(const RasterizerConfig& config, const std::string& path) {
  std::ofstream os(path);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  os << "# GauRast rasterizer configuration\n"
     << "pes_per_module = " << config.pes_per_module << '\n'
     << "module_count = " << config.module_count << '\n'
     << "clock_ghz = " << config.clock_ghz << '\n'
     << "precision = " << precision_to_string(config.precision) << '\n'
     << "tile_size = " << config.tile_size << '\n'
     << "tile_buffer_bytes = " << config.tile_buffer_bytes << '\n'
     << "mem_bytes_per_cycle = " << config.mem_bytes_per_cycle << '\n'
     << "mem_latency = " << config.mem_latency << '\n'
     << "pipeline_depth = " << config.pipeline_depth << '\n';
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

RasterizerConfig load_config(const std::string& path) {
  std::ifstream is(path);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);
  RasterizerConfig config = RasterizerConfig::prototype16();
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto eq = line.find('=');
    GAURAST_CHECK_MSG(eq != std::string::npos,
                      path << ":" << line_no << ": expected key = value");
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    GAURAST_CHECK_MSG(!key.empty() && !value.empty(),
                      path << ":" << line_no << ": empty key or value");

    std::istringstream vs(value);
    auto parse = [&](auto& out) {
      vs >> out;
      GAURAST_CHECK_MSG(!vs.fail(), path << ":" << line_no
                                         << ": bad value '" << value << "'");
    };
    if (key == "pes_per_module") parse(config.pes_per_module);
    else if (key == "module_count") parse(config.module_count);
    else if (key == "clock_ghz") parse(config.clock_ghz);
    else if (key == "precision") config.precision = precision_from_string(value);
    else if (key == "tile_size") parse(config.tile_size);
    else if (key == "tile_buffer_bytes") parse(config.tile_buffer_bytes);
    else if (key == "mem_bytes_per_cycle") parse(config.mem_bytes_per_cycle);
    else if (key == "mem_latency") parse(config.mem_latency);
    else if (key == "pipeline_depth") parse(config.pipeline_depth);
    else GAURAST_CHECK_MSG(false, path << ":" << line_no << ": unknown key '"
                                       << key << "'");
  }
  config.validate();
  return config;
}

}  // namespace gaurast::core
