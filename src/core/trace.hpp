// Workload trace capture and replay.
//
// The functional hardware model and the profile simulator both reduce a
// frame to a sequence of TileLoads. Persisting that sequence decouples
// workload generation from timing exploration — the standard
// trace-driven-simulation flow: capture once from the (slow) functional
// model, then sweep rasterizer configurations by replaying the trace through
// the timeline or the per-cycle detailed simulator.
//
// File format "GTR1": magic, tile count (u64), then per tile
// pairs (u64) + fill_bytes (u64), little-endian.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/timeline.hpp"

namespace gaurast::core {

/// Writes a tile-load trace; throws gaurast::Error on IO failure.
void save_trace(const std::vector<TileLoad>& tiles, const std::string& path);

/// Reads a trace written by save_trace; throws on bad magic or truncation.
std::vector<TileLoad> load_trace(const std::string& path);

/// Summary statistics of a trace (for quick sanity checks and reports).
struct TraceSummary {
  std::size_t tiles = 0;
  std::uint64_t total_pairs = 0;
  std::uint64_t total_fill_bytes = 0;
  std::uint64_t max_tile_pairs = 0;
  double mean_tile_pairs = 0.0;
};

TraceSummary summarize_trace(const std::vector<TileLoad>& tiles);

/// Replays a trace through the tile-level timeline under `config`.
DesignTimelineResult replay_trace(const std::vector<TileLoad>& tiles,
                                  const RasterizerConfig& config);

}  // namespace gaurast::core
