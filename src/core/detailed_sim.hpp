// Per-cycle detailed simulation of one GauRast rasterizer module.
//
// This is the repo's analogue of the paper's RTL simulation: a
// cycle-by-cycle model where every PE retires individual pairs, fills stream
// byte-by-byte through the memory interface, and the ping-pong buffers move
// through Free -> Filling -> Ready -> Draining states. The fast tile-level
// timeline (core/timeline.hpp) is validated against this model in tests,
// mirroring the paper's "simulator validated against RTL" methodology.
#pragma once

#include "core/config.hpp"
#include "core/timeline.hpp"
#include "sim/kernel.hpp"

namespace gaurast::core {

struct DetailedSimResult {
  sim::Cycle cycles = 0;
  std::uint64_t pairs = 0;
  double utilization = 0.0;     ///< retired pairs / PE-cycle slots
  std::uint64_t fill_stall_cycles = 0;  ///< PE block idle waiting on fills
};

/// Runs one module over the tile sequence to completion. Throws if the
/// simulation exceeds `max_cycles` (deadlock guard).
DetailedSimResult run_detailed_module_sim(const std::vector<TileLoad>& tiles,
                                          const RasterizerConfig& config,
                                          sim::Cycle max_cycles = 200000000);

}  // namespace gaurast::core
