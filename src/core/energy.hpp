// Energy model of the enhanced rasterizer (substitute for the paper's
// Synopsys PrimePower post-layout analysis).
//
// Energy = dynamic (per-op unit energies x counted ops + tile-buffer access
// energy) + leakage (per-module static power x runtime), at a 28 nm-class
// node with typical corner / 0.9 V / 1 GHz unit costs drawn from published
// arithmetic-unit characterizations. A documented technology scale factor
// maps the 28 nm prototype energy onto the baseline SoC's process node
// (Orin NX, 8 nm-class: ~0.26x dynamic energy) for the deployment-level
// efficiency comparisons (paper Fig. 10).
#pragma once

#include "core/config.hpp"
#include "sim/counters.hpp"

namespace gaurast::core {

/// Unit energies in picojoules (28 nm, FP32 unless noted).
struct EnergyTable {
  /// Nominal operating point the table was characterized at.
  double nominal_clock_ghz = 1.0;
  double nominal_vdd = 0.9;

  double fp_add_pj = 0.9;
  double fp_mul_pj = 3.7;
  double fp_div_pj = 12.0;
  double fp_exp_pj = 15.0;
  double fp_cmp_pj = 0.3;
  double sram_pj_per_byte = 1.2;
  double control_overhead = 0.15;  ///< clock tree / control fraction
  double module_leakage_w = 0.08;  ///< per 16-PE module

  /// FP16 datapath energy relative to FP32.
  double fp16_scale = 0.35;

  /// 28 nm -> baseline-SoC node (8 nm-class) dynamic energy scale.
  double soc_node_scale = 0.30;
};

/// Voltage required to close timing at `clock_ghz`, from a linear
/// frequency-voltage approximation around the 1 GHz / 0.9 V nominal point
/// (28 nm typical corner): Vdd = V0 * (0.6 + 0.4 * f / f0), clamped to
/// [0.7 V, 1.2 V].
double dvfs_voltage(const EnergyTable& table, double clock_ghz);

/// Returns a table rescaled for operation at `clock_ghz`: dynamic unit
/// energies scale with (V/V0)^2, leakage power with (V/V0). Runtime
/// scaling (1/f) is the caller's via RasterizerConfig::clock_ghz.
EnergyTable dvfs_scaled_table(const EnergyTable& table, double clock_ghz);

struct EnergyBreakdown {
  double datapath_mj = 0.0;
  double buffer_mj = 0.0;
  double leakage_mj = 0.0;
  double total_mj() const { return datapath_mj + buffer_mj + leakage_mj; }
  double average_power_w(double runtime_ms) const {
    return runtime_ms > 0.0 ? total_mj() / runtime_ms : 0.0;
  }
};

class EnergyModel {
 public:
  EnergyModel(RasterizerConfig config, EnergyTable table = {});

  /// Energy from exact op counters (functional/detailed simulation) at the
  /// 28 nm prototype node.
  EnergyBreakdown from_counters(const sim::CounterSet& counters,
                                double runtime_ms) const;

  /// Energy for a statistical workload (full-scale ProfileSimulator):
  /// `pairs` evaluated pairs of which `blended_fraction` complete all four
  /// subtasks, plus tile/primitive traffic.
  EnergyBreakdown from_pair_statistics(std::uint64_t pairs,
                                       double blended_fraction,
                                       std::uint64_t primitive_fetches,
                                       double runtime_ms) const;

  /// Applies the SoC-node technology scale to a 28 nm breakdown (leakage
  /// scales with the same factor; runtime is unchanged).
  EnergyBreakdown at_soc_node(const EnergyBreakdown& prototype) const;

  /// Average dynamic+static power (W) of one fully-utilized 16-PE FP32
  /// module at 1 GHz — the paper's "typical power" figure (~1.7 W).
  double typical_module_power_w() const;

  const EnergyTable& table() const { return table_; }

  /// Effective per-op energy given the config's precision.
  double op_energy_pj(const char* op_name) const;

  /// Tile-buffer bytes touched per evaluated pair (pixel state read-modify-
  /// write amortized over the splat's pixels + primitive operand streaming).
  static constexpr double kBufferBytesPerPair = 20.0;

 private:
  RasterizerConfig config_;
  EnergyTable table_;
};

}  // namespace gaurast::core
