// Area model of the enhanced rasterizer (substitute for the paper's
// Catapult HLS -> Fusion Compiler 28 nm place-and-route).
//
// A bottom-up roll-up from per-unit silicon areas: each PE is the triangle
// rasterizer's arithmetic pool (9 add + 9 mul + 1 div) plus the Gaussian
// enhancement (2 add + 1 mul + 1 exp); the PE block adds per-PE operand
// staging flip-flops and result collection (paper Fig. 7(b)'s "Data Staging"
// banks); tile buffers are SRAM macros; the controller is a small FSM.
// Constants are chosen so the module-level roll-up reproduces the paper's
// Fig. 9: ~2.43 mm^2 for the 16-PE module (1.57 mm x 1.55 mm), PE block
// ~89%, tile buffers ~10%, controller ~0.1%, and a ~21% Gaussian-enhancement
// share inside each PE.
#pragma once

#include "core/config.hpp"
#include "gpu/config.hpp"

namespace gaurast::core {

/// Unit areas in um^2 at 28 nm.
struct AreaTable {
  double fp32_add_um2 = 600.0;
  double fp32_mul_um2 = 2600.0;
  double fp32_div_um2 = 3000.0;
  double fp32_exp_um2 = 5000.0;
  double fp16_add_um2 = 250.0;
  double fp16_mul_um2 = 1000.0;
  double fp16_div_um2 = 1400.0;
  double fp16_exp_um2 = 1800.0;
  double mux_ff_overhead = 0.10;  ///< per-PE mux/pipeline-register fraction

  /// Operand staging + result collection flip-flops per PE (dominates the
  /// PE block outside the arithmetic, per the prototype layout).
  double staging_um2_per_pe = 91000.0;
  double fp16_staging_scale = 0.5;

  double sram_bytes_per_um2 = 0.533;  ///< tile-buffer macro density
  double controller_um2 = 2430.0;

  /// 28 nm -> 8 nm-class area scale for SoC-integration figures.
  double soc_node_scale = 0.14;
};

struct PeArea {
  double shared_um2 = 0.0;    ///< 9 add + 9 mul (both modes)
  double triangle_um2 = 0.0;  ///< divider (triangle-only)
  double gaussian_um2 = 0.0;  ///< 2 add + 1 mul + 1 exp (the enhancement)
  double total_um2() const { return shared_um2 + triangle_um2 + gaussian_um2; }
  /// Fraction of the PE added for Gaussian support (paper: ~21%).
  double enhanced_share() const {
    const double t = total_um2();
    return t > 0.0 ? gaussian_um2 / t : 0.0;
  }
};

struct ModuleArea {
  PeArea pe;
  int pe_count = 0;
  double pe_block_um2 = 0.0;      ///< PEs + staging + collection
  double tile_buffers_um2 = 0.0;
  double controller_um2 = 0.0;
  double total_um2 = 0.0;

  double total_mm2() const { return total_um2 * 1e-6; }
  double pe_block_share() const { return pe_block_um2 / total_um2; }
  double tile_buffers_share() const { return tile_buffers_um2 / total_um2; }
  double controller_share() const { return controller_um2 / total_um2; }

  /// Layout dimensions assuming the prototype's 1.57 mm width.
  double layout_width_mm() const { return 1.57; }
  double layout_height_mm() const {
    return total_mm2() / layout_width_mm();
  }
};

class AreaModel {
 public:
  AreaModel(RasterizerConfig config, AreaTable table = {});

  PeArea pe_area() const;
  ModuleArea module_area() const;

  /// Total area of all module instances (mm^2, 28 nm).
  double design_mm2() const;

  /// Gaussian-enhancement area across the whole design (mm^2, 28 nm):
  /// the adders/multiplier/exp added to every PE.
  double enhanced_mm2() const;

  /// Enhancement area translated to the baseline SoC's node (mm^2).
  double enhanced_soc_mm2() const;

  /// Enhancement as a fraction of a host SoC's die area (paper: ~0.2% on
  /// Orin NX).
  double soc_fraction(const gpu::GpuConfig& host) const;

  const AreaTable& table() const { return table_; }

 private:
  RasterizerConfig config_;
  AreaTable table_;
};

}  // namespace gaurast::core
