#include "core/area.hpp"

#include "common/error.hpp"
#include "core/pe.hpp"

namespace gaurast::core {

AreaModel::AreaModel(RasterizerConfig config, AreaTable table)
    : config_(config), table_(table) {
  config_.validate();
}

PeArea AreaModel::pe_area() const {
  const bool half = config_.precision == Precision::kFp16;
  const double add = half ? table_.fp16_add_um2 : table_.fp32_add_um2;
  const double mul = half ? table_.fp16_mul_um2 : table_.fp32_mul_um2;
  const double div = half ? table_.fp16_div_um2 : table_.fp32_div_um2;
  const double exp = half ? table_.fp16_exp_um2 : table_.fp32_exp_um2;
  const PeResources res{};
  const double wire = 1.0 + table_.mux_ff_overhead;
  PeArea a;
  a.shared_um2 = (res.shared_adders * add + res.shared_multipliers * mul) * wire;
  a.triangle_um2 = res.triangle_dividers * div * wire;
  a.gaussian_um2 = (res.gaussian_adders * add + res.gaussian_multipliers * mul +
                    res.gaussian_exp_units * exp) *
                   wire;
  return a;
}

ModuleArea AreaModel::module_area() const {
  ModuleArea m;
  m.pe = pe_area();
  m.pe_count = config_.pes_per_module;
  const bool half = config_.precision == Precision::kFp16;
  const double staging =
      table_.staging_um2_per_pe * (half ? table_.fp16_staging_scale : 1.0);
  m.pe_block_um2 =
      static_cast<double>(config_.pes_per_module) * (m.pe.total_um2() + staging);
  m.tile_buffers_um2 = 2.0 * static_cast<double>(config_.tile_buffer_bytes) /
                       table_.sram_bytes_per_um2;
  m.controller_um2 = table_.controller_um2;
  m.total_um2 = m.pe_block_um2 + m.tile_buffers_um2 + m.controller_um2;
  return m;
}

double AreaModel::design_mm2() const {
  return module_area().total_mm2() * static_cast<double>(config_.module_count);
}

double AreaModel::enhanced_mm2() const {
  return pe_area().gaussian_um2 * 1e-6 *
         static_cast<double>(config_.total_pes());
}

double AreaModel::enhanced_soc_mm2() const {
  return enhanced_mm2() * table_.soc_node_scale;
}

double AreaModel::soc_fraction(const gpu::GpuConfig& host) const {
  GAURAST_CHECK(host.soc_area_mm2 > 0.0);
  return enhanced_soc_mm2() / host.soc_area_mm2;
}

}  // namespace gaurast::core
