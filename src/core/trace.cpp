#include "core/trace.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"

namespace gaurast::core {

namespace {
constexpr char kMagic[4] = {'G', 'T', 'R', '1'};
}

void save_trace(const std::vector<TileLoad>& tiles, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  os.write(kMagic, 4);
  const std::uint64_t count = tiles.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const TileLoad& t : tiles) {
    os.write(reinterpret_cast<const char*>(&t.pairs), sizeof(t.pairs));
    os.write(reinterpret_cast<const char*>(&t.fill_bytes),
             sizeof(t.fill_bytes));
  }
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

std::vector<TileLoad> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);
  char magic[4];
  is.read(magic, 4);
  GAURAST_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                    "bad trace magic in " << path);
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  GAURAST_CHECK_MSG(is.good(), "truncated trace header");
  std::vector<TileLoad> tiles;
  tiles.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TileLoad t;
    is.read(reinterpret_cast<char*>(&t.pairs), sizeof(t.pairs));
    is.read(reinterpret_cast<char*>(&t.fill_bytes), sizeof(t.fill_bytes));
    GAURAST_CHECK_MSG(is.good(), "truncated trace at tile " << i);
    tiles.push_back(t);
  }
  return tiles;
}

TraceSummary summarize_trace(const std::vector<TileLoad>& tiles) {
  TraceSummary s;
  s.tiles = tiles.size();
  for (const TileLoad& t : tiles) {
    s.total_pairs += t.pairs;
    s.total_fill_bytes += t.fill_bytes;
    s.max_tile_pairs = std::max(s.max_tile_pairs, t.pairs);
  }
  s.mean_tile_pairs =
      tiles.empty() ? 0.0
                    : static_cast<double>(s.total_pairs) /
                          static_cast<double>(tiles.size());
  return s;
}

DesignTimelineResult replay_trace(const std::vector<TileLoad>& tiles,
                                  const RasterizerConfig& config) {
  return run_design_timeline(tiles, config);
}

}  // namespace gaurast::core
