// GauRastDevice — the top-level public API a downstream user adopts.
//
// Wraps the whole stack behind one object: a device is an edge SoC (host
// GPU config) whose rasterizer has been enhanced with GauRast (rasterizer
// config + energy/area tables). `render()` runs Steps 1-2 of the 3DGS
// pipeline on the host (functionally on the CPU here, priced by the CUDA
// cost model) and Step 3 on the enhanced-rasterizer model, returning the
// image plus the modeled deployment metrics; `render_mesh()` exercises the
// preserved triangle path. One device instance serves both primitive types,
// which is the paper's core claim.
#pragma once

#include <optional>

#include "core/area.hpp"
#include "core/config.hpp"
#include "core/energy.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/scheduler.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "mesh/mesh.hpp"
#include "pipeline/renderer.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::core {

/// Everything a Gaussian-frame render returns: the image plus modeled
/// deployment metrics at the device's operating point.
struct DeviceGaussianFrame {
  Image image;
  std::uint64_t pairs_evaluated = 0;
  double utilization = 0.0;

  /// Modeled Step-3 time on the enhanced rasterizer for THIS frame's
  /// measured workload (not the full-scale profile).
  double raster_model_ms = 0.0;
  /// Modeled Steps 1-2 time on the host GPU for this frame's workload.
  double stage12_model_ms = 0.0;
  /// Steady-state frame interval under CUDA-collaborative pipelining.
  double pipelined_frame_ms = 0.0;
  double pipelined_fps() const {
    return pipelined_frame_ms > 0 ? 1000.0 / pipelined_frame_ms : 0.0;
  }
  /// Step-3 energy at the SoC node.
  EnergyBreakdown energy_soc;
};

struct DeviceMeshFrame {
  Image image;
  std::uint64_t pairs_evaluated = 0;
  double raster_model_ms = 0.0;
  double utilization = 0.0;
};

class GauRastDevice {
 public:
  /// Default device: Jetson-Orin-NX-class host with the paper's scaled
  /// 300-PE enhanced rasterizer.
  explicit GauRastDevice(
      RasterizerConfig rasterizer = RasterizerConfig::scaled300(),
      gpu::GpuConfig host = gpu::orin_nx_10w(), EnergyTable energy = {});

  /// Renders a Gaussian scene end-to-end (Steps 1-3). The image is the
  /// functional hardware-model output (bit-exact vs the software pipeline
  /// in FP32). When `out_frame` is non-null it receives the full pipeline
  /// FrameResult — splats, tile workload and per-step stats, with the
  /// Step-3 image and pair counters coming from the hardware model — so
  /// engine::RenderBackend consumers get workload stats without a second
  /// pipeline pass.
  DeviceGaussianFrame render(const scene::GaussianScene& scene,
                             const scene::Camera& camera,
                             const pipeline::RendererConfig& pipeline_config =
                                 pipeline::RendererConfig{},
                             pipeline::FrameResult* out_frame = nullptr) const;

  /// Step 3 only, over an already-prepared frame (GaussianRenderer
  /// prepare() or the begin_frame/sort_frame stage path): runs the
  /// enhanced-rasterizer model on the frame's sorted workload, writes the
  /// hardware image and pair counters back into `frame`, and returns the
  /// modeled metrics. render() is exactly prepare + raster_prepared, which
  /// is what lets a stage-pipelined scheduler overlap Steps 1-2 of one
  /// frame with Step 3 of another without a second execution path.
  DeviceGaussianFrame raster_prepared(
      pipeline::FrameResult& frame,
      const pipeline::RendererConfig& pipeline_config) const;

  /// Renders a triangle mesh through the same enhanced rasterizer
  /// (preserved original functionality).
  DeviceMeshFrame render_mesh(const mesh::TriangleMesh& mesh,
                              const scene::Camera& camera,
                              Vec3f background = {0.05f, 0.05f, 0.08f}) const;

  const RasterizerConfig& rasterizer_config() const { return rasterizer_; }
  const gpu::GpuConfig& host_config() const { return host_; }

  /// Silicon cost of the enhancement on this host (mm^2 at SoC node and
  /// fraction of die).
  double enhancement_area_mm2() const;
  double enhancement_soc_fraction() const;

  /// Typical power of one rasterizer module (the paper's 1.7 W figure).
  double module_power_w() const;

 private:
  /// Prices Steps 1-2 for a frame's measured workload via the CUDA model.
  /// Frame dimensions come from frame.workload.grid — the image is not yet
  /// allocated when a prepared (pre-raster) frame reaches this.
  double stage12_ms_for(const pipeline::FrameResult& frame) const;

  RasterizerConfig rasterizer_;
  gpu::GpuConfig host_;
  EnergyTable energy_table_;
  HardwareRasterizer hw_;
  gpu::CudaCostModel cuda_;
  AreaModel area_;
  EnergyModel energy_;
};

}  // namespace gaurast::core
