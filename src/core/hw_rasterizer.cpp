#include "core/hw_rasterizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/pe.hpp"

namespace gaurast::core {

namespace {

/// Bytes of pixel-state read-modify-write traffic charged per pair (split
/// evenly between read and write for the counters).
constexpr std::uint64_t kPairStateReadBytes = 10;
constexpr std::uint64_t kPairStateWriteBytes = 10;

}  // namespace

HardwareRasterizer::HardwareRasterizer(RasterizerConfig config)
    : config_(config) {
  config_.validate();
}

HwRasterResult HardwareRasterizer::rasterize_gaussians(
    const std::vector<pipeline::Splat2D>& splats,
    const pipeline::TileWorkload& work,
    const pipeline::BlendParams& params) const {
  GAURAST_CHECK_MSG(work.grid.tile_size == config_.tile_size,
                    "workload tiling " << work.grid.tile_size
                                       << " != rasterizer tiling "
                                       << config_.tile_size);
  const pipeline::TileGrid& grid = work.grid;
  HwRasterResult result;
  result.image = Image(grid.width, grid.height, params.background);

  const std::size_t prim_bytes = gaussian_primitive_bytes(config_.precision);
  const std::size_t px_bytes = pixel_state_bytes(config_.precision);

  std::vector<TileLoad> tile_loads;
  tile_loads.reserve(work.ranges.size());

  const int tiles_x = grid.tiles_x();
  const int tiles_y = grid.tiles_y();

  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const std::uint32_t tile_id =
          static_cast<std::uint32_t>(ty) * static_cast<std::uint32_t>(tiles_x) +
          static_cast<std::uint32_t>(tx);
      const pipeline::TileRange range = work.ranges[tile_id];
      if (range.size() == 0) continue;

      TileLoad load;
      load.fill_bytes =
          static_cast<std::uint64_t>(range.size()) * prim_bytes +
          static_cast<std::uint64_t>(config_.pixels_per_tile()) * px_bytes;
      result.counters.increment(sim::ops::kBufRead,
                                static_cast<std::uint64_t>(range.size()) *
                                    prim_bytes);

      const int px0 = tx * grid.tile_size;
      const int py0 = ty * grid.tile_size;
      const int px1 = std::min(px0 + grid.tile_size, grid.width);
      const int py1 = std::min(py0 + grid.tile_size, grid.height);

      for (int py = py0; py < py1; ++py) {
        for (int px = px0; px < px1; ++px) {
          pipeline::PixelBlendState state;
          const Vec2f pixel{static_cast<float>(px) + 0.5f,
                            static_cast<float>(py) + 0.5f};
          for (std::uint32_t i = range.begin; i < range.end; ++i) {
            if (state.transmittance < params.transmittance_min) break;
            const pipeline::Splat2D& sp =
                splats[work.instances[i].splat_index];
            const GaussianPairResult pr = pe_gaussian_pair(
                sp, pixel, state, params, config_.precision, result.counters);
            ++load.pairs;
            ++result.pairs_evaluated;
            if (pr.blended) ++result.pairs_blended;
            result.counters.increment(sim::ops::kBufRead, kPairStateReadBytes);
            result.counters.increment(sim::ops::kBufWrite,
                                      kPairStateWriteBytes);
          }
          result.image.at(px, py) =
              state.accumulated + params.background * state.transmittance;
        }
      }
      result.counters.increment(sim::ops::kPrimitives, range.size());
      tile_loads.push_back(std::move(load));
    }
  }
  result.counters.increment(sim::ops::kPairsProcessed, result.pairs_evaluated);
  result.timing = run_design_timeline(tile_loads, config_);
  result.tile_loads = std::move(tile_loads);
  return result;
}

HwRasterResult HardwareRasterizer::rasterize_triangles(
    const std::vector<mesh::ScreenTriangle>& prims, int width, int height,
    Vec3f background) const {
  GAURAST_CHECK(width > 0 && height > 0);
  HwRasterResult result;
  result.image = Image(width, height, background);

  const int ts = config_.tile_size;
  const int tiles_x = (width + ts - 1) / ts;
  const int tiles_y = (height + ts - 1) / ts;
  const std::size_t prim_bytes = triangle_primitive_bytes(config_.precision);
  const std::size_t px_bytes = pixel_state_bytes(config_.precision);

  // Bin primitives to tiles by bounding box (primitive order preserved, so
  // z-buffer tie-breaking matches the reference renderer).
  std::vector<std::vector<std::uint32_t>> bins(
      static_cast<std::size_t>(tiles_x) * static_cast<std::size_t>(tiles_y));
  for (std::uint32_t p = 0; p < prims.size(); ++p) {
    const mesh::ScreenTriangle& tri = prims[p];
    const float min_x = std::min({tri.p0.x, tri.p1.x, tri.p2.x});
    const float max_x = std::max({tri.p0.x, tri.p1.x, tri.p2.x});
    const float min_y = std::min({tri.p0.y, tri.p1.y, tri.p2.y});
    const float max_y = std::max({tri.p0.y, tri.p1.y, tri.p2.y});
    const int tx0 = std::max(0, static_cast<int>(min_x) / ts);
    const int tx1 = std::min(tiles_x - 1, static_cast<int>(max_x) / ts);
    const int ty0 = std::max(0, static_cast<int>(min_y) / ts);
    const int ty1 = std::min(tiles_y - 1, static_cast<int>(max_y) / ts);
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        bins[static_cast<std::size_t>(ty) * static_cast<std::size_t>(tiles_x) +
             static_cast<std::size_t>(tx)]
            .push_back(p);
      }
    }
    pe_triangle_setup(result.counters);
  }

  std::vector<TileLoad> tile_loads;
  std::vector<float> depth(static_cast<std::size_t>(width) *
                               static_cast<std::size_t>(height),
                           std::numeric_limits<float>::infinity());

  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const auto& bin =
          bins[static_cast<std::size_t>(ty) * static_cast<std::size_t>(tiles_x) +
               static_cast<std::size_t>(tx)];
      if (bin.empty()) continue;
      TileLoad load;
      load.fill_bytes = bin.size() * prim_bytes +
                        static_cast<std::uint64_t>(config_.pixels_per_tile()) *
                            px_bytes;
      result.counters.increment(sim::ops::kBufRead, bin.size() * prim_bytes);

      const int px0 = tx * ts;
      const int py0 = ty * ts;
      const int px1 = std::min(px0 + ts, width);
      const int py1 = std::min(py0 + ts, height);
      for (int py = py0; py < py1; ++py) {
        for (int px = px0; px < px1; ++px) {
          const std::size_t idx =
              static_cast<std::size_t>(py) * static_cast<std::size_t>(width) +
              static_cast<std::size_t>(px);
          const Vec2f pixel{static_cast<float>(px) + 0.5f,
                            static_cast<float>(py) + 0.5f};
          for (std::uint32_t p : bin) {
            pe_triangle_pair(prims[p], pixel, depth[idx],
                             result.image.at(px, py), config_.precision,
                             result.counters);
            ++load.pairs;
            ++result.pairs_evaluated;
            result.counters.increment(sim::ops::kBufRead, kPairStateReadBytes);
            result.counters.increment(sim::ops::kBufWrite,
                                      kPairStateWriteBytes);
          }
        }
      }
      result.counters.increment(sim::ops::kPrimitives, bin.size());
      tile_loads.push_back(std::move(load));
    }
  }
  result.pairs_blended = result.pairs_evaluated;
  result.counters.increment(sim::ops::kPairsProcessed, result.pairs_evaluated);
  result.timing = run_design_timeline(tile_loads, config_);
  result.tile_loads = std::move(tile_loads);
  return result;
}

}  // namespace gaurast::core
