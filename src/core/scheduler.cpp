#include "core/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace gaurast::core {

EndToEndResult schedule_frame(const gpu::StageTimes& cuda_times,
                              double gaurast_raster_ms) {
  GAURAST_CHECK(gaurast_raster_ms >= 0.0);
  EndToEndResult r;
  r.stage12_ms = cuda_times.stage12_ms();
  r.cuda_raster_ms = cuda_times.raster_ms;
  r.gaurast_raster_ms = gaurast_raster_ms;
  return r;
}

double simulate_pipeline_ms(double stage12_ms, double stage3_ms, int frames) {
  GAURAST_CHECK(frames > 0 && stage12_ms >= 0.0 && stage3_ms >= 0.0);
  // Explicit two-resource pipeline: the CUDA cores run Steps 1-2 of frame
  // i+1 while GauRast runs Step 3 of frame i.
  double cuda_free = 0.0;
  double gaurast_free = 0.0;
  double last_done = 0.0;
  for (int f = 0; f < frames; ++f) {
    const double stage12_done = cuda_free + stage12_ms;
    cuda_free = stage12_done;  // CUDA cores move on to the next frame
    const double stage3_start = std::max(stage12_done, gaurast_free);
    const double stage3_done = stage3_start + stage3_ms;
    gaurast_free = stage3_done;
    last_done = stage3_done;
  }
  return last_done;
}

double PipelineSeriesResult::mean_interval_ms() const {
  GAURAST_CHECK(!interval_ms.empty());
  double sum = 0.0;
  for (double v : interval_ms) sum += v;
  return sum / static_cast<double>(interval_ms.size());
}

double PipelineSeriesResult::p99_interval_ms() const {
  GAURAST_CHECK(!interval_ms.empty());
  std::vector<double> sorted = interval_ms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size())));
  return sorted[idx];
}

PipelineSeriesResult simulate_pipeline_series(
    const std::vector<FrameWork>& frames) {
  GAURAST_CHECK(!frames.empty());
  PipelineSeriesResult result;
  result.completion_ms.reserve(frames.size());
  double cuda_free = 0.0;
  double gaurast_free = 0.0;
  for (const FrameWork& f : frames) {
    GAURAST_CHECK(f.stage12_ms >= 0.0 && f.stage3_ms >= 0.0);
    const double stage12_done = cuda_free + f.stage12_ms;
    cuda_free = stage12_done;
    const double stage3_start = std::max(stage12_done, gaurast_free);
    const double stage3_done = stage3_start + f.stage3_ms;
    gaurast_free = stage3_done;
    result.completion_ms.push_back(stage3_done);
  }
  result.interval_ms.reserve(frames.size());
  for (std::size_t i = 0; i < result.completion_ms.size(); ++i) {
    result.interval_ms.push_back(
        i == 0 ? result.completion_ms[0]
               : result.completion_ms[i] - result.completion_ms[i - 1]);
  }
  return result;
}

}  // namespace gaurast::core
