#include "core/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gaurast::core {

sim::Cycle tile_compute_cycles(const TileLoad& tile,
                               const RasterizerConfig& config) {
  if (tile.pairs == 0) return 0;
  const auto rate = static_cast<std::uint64_t>(config.pes_per_module) *
                    static_cast<std::uint64_t>(config.pairs_per_cycle_per_pe());
  return (tile.pairs + rate - 1) / rate +
         static_cast<sim::Cycle>(config.pipeline_depth);
}

sim::Cycle tile_fill_cycles(const TileLoad& tile,
                            const RasterizerConfig& config) {
  if (tile.fill_bytes == 0) return 0;
  const auto transfer = static_cast<sim::Cycle>(std::ceil(
      static_cast<double>(tile.fill_bytes) / config.mem_bytes_per_cycle));
  return transfer + config.mem_latency;
}

ModuleTimelineResult run_module_timeline(const std::vector<TileLoad>& tiles,
                                         const RasterizerConfig& config) {
  ModuleTimelineResult result;
  // buffer_free[i]: cycle at which ping-pong buffer i can accept a new fill.
  sim::Cycle buffer_free[2] = {0, 0};
  sim::Cycle mem_free = 0;  // memory interface serializes transfers
  sim::Cycle pe_free = 0;   // PE block serializes tile computes
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const int buf = static_cast<int>(i & 1);
    const sim::Cycle fill_start = std::max(buffer_free[buf], mem_free);
    const sim::Cycle fill = tile_fill_cycles(tiles[i], config);
    const sim::Cycle fill_done = fill_start + fill;
    // The fixed access latency pipelines with the next transfer; only the
    // byte transfer occupies the memory interface.
    if (fill > 0) mem_free = fill_done - config.mem_latency;
    const sim::Cycle compute = tile_compute_cycles(tiles[i], config);
    const sim::Cycle compute_start = std::max(fill_done, pe_free);
    if (compute_start > pe_free) result.stall_cycles += compute_start - pe_free;
    const sim::Cycle compute_done = compute_start + compute;
    pe_free = compute_done;
    buffer_free[buf] = compute_done;  // buffer released when drained
    result.compute_cycles += compute;
    result.pairs += tiles[i].pairs;
  }
  result.busy_cycles = pe_free;
  return result;
}

DesignTimelineResult run_design_timeline(const std::vector<TileLoad>& tiles,
                                         const RasterizerConfig& config) {
  config.validate();
  // Greedy streaming dispatch: each tile (in screen order) goes to the
  // module with the least accumulated work, matching a dispatcher that
  // hands the next tile to the first module to free up.
  const int modules = config.module_count;
  std::vector<std::vector<TileLoad>> per_module(
      static_cast<std::size_t>(modules));
  std::vector<double> load(static_cast<std::size_t>(modules), 0.0);
  for (const TileLoad& tile : tiles) {
    std::size_t best = 0;
    for (std::size_t m = 1; m < load.size(); ++m) {
      if (load[m] < load[best]) best = m;
    }
    per_module[best].push_back(tile);
    load[best] += static_cast<double>(std::max(
        tile_compute_cycles(tile, config), tile_fill_cycles(tile, config)));
  }

  DesignTimelineResult result;
  for (const auto& seq : per_module) {
    const ModuleTimelineResult m = run_module_timeline(seq, config);
    result.makespan_cycles = std::max(result.makespan_cycles, m.busy_cycles);
    result.pairs += m.pairs;
    result.stall_cycles += m.stall_cycles;
  }
  result.runtime_ms = static_cast<double>(result.makespan_cycles) /
                      (config.clock_ghz * 1e9) * 1e3;
  const double slot_pairs =
      static_cast<double>(result.makespan_cycles) *
      static_cast<double>(config.total_pes()) *
      static_cast<double>(config.pairs_per_cycle_per_pe());
  result.utilization =
      slot_pairs > 0.0 ? static_cast<double>(result.pairs) / slot_pairs : 0.0;
  return result;
}

}  // namespace gaurast::core
