// Binary scene serialization (a compact stand-in for the 3DGS .ply format).
//
// Layout: magic "GSC1", sh_degree (i32), count (u64), then per Gaussian:
// position(3f) scale(3f) rotation(4f wxyz) opacity(1f) sh((deg+1)^2*3 f).
// Little-endian floats; refuses files with mismatched magic or truncation.
#pragma once

#include <string>

#include "scene/gaussian.hpp"

namespace gaurast::scene {

/// Writes the scene; throws gaurast::Error on IO failure.
void save_scene(const GaussianScene& scene, const std::string& path);

/// Reads a scene written by save_scene; throws gaurast::Error on malformed
/// input (bad magic, truncated payload, invalid counts).
GaussianScene load_scene(const std::string& path);

}  // namespace gaurast::scene
