// Compact quantized splat representation — the at-rest form scenes take
// inside scene::SceneStore.
//
// Per splat: position and per-axis scale as IEEE binary16 (fp16) bits,
// the unit rotation quaternion packed smallest-three into one u32, opacity
// as a u8 fixed-point fraction, and the RGB SH coefficients as fp16 bits —
// 13 + 6*(deg+1)^2 bytes against the float scene's 44 + 12*(deg+1)^2, a
// ~0.5x resident-byte ratio at SH degree 3 and well under the 0.6x budget
// the scene store is specified against.
//
// dequantize() is a pure function of the quantized bytes: the same
// QuantizedScene always reconstructs a bit-identical GaussianScene, which
// is what makes evict-and-reload serving frame-stable (pinned by
// scene_store_test's bit-stability matrix).
//
// All float<->half conversions live in quantized.cpp (and common/half) —
// the lint_invariants `half-confinement` rule keeps it that way; everyone
// else goes through quantize()/dequantize() or QuantizedSceneBuilder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "gsmath/quat.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::scene {

/// Admission rejection: a scene's quantized payload exceeds a byte limit
/// (SceneStore max_scene_bytes / max_bytes). Thrown before the scene is
/// materialized whenever the size is knowable up front, so an over-budget
/// request costs a refusal, not an OOM.
class SceneOverBudgetError : public Error {
 public:
  explicit SceneOverBudgetError(const std::string& what) : Error(what) {}
};

/// SoA container of quantized splats. Plain data; thread-safe to share
/// const references across render workers.
struct QuantizedScene {
  int sh_degree = 3;
  std::vector<std::uint16_t> positions;  ///< 3 fp16 bit-patterns per splat
  std::vector<std::uint16_t> scales;     ///< 3 fp16 bit-patterns per splat
  std::vector<std::uint32_t> rotations;  ///< smallest-three packed, 1 per splat
  std::vector<std::uint8_t> opacities;   ///< round(opacity * 255), 1 per splat
  std::vector<std::uint16_t> sh;         ///< 3*(deg+1)^2 fp16 bits per splat

  std::size_t size() const { return rotations.size(); }
  bool empty() const { return rotations.empty(); }

  /// Payload bytes actually held (vector element bytes, the store's
  /// accounting unit).
  std::size_t resident_bytes() const;
};

/// Quantized payload bytes per splat at the given SH degree — the number
/// admission control multiplies by a vertex count before materializing
/// anything.
std::size_t quantized_bytes_per_splat(int sh_degree);

/// Packs a unit quaternion smallest-three: 2 bits name the
/// largest-magnitude component (sign-normalized positive), 3 x 10 bits
/// carry the remaining components scaled from [-1/sqrt(2), 1/sqrt(2)].
std::uint32_t pack_rotation(const Quatf& q);
/// Inverse of pack_rotation; reconstructs the named component from the unit
/// norm. Deterministic: same bits, same quaternion.
Quatf unpack_rotation(std::uint32_t bits);

/// Incremental quantizer: accepts splats one at a time so streaming ingest
/// (chunked PLY reading) never holds a float copy of the whole scene. The
/// only float->quantized conversion path in the tree.
class QuantizedSceneBuilder {
 public:
  explicit QuantizedSceneBuilder(int sh_degree);

  void reserve(std::size_t splats);
  void add(const Gaussian3D& g);
  std::size_t size() const { return scene_.size(); }

  /// Moves the accumulated scene out; the builder is spent afterwards.
  QuantizedScene take();

 private:
  QuantizedScene scene_;
};

/// Whole-scene quantization (generic SceneSource fallback path).
QuantizedScene quantize(const GaussianScene& scene);

/// Reconstructs the float working copy. Pure in the quantized bytes; the
/// result passes GaussianScene::add validation by construction (opacity in
/// [0,1], scales >= 0 and finite, positions finite).
GaussianScene dequantize(const QuantizedScene& q);

}  // namespace gaurast::scene
