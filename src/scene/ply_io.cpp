#include "scene/ply_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "scene/quantized.hpp"

namespace gaurast::scene {

namespace {

constexpr int kRestCoeffs = 45;  // (16 - 1 DC) * 3 channels

/// Rows per streaming-ingest chunk: bounds the float staging buffer to a
/// few hundred KB regardless of checkpoint size.
constexpr std::size_t kChunkRows = 4096;

/// Property order of the reference checkpoint layout.
std::vector<std::string> reference_properties() {
  std::vector<std::string> props = {"x", "y", "z", "nx", "ny", "nz",
                                    "f_dc_0", "f_dc_1", "f_dc_2"};
  for (int i = 0; i < kRestCoeffs; ++i) {
    props.push_back("f_rest_" + std::to_string(i));
  }
  props.push_back("opacity");
  for (int i = 0; i < 3; ++i) props.push_back("scale_" + std::to_string(i));
  for (int i = 0; i < 4; ++i) props.push_back("rot_" + std::to_string(i));
  return props;
}

/// Parsed header plus the property indices one vertex decode needs.
struct PlyLayout {
  std::size_t vertex_count = 0;
  std::size_t property_count = 0;
  bool has_rest = false;
  std::size_t ix = 0, iy = 0, iz = 0;
  std::size_t idc0 = 0, iop = 0, isc0 = 0, irot0 = 0, irest0 = 0;
};

/// Consumes the PLY header from `is` (leaving it at the payload) and
/// validates the format and required properties.
PlyLayout parse_ply_header(std::istream& is, const std::string& path) {
  std::string line;
  std::getline(is, line);
  GAURAST_CHECK_MSG(line == "ply", "not a PLY file: " << path);

  std::size_t vertex_count = 0;
  std::vector<std::string> properties;
  bool binary_le = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string token;
    ls >> token;
    if (token == "format") {
      std::string fmt;
      ls >> fmt;
      binary_le = (fmt == "binary_little_endian");
      GAURAST_CHECK_MSG(binary_le, "unsupported PLY format: " << fmt);
    } else if (token == "element") {
      std::string what;
      ls >> what >> vertex_count;
      GAURAST_CHECK_MSG(what == "vertex", "unexpected PLY element " << what);
    } else if (token == "property") {
      std::string type, name;
      ls >> type >> name;
      GAURAST_CHECK_MSG(type == "float", "unsupported property type " << type);
      properties.push_back(name);
    } else if (token == "end_header") {
      break;
    } else if (token == "comment") {
      continue;
    }
  }
  GAURAST_CHECK_MSG(vertex_count > 0, "PLY has no vertices");

  // Index the properties we need; tolerate extra/unused ones.
  auto index_of = [&properties](const std::string& name) {
    const auto it = std::find(properties.begin(), properties.end(), name);
    GAURAST_CHECK_MSG(it != properties.end(), "PLY missing property " << name);
    return static_cast<std::size_t>(it - properties.begin());
  };
  PlyLayout layout;
  layout.vertex_count = vertex_count;
  layout.property_count = properties.size();
  layout.ix = index_of("x");
  layout.iy = index_of("y");
  layout.iz = index_of("z");
  layout.idc0 = index_of("f_dc_0");
  layout.iop = index_of("opacity");
  layout.isc0 = index_of("scale_0");
  layout.irot0 = index_of("rot_0");
  layout.has_rest =
      std::find(properties.begin(), properties.end(), "f_rest_0") !=
      properties.end();
  layout.irest0 = layout.has_rest ? index_of("f_rest_0") : 0;
  return layout;
}

/// Decodes one vertex row (checkpoint domain) into a Gaussian3D.
Gaussian3D decode_row(const float* row, const PlyLayout& l) {
  Gaussian3D g;
  g.position = {row[l.ix], row[l.iy], row[l.iz]};
  g.sh[0] = {row[l.idc0], row[l.idc0 + 1], row[l.idc0 + 2]};
  if (l.has_rest) {
    for (int ch = 0; ch < 3; ++ch) {
      for (std::size_t band = 1; band < kMaxShBasis; ++band) {
        const float val =
            row[l.irest0 + static_cast<std::size_t>(ch) * (kMaxShBasis - 1) +
                band - 1];
        if (ch == 0) g.sh[band].x = val;
        else if (ch == 1) g.sh[band].y = val;
        else g.sh[band].z = val;
      }
    }
  }
  g.opacity = std::clamp(ply_sigmoid(row[l.iop]), 0.0f, 1.0f);
  g.scale = {std::exp(row[l.isc0]), std::exp(row[l.isc0 + 1]),
             std::exp(row[l.isc0 + 2])};
  g.rotation =
      Quatf{row[l.irot0], row[l.irot0 + 1], row[l.irot0 + 2],
            row[l.irot0 + 3]}
          .normalized();
  return g;
}

}  // namespace

float ply_sigmoid(float logit_opacity) {
  return 1.0f / (1.0f + std::exp(-logit_opacity));
}

float ply_logit(float opacity) {
  const float p = std::clamp(opacity, 1e-6f, 1.0f - 1e-6f);
  return std::log(p / (1.0f - p));
}

void save_ply(const GaussianScene& scene, const std::string& path) {
  GAURAST_CHECK_MSG(scene.sh_degree() == 3 || scene.sh_degree() == 0,
                    "PLY export supports SH degree 0 or 3, got "
                        << scene.sh_degree());
  std::ofstream os(path, std::ios::binary);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");

  os << "ply\nformat binary_little_endian 1.0\n"
     << "element vertex " << scene.size() << "\n";
  for (const std::string& prop : reference_properties()) {
    os << "property float " << prop << "\n";
  }
  os << "end_header\n";

  auto put = [&os](float v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (std::size_t i = 0; i < scene.size(); ++i) {
    const Gaussian3D g = scene.gaussian(i);
    put(g.position.x);
    put(g.position.y);
    put(g.position.z);
    put(0.0f);  // normals unused by 3DGS, present in the layout
    put(0.0f);
    put(0.0f);
    put(g.sh[0].x);
    put(g.sh[0].y);
    put(g.sh[0].z);
    // f_rest is channel-major in the reference layout: all R coefficients
    // for bands 1..15, then G, then B.
    for (int ch = 0; ch < 3; ++ch) {
      for (std::size_t band = 1; band < kMaxShBasis; ++band) {
        const Vec3f c = g.sh[band];
        put(ch == 0 ? c.x : (ch == 1 ? c.y : c.z));
      }
    }
    put(ply_logit(g.opacity));
    put(std::log(std::max(g.scale.x, 1e-9f)));
    put(std::log(std::max(g.scale.y, 1e-9f)));
    put(std::log(std::max(g.scale.z, 1e-9f)));
    put(g.rotation.w);
    put(g.rotation.x);
    put(g.rotation.y);
    put(g.rotation.z);
  }
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

GaussianScene load_ply(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);
  const PlyLayout layout = parse_ply_header(is, path);

  GaussianScene scene(layout.has_rest ? 3 : 0);
  scene.reserve(layout.vertex_count);
  std::vector<float> row(layout.property_count);
  for (std::size_t v = 0; v < layout.vertex_count; ++v) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    GAURAST_CHECK_MSG(is.good(), "truncated PLY payload at vertex " << v);
    scene.add(decode_row(row.data(), layout));
  }
  return scene;
}

QuantizedScene load_ply_quantized(const std::string& path,
                                  std::size_t max_bytes) {
  std::ifstream is(path, std::ios::binary);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);
  const PlyLayout layout = parse_ply_header(is, path);
  const int sh_degree = layout.has_rest ? 3 : 0;

  // Admission happens here, off the header's vertex count, before a single
  // payload byte is read — an over-budget checkpoint costs a refusal, not
  // a resident allocation.
  const std::size_t quantized_bytes =
      quantized_bytes_per_splat(sh_degree) * layout.vertex_count;
  if (max_bytes > 0 && quantized_bytes > max_bytes) {
    throw SceneOverBudgetError(
        "PLY '" + path + "' needs " + std::to_string(quantized_bytes) +
        " quantized bytes (" + std::to_string(layout.vertex_count) +
        " vertices), over the " + std::to_string(max_bytes) +
        "-byte admission limit");
  }

  QuantizedSceneBuilder builder(sh_degree);
  builder.reserve(layout.vertex_count);
  // Stream the payload in bounded chunks straight into quantized form:
  // peak float staging is kChunkRows rows, not the whole checkpoint.
  std::vector<float> chunk(layout.property_count * kChunkRows);
  std::size_t done = 0;
  while (done < layout.vertex_count) {
    const std::size_t rows = std::min(kChunkRows, layout.vertex_count - done);
    is.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(rows * layout.property_count *
                                         sizeof(float)));
    GAURAST_CHECK_MSG(is.good(), "truncated PLY payload at vertex " << done);
    for (std::size_t r = 0; r < rows; ++r) {
      builder.add(decode_row(chunk.data() + r * layout.property_count,
                             layout));
    }
    done += rows;
  }
  return builder.take();
}

}  // namespace gaurast::scene
