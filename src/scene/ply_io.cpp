#include "scene/ply_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace gaurast::scene {

namespace {

constexpr int kRestCoeffs = 45;  // (16 - 1 DC) * 3 channels

/// Property order of the reference checkpoint layout.
std::vector<std::string> reference_properties() {
  std::vector<std::string> props = {"x", "y", "z", "nx", "ny", "nz",
                                    "f_dc_0", "f_dc_1", "f_dc_2"};
  for (int i = 0; i < kRestCoeffs; ++i) {
    props.push_back("f_rest_" + std::to_string(i));
  }
  props.push_back("opacity");
  for (int i = 0; i < 3; ++i) props.push_back("scale_" + std::to_string(i));
  for (int i = 0; i < 4; ++i) props.push_back("rot_" + std::to_string(i));
  return props;
}

}  // namespace

float ply_sigmoid(float logit_opacity) {
  return 1.0f / (1.0f + std::exp(-logit_opacity));
}

float ply_logit(float opacity) {
  const float p = std::clamp(opacity, 1e-6f, 1.0f - 1e-6f);
  return std::log(p / (1.0f - p));
}

void save_ply(const GaussianScene& scene, const std::string& path) {
  GAURAST_CHECK_MSG(scene.sh_degree() == 3 || scene.sh_degree() == 0,
                    "PLY export supports SH degree 0 or 3, got "
                        << scene.sh_degree());
  std::ofstream os(path, std::ios::binary);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");

  os << "ply\nformat binary_little_endian 1.0\n"
     << "element vertex " << scene.size() << "\n";
  for (const std::string& prop : reference_properties()) {
    os << "property float " << prop << "\n";
  }
  os << "end_header\n";

  auto put = [&os](float v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (std::size_t i = 0; i < scene.size(); ++i) {
    const Gaussian3D g = scene.gaussian(i);
    put(g.position.x);
    put(g.position.y);
    put(g.position.z);
    put(0.0f);  // normals unused by 3DGS, present in the layout
    put(0.0f);
    put(0.0f);
    put(g.sh[0].x);
    put(g.sh[0].y);
    put(g.sh[0].z);
    // f_rest is channel-major in the reference layout: all R coefficients
    // for bands 1..15, then G, then B.
    for (int ch = 0; ch < 3; ++ch) {
      for (std::size_t band = 1; band < kMaxShBasis; ++band) {
        const Vec3f c = g.sh[band];
        put(ch == 0 ? c.x : (ch == 1 ? c.y : c.z));
      }
    }
    put(ply_logit(g.opacity));
    put(std::log(std::max(g.scale.x, 1e-9f)));
    put(std::log(std::max(g.scale.y, 1e-9f)));
    put(std::log(std::max(g.scale.z, 1e-9f)));
    put(g.rotation.w);
    put(g.rotation.x);
    put(g.rotation.y);
    put(g.rotation.z);
  }
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

GaussianScene load_ply(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);

  std::string line;
  std::getline(is, line);
  GAURAST_CHECK_MSG(line == "ply", "not a PLY file: " << path);

  std::size_t vertex_count = 0;
  std::vector<std::string> properties;
  bool binary_le = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string token;
    ls >> token;
    if (token == "format") {
      std::string fmt;
      ls >> fmt;
      binary_le = (fmt == "binary_little_endian");
      GAURAST_CHECK_MSG(binary_le, "unsupported PLY format: " << fmt);
    } else if (token == "element") {
      std::string what;
      ls >> what >> vertex_count;
      GAURAST_CHECK_MSG(what == "vertex", "unexpected PLY element " << what);
    } else if (token == "property") {
      std::string type, name;
      ls >> type >> name;
      GAURAST_CHECK_MSG(type == "float", "unsupported property type " << type);
      properties.push_back(name);
    } else if (token == "end_header") {
      break;
    } else if (token == "comment") {
      continue;
    }
  }
  GAURAST_CHECK_MSG(vertex_count > 0, "PLY has no vertices");

  // Index the properties we need; tolerate extra/unused ones.
  auto index_of = [&properties](const std::string& name) {
    const auto it = std::find(properties.begin(), properties.end(), name);
    GAURAST_CHECK_MSG(it != properties.end(), "PLY missing property " << name);
    return static_cast<std::size_t>(it - properties.begin());
  };
  const std::size_t ix = index_of("x"), iy = index_of("y"), iz = index_of("z");
  const std::size_t idc0 = index_of("f_dc_0");
  const std::size_t iop = index_of("opacity");
  const std::size_t isc0 = index_of("scale_0");
  const std::size_t irot0 = index_of("rot_0");
  const bool has_rest =
      std::find(properties.begin(), properties.end(), "f_rest_0") !=
      properties.end();
  const std::size_t irest0 = has_rest ? index_of("f_rest_0") : 0;

  GaussianScene scene(has_rest ? 3 : 0);
  scene.reserve(vertex_count);
  std::vector<float> row(properties.size());
  for (std::size_t v = 0; v < vertex_count; ++v) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    GAURAST_CHECK_MSG(is.good(), "truncated PLY payload at vertex " << v);
    Gaussian3D g;
    g.position = {row[ix], row[iy], row[iz]};
    g.sh[0] = {row[idc0], row[idc0 + 1], row[idc0 + 2]};
    if (has_rest) {
      for (int ch = 0; ch < 3; ++ch) {
        for (std::size_t band = 1; band < kMaxShBasis; ++band) {
          const float val =
              row[irest0 + static_cast<std::size_t>(ch) * (kMaxShBasis - 1) +
                  band - 1];
          if (ch == 0) g.sh[band].x = val;
          else if (ch == 1) g.sh[band].y = val;
          else g.sh[band].z = val;
        }
      }
    }
    g.opacity = std::clamp(ply_sigmoid(row[iop]), 0.0f, 1.0f);
    g.scale = {std::exp(row[isc0]), std::exp(row[isc0 + 1]),
               std::exp(row[isc0 + 2])};
    g.rotation =
        Quatf{row[irot0], row[irot0 + 1], row[irot0 + 2], row[irot0 + 3]}
            .normalized();
    scene.add(g);
  }
  return scene;
}

}  // namespace gaurast::scene
