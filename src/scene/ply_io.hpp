// Interop with the reference 3DGS .ply checkpoint format.
//
// Trained 3DGS models (Kerbl et al. 2023 and most derivatives, including
// Mini-Splatting and OpenSplat) are distributed as binary-little-endian PLY
// files with per-vertex properties:
//   x y z nx ny nz f_dc_0..2 f_rest_0..44 opacity scale_0..2 rot_0..3
// where opacity is stored pre-sigmoid (logit), scales are log-space, and
// f_rest is band-major per channel. This module reads and writes that
// layout so real checkpoints can be rendered through this repo's pipeline
// and hardware model, and scenes generated here can be opened in standard
// 3DGS viewers.
#pragma once

#include <cstddef>
#include <string>

#include "scene/gaussian.hpp"
#include "scene/quantized.hpp"

namespace gaurast::scene {

/// Writes the scene as a reference-format binary PLY. SH degree must be 3
/// (the checkpoint format has a fixed 45-coefficient f_rest block) or 0
/// (f_rest written as zeros).
void save_ply(const GaussianScene& scene, const std::string& path);

/// Loads a reference-format PLY. Applies sigmoid to opacity and exp to
/// scales; normalizes quaternions. Throws gaurast::Error on malformed
/// headers, unsupported formats (ASCII payload, big-endian) or truncation.
GaussianScene load_ply(const std::string& path);

/// Streaming quantized ingest: parses the header, then reads vertices in
/// bounded chunks (a few thousand rows of float staging, independent of
/// checkpoint size) straight into quantized form. `max_bytes` > 0 is an
/// admission limit checked against the header's vertex count before any
/// payload is read; an over-budget checkpoint throws SceneOverBudgetError.
QuantizedScene load_ply_quantized(const std::string& path,
                                  std::size_t max_bytes = 0);

/// Applies the checkpoint-domain transforms used by load_ply; exposed for
/// tests. sigmoid(x) = 1 / (1 + exp(-x)).
float ply_sigmoid(float logit_opacity);
float ply_logit(float opacity);

}  // namespace gaurast::scene
