#include "scene/filters.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace gaurast::scene {

GaussianScene prune_by_opacity(const GaussianScene& scene, float min_opacity) {
  GAURAST_CHECK(min_opacity >= 0.0f && min_opacity <= 1.0f);
  GaussianScene out(scene.sh_degree());
  for (std::size_t i = 0; i < scene.size(); ++i) {
    if (scene.opacities()[i] >= min_opacity) out.add(scene.gaussian(i));
  }
  return out;
}

GaussianScene truncate_sh(const GaussianScene& scene, int degree) {
  GAURAST_CHECK(degree >= 0 && degree <= scene.sh_degree());
  GaussianScene out(degree);
  for (std::size_t i = 0; i < scene.size(); ++i) {
    Gaussian3D g = scene.gaussian(i);
    for (std::size_t band = sh_basis_count(degree); band < kMaxShBasis;
         ++band) {
      g.sh[band] = {0, 0, 0};
    }
    out.add(g);
  }
  return out;
}

GaussianScene subsample(const GaussianScene& scene, double keep_fraction,
                        std::uint64_t seed) {
  GAURAST_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0);
  Pcg32 rng(seed);
  GaussianScene out(scene.sh_degree());
  for (std::size_t i = 0; i < scene.size(); ++i) {
    if (rng.uniform() < keep_fraction) out.add(scene.gaussian(i));
  }
  return out;
}

}  // namespace gaurast::scene
