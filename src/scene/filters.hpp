// Scene filtering operations — the training-free model-compression toolbox
// around the Mini-Splatting-style experiments (paper's efficiency-optimized
// pipeline uses a constrained Gaussian budget; these filters let any scene
// be budgeted the same way).
#pragma once

#include <cstdint>

#include "scene/gaussian.hpp"

namespace gaurast::scene {

/// Drops Gaussians with opacity below `min_opacity` (they can never pass
/// the rasterizer's 1/255 contribution threshold when min_opacity >= 1/255).
GaussianScene prune_by_opacity(const GaussianScene& scene, float min_opacity);

/// Returns the scene with its SH color truncated to `degree` (view-dependent
/// bands above the degree are dropped). Cuts Step-1 memory traffic: the
/// checkpoint shrinks from 59 to 14 floats per Gaussian at degree 0.
GaussianScene truncate_sh(const GaussianScene& scene, int degree);

/// Keeps a uniform random `keep_fraction` of the Gaussians (deterministic in
/// seed); the cheapest budget reduction and the baseline the importance
/// pruning in GaussianScene::pruned() is compared against.
GaussianScene subsample(const GaussianScene& scene, double keep_fraction,
                        std::uint64_t seed);

}  // namespace gaurast::scene
