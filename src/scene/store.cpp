#include "scene/store.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"
#include "scene/generator.hpp"
#include "scene/ply_io.hpp"

namespace gaurast::scene {

namespace {

constexpr std::uint64_t kDefaultSyntheticSeed = 42;

/// Parses an unsigned decimal that consumes `text` exactly.
std::uint64_t parse_u64(const std::string& text, const std::string& key) {
  if (text.empty() || text[0] == '-' || text[0] == '+') {
    throw Error("scene key '" + key + "': expected an unsigned number, got '" +
                text + "'");
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    throw Error("scene key '" + key + "': expected an unsigned number, got '" +
                text + "'");
  }
  return static_cast<std::uint64_t>(value);
}

GeneratorParams generator_params_for(const SceneKey& key) {
  GeneratorParams params;
  params.gaussian_count = key.count;
  params.seed = key.seed;
  return params;
}

}  // namespace

std::string SceneKey::canonical() const {
  if (kind == Kind::kPly) return "ply:" + path;
  return synthetic_scene_key(count, seed);
}

std::string synthetic_scene_key(std::uint64_t count, std::uint64_t seed) {
  return "synthetic:" + std::to_string(count) + "@" + std::to_string(seed);
}

SceneKey parse_scene_key(const std::string& key) {
  const std::size_t colon = key.find(':');
  if (colon == std::string::npos) {
    throw Error("scene key '" + key +
                "' is not canonical (expected synthetic:<count>[@<seed>] "
                "or ply:<path-or-name>)");
  }
  const std::string kind = key.substr(0, colon);
  const std::string rest = key.substr(colon + 1);
  SceneKey parsed;
  if (kind == "synthetic") {
    parsed.kind = SceneKey::Kind::kSynthetic;
    const std::size_t at = rest.find('@');
    parsed.count = parse_u64(rest.substr(0, at), key);
    parsed.seed = at == std::string::npos
                      ? kDefaultSyntheticSeed
                      : parse_u64(rest.substr(at + 1), key);
    if (parsed.count == 0) {
      throw Error("scene key '" + key + "': synthetic count must be >= 1");
    }
    return parsed;
  }
  if (kind == "ply") {
    if (rest.empty()) {
      throw Error("scene key '" + key + "': ply key needs a path or name");
    }
    parsed.kind = SceneKey::Kind::kPly;
    parsed.path = rest;
    return parsed;
  }
  throw Error("scene key '" + key + "': unknown kind '" + kind +
              "' (expected synthetic: or ply:)");
}

QuantizedScene SceneSource::resolve_quantized(const std::string& key,
                                              std::size_t max_bytes) const {
  QuantizedScene q = quantize(resolve(key));
  if (max_bytes > 0 && q.resident_bytes() > max_bytes) {
    throw SceneOverBudgetError(
        "scene '" + key + "' needs " + std::to_string(q.resident_bytes()) +
        " quantized bytes, over the " + std::to_string(max_bytes) +
        "-byte admission limit");
  }
  return q;
}

GaussianScene SyntheticSource::resolve(const std::string& key) const {
  const SceneKey parsed = parse_scene_key(key);
  if (parsed.kind != SceneKey::Kind::kSynthetic) {
    throw Error("scene key '" + key +
                "' is not synthetic (this source only generates)");
  }
  return generate_scene(generator_params_for(parsed));
}

QuantizedScene SyntheticSource::resolve_quantized(
    const std::string& key, std::size_t max_bytes) const {
  const SceneKey parsed = parse_scene_key(key);
  if (parsed.kind != SceneKey::Kind::kSynthetic) {
    throw Error("scene key '" + key +
                "' is not synthetic (this source only generates)");
  }
  // The key names the splat count, so the quantized footprint is known
  // before generating a single Gaussian — reject up front.
  const GeneratorParams params = generator_params_for(parsed);
  const std::size_t bytes =
      quantized_bytes_per_splat(params.sh_degree) *
      static_cast<std::size_t>(params.gaussian_count);
  if (max_bytes > 0 && bytes > max_bytes) {
    throw SceneOverBudgetError(
        "scene '" + key + "' needs " + std::to_string(bytes) +
        " quantized bytes, over the " + std::to_string(max_bytes) +
        "-byte admission limit");
  }
  return SceneSource::resolve_quantized(key, max_bytes);
}

PlyDirectorySource::PlyDirectorySource(std::string directory)
    : directory_(std::move(directory)) {}

std::string PlyDirectorySource::resolve_path(const SceneKey& key) const {
  std::string path = key.path;
  // A bare name resolves inside the directory; anything with a separator
  // is taken as a filesystem path.
  if (path.find('/') == std::string::npos && !directory_.empty()) {
    path = directory_ + "/" + path;
  }
  const std::string ext = ".ply";
  if (path.size() < ext.size() ||
      path.compare(path.size() - ext.size(), ext.size(), ext) != 0) {
    path += ext;
  }
  return path;
}

GaussianScene PlyDirectorySource::resolve(const std::string& key) const {
  const SceneKey parsed = parse_scene_key(key);
  if (parsed.kind == SceneKey::Kind::kSynthetic) {
    return synthetic_.resolve(key);
  }
  return load_ply(resolve_path(parsed));
}

QuantizedScene PlyDirectorySource::resolve_quantized(
    const std::string& key, std::size_t max_bytes) const {
  const SceneKey parsed = parse_scene_key(key);
  if (parsed.kind == SceneKey::Kind::kSynthetic) {
    return synthetic_.resolve_quantized(key, max_bytes);
  }
  return load_ply_quantized(resolve_path(parsed), max_bytes);
}

SceneStore::SceneStore(SceneStoreConfig config) : config_(std::move(config)) {
  GAURAST_CHECK_MSG(config_.source != nullptr,
                    "SceneStore needs a SceneSource");
}

std::size_t SceneStore::per_scene_cap() const {
  if (config_.max_scene_bytes == 0) return config_.max_bytes;
  if (config_.max_bytes == 0) return config_.max_scene_bytes;
  return std::min(config_.max_scene_bytes, config_.max_bytes);
}

void SceneStore::finish_inflight(const std::string& key, bool rejected) {
  common::MutexLock lock(mutex_);
  inflight_.erase(key);
  if (rejected) ++rejected_;
  inflight_cv_.notify_all();
}

std::shared_ptr<const GaussianScene> SceneStore::acquire(
    const std::string& key) {
  // Phase 1: resolve a live hit, or claim the (single-flight) load.
  // `resident` carries the still-resident quantized payload of a demoted
  // entry, distinguishing a re-inflate (hit) from a source load (miss).
  std::shared_ptr<const QuantizedScene> resident;
  {
    common::MutexLock lock(mutex_);
    for (;;) {
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (auto live = it->second.working.lock()) {
          ++hits_;
          it->second.lru_tick = ++lru_clock_;
          return live;
        }
      }
      if (inflight_.count(key) > 0) {
        // Another thread is loading this key; wait and re-check (it may
        // have succeeded, failed, or been evicted again).
        inflight_cv_.wait(lock);
        continue;
      }
      inflight_.insert(key);
      if (it != entries_.end()) resident = it->second.quantized;
      break;
    }
  }

  // Phase 2, unlocked: resolve through the source (miss) or re-inflate
  // from the resident quantized bytes (cold hit). Other keys proceed in
  // parallel; failures release the claim so waiters can retry and surface
  // their own error.
  std::shared_ptr<const QuantizedScene> quantized = resident;
  GaussianScene working;
  try {
    if (!quantized) {
      quantized = std::make_shared<const QuantizedScene>(
          config_.source->resolve_quantized(key, per_scene_cap()));
    }
    working = dequantize(*quantized);
  } catch (const SceneOverBudgetError&) {
    finish_inflight(key, /*rejected=*/true);
    throw;
  } catch (...) {
    finish_inflight(key, /*rejected=*/false);
    throw;
  }

  // Phase 3: publish the entry and working copy, then fit the budget.
  auto ptr = std::make_shared<const GaussianScene>(std::move(working));
  common::MutexLock lock(mutex_);
  inflight_.erase(key);
  inflight_cv_.notify_all();
  Entry& entry = entries_[key];
  if (resident) {
    ++hits_;  // payload never left the store; only the float copy did
  } else {
    ++misses_;
    entry.quantized = quantized;
    entry.quantized_bytes = quantized->resident_bytes();
    resident_bytes_ += entry.quantized_bytes;
    peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
  }
  entry.working = ptr;
  entry.lru_tick = ++lru_clock_;
  // `ptr` pins this key, so eviction can only take other entries.
  evict_to_budget();
  return ptr;
}

std::shared_ptr<const void> SceneStore::attachment(
    const GaussianScene* scene, const AttachmentFactory& make) {
  std::string key;
  bool found = false;
  {
    common::MutexLock lock(mutex_);
    for (const auto& [k, entry] : entries_) {
      const auto live = entry.working.lock();
      if (live.get() != scene) continue;
      if (entry.attachment) return entry.attachment;
      key = k;
      found = true;
      break;
    }
  }
  if (!found) return nullptr;

  // Build outside the lock (precompute is heavy). Concurrent builders for
  // one entry are possible but harmless: the content is deterministic and
  // the first publish wins.
  std::size_t bytes = 0;
  std::shared_ptr<const void> built = make(bytes);

  common::MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return built;  // evicted meanwhile: one-off
  if (!it->second.attachment) {
    it->second.attachment = built;
    it->second.attachment_bytes = bytes;
    resident_bytes_ += bytes;
    peak_resident_bytes_ = std::max(peak_resident_bytes_, resident_bytes_);
    evict_to_budget();
  }
  return it->second.attachment;
}

void SceneStore::evict_to_budget() {
  if (config_.max_bytes == 0) return;
  while (resident_bytes_ > config_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.working.expired()) continue;  // pinned by a render
      if (inflight_.count(it->first) > 0) continue;  // mid-(re)load
      if (victim == entries_.end() ||
          it->second.lru_tick < victim->second.lru_tick) {
        victim = it;
      }
    }
    // Every entry pinned or loading: residency transiently exceeds the
    // budget rather than freeing a scene mid-frame.
    if (victim == entries_.end()) return;
    resident_bytes_ -=
        victim->second.quantized_bytes + victim->second.attachment_bytes;
    ++evictions_;
    entries_.erase(victim);
  }
}

void SceneStore::trim() {
  common::MutexLock lock(mutex_);
  evict_to_budget();
}

SceneStoreStats SceneStore::stats() const {
  common::MutexLock lock(mutex_);
  SceneStoreStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.rejected = rejected_;
  s.resident_bytes = resident_bytes_;
  s.peak_resident_bytes = peak_resident_bytes_;
  s.resident_scenes = entries_.size();
  return s;
}

std::size_t SceneStore::resident_scenes() const {
  common::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t SceneStore::attachment_count() const {
  common::MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.attachment) ++count;
  }
  return count;
}

}  // namespace gaurast::scene
