#include "scene/camera.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gaurast::scene {

Camera::Camera(int width, int height, float fov_y_radians, Vec3f eye,
               Vec3f target, Vec3f up)
    : width_(width), height_(height), fov_y_(fov_y_radians), eye_(eye) {
  GAURAST_CHECK(width > 0 && height > 0);
  GAURAST_CHECK(fov_y_radians > 0.0f && fov_y_radians < 3.14f);
  // look_at() produces a -Z-forward view; flip Z (and X to stay right-handed)
  // to obtain the +Z-forward convention of the 3DGS pipelines.
  const Mat4f gl_view = look_at(eye, target, up);
  Mat4f flip = Mat4f::identity();
  flip.at(0, 0) = -1.0f;
  flip.at(2, 2) = -1.0f;
  view_ = flip * gl_view;
}

float Camera::fov_x() const {
  const float aspect =
      static_cast<float>(width_) / static_cast<float>(height_);
  return 2.0f * std::atan(std::tan(0.5f * fov_y_) * aspect);
}

float Camera::focal_y() const { return focal_from_fov(fov_y_, height_); }
float Camera::focal_x() const { return focal_from_fov(fov_x(), width_); }

float Camera::tan_half_fov_y() const { return std::tan(0.5f * fov_y_); }
float Camera::tan_half_fov_x() const { return std::tan(0.5f * fov_x()); }

Vec3f Camera::to_view(Vec3f world) const {
  return (view_ * Vec4f(world, 1.0f)).xyz();
}

Vec2f Camera::view_to_pixel(Vec3f v) const {
  GAURAST_CHECK_MSG(v.z > 0.0f, "view_to_pixel requires positive depth");
  const float x_ndc = v.x / (v.z * tan_half_fov_x());
  const float y_ndc = v.y / (v.z * tan_half_fov_y());
  return {(x_ndc + 1.0f) * 0.5f * static_cast<float>(width_),
          (1.0f - y_ndc) * 0.5f * static_cast<float>(height_)};
}

std::vector<Camera> orbit_path(int width, int height, float fov_y, Vec3f center,
                               float radius, float height_offset, int count) {
  GAURAST_CHECK(count > 0 && radius > 0.0f);
  std::vector<Camera> cams;
  cams.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const float theta = 2.0f * 3.14159265f * static_cast<float>(i) /
                        static_cast<float>(count);
    const Vec3f eye = center + Vec3f{radius * std::cos(theta), height_offset,
                                     radius * std::sin(theta)};
    cams.emplace_back(width, height, fov_y, eye, center);
  }
  return cams;
}

}  // namespace gaurast::scene
