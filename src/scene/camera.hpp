// Pinhole camera and view paths for rendering experiments.
#pragma once

#include <vector>

#include "gsmath/mat.hpp"
#include "gsmath/transform.hpp"
#include "gsmath/vec.hpp"

namespace gaurast::scene {

/// Pinhole camera: image size, vertical FOV and a world-to-view transform.
/// View space follows the 3DGS convention used by our pipelines: camera at
/// the origin, +Z pointing *into* the scene (depth = view-space z > 0 for
/// visible points).
class Camera {
 public:
  Camera(int width, int height, float fov_y_radians, Vec3f eye, Vec3f target,
         Vec3f up = {0.0f, 1.0f, 0.0f});

  int width() const { return width_; }
  int height() const { return height_; }
  float fov_y() const { return fov_y_; }
  float fov_x() const;
  Vec3f eye() const { return eye_; }

  float focal_x() const;
  float focal_y() const;
  float tan_half_fov_x() const;
  float tan_half_fov_y() const;

  /// World -> view transform (+Z forward).
  const Mat4f& view() const { return view_; }
  /// Rotation part of the view transform.
  Mat3f view_rotation() const { return view_.upper3x3(); }

  /// View-space position of a world point (z is the depth).
  Vec3f to_view(Vec3f world) const;

  /// Projects a view-space point to pixel coordinates (pixel centers at
  /// integer + 0.5, row 0 at the top). Requires positive depth.
  Vec2f view_to_pixel(Vec3f view_point) const;

  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }

 private:
  int width_;
  int height_;
  float fov_y_;
  Vec3f eye_;
  Mat4f view_;
};

/// Generates `count` cameras orbiting `center` at radius/height, looking at
/// the center — the evaluation-trajectory stand-in for NeRF-360 test views.
std::vector<Camera> orbit_path(int width, int height, float fov_y, Vec3f center,
                               float radius, float height_offset, int count);

}  // namespace gaurast::scene
