#include "scene/scene_io.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"

namespace gaurast::scene {

namespace {
constexpr char kMagic[4] = {'G', 'S', 'C', '1'};

void write_floats(std::ofstream& os, const float* data, std::size_t n) {
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n * sizeof(float)));
}

void read_floats(std::ifstream& is, float* data, std::size_t n) {
  is.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  GAURAST_CHECK_MSG(is.good(), "truncated scene file");
}
}  // namespace

void save_scene(const GaussianScene& scene, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  GAURAST_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  os.write(kMagic, 4);
  const std::int32_t degree = scene.sh_degree();
  const std::uint64_t count = scene.size();
  os.write(reinterpret_cast<const char*>(&degree), sizeof(degree));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const std::size_t sh_floats = sh_basis_count(scene.sh_degree()) * 3;
  for (std::size_t i = 0; i < scene.size(); ++i) {
    const Gaussian3D g = scene.gaussian(i);
    const float pos[3] = {g.position.x, g.position.y, g.position.z};
    const float scl[3] = {g.scale.x, g.scale.y, g.scale.z};
    const float rot[4] = {g.rotation.w, g.rotation.x, g.rotation.y,
                          g.rotation.z};
    write_floats(os, pos, 3);
    write_floats(os, scl, 3);
    write_floats(os, rot, 4);
    write_floats(os, &g.opacity, 1);
    write_floats(os, &g.sh[0].x, sh_floats);
  }
  GAURAST_CHECK_MSG(os.good(), "write failure on " << path);
}

GaussianScene load_scene(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GAURAST_CHECK_MSG(is.is_open(), "cannot open " << path);
  char magic[4];
  is.read(magic, 4);
  GAURAST_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                    "bad scene magic in " << path);
  std::int32_t degree = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&degree), sizeof(degree));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  GAURAST_CHECK_MSG(is.good() && degree >= 0 && degree <= 3,
                    "bad SH degree " << degree);
  GaussianScene scene(degree);
  scene.reserve(count);
  const std::size_t sh_floats = sh_basis_count(degree) * 3;
  for (std::uint64_t i = 0; i < count; ++i) {
    Gaussian3D g;
    float pos[3], scl[3], rot[4];
    read_floats(is, pos, 3);
    read_floats(is, scl, 3);
    read_floats(is, rot, 4);
    read_floats(is, &g.opacity, 1);
    read_floats(is, &g.sh[0].x, sh_floats);
    g.position = {pos[0], pos[1], pos[2]};
    g.scale = {scl[0], scl[1], scl[2]};
    g.rotation = {rot[0], rot[1], rot[2], rot[3]};
    scene.add(g);
  }
  return scene;
}

}  // namespace gaurast::scene
