#include "scene/gaussian.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace gaurast::scene {

void Aabb::expand(Vec3f p) {
  if (!valid) {
    lo = hi = p;
    valid = true;
    return;
  }
  lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
  hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
}

GaussianScene::GaussianScene(int sh_degree) : sh_degree_(sh_degree) {
  GAURAST_CHECK(sh_degree >= 0 && sh_degree <= 3);
}

void GaussianScene::add(const Gaussian3D& g) {
  GAURAST_CHECK_MSG(g.opacity >= 0.0f && g.opacity <= 1.0f,
                    "opacity " << g.opacity << " out of [0,1]");
  GAURAST_CHECK_MSG(
      g.scale.x >= 0.0f && g.scale.y >= 0.0f && g.scale.z >= 0.0f,
      "negative scale");
  GAURAST_CHECK_MSG(std::isfinite(g.position.x) && std::isfinite(g.position.y) &&
                        std::isfinite(g.position.z),
                    "non-finite position");
  positions_.push_back(g.position);
  scales_.push_back(g.scale);
  rotations_.push_back(g.rotation.normalized());
  opacities_.push_back(g.opacity);
  sh_.push_back(g.sh);
}

void GaussianScene::reserve(std::size_t n) {
  positions_.reserve(n);
  scales_.reserve(n);
  rotations_.reserve(n);
  opacities_.reserve(n);
  sh_.reserve(n);
}

Gaussian3D GaussianScene::gaussian(std::size_t i) const {
  GAURAST_CHECK(i < size());
  Gaussian3D g;
  g.position = positions_[i];
  g.scale = scales_[i];
  g.rotation = rotations_[i];
  g.opacity = opacities_[i];
  g.sh = sh_[i];
  return g;
}

Aabb GaussianScene::bounds() const {
  Aabb box;
  for (const Vec3f& p : positions_) box.expand(p);
  return box;
}

std::size_t GaussianScene::bytes_per_gaussian() const {
  const std::size_t sh_floats = sh_basis_count(sh_degree_) * 3;
  return (3 + 3 + 4 + 1 + sh_floats) * sizeof(float);
}

GaussianScene GaussianScene::pruned(std::size_t keep_count) const {
  keep_count = std::min(keep_count, size());
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto importance = [this](std::size_t i) {
    const Vec3f s = scales_[i];
    // Opacity-weighted volume, the usual splat-importance proxy.
    return opacities_[i] * s.x * s.y * s.z;
  };
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep_count),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return importance(a) > importance(b);
                    });
  GaussianScene out(sh_degree_);
  out.reserve(keep_count);
  for (std::size_t k = 0; k < keep_count; ++k) out.add(gaussian(order[k]));
  return out;
}

}  // namespace gaurast::scene
