// Synthetic Gaussian-scene generation.
//
// Generates procedurally structured scenes whose workload statistics mimic
// the NeRF-360 captures: a dense cluster of object Gaussians near the scene
// center, a ground disc, and a sparse large-Gaussian background shell (the
// structure reconstruction produces for unbounded 360-degree captures).
// Every draw is deterministic in the seed.
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"
#include "scene/profile.hpp"

namespace gaurast::scene {

struct GeneratorParams {
  std::uint64_t gaussian_count = 10000;
  std::uint64_t seed = 42;
  int sh_degree = 3;

  float scene_radius = 4.0f;       ///< radius of the central object cluster
  float background_radius = 20.0f; ///< radius of the background shell
  double object_fraction = 0.70;   ///< share of Gaussians in the cluster
  double ground_fraction = 0.15;   ///< share on the ground disc
  // remaining share goes to the background shell

  /// Log-normal parameters of per-axis Gaussian scales (world units).
  double log_scale_mu = -3.7;
  double log_scale_sigma = 0.6;

  /// Beta-ish opacity distribution: most splats fairly opaque, a tail of
  /// faint ones (matches trained-model opacity histograms).
  double opacity_alpha = 2.0;
  double opacity_beta = 1.0;

  /// Magnitude of view-dependent SH bands relative to DC.
  float sh_ac_magnitude = 0.15f;
};

/// Builds a scene from explicit parameters.
GaussianScene generate_scene(const GeneratorParams& params);

/// Builds a scaled synthetic stand-in for a profile: `scale` shrinks the
/// Gaussian count (see SceneProfile::scaled); splat sizes are chosen so the
/// screen-space footprint distribution lands near the profile's
/// pairs-per-pixel regime when viewed from the default orbit camera.
GaussianScene generate_scene_for_profile(const SceneProfile& profile,
                                         std::uint64_t seed = 42);

/// Default evaluation camera for generated scenes: orbit viewpoint at
/// 2.2x scene radius looking at the origin.
Camera default_camera(const GeneratorParams& params, int width, int height);

}  // namespace gaurast::scene
