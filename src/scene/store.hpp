// scene::SceneStore — the byte-budgeted scene cache behind every serving
// surface, plus the canonical scene addressing it resolves.
//
// Addressing: one key syntax, parsed here and nowhere else —
//
//   synthetic:<count>[@<seed>]   generator scene (seed defaults to 42)
//   ply:<path-or-name>           PLY checkpoint, resolved by the source
//
// `render`, `serve`, `request`, `route`, and the wire RenderRequest all
// speak these keys; a SceneSource turns one into a scene.
//
// The store holds scenes at rest in quantized form (scene/quantized) and
// dequantizes a float working copy on demand. Accounted bytes = quantized
// payload + any precompute attachment; the transient float copies are the
// render working set and are not charged. Guarantees:
//
//   - Strict LRU eviction over accounted bytes whenever residency exceeds
//     config.max_bytes (0 = unbounded).
//   - Single-flight loading: concurrent acquire() calls for one key load
//     once; other keys load concurrently.
//   - Pin-while-rendering: a ScenePtr returned by acquire() pins its entry
//     — eviction skips entries whose working copy is still referenced, so
//     a scene is never freed mid-frame (residency may transiently exceed
//     the budget when every entry is pinned).
//   - Admission control: a scene whose quantized payload would exceed
//     config.max_scene_bytes (or the whole budget) is rejected with a
//     gaurast::Error before it is materialized where the source allows
//     (streaming PLY ingest checks the header's vertex count; the
//     synthetic source checks the key's count).
//
// dequantize() is pure in the quantized bytes, so an evict-and-reload
// cycle reproduces bit-identical frames — the store trades memory for
// reload latency, never for output fidelity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "scene/gaussian.hpp"
#include "scene/quantized.hpp"

namespace gaurast::scene {

/// A parsed canonical scene key.
struct SceneKey {
  enum class Kind { kSynthetic, kPly };
  Kind kind = Kind::kSynthetic;
  std::uint64_t count = 0;  ///< synthetic: generator gaussian_count
  std::uint64_t seed = 0;   ///< synthetic: generator seed
  std::string path;         ///< ply: path or directory-relative name

  std::string canonical() const;
};

/// Parses the canonical syntax above; throws gaurast::Error on anything
/// else (including the retired "synthetic-<n>-s<seed>" spelling).
SceneKey parse_scene_key(const std::string& key);

/// The canonical spelling of a synthetic scene: "synthetic:<count>@<seed>".
std::string synthetic_scene_key(std::uint64_t count, std::uint64_t seed);

/// Resolves canonical scene keys into scenes. Implementations must be
/// thread-safe for const calls; the store invokes them outside its lock.
class SceneSource {
 public:
  virtual ~SceneSource() = default;

  /// Full-precision resolve (the CLI `render` path and tests).
  /// Throws gaurast::Error for keys the source cannot serve.
  virtual GaussianScene resolve(const std::string& key) const = 0;

  /// Resolve straight into quantized form. `max_bytes` > 0 is an admission
  /// limit: implementations that know the size up front (streaming PLY,
  /// synthetic counts) throw before materializing an over-budget scene.
  /// The default quantizes resolve() and checks afterwards.
  virtual QuantizedScene resolve_quantized(const std::string& key,
                                           std::size_t max_bytes) const;
};

/// Generator-backed source for "synthetic:<n>@<seed>" keys.
class SyntheticSource : public SceneSource {
 public:
  GaussianScene resolve(const std::string& key) const override;
  QuantizedScene resolve_quantized(const std::string& key,
                                   std::size_t max_bytes) const override;
};

/// Serves "ply:<name-or-path>" from a directory (a bare name resolves to
/// <directory>/<name>[.ply]; an absolute or relative path is used as-is)
/// via chunked streaming ingest, and delegates "synthetic:" keys to an
/// embedded SyntheticSource so one source covers both key kinds.
class PlyDirectorySource : public SceneSource {
 public:
  explicit PlyDirectorySource(std::string directory);

  GaussianScene resolve(const std::string& key) const override;
  QuantizedScene resolve_quantized(const std::string& key,
                                   std::size_t max_bytes) const override;

 private:
  std::string resolve_path(const SceneKey& key) const;

  std::string directory_;
  SyntheticSource synthetic_;
};

/// Adapts a callable to SceneSource — the test-double/injection path.
class FunctionSource : public SceneSource {
 public:
  using Fn = std::function<GaussianScene(const std::string& key)>;
  explicit FunctionSource(Fn fn) : fn_(std::move(fn)) {}

  GaussianScene resolve(const std::string& key) const override {
    return fn_(key);
  }

 private:
  Fn fn_;
};

struct SceneStoreConfig {
  /// Total accounted-byte budget; 0 = unbounded (no eviction).
  std::size_t max_bytes = 0;
  /// Per-scene admission cap on the quantized payload; 0 = none. A scene
  /// over this (or over max_bytes) is rejected with gaurast::Error.
  std::size_t max_scene_bytes = 0;
  /// Resolves keys on miss. Required.
  std::shared_ptr<const SceneSource> source;
};

/// Counter snapshot; monotonic except the residency gauges.
struct SceneStoreStats {
  std::uint64_t hits = 0;        ///< acquire() found the key resident
  std::uint64_t misses = 0;      ///< acquire() had to load via the source
  std::uint64_t evictions = 0;   ///< entries evicted to fit the budget
  std::uint64_t rejected = 0;    ///< admission refusals (over max bytes)
  std::uint64_t resident_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
  std::uint64_t resident_scenes = 0;
};

class SceneStore {
 public:
  explicit SceneStore(SceneStoreConfig config);

  SceneStore(const SceneStore&) = delete;
  SceneStore& operator=(const SceneStore&) = delete;

  /// Returns the working copy for `key`, loading (single-flight) or
  /// re-dequantizing as needed. The returned pointer pins the entry
  /// against eviction for its lifetime. Throws gaurast::Error on
  /// resolution failure or admission rejection.
  std::shared_ptr<const GaussianScene> acquire(const std::string& key)
      GAURAST_EXCLUDES(mutex_);

  /// Returns the attachment (opaque derived state, e.g. the pipelined
  /// executor's ScenePrecompute) for the entry whose live working copy is
  /// `scene`, building it via `make` on first request. The attachment's
  /// bytes are charged to the entry; it survives demote/re-dequantize
  /// cycles (valid because dequantization is bit-stable) and dies with the
  /// entry. Returns nullptr if `scene` is not a live store working copy.
  using AttachmentFactory =
      std::function<std::shared_ptr<const void>(std::size_t& bytes)>;
  std::shared_ptr<const void> attachment(const GaussianScene* scene,
                                         const AttachmentFactory& make)
      GAURAST_EXCLUDES(mutex_);

  /// Re-applies the eviction policy outside an acquire: drops evictable
  /// entries until resident bytes fit the budget again. Eviction otherwise
  /// only runs when an acquire publishes, so residency that transiently
  /// exceeded the budget while every entry was render-pinned would stay
  /// over it after the pins release. The service calls this after drain().
  void trim() GAURAST_EXCLUDES(mutex_);

  SceneStoreStats stats() const GAURAST_EXCLUDES(mutex_);
  std::size_t resident_scenes() const GAURAST_EXCLUDES(mutex_);
  /// Resident entries currently holding an attachment.
  std::size_t attachment_count() const GAURAST_EXCLUDES(mutex_);

  const SceneStoreConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const QuantizedScene> quantized;
    std::size_t quantized_bytes = 0;
    /// Live working copy; expired = demoted to quantized-only rest state.
    /// A live pointer pins the entry against eviction.
    std::weak_ptr<const GaussianScene> working;
    std::shared_ptr<const void> attachment;
    std::size_t attachment_bytes = 0;
    std::uint64_t lru_tick = 0;
  };

  /// Erases the single-flight marker for `key` and wakes waiters;
  /// `rejected` ticks the admission-refusal counter.
  void finish_inflight(const std::string& key, bool rejected)
      GAURAST_EXCLUDES(mutex_);
  void evict_to_budget() GAURAST_REQUIRES(mutex_);
  /// The per-scene admission cap: the tighter of max_scene_bytes and
  /// max_bytes (0 = no cap).
  std::size_t per_scene_cap() const;

  SceneStoreConfig config_;

  mutable common::Mutex mutex_;
  common::CondVar inflight_cv_;
  std::map<std::string, Entry> entries_ GAURAST_GUARDED_BY(mutex_);
  /// Keys with a load or re-dequantize in progress (single-flight);
  /// eviction skips them.
  std::set<std::string> inflight_ GAURAST_GUARDED_BY(mutex_);
  std::uint64_t lru_clock_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::size_t resident_bytes_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::size_t peak_resident_bytes_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ GAURAST_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ GAURAST_GUARDED_BY(mutex_) = 0;
};

}  // namespace gaurast::scene
