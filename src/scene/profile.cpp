#include "scene/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gaurast::scene {

namespace {

// ---------------------------------------------------------------------------
// Calibration (see DESIGN.md Sec. 6 and EXPERIMENTS.md).
//
// Resolutions: the 3DGS evaluation renders NeRF-360 outdoor scenes at 4x
// downsample (~1237x822) and indoor scenes at 2x (~1557x1038); we use those.
//
// Gaussian counts: published model sizes of the reference 3DGS checkpoints
// (Kerbl et al. 2023, supplementary), rounded.
//
// pairs_per_pixel: back-solved from the paper's GauRast runtimes (Table III)
// assuming the scaled 300-PE configuration at 1 GHz with ~0.97 achieved
// utilization: pairs = t_gau * 300e9 * 0.97. These are *workload* constants;
// the simulator re-derives runtime (and its own utilization) from them.
//
// cuda_fma_per_pair: back-solved from the paper's CUDA baselines (Table III)
// against the Orin NX 10 W sustained FP32 rate (1024 cores * 612 MHz =
// 626.7 GFMA/s): cost = t_base * rate / pairs. Values land at 48-61
// FMA-equivalents per evaluated pair — i.e. the CUDA kernel spends ~30 real
// flops plus ~20-30 equivalents of divergence/staging overhead, consistent
// with published 3DGS kernel analyses.
//
// tile_instances_per_gaussian: back-solved so the GPU model's Step-2 radix
// sort time makes Steps 1+2 equal ~1/5 of the Step-3 baseline time for the
// original pipeline (paper Fig. 5 shows Step 3 at >80% of frame time) and
// ~1/3 for Mini-Splatting (fewer Gaussians raise the relative sort share).
// ---------------------------------------------------------------------------

struct Row {
  const char* name;
  std::uint64_t gaussians;
  int width;
  int height;
  double pairs_per_pixel;
  double tile_instances_per_gaussian;
  double cuda_fma_per_pair;
  double tile_load_cv;
};

// Original 3DGS pipeline (Kerbl et al. 2023).
constexpr Row kOriginalRows[] = {
    // name      gaussians  w     h     ppp     inst/G  fma/pair cv
    {"bicycle", 6100000, 1237, 822, 4292.0, 4.7, 46.1, 0.95},
    {"stump", 4900000, 1237, 822, 1717.0, 1.4, 53.4, 0.85},
    {"garden", 5800000, 1237, 822, 2747.0, 2.8, 52.0, 0.90},
    {"room", 1500000, 1557, 1038, 1890.0, 20.3, 48.4, 0.75},
    {"counter", 1200000, 1557, 1038, 1765.0, 23.8, 47.4, 0.75},
    {"kitchen", 1800000, 1557, 1038, 2196.0, 19.2, 47.4, 0.80},
    {"bonsai", 1200000, 1557, 1038, 990.0, 15.2, 57.5, 0.70},
};

// Mini-Splatting (Fang & Wang 2024): ~10x fewer Gaussians with larger
// per-Gaussian footprints; rasterization work shrinks to ~29% of the
// original (paper Fig. 10 reports a 20x rather than 23x raster speedup and
// Fig. 11 a 46 FPS end-to-end average).
constexpr Row kMiniRows[] = {
    {"bicycle", 600000, 1237, 822, 1303.0, 35.0, 44.0, 0.80},
    {"stump", 490000, 1237, 822, 608.0, 26.0, 47.6, 0.72},
    {"garden", 560000, 1237, 822, 947.0, 30.0, 45.5, 0.76},
    {"room", 420000, 1557, 1038, 550.0, 40.0, 44.6, 0.65},
    {"counter", 400000, 1557, 1038, 507.0, 42.0, 44.1, 0.65},
    {"kitchen", 450000, 1557, 1038, 628.0, 41.0, 43.6, 0.68},
    {"bonsai", 400000, 1557, 1038, 372.0, 36.0, 49.3, 0.60},
};

SceneProfile from_row(const Row& row, PipelineVariant variant) {
  SceneProfile p;
  p.name = row.name;
  p.variant = variant;
  p.gaussian_count = row.gaussians;
  p.width = row.width;
  p.height = row.height;
  p.pairs_per_pixel = row.pairs_per_pixel;
  p.tile_instances_per_gaussian = row.tile_instances_per_gaussian;
  p.cuda_fma_per_pair = row.cuda_fma_per_pair;
  p.tile_load_cv = row.tile_load_cv;
  p.cull_survival = 0.95;
  p.sh_degree = 3;
  return p;
}

}  // namespace

std::uint64_t SceneProfile::tile_count(int tile_size) const {
  GAURAST_CHECK(tile_size > 0);
  const auto tx = static_cast<std::uint64_t>((width + tile_size - 1) / tile_size);
  const auto ty =
      static_cast<std::uint64_t>((height + tile_size - 1) / tile_size);
  return tx * ty;
}

SceneProfile SceneProfile::scaled(double factor) const {
  GAURAST_CHECK_MSG(factor > 0.0 && factor <= 1.0,
                    "scale factor " << factor << " out of (0,1]");
  SceneProfile p = *this;
  p.name = name + "-s" + std::to_string(factor).substr(0, 4);
  // Linear dimensions scale with sqrt(factor) so pixel count scales with
  // factor; Gaussian count scales with factor; per-pixel blend depth is an
  // intensive quantity and is preserved.
  const double lin = std::sqrt(factor);
  p.width = std::max(16, static_cast<int>(width * lin));
  p.height = std::max(16, static_cast<int>(height * lin));
  p.gaussian_count = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(static_cast<double>(gaussian_count) * factor));
  return p;
}

std::vector<SceneProfile> nerf360_profiles() {
  std::vector<SceneProfile> out;
  for (const Row& r : kOriginalRows)
    out.push_back(from_row(r, PipelineVariant::kOriginal));
  return out;
}

std::vector<SceneProfile> nerf360_mini_profiles() {
  std::vector<SceneProfile> out;
  for (const Row& r : kMiniRows)
    out.push_back(from_row(r, PipelineVariant::kMiniSplatting));
  return out;
}

const std::vector<std::string>& nerf360_scene_names() {
  static const std::vector<std::string> names = {
      "bicycle", "stump", "garden", "room", "counter", "kitchen", "bonsai"};
  return names;
}

SceneProfile profile_by_name(const std::string& name, PipelineVariant variant) {
  const auto rows = variant == PipelineVariant::kOriginal
                        ? nerf360_profiles()
                        : nerf360_mini_profiles();
  for (const SceneProfile& p : rows) {
    if (p.name == name) return p;
  }
  GAURAST_CHECK_MSG(false, "unknown scene profile: " << name);
  return {};
}

}  // namespace gaurast::scene
