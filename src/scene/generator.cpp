#include "scene/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "gsmath/sh.hpp"

namespace gaurast::scene {

namespace {

/// Crude Beta(alpha, beta) sampler via Johnk's algorithm — adequate for
/// opacity shaping, not performance critical.
double sample_beta(Pcg32& rng, double alpha, double beta) {
  for (int i = 0; i < 64; ++i) {
    const double u = std::pow(rng.uniform(), 1.0 / alpha);
    const double v = std::pow(rng.uniform(), 1.0 / beta);
    if (u + v <= 1.0 && u + v > 0.0) return u / (u + v);
  }
  return 0.5;  // pathological parameters; return the mean-ish fallback
}

Vec3f random_unit_vector(Pcg32& rng) {
  // Marsaglia method.
  for (;;) {
    const float a = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float b = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float s = a * a + b * b;
    if (s >= 1.0f || s == 0.0f) continue;
    const float t = 2.0f * std::sqrt(1.0f - s);
    return {a * t, b * t, 1.0f - 2.0f * s};
  }
}

Quatf random_rotation(Pcg32& rng) {
  // Uniform over SO(3) via Shoemake's method.
  const float u1 = static_cast<float>(rng.uniform());
  const float u2 = static_cast<float>(rng.uniform());
  const float u3 = static_cast<float>(rng.uniform());
  const float s1 = std::sqrt(1.0f - u1), s2 = std::sqrt(u1);
  const float t2 = 2.0f * 3.14159265f * u2, t3 = 2.0f * 3.14159265f * u3;
  return Quatf{s1 * std::sin(t2), s1 * std::cos(t2), s2 * std::sin(t3),
               s2 * std::cos(t3)}
      .normalized();
}

ShCoefficients make_sh(Pcg32& rng, Vec3f base_rgb, int degree,
                       float ac_magnitude) {
  ShCoefficients sh{};
  sh[0] = sh_dc_from_rgb(base_rgb);
  for (std::size_t i = 1; i < sh_basis_count(degree); ++i) {
    sh[i] = Vec3f{static_cast<float>(rng.normal(0.0, ac_magnitude)),
                  static_cast<float>(rng.normal(0.0, ac_magnitude)),
                  static_cast<float>(rng.normal(0.0, ac_magnitude))};
  }
  return sh;
}

Vec3f palette_color(Pcg32& rng) {
  // Muted natural palette: greens/browns/greys with occasional saturated
  // accents, roughly matching reconstructed-capture statistics.
  const double pick = rng.uniform();
  Vec3f base;
  if (pick < 0.4) base = {0.35f, 0.45f, 0.25f};       // foliage
  else if (pick < 0.7) base = {0.45f, 0.38f, 0.30f};  // wood/earth
  else if (pick < 0.9) base = {0.55f, 0.55f, 0.58f};  // stone/grey
  else base = {0.7f, 0.3f, 0.25f};                    // accent
  const auto jitter = [&](float v) {
    return clampf(v + static_cast<float>(rng.normal(0.0, 0.08)), 0.02f, 0.98f);
  };
  return {jitter(base.x), jitter(base.y), jitter(base.z)};
}

}  // namespace

GaussianScene generate_scene(const GeneratorParams& params) {
  GAURAST_CHECK(params.gaussian_count > 0);
  GAURAST_CHECK(params.object_fraction + params.ground_fraction <= 1.0);
  Pcg32 rng(params.seed);
  GaussianScene out(params.sh_degree);
  out.reserve(params.gaussian_count);

  const auto n_total = params.gaussian_count;
  const auto n_object =
      static_cast<std::uint64_t>(params.object_fraction * static_cast<double>(n_total));
  const auto n_ground =
      static_cast<std::uint64_t>(params.ground_fraction * static_cast<double>(n_total));

  for (std::uint64_t i = 0; i < n_total; ++i) {
    Gaussian3D g;
    float size_multiplier = 1.0f;
    if (i < n_object) {
      // Central cluster: mixture of sub-clusters for realistic clumping.
      const int cluster = static_cast<int>(rng.next_below(8));
      Pcg32 cluster_rng(params.seed * 977u + static_cast<std::uint64_t>(cluster));
      const Vec3f c{
          static_cast<float>(cluster_rng.normal(0.0, 0.5)) * params.scene_radius,
          static_cast<float>(cluster_rng.uniform(0.0, 0.8)) * params.scene_radius,
          static_cast<float>(cluster_rng.normal(0.0, 0.5)) * params.scene_radius};
      const float spread = 0.25f * params.scene_radius;
      g.position = c + Vec3f{static_cast<float>(rng.normal(0.0, spread)),
                             static_cast<float>(rng.normal(0.0, spread * 0.7)),
                             static_cast<float>(rng.normal(0.0, spread))};
    } else if (i < n_object + n_ground) {
      // Ground disc: flattened Gaussians at y ~ 0.
      const float r = params.scene_radius *
                      2.0f * std::sqrt(static_cast<float>(rng.uniform()));
      const float theta = static_cast<float>(rng.uniform(0.0, 2.0 * 3.14159265));
      g.position = {r * std::cos(theta),
                    static_cast<float>(rng.normal(0.0, 0.02)),
                    r * std::sin(theta)};
      size_multiplier = 1.6f;
    } else {
      // Background shell: large, distant splats.
      const Vec3f dir = random_unit_vector(rng);
      const float r = params.background_radius *
                      static_cast<float>(rng.uniform(0.8, 1.2));
      g.position = dir * r;
      g.position.y = std::abs(g.position.y) * 0.5f;  // keep above horizon-ish
      size_multiplier = 8.0f;
    }

    const auto s = [&]() {
      return size_multiplier *
             static_cast<float>(rng.lognormal(params.log_scale_mu,
                                              params.log_scale_sigma));
    };
    g.scale = {s(), s(), s()};
    if (i >= n_object && i < n_object + n_ground) g.scale.y *= 0.15f;  // flat
    g.rotation = random_rotation(rng);
    g.opacity = static_cast<float>(
        std::clamp(sample_beta(rng, params.opacity_alpha, params.opacity_beta),
                   0.02, 0.99));
    g.sh = make_sh(rng, palette_color(rng), params.sh_degree,
                   params.sh_ac_magnitude);
    out.add(g);
  }
  return out;
}

GaussianScene generate_scene_for_profile(const SceneProfile& profile,
                                         std::uint64_t seed) {
  GeneratorParams params;
  params.gaussian_count = profile.gaussian_count;
  params.seed = seed;
  params.sh_degree = profile.sh_degree;
  // Denser scenes (more pairs per pixel relative to Gaussian count) need
  // larger splats; scale the log-size so footprint grows with the profile's
  // per-Gaussian tile duplication.
  params.log_scale_mu =
      -3.7 + 0.35 * std::log(std::max(1.0, profile.tile_instances_per_gaussian));
  if (profile.variant == PipelineVariant::kMiniSplatting) {
    // Mini-Splatting keeps fewer but individually more significant splats.
    params.opacity_alpha = 3.0;
    params.log_scale_sigma = 0.5;
  }
  return generate_scene(params);
}

Camera default_camera(const GeneratorParams& params, int width, int height) {
  const float r = 2.2f * params.scene_radius;
  return Camera(width, height, 0.9f, Vec3f{r, 0.6f * params.scene_radius, r},
                Vec3f{0.0f, 0.3f * params.scene_radius, 0.0f});
}

}  // namespace gaurast::scene
