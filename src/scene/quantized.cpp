#include "scene/quantized.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"
#include "gsmath/sh.hpp"

namespace gaurast::scene {

namespace {

/// Largest finite fp16 value; inputs are clamped here so quantization never
/// manufactures an infinity (GaussianScene::add requires finite positions).
constexpr float kHalfMax = 65504.0f;

constexpr float kInvSqrt2 = 0.70710678118654752440f;

std::uint16_t to_half(float v) {
  return float_to_half_bits(std::clamp(v, -kHalfMax, kHalfMax));
}

float from_half(std::uint16_t bits) { return half_bits_to_float(bits); }

/// 10-bit code for a component in [-1/sqrt(2), 1/sqrt(2)].
std::uint32_t encode_component(float v) {
  const float s = std::clamp(v / kInvSqrt2, -1.0f, 1.0f);
  const long code = std::lround((s + 1.0f) * 0.5f * 1023.0f);
  return static_cast<std::uint32_t>(std::clamp(code, 0L, 1023L));
}

float decode_component(std::uint32_t code) {
  const float s =
      static_cast<float>(code) * (2.0f / 1023.0f) - 1.0f;
  return s * kInvSqrt2;
}

}  // namespace

std::size_t QuantizedScene::resident_bytes() const {
  return positions.size() * sizeof(std::uint16_t) +
         scales.size() * sizeof(std::uint16_t) +
         rotations.size() * sizeof(std::uint32_t) +
         opacities.size() * sizeof(std::uint8_t) +
         sh.size() * sizeof(std::uint16_t);
}

std::size_t quantized_bytes_per_splat(int sh_degree) {
  const std::size_t sh_values = sh_basis_count(sh_degree) * 3;
  // pos 3xfp16 + scale 3xfp16 + rot u32 + opacity u8 + SH fp16 each.
  return 3 * 2 + 3 * 2 + 4 + 1 + sh_values * 2;
}

std::uint32_t pack_rotation(const Quatf& q) {
  const float comps[4] = {q.w, q.x, q.y, q.z};
  std::size_t largest = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (std::fabs(comps[i]) > std::fabs(comps[largest])) largest = i;
  }
  // q and -q rotate identically; normalize the sign so the dropped
  // component is always non-negative and reconstructible from the norm.
  const float sign = comps[largest] < 0.0f ? -1.0f : 1.0f;
  std::uint32_t bits = static_cast<std::uint32_t>(largest) << 30;
  int shift = 20;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == largest) continue;
    bits |= encode_component(sign * comps[i]) << shift;
    shift -= 10;
  }
  return bits;
}

Quatf unpack_rotation(std::uint32_t bits) {
  const std::size_t largest = bits >> 30;
  float comps[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  int shift = 20;
  float norm_sq = 0.0f;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == largest) continue;
    const float v = decode_component((bits >> shift) & 0x3ffu);
    comps[i] = v;
    norm_sq += v * v;
    shift -= 10;
  }
  comps[largest] = std::sqrt(std::max(0.0f, 1.0f - norm_sq));
  return Quatf{comps[0], comps[1], comps[2], comps[3]};
}

QuantizedSceneBuilder::QuantizedSceneBuilder(int sh_degree) {
  GAURAST_CHECK(sh_degree >= 0 && sh_degree <= 3);
  scene_.sh_degree = sh_degree;
}

void QuantizedSceneBuilder::reserve(std::size_t splats) {
  scene_.positions.reserve(splats * 3);
  scene_.scales.reserve(splats * 3);
  scene_.rotations.reserve(splats);
  scene_.opacities.reserve(splats);
  scene_.sh.reserve(splats * sh_basis_count(scene_.sh_degree) * 3);
}

void QuantizedSceneBuilder::add(const Gaussian3D& g) {
  scene_.positions.push_back(to_half(g.position.x));
  scene_.positions.push_back(to_half(g.position.y));
  scene_.positions.push_back(to_half(g.position.z));
  // Scales are >= 0 by the scene invariant; fp16 rounding of a
  // non-negative float is non-negative, so the dequantized scene passes
  // the same check.
  scene_.scales.push_back(to_half(g.scale.x));
  scene_.scales.push_back(to_half(g.scale.y));
  scene_.scales.push_back(to_half(g.scale.z));
  scene_.rotations.push_back(pack_rotation(g.rotation.normalized()));
  scene_.opacities.push_back(static_cast<std::uint8_t>(
      std::lround(std::clamp(g.opacity, 0.0f, 1.0f) * 255.0f)));
  const std::size_t bands = sh_basis_count(scene_.sh_degree);
  for (std::size_t band = 0; band < bands; ++band) {
    scene_.sh.push_back(to_half(g.sh[band].x));
    scene_.sh.push_back(to_half(g.sh[band].y));
    scene_.sh.push_back(to_half(g.sh[band].z));
  }
}

QuantizedScene QuantizedSceneBuilder::take() { return std::move(scene_); }

QuantizedScene quantize(const GaussianScene& scene) {
  QuantizedSceneBuilder builder(scene.sh_degree());
  builder.reserve(scene.size());
  for (std::size_t i = 0; i < scene.size(); ++i) {
    builder.add(scene.gaussian(i));
  }
  return builder.take();
}

GaussianScene dequantize(const QuantizedScene& q) {
  GaussianScene scene(q.sh_degree);
  scene.reserve(q.size());
  const std::size_t bands = sh_basis_count(q.sh_degree);
  for (std::size_t i = 0; i < q.size(); ++i) {
    Gaussian3D g;
    g.position = {from_half(q.positions[i * 3 + 0]),
                  from_half(q.positions[i * 3 + 1]),
                  from_half(q.positions[i * 3 + 2])};
    g.scale = {from_half(q.scales[i * 3 + 0]),
               from_half(q.scales[i * 3 + 1]),
               from_half(q.scales[i * 3 + 2])};
    g.rotation = unpack_rotation(q.rotations[i]);
    g.opacity = static_cast<float>(q.opacities[i]) / 255.0f;
    for (std::size_t band = 0; band < bands; ++band) {
      g.sh[band] = {from_half(q.sh[(i * bands + band) * 3 + 0]),
                    from_half(q.sh[(i * bands + band) * 3 + 1]),
                    from_half(q.sh[(i * bands + band) * 3 + 2])};
    }
    scene.add(g);
  }
  return scene;
}

}  // namespace gaurast::scene
