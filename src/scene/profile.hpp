// Per-scene workload profiles standing in for the NeRF-360 dataset.
//
// We do not have the trained NeRF-360 Gaussian checkpoints the paper renders
// (bicycle, stump, garden, room, counter, kitchen, bonsai). What the
// simulators actually consume, however, is the *workload* each scene induces:
// how many Gaussians survive culling, how many tile instances sorting must
// order, and how many Gaussian-pixel blend evaluations rasterization
// performs. SceneProfile captures exactly those statistics per scene.
//
// Full-scale statistics are calibrated so that the CUDA baseline cost model
// reproduces the paper's published Orin NX runtimes (Table III, Figs. 4/5);
// the SAME profile then drives the GauRast cycle simulator, whose runtime,
// speedup, energy and FPS numbers are genuine model outputs. The calibration
// rationale for each constant is documented next to it in profile.cpp, and
// EXPERIMENTS.md records paper-vs-reproduced values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gaurast::scene {

/// Which 3DGS pipeline variant a profile models.
enum class PipelineVariant {
  kOriginal,      ///< Kerbl et al. 2023 (reference 3DGS)
  kMiniSplatting  ///< Fang & Wang 2024 (efficiency-optimized, fewer Gaussians)
};

/// Workload statistics for rendering one frame of one scene.
struct SceneProfile {
  std::string name;
  PipelineVariant variant = PipelineVariant::kOriginal;

  // --- geometry of the rendering problem -------------------------------
  std::uint64_t gaussian_count = 0;  ///< Gaussians in the trained model
  int width = 0;                     ///< render resolution
  int height = 0;
  int sh_degree = 3;

  // --- workload statistics ---------------------------------------------
  /// Mean Gaussian-pixel pairs *evaluated* per output pixel during Step 3
  /// (includes pairs later discarded by the 1/255 alpha threshold; excludes
  /// pixels already terminated at T < 1e-4, as both the CUDA kernel and the
  /// PE skip those).
  double pairs_per_pixel = 0.0;

  /// Mean 16x16 tile instances per Gaussian produced by duplication in
  /// Step 2 (a Gaussian overlapping k tiles contributes k sort keys).
  double tile_instances_per_gaussian = 0.0;

  /// Fraction of Gaussians surviving frustum culling in Step 1.
  double cull_survival = 0.95;

  /// Skew of per-tile load (coefficient of variation of pairs per tile);
  /// drives the load-imbalance term of the fast simulator.
  double tile_load_cv = 0.8;

  // --- CUDA software-rasterizer calibration ----------------------------
  /// Effective FMA-equivalents the CUDA kernel spends per evaluated pair,
  /// folding real arithmetic (~30 flops), warp divergence, shared-memory
  /// staging and atomics. Calibrated per scene against paper Table III.
  double cuda_fma_per_pair = 50.0;

  // --- derived quantities ------------------------------------------------
  std::uint64_t pixel_count() const {
    return static_cast<std::uint64_t>(width) *
           static_cast<std::uint64_t>(height);
  }
  std::uint64_t total_pairs() const {
    return static_cast<std::uint64_t>(pairs_per_pixel *
                                      static_cast<double>(pixel_count()));
  }
  std::uint64_t tile_instances() const {
    return static_cast<std::uint64_t>(
        tile_instances_per_gaussian * static_cast<double>(gaussian_count));
  }
  std::uint64_t tile_count(int tile_size = 16) const;

  /// Returns a proportionally shrunk profile (factor in (0, 1]): Gaussian
  /// count and pixel dimensions scale so that real synthetic scenes with this
  /// workload can be rendered end-to-end in tests and examples.
  SceneProfile scaled(double factor) const;
};

/// The seven NeRF-360 scenes under the original 3DGS pipeline.
std::vector<SceneProfile> nerf360_profiles();

/// The same scenes under the Mini-Splatting efficiency-optimized pipeline.
std::vector<SceneProfile> nerf360_mini_profiles();

/// Looks up a profile by scene name; variant selects the pipeline.
SceneProfile profile_by_name(const std::string& name,
                             PipelineVariant variant = PipelineVariant::kOriginal);

/// Names of the seven scenes in canonical paper order.
const std::vector<std::string>& nerf360_scene_names();

}  // namespace gaurast::scene
