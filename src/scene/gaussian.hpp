// 3D Gaussian scene representation (paper Sec. II-A).
//
// A scene is a set of elliptical 3D Gaussians, each with position, per-axis
// scale, orientation quaternion, opacity, and spherical-harmonic color
// coefficients. Storage is struct-of-arrays: the preprocessing stage streams
// each attribute linearly, and workload byte counts for the GPU cost model
// are computed from these layouts.
#pragma once

#include <cstddef>
#include <vector>

#include "gsmath/quat.hpp"
#include "gsmath/sh.hpp"
#include "gsmath/vec.hpp"

namespace gaurast::scene {

/// One Gaussian in array-of-structs form, used at construction / IO
/// boundaries; hot loops use the SoA accessors on GaussianScene.
struct Gaussian3D {
  Vec3f position;
  Vec3f scale{0.01f, 0.01f, 0.01f};  ///< per-axis stddev, world units, >= 0
  Quatf rotation = Quatf::identity();
  float opacity = 1.0f;  ///< in [0, 1]
  ShCoefficients sh{};   ///< RGB SH coefficients, band-major
};

/// Axis-aligned bounding box.
struct Aabb {
  Vec3f lo{0, 0, 0};
  Vec3f hi{0, 0, 0};
  bool valid = false;

  void expand(Vec3f p);
  Vec3f center() const { return (lo + hi) * 0.5f; }
  Vec3f extent() const { return hi - lo; }
};

/// SoA Gaussian container with invariant checks on insertion.
class GaussianScene {
 public:
  GaussianScene() = default;
  explicit GaussianScene(int sh_degree);

  /// Appends one Gaussian; validates opacity/scale ranges.
  void add(const Gaussian3D& g);

  void reserve(std::size_t n);
  std::size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }
  int sh_degree() const { return sh_degree_; }

  const std::vector<Vec3f>& positions() const { return positions_; }
  const std::vector<Vec3f>& scales() const { return scales_; }
  const std::vector<Quatf>& rotations() const { return rotations_; }
  const std::vector<float>& opacities() const { return opacities_; }
  const std::vector<ShCoefficients>& sh() const { return sh_; }

  /// Reconstructs the AoS view of Gaussian i (IO / debugging).
  Gaussian3D gaussian(std::size_t i) const;

  /// Bounding box over all positions.
  Aabb bounds() const;

  /// Bytes of attribute data read per Gaussian by preprocessing:
  /// pos(3) + scale(3) + rot(4) + opacity(1) + SH((deg+1)^2 * 3) floats.
  std::size_t bytes_per_gaussian() const;

  /// Importance-pruned copy keeping the `keep_count` Gaussians with the
  /// largest opacity * volume product — our stand-in for the Mini-Splatting
  /// (Fang & Wang 2024) constrained-budget representation used by the
  /// paper's "efficiency-optimized pipeline" experiments.
  GaussianScene pruned(std::size_t keep_count) const;

 private:
  int sh_degree_ = 3;
  std::vector<Vec3f> positions_;
  std::vector<Vec3f> scales_;
  std::vector<Quatf> rotations_;
  std::vector<float> opacities_;
  std::vector<ShCoefficients> sh_;
};

}  // namespace gaurast::scene
