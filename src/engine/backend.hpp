// engine::RenderBackend — the one seam every execution path goes through.
//
// The paper's claim is one device serving Gaussian (and triangle) workloads
// through one enhanced rasterizer; this module is the software mirror of
// that claim: one abstract backend API behind which the reference software
// pipeline, the GauRast hardware model, and any future operating point
// (new PE counts, precisions, hosts, rival accelerators) are
// interchangeable. The CLI, the concurrent RenderService, the benches and
// the examples all consume backends through this interface — adding an
// operating point is one registration in engine/registry.hpp, not N
// call-site edits.
//
// Thread-safety contract: render() is const, takes the scene by const
// reference and touches no mutable backend state, so one backend instance
// may serve any number of concurrent callers — the guarantee the
// RenderService workers rely on.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "pipeline/renderer.hpp"
#include "scene/camera.hpp"
#include "scene/gaussian.hpp"

namespace gaurast::engine {

/// What a backend can do with the knobs callers may pass. Flag validation
/// and help text are derived from these bits (never from name string
/// if-chains), so a new backend gets correct CLI behavior for free.
struct Capabilities {
  /// Step 3 runs in host software and fans tiles across
  /// FrameOptions::pipeline.num_threads (bit-identical for any count).
  bool supports_raster_threads = false;
  /// FrameOptions::pipeline.kernel selects the Step-3 software kernel
  /// (reference scalar oracle vs the optimized fast kernel, bit-identical
  /// by contract). Hardware-model backends run Step 3 on the modeled
  /// rasterizer and reject the flag.
  bool supports_kernel_select = false;
  /// BackendOptions::rasterizer is honored; backends that derive their own
  /// operating point (e.g. the GSCore-matched FP16 sizing) reject it.
  bool accepts_external_rasterizer_config = false;
  /// Steps 1-3 are separately invokable through stage_preprocess() /
  /// stage_sort() / stage_raster(), so a frame scheduler can overlap stage
  /// N of one frame with stage N-1 of the next. Stage execution is
  /// bit-identical to render() by contract.
  bool supports_stage_pipeline = false;
  /// Step 3 is a modeled hardware rasterizer; FrameOutput::hw is populated.
  bool is_hardware_model = false;
  /// Datapath precision of the Step-3 executor.
  core::Precision default_precision = core::Precision::kFp32;
};

/// Creation-time options, applied by engine::create(). Fields a backend's
/// capabilities() does not advertise support for are rejected there.
struct BackendOptions {
  /// External hardware-model operating point (e.g. from a --config file).
  std::optional<core::RasterizerConfig> rasterizer;
};

/// Per-frame options; creation-time choices live in BackendOptions.
struct FrameOptions {
  /// Steps 1-2 settings for every backend; num_threads additionally drives
  /// the Step-3 tile fan-out where supports_raster_threads is set.
  pipeline::RendererConfig pipeline;
  /// Camera-independent per-scene state (pipeline::precompute_scene),
  /// shared across every frame of the same scene. When set it must have
  /// been built from the scene render() is invoked with. Backends whose
  /// Step 1 runs in host software substitute the precomputed values for the
  /// per-frame computation (bit-identical output); others may ignore it.
  std::shared_ptr<const pipeline::ScenePrecompute> scene_precompute;
};

/// Modeled deployment metrics, present when is_hardware_model is set.
struct HardwareMetrics {
  double raster_model_ms = 0.0;     ///< Step 3 on the enhanced rasterizer
  double stage12_model_ms = 0.0;    ///< Steps 1-2 on the host GPU
  double pipelined_frame_ms = 0.0;  ///< steady-state collaborative interval
  double utilization = 0.0;         ///< PE utilization
  double energy_soc_mj = 0.0;       ///< Step-3 energy at the SoC node

  double pipelined_fps() const {
    return pipelined_frame_ms > 0.0 ? 1000.0 / pipelined_frame_ms : 0.0;
  }
};

/// Everything a backend returns for one frame: the full pipeline result
/// (image + workload + per-step stats, Step-3 fields reflecting whichever
/// executor ran it) plus modeled hardware metrics where applicable.
struct FrameOutput {
  pipeline::FrameResult frame;
  std::optional<HardwareMetrics> hw;
};

/// "fp32" | "fp16" — the spelling used in CLI tables and JSON reports.
const char* precision_name(core::Precision precision);

class RenderBackend {
 public:
  virtual ~RenderBackend() = default;

  /// Registry key ("sw", "gaurast", ...), stable across releases.
  virtual std::string name() const = 0;

  /// One-line human description of the operating point.
  virtual std::string describe() const = 0;

  virtual Capabilities capabilities() const = 0;

  /// Renders one frame. Deterministic in (scene, camera, options): images
  /// are bit-identical no matter which thread or worker runs the call.
  virtual FrameOutput render(const scene::GaussianScene& scene,
                             const scene::Camera& camera,
                             const FrameOptions& options) const = 0;

  // Stage-pipelined execution seam, valid when
  // capabilities().supports_stage_pipeline is set. A frame is exactly
  //   stage_preprocess -> stage_sort -> stage_raster,
  // each call free to run on a different thread (the frame state travels by
  // value through the scheduler's queues), and the composition is
  // bit-identical to render() by contract. The default implementations
  // throw gaurast::Error naming the backend.

  /// Step 1: scene -> screen-space splats (plus the background image whose
  /// dimensions carry the tile grid downstream).
  virtual pipeline::FrameResult stage_preprocess(
      const scene::GaussianScene& scene, const scene::Camera& camera,
      const FrameOptions& options) const;

  /// Step 2: frame.splats -> depth-sorted frame.workload.
  virtual void stage_sort(pipeline::FrameResult& frame,
                          const FrameOptions& options) const;

  /// Step 3: rasterizes the sorted workload, consuming the frame state and
  /// returning the finished output (hardware models attach their modeled
  /// metrics here, exactly as render() does).
  virtual FrameOutput stage_raster(pipeline::FrameResult frame,
                                   const FrameOptions& options) const;

  /// The hardware-model operating point, when there is one (lets callers
  /// report PE count/precision without downcasting); nullopt for pure
  /// software backends.
  virtual std::optional<core::RasterizerConfig> rasterizer_config() const {
    return std::nullopt;
  }
};

}  // namespace gaurast::engine
