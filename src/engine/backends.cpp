#include "engine/backends.hpp"

#include <utility>

#include "accel/gscore.hpp"
#include "common/table.hpp"

namespace gaurast::engine {

const char* precision_name(core::Precision precision) {
  return precision == core::Precision::kFp16 ? "fp16" : "fp32";
}

namespace {

[[noreturn]] void throw_no_stage_pipeline(const RenderBackend& backend) {
  throw Error("backend '" + backend.name() +
              "' does not support stage-pipelined execution (its stages "
              "cannot be invoked separately)");
}

}  // namespace

pipeline::FrameResult RenderBackend::stage_preprocess(
    const scene::GaussianScene&, const scene::Camera&,
    const FrameOptions&) const {
  throw_no_stage_pipeline(*this);
}

void RenderBackend::stage_sort(pipeline::FrameResult&,
                               const FrameOptions&) const {
  throw_no_stage_pipeline(*this);
}

FrameOutput RenderBackend::stage_raster(pipeline::FrameResult,
                                        const FrameOptions&) const {
  throw_no_stage_pipeline(*this);
}

std::string SoftwareBackend::describe() const {
  return "reference software 3DGS pipeline; Steps 1-3 on the host CPU, "
         "Step 3 fans tiles across raster threads and selects the "
         "reference or fast kernel";
}

Capabilities SoftwareBackend::capabilities() const {
  Capabilities caps;
  caps.supports_raster_threads = true;
  caps.supports_kernel_select = true;
  caps.accepts_external_rasterizer_config = false;
  caps.supports_stage_pipeline = true;
  caps.is_hardware_model = false;
  caps.default_precision = core::Precision::kFp32;
  return caps;
}

FrameOutput SoftwareBackend::render(const scene::GaussianScene& scene,
                                    const scene::Camera& camera,
                                    const FrameOptions& options) const {
  const pipeline::GaussianRenderer renderer(options.pipeline);
  FrameOutput out;
  out.frame = renderer.render(scene, camera, options.scene_precompute.get());
  return out;
}

pipeline::FrameResult SoftwareBackend::stage_preprocess(
    const scene::GaussianScene& scene, const scene::Camera& camera,
    const FrameOptions& options) const {
  return pipeline::GaussianRenderer(options.pipeline)
      .begin_frame(scene, camera, options.scene_precompute.get());
}

void SoftwareBackend::stage_sort(pipeline::FrameResult& frame,
                                 const FrameOptions& options) const {
  pipeline::GaussianRenderer(options.pipeline).sort_frame(frame);
}

FrameOutput SoftwareBackend::stage_raster(pipeline::FrameResult frame,
                                          const FrameOptions& options) const {
  pipeline::GaussianRenderer(options.pipeline)
      .raster_frame(frame, options.scene_precompute.get());
  FrameOutput out;
  out.frame = std::move(frame);
  return out;
}

GauRastBackend::GauRastBackend(Spec spec)
    : spec_(std::move(spec)), device_(spec_.rasterizer, spec_.host) {
  if (spec_.description.empty()) {
    const core::RasterizerConfig& r = spec_.rasterizer;
    spec_.description = "GauRast hardware model: " +
                        std::to_string(r.total_pes()) + " " +
                        precision_name(r.precision) + " PEs (" +
                        std::to_string(r.module_count) + "x" +
                        std::to_string(r.pes_per_module) + ") at " +
                        format_fixed(r.clock_ghz, 1) + " GHz on " +
                        spec_.host.name;
  }
}

std::string GauRastBackend::describe() const { return spec_.description; }

Capabilities GauRastBackend::capabilities() const {
  Capabilities caps;
  caps.supports_raster_threads = false;
  caps.accepts_external_rasterizer_config =
      spec_.accepts_external_rasterizer_config;
  caps.supports_stage_pipeline = true;
  caps.is_hardware_model = true;
  caps.default_precision = spec_.rasterizer.precision;
  return caps;
}

FrameOutput GauRastBackend::render(const scene::GaussianScene& scene,
                                   const scene::Camera& camera,
                                   const FrameOptions& options) const {
  // render() is literally the stage composition, so the monolithic and
  // stage-pipelined paths cannot drift apart.
  pipeline::FrameResult frame = stage_preprocess(scene, camera, options);
  stage_sort(frame, options);
  return stage_raster(std::move(frame), options);
}

pipeline::FrameResult GauRastBackend::stage_preprocess(
    const scene::GaussianScene& scene, const scene::Camera& camera,
    const FrameOptions& options) const {
  return pipeline::GaussianRenderer(options.pipeline)
      .begin_frame(scene, camera, options.scene_precompute.get());
}

void GauRastBackend::stage_sort(pipeline::FrameResult& frame,
                                const FrameOptions& options) const {
  pipeline::GaussianRenderer(options.pipeline).sort_frame(frame);
}

FrameOutput GauRastBackend::stage_raster(pipeline::FrameResult frame,
                                         const FrameOptions& options) const {
  const core::DeviceGaussianFrame dev =
      device_.raster_prepared(frame, options.pipeline);
  FrameOutput out;
  out.frame = std::move(frame);
  HardwareMetrics hw;
  hw.raster_model_ms = dev.raster_model_ms;
  hw.stage12_model_ms = dev.stage12_model_ms;
  hw.pipelined_frame_ms = dev.pipelined_frame_ms;
  hw.utilization = dev.utilization;
  hw.energy_soc_mj = dev.energy_soc.total_mj();
  out.hw = hw;
  return out;
}

namespace {

GauRastBackend::Spec gscore_spec(gpu::GpuConfig host) {
  GauRastBackend::Spec spec;
  spec.name = "gscore";
  spec.rasterizer = accel::gscore_matched_config(host);
  spec.description = "FP16 GauRast deployment (" +
                     std::to_string(spec.rasterizer.total_pes()) +
                     " PEs) sized to GSCore's published throughput "
                     "(paper Sec. V-C)";
  spec.host = std::move(host);
  spec.accepts_external_rasterizer_config = false;
  return spec;
}

}  // namespace

GScoreBackend::GScoreBackend(gpu::GpuConfig host)
    : GauRastBackend(gscore_spec(std::move(host))) {}

}  // namespace gaurast::engine
