#include "engine/registry.hpp"

#include <utility>

#include "common/error.hpp"
#include "engine/backends.hpp"

namespace gaurast::engine {

std::string join_names(const std::vector<std::string>& names,
                       const std::string& sep) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += sep;
    out += name;
  }
  return out;
}

void BackendRegistry::add(const std::string& name, BackendFactory factory) {
  if (name.empty()) throw Error("backend name must be non-empty");
  if (!factory) throw Error("backend '" + name + "' needs a factory");
  common::MutexLock lock(mutex_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    throw Error("backend '" + name +
                "' is already registered; names are the public API and "
                "cannot be silently replaced");
  }
}

bool BackendRegistry::contains(const std::string& name) const {
  common::MutexLock lock(mutex_);
  return factories_.count(name) > 0;
}

std::size_t BackendRegistry::size() const {
  common::MutexLock lock(mutex_);
  return factories_.size();
}

std::vector<std::string> BackendRegistry::names_locked() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates in lexicographic order
}

std::vector<std::string> BackendRegistry::names() const {
  common::MutexLock lock(mutex_);
  return names_locked();
}

BackendFactory BackendRegistry::factory_for(const std::string& name) const {
  common::MutexLock lock(mutex_);
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw Error("unknown backend '" + name +
                "' (registered backends: " + join_names(names_locked()) + ")");
  }
  return it->second;
}

std::vector<std::string> BackendRegistry::names_where(
    const std::function<bool(const Capabilities&)>& pred) const {
  // Instantiate outside the lock: factories are caller-supplied code.
  std::vector<std::string> out;
  for (const std::string& name : names()) {
    if (pred(factory_for(name)(BackendOptions{})->capabilities())) {
      out.push_back(name);
    }
  }
  return out;
}

std::unique_ptr<RenderBackend> BackendRegistry::create(
    const std::string& name, const BackendOptions& options) const {
  std::unique_ptr<RenderBackend> backend = factory_for(name)(options);
  if (options.rasterizer &&
      !backend->capabilities().accepts_external_rasterizer_config) {
    throw Error(
        "backend '" + name +
        "' derives its own rasterizer configuration and does not accept an "
        "external one (backends that do: " +
        join_names(names_where([](const Capabilities& caps) {
          return caps.accepts_external_rasterizer_config;
        })) +
        ")");
  }
  return backend;
}

BackendInfo BackendRegistry::info(const std::string& name) const {
  const std::unique_ptr<RenderBackend> backend = create(name);
  BackendInfo info;
  info.name = backend->name();
  info.description = backend->describe();
  info.capabilities = backend->capabilities();
  info.rasterizer = backend->rasterizer_config();
  return info;
}

std::vector<BackendInfo> BackendRegistry::list() const {
  std::vector<BackendInfo> out;
  for (const std::string& name : names()) out.push_back(info(name));
  return out;
}

void register_builtin_backends(BackendRegistry& registry) {
  registry.add("sw", [](const BackendOptions&) {
    return std::make_unique<SoftwareBackend>();
  });
  registry.add("gaurast", [](const BackendOptions& options) {
    GauRastBackend::Spec spec;
    spec.name = "gaurast";
    spec.accepts_external_rasterizer_config = true;
    if (options.rasterizer) spec.rasterizer = *options.rasterizer;
    return std::make_unique<GauRastBackend>(std::move(spec));
  });
  registry.add("gscore", [](const BackendOptions&) {
    return std::make_unique<GScoreBackend>();
  });
  // Two non-default operating points registered up front both as useful
  // presets and as living proof that a new deployment is one registration.
  registry.add("edge-fp16", [](const BackendOptions&) {
    GauRastBackend::Spec spec;
    spec.name = "edge-fp16";
    spec.rasterizer = core::RasterizerConfig::fp16(30, 5);  // 150 PEs
    spec.description =
        "small-silicon edge deployment: 150 FP16 PEs (5x30) at 1 GHz on "
        "Jetson Orin NX (10W)";
    return std::make_unique<GauRastBackend>(std::move(spec));
  });
  registry.add("orin-agx", [](const BackendOptions& options) {
    GauRastBackend::Spec spec;
    spec.name = "orin-agx";
    spec.host = gpu::orin_agx_32w();
    spec.accepts_external_rasterizer_config = true;
    if (options.rasterizer) spec.rasterizer = *options.rasterizer;
    return std::make_unique<GauRastBackend>(std::move(spec));
  });
}

BackendRegistry& registry() {
  static BackendRegistry* global = [] {
    auto* r = new BackendRegistry();
    register_builtin_backends(*r);
    return r;
  }();
  return *global;
}

std::unique_ptr<RenderBackend> create(const std::string& name,
                                      const BackendOptions& options) {
  return registry().create(name, options);
}

std::vector<BackendInfo> list() { return registry().list(); }

std::vector<std::string> names() { return registry().names(); }

}  // namespace gaurast::engine
