// String-keyed backend registry — the single dispatch seam.
//
// Every consumer (CLI, RenderService, benches, examples) resolves backends
// by name through a BackendRegistry; nothing outside src/engine switches on
// a backend enum. The process-wide registry() comes seeded with the five
// built-in operating points:
//
//   sw        reference software pipeline
//   gaurast   scaled 300-PE FP32 deployment on the Jetson Orin NX host
//   gscore    FP16 deployment sized to GSCore's published throughput
//   edge-fp16 150-PE FP16 edge config (small-silicon operating point)
//   orin-agx  scaled 300-PE FP32 deployment on the Jetson AGX Orin host
//
// and accepts further registrations at any time (a new operating point is
// one registry().add(...) call). Unknown-name errors enumerate the names
// that are currently registered.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "engine/backend.hpp"

namespace gaurast::engine {

/// Builds a backend at the given creation options. Factories must ignore
/// option fields their backend's capabilities() does not advertise;
/// BackendRegistry::create() rejects those before the caller sees them.
using BackendFactory =
    std::function<std::unique_ptr<RenderBackend>(const BackendOptions&)>;

/// Listing row: everything a consumer needs to render help text, tables,
/// or JSON without holding a live backend.
struct BackendInfo {
  std::string name;
  std::string description;
  Capabilities capabilities;
  std::optional<core::RasterizerConfig> rasterizer;
};

/// Thread-safe name -> factory map. Instantiable so tests can exercise
/// registration semantics in isolation; production code uses the seeded
/// process-wide registry().
class BackendRegistry {
 public:
  /// Registers a factory; throws gaurast::Error on an empty or duplicate
  /// name (names are the public API — silently replacing one would change
  /// what every consumer gets).
  void add(const std::string& name, BackendFactory factory);

  bool contains(const std::string& name) const;
  std::size_t size() const;

  /// Registered names in lexicographic order.
  std::vector<std::string> names() const;

  /// Names whose default-constructed backend satisfies `pred` — e.g. "which
  /// backends accept --threads" for capability-driven diagnostics.
  std::vector<std::string> names_where(
      const std::function<bool(const Capabilities&)>& pred) const;

  /// Builds the named backend. Throws gaurast::Error (a) for unknown names,
  /// enumerating the registered ones, and (b) when `options` carries fields
  /// the backend's capabilities do not accept, naming the backends that do.
  std::unique_ptr<RenderBackend> create(const std::string& name,
                                        const BackendOptions& options = {}) const;

  /// Metadata for one backend (same unknown-name diagnostics as create()).
  BackendInfo info(const std::string& name) const;

  /// Metadata for every registered backend, sorted by name.
  std::vector<BackendInfo> list() const;

 private:
  BackendFactory factory_for(const std::string& name) const
      GAURAST_EXCLUDES(mutex_);
  /// Registered names in lexicographic order; shared by names() and the
  /// unknown-name diagnostic, which already holds the lock.
  std::vector<std::string> names_locked() const GAURAST_REQUIRES(mutex_);

  mutable common::Mutex mutex_;
  std::map<std::string, BackendFactory> factories_ GAURAST_GUARDED_BY(mutex_);
};

/// Seeds `registry` with the five built-in operating points listed above.
void register_builtin_backends(BackendRegistry& registry);

/// The process-wide registry, built-ins seeded on first use.
BackendRegistry& registry();

/// Conveniences over registry().
std::unique_ptr<RenderBackend> create(const std::string& name,
                                      const BackendOptions& options = {});
std::vector<BackendInfo> list();
std::vector<std::string> names();

/// "a, b, c" (or "a|b|c", ...) — the one joiner every diagnostic and help
/// string uses, so backend enumerations read the same everywhere.
std::string join_names(const std::vector<std::string>& names,
                       const std::string& sep = ", ");

}  // namespace gaurast::engine
