// Concrete RenderBackend implementations wrapping the existing execution
// paths:
//
//  * SoftwareBackend — the reference pipeline::GaussianRenderer; all three
//    steps in host software (Step 3 fans across raster threads).
//  * GauRastBackend  — Steps 1-2 on the modeled host GPU, Step 3 on the
//    GauRast enhanced rasterizer via core::GauRastDevice; parameterized by
//    a Spec so every hardware operating point (PE count, precision, host)
//    is one construction, not a new class.
//  * GScoreBackend   — a GauRastBackend whose FP16 configuration is sized
//    to GSCore's published throughput (paper Sec. V-C).
#pragma once

#include <string>

#include "core/device.hpp"
#include "engine/backend.hpp"
#include "gpu/config.hpp"

namespace gaurast::engine {

class SoftwareBackend : public RenderBackend {
 public:
  SoftwareBackend() = default;

  std::string name() const override { return "sw"; }
  std::string describe() const override;
  Capabilities capabilities() const override;
  FrameOutput render(const scene::GaussianScene& scene,
                     const scene::Camera& camera,
                     const FrameOptions& options) const override;
  pipeline::FrameResult stage_preprocess(
      const scene::GaussianScene& scene, const scene::Camera& camera,
      const FrameOptions& options) const override;
  void stage_sort(pipeline::FrameResult& frame,
                  const FrameOptions& options) const override;
  FrameOutput stage_raster(pipeline::FrameResult frame,
                           const FrameOptions& options) const override;
};

class GauRastBackend : public RenderBackend {
 public:
  /// One hardware operating point: what to call it, the enhanced-rasterizer
  /// configuration, and the host SoC whose CUDA cores run Steps 1-2.
  struct Spec {
    std::string name = "gaurast";
    std::string description;
    core::RasterizerConfig rasterizer = core::RasterizerConfig::scaled300();
    gpu::GpuConfig host = gpu::orin_nx_10w();
    bool accepts_external_rasterizer_config = false;
  };

  explicit GauRastBackend(Spec spec);

  std::string name() const override { return spec_.name; }
  std::string describe() const override;
  Capabilities capabilities() const override;
  FrameOutput render(const scene::GaussianScene& scene,
                     const scene::Camera& camera,
                     const FrameOptions& options) const override;
  // Stages 1-2 run in host software exactly as the software backend's do;
  // stage_raster hands the sorted workload to the enhanced-rasterizer model
  // (GauRastDevice::raster_prepared), so the CUDA-collaborative split maps
  // directly onto the stage pipeline.
  pipeline::FrameResult stage_preprocess(
      const scene::GaussianScene& scene, const scene::Camera& camera,
      const FrameOptions& options) const override;
  void stage_sort(pipeline::FrameResult& frame,
                  const FrameOptions& options) const override;
  FrameOutput stage_raster(pipeline::FrameResult frame,
                           const FrameOptions& options) const override;
  std::optional<core::RasterizerConfig> rasterizer_config() const override {
    return spec_.rasterizer;
  }

  const gpu::GpuConfig& host_config() const { return spec_.host; }

 private:
  Spec spec_;
  core::GauRastDevice device_;
};

class GScoreBackend : public GauRastBackend {
 public:
  /// Sizes the FP16 deployment to GSCore's published throughput on `host`.
  explicit GScoreBackend(gpu::GpuConfig host = gpu::orin_nx_10w());
};

}  // namespace gaurast::engine
