#include "net/event_loop.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace gaurast::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t events = 0;
  if (interest & kReadable) events |= EPOLLIN;
  if (interest & kWritable) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  int pipe_fds[2];
  if (pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) < 0) {
    close(epoll_fd_);
    throw_errno("pipe2");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  add_fd(wake_read_fd_, kReadable, [this](std::uint32_t) {
    // Drain the pipe; the posted queue itself is drained once per loop
    // iteration regardless of how many wakeup bytes coalesced.
    char buf[64];
    while (read(wake_read_fd_, buf, sizeof buf) > 0) {
    }
  });
}

EventLoop::~EventLoop() {
  close(wake_write_fd_);
  close(wake_read_fd_);
  close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdHandler handler) {
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
  handlers_[fd] = std::move(handler);
}

void EventLoop::modify_fd(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void EventLoop::remove_fd(int fd) {
  // Deleting an fd that the kernel already forgot (peer closed) is fine;
  // only report real failures.
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0 &&
      errno != EBADF && errno != ENOENT) {
    throw_errno("epoll_ctl(DEL)");
  }
  handlers_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    common::MutexLock lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::wake() {
  const char byte = 1;
  // The pipe being full is fine — the loop is already due to wake.
  ssize_t rc = write(wake_write_fd_, &byte, 1);
  (void)rc;
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    common::MutexLock lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void EventLoop::set_tick(std::function<void()> tick, int tick_interval_ms) {
  tick_ = std::move(tick);
  tick_interval_ms_ = tick_interval_ms;
}

void EventLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    const int timeout_ms = tick_ ? tick_interval_ms_ : -1;
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      std::uint32_t mask = 0;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) {
        mask |= kReadable;
      }
      if (events[i].events & EPOLLOUT) mask |= kWritable;
      // Look the handler up per event: an earlier handler in this batch may
      // have removed this fd. Invoke a stack copy — a handler that removes
      // its own fd erases the map entry, and destroying the std::function
      // currently executing is undefined behavior.
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) {
        FdHandler handler = it->second;
        handler(mask);
      }
    }
    drain_posted();
    if (tick_) tick_();
    {
      common::MutexLock lock(post_mutex_);
      if (stop_requested_ && posted_.empty()) {
        stop_requested_ = false;
        return;
      }
    }
  }
}

void EventLoop::stop() {
  {
    common::MutexLock lock(post_mutex_);
    stop_requested_ = true;
  }
  wake();
}

}  // namespace gaurast::net
