#include "net/frame_server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace gaurast::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

FrameServer::FrameServer(FrameHandler& handler, FrameServerConfig config)
    : handler_(handler), config_(std::move(config)) {}

FrameServer::~FrameServer() { stop(); }

void FrameServer::start() {
  {
    common::MutexLock lock(state_mutex_);
    GAURAST_CHECK(!running_);
    running_ = true;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw Error("invalid listen host '" + config_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(listen_fd_, config_.backlog) < 0) {
    const int saved = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno(("listen on " + config_.host).c_str());
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  loop_.add_fd(listen_fd_, kReadable, [this](std::uint32_t) {
    handle_accept();
  });
  // Tick often enough that an idle timeout is enforced within ~a quarter of
  // its length, but never busier than 10ms.
  int tick_ms = 250;
  if (config_.idle_timeout_ms > 0) {
    tick_ms = std::clamp(config_.idle_timeout_ms / 4, 10, 250);
  }
  loop_.set_tick([this] { on_tick(); }, tick_ms);
  loop_thread_ =
      std::thread([this] {  // lint-invariants: allow(raw-concurrency)
        try {
          loop_.run();
        } catch (const std::exception& e) {
          // A reactor-level failure (not a per-connection one) is fatal to
          // serving; surface it rather than dying silently.
          std::cerr << "net::FrameServer loop failed: " << e.what() << "\n";
        }
      });
}

void FrameServer::stop(const std::function<void()>& drain) {
  {
    common::MutexLock lock(state_mutex_);
    if (!running_) return;
    running_ = false;
  }
  // Ordering: (1) stop accepting and stop reading new frames, (2) let the
  // owner finish every deferred answer — each post_deliver lands on the
  // loop before drain() returns — then (3) a sentinel task behind those
  // posts flushes and closes. The loop exits once every connection has
  // drained.
  loop_.post([this] { begin_shutdown(); });
  if (drain) drain();
  loop_.post([this] { maybe_finish_shutdown(); });
  // start() may have thrown before the loop thread was spawned; joining a
  // non-joinable thread from the destructor would terminate the process.
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void FrameServer::handle_accept() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failures (ECONNABORTED, ...) — keep serving
    }
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    conn.last_activity = Clock::now();
    conns_.emplace(id, std::move(conn));
    loop_.add_fd(fd, kReadable, [this, id](std::uint32_t events) {
      handle_conn_event(id, events);
    });
  }
}

void FrameServer::handle_conn_event(std::uint64_t conn_id,
                                    std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;

  if (events & kWritable) {
    flush_writes(conn);
    if (conns_.find(conn_id) == conns_.end()) return;  // flush closed it
  }
  if (!(events & kReadable)) return;

  bool peer_closed = false;
  for (;;) {
    std::uint8_t buf[4096];
    const ssize_t n = recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.read_buf.insert(conn.read_buf.end(), buf, buf + n);
      // During draining only write progress counts as activity — otherwise
      // a peer that keeps sending but never reads holds shutdown open.
      if (!draining_) conn.last_activity = Clock::now();
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn_id);  // reset or worse — nothing left to flush
    return;
  }

  if (!conn.closing && !draining_) process_read_buffer(conn);
  if (conns_.find(conn_id) == conns_.end()) return;
  if (peer_closed) {
    conn.closing = true;
    maybe_close(conn);
  }
}

void FrameServer::process_read_buffer(Connection& conn) {
  // HTTP probe detection: the binary protocol's magic can never start with
  // ASCII "GET ", so sniffing the first bytes is unambiguous.
  if (!conn.http && conn.read_buf.size() >= 4 &&
      std::memcmp(conn.read_buf.data(), "GET ", 4) == 0) {
    conn.http = true;
  }
  if (conn.http) {
    handle_http(conn);
    return;
  }

  const std::uint64_t conn_id = conn.id;
  while (!conn.closing && conn.read_buf.size() >= kHeaderBytes) {
    FrameHeader header;
    try {
      header = decode_header(conn.read_buf.data());
    } catch (const ProtocolError& e) {
      protocol_error(conn_id, e.what());
      return;
    }
    const std::size_t total = kHeaderBytes + header.payload_size;
    if (conn.read_buf.size() < total) return;  // wait for the rest
    try {
      handler_.on_frame(conn_id, header, conn.read_buf.data() + kHeaderBytes);
    } catch (const ProtocolError& e) {
      protocol_error(conn_id, e.what());
      return;
    }
    // The handler can erase the connection (respond -> flush_writes ->
    // EPIPE -> close_connection); `conn` dangles then. Map nodes are
    // stable, so if the id is still present the reference is still good.
    if (conns_.find(conn_id) == conns_.end()) return;
    conn.read_buf.erase(conn.read_buf.begin(),
                        conn.read_buf.begin() +
                            static_cast<std::ptrdiff_t>(total));
  }
}

void FrameServer::handle_http(Connection& conn) {
  static const std::uint8_t kTerminator[] = {'\r', '\n', '\r', '\n'};
  auto it = std::search(conn.read_buf.begin(), conn.read_buf.end(),
                        std::begin(kTerminator), std::end(kTerminator));
  if (it == conn.read_buf.end()) {
    if (conn.read_buf.size() > 8192) {
      protocol_error(conn.id, "oversized HTTP request head");
    }
    return;  // headers not complete yet
  }

  const std::string head(conn.read_buf.begin(), it);
  conn.read_buf.clear();
  const std::size_t target_begin = head.find(' ');
  const std::size_t target_end =
      target_begin == std::string::npos
          ? std::string::npos
          : head.find(' ', target_begin + 1);
  std::string target;
  if (target_end != std::string::npos) {
    target = head.substr(target_begin + 1, target_end - target_begin - 1);
  }
  handler_.on_http_get(conn.id, target);
}

void FrameServer::protocol_error(std::uint64_t conn_id,
                                 const std::string& message) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second.closing = true;
  it->second.read_buf.clear();
  respond(conn_id, serialize_error(message));
}

void FrameServer::respond(std::uint64_t conn_id,
                          std::vector<std::uint8_t> frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  if (fault::armed()) {
    // The server-side injection seam: every outgoing response (binary and
    // HTTP) passes through here. kDrop — and kError, which has nobody to
    // throw to on the loop thread — severs the connection instead of
    // answering, so the peer sees EOF mid-exchange; kDelay slept inside
    // evaluate(); kCrash never returns (a crashed worker).
    const fault::Hit hit = fault::evaluate("net.server.respond");
    if (hit.action == fault::Action::kDrop ||
        hit.action == fault::Action::kError) {
      close_connection(conn_id);
      return;
    }
    it = conns_.find(conn_id);
    if (it == conns_.end()) return;
  }
  Connection& conn = it->second;
  conn.write_buf.insert(conn.write_buf.end(), frame.begin(), frame.end());
  flush_writes(conn);
}

void FrameServer::respond_http(std::uint64_t conn_id,
                               const std::string& status,
                               const std::string& body) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  const std::string response =
      "HTTP/1.1 " + status +
      "\r\nContent-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  it->second.closing = true;  // one probe per connection, Connection: close
  respond(conn_id,
          std::vector<std::uint8_t>(response.begin(), response.end()));
}

void FrameServer::add_pending(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ++it->second.pending;
}

void FrameServer::deliver(std::uint64_t conn_id,
                          std::vector<std::uint8_t> frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while the work ran
  Connection& conn = it->second;
  --conn.pending;
  respond(conn_id, std::move(frame));
  if (conns_.find(conn_id) != conns_.end() && draining_) {
    conn.closing = true;
    maybe_close(conn);
  }
  if (draining_) maybe_finish_shutdown();
}

void FrameServer::deliver_http(std::uint64_t conn_id,
                               const std::string& status,
                               const std::string& body) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  --it->second.pending;
  respond_http(conn_id, status, body);
  if (draining_) maybe_finish_shutdown();
}

void FrameServer::post_deliver(std::uint64_t conn_id,
                               std::vector<std::uint8_t> frame) {
  loop_.post([this, conn_id, frame = std::move(frame)]() mutable {
    deliver(conn_id, std::move(frame));
  });
}

void FrameServer::post_deliver_http(std::uint64_t conn_id,
                                    const std::string& status,
                                    const std::string& body) {
  loop_.post([this, conn_id, status, body] {
    deliver_http(conn_id, status, body);
  });
}

void FrameServer::flush_writes(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        send(conn.fd, conn.write_buf.data() + conn.write_pos,
             conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.modify_fd(conn.fd, kReadable | kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.id);  // peer gone (EPIPE/ECONNRESET)
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify_fd(conn.fd, kReadable);
  }
  maybe_close(conn);
}

void FrameServer::maybe_close(Connection& conn) {
  if (conn.closing && conn.pending == 0 &&
      conn.write_pos >= conn.write_buf.size()) {
    close_connection(conn.id);
  }
}

void FrameServer::close_connection(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.remove_fd(it->second.fd);
  close(it->second.fd);
  conns_.erase(it);
  if (draining_) maybe_finish_shutdown();
}

void FrameServer::on_tick() {
  const Clock::time_point now = Clock::now();
  const auto ms_since = [now](Clock::time_point then) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - then)
        .count();
  };
  if (config_.idle_timeout_ms > 0) {
    std::vector<std::uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
      if (conn.pending > 0) continue;  // work in flight is activity
      if (ms_since(conn.last_activity) > config_.idle_timeout_ms) {
        idle.push_back(id);
      }
    }
    for (std::uint64_t id : idle) close_connection(id);
  }
  if (draining_) {
    // Shutdown must terminate even with the idle sweep disabled: a peer
    // that never reads leaves write_buf undrained and maybe_close never
    // fires. Force-close connections with nothing in flight and no send
    // progress within the drain bound.
    std::vector<std::uint64_t> stuck;
    for (const auto& [id, conn] : conns_) {
      if (conn.pending > 0) continue;
      if (ms_since(conn.last_activity) > config_.drain_timeout_ms) {
        stuck.push_back(id);
      }
    }
    for (std::uint64_t id : stuck) close_connection(id);
    maybe_finish_shutdown();
  }
}

void FrameServer::begin_shutdown() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Existing connections: stop consuming new requests (handle_conn_event
  // checks draining_), flush what is owed, close when nothing is in flight.
  std::vector<std::uint64_t> closable;
  for (auto& [id, conn] : conns_) {
    conn.closing = true;
    if (conn.pending == 0 && conn.write_pos >= conn.write_buf.size()) {
      closable.push_back(id);
    }
  }
  for (std::uint64_t id : closable) close_connection(id);
  maybe_finish_shutdown();
}

void FrameServer::maybe_finish_shutdown() {
  if (draining_ && conns_.empty()) loop_.stop();
}

}  // namespace gaurast::net
