// Non-blocking epoll reactor for the gaurast serve front-end.
//
// One thread calls run(); it owns every registered fd and invokes their
// handlers inline. Other threads talk to the loop exclusively through
// post(), which enqueues a closure and wakes the loop via a pipe — the
// wakeup-pipe pattern that lets RenderService worker threads hand
// completions back to the loop without touching any socket state
// themselves. Socket state therefore needs no locking at all: everything
// except the post queue is confined to the loop thread.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gaurast::net {

/// Bitmask of epoll interests a handler can register for.
enum : std::uint32_t {
  kReadable = 1u << 0,
  kWritable = 1u << 1,
};

/// Called on the loop thread when a registered fd becomes ready.
/// `events` is a kReadable/kWritable mask (error/hangup conditions are
/// reported as kReadable so the handler observes them via read()/recv()).
/// A handler may remove (even close) its own fd.
using FdHandler = std::function<void(std::uint32_t events)>;

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with the given interest mask. Loop thread only
  /// (or before run() starts).
  void add_fd(int fd, std::uint32_t interest, FdHandler handler);

  /// Updates the interest mask of a registered fd. Loop thread only.
  void modify_fd(int fd, std::uint32_t interest);

  /// Unregisters a fd. Does not close it. Loop thread only. Safe to call
  /// from inside the fd's own handler.
  void remove_fd(int fd);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. Safe to
  /// call from any thread, including the loop thread itself and — the
  /// primary use — RenderService completion callbacks. Tasks posted
  /// before stop() drains are still executed before run() returns.
  void post(std::function<void()> fn) GAURAST_EXCLUDES(post_mutex_);

  /// Runs the loop until stop(). Invokes `tick` (if set via set_tick)
  /// roughly every `tick_interval_ms` even when no fd is active — the
  /// idle-timeout sweep hook.
  void run();

  /// Asks run() to return after draining posted tasks. Any-thread safe.
  void stop();

  /// Periodic callback on the loop thread (idle sweeps). Set before run().
  void set_tick(std::function<void()> tick, int tick_interval_ms);

 private:
  void wake() GAURAST_EXCLUDES(post_mutex_);
  void drain_posted() GAURAST_EXCLUDES(post_mutex_);

  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  // Loop-thread-confined: which fds are registered and how to serve them.
  std::unordered_map<int, FdHandler> handlers_;

  std::function<void()> tick_;
  int tick_interval_ms_ = 250;

  common::Mutex post_mutex_;
  std::vector<std::function<void()>> posted_ GAURAST_GUARDED_BY(post_mutex_);
  bool stop_requested_ GAURAST_GUARDED_BY(post_mutex_) = false;
};

}  // namespace gaurast::net
