#include "net/server.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace gaurast::net {

std::string stamped_stats_json(const runtime::ServiceStats& stats) {
  const std::string json = runtime::service_stats_json(stats);
  GAURAST_CHECK(!json.empty() && json.front() == '{');
  return "{\"schema\":\"" + std::string(kServeStatsSchema) + "\"," +
         json.substr(1);
}

FrameServerConfig Server::front_config(const ServerConfig& config) {
  FrameServerConfig front;
  front.host = config.host;
  front.port = config.port;
  front.idle_timeout_ms = config.idle_timeout_ms;
  front.drain_timeout_ms = config.drain_timeout_ms;
  front.backlog = config.backlog;
  return front;
}

Server::Server(runtime::RenderService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      front_(*this, front_config(config_)) {}

Server::~Server() { stop(); }

void Server::start() { front_.start(); }

void Server::stop() {
  // The drain hook runs between "stop reading new frames" and the final
  // flush: every accepted job completes and posts its response first.
  front_.stop([this] { service_.drain(); });
}

void Server::on_frame(std::uint64_t conn_id, const FrameHeader& header,
                      const std::uint8_t* payload) {
  switch (header.type) {
    case MessageType::kRenderRequest:
      // The frame's version byte picks the payload decode: a v1 request
      // has no deadline_ms field and decodes with no deadline.
      handle_render(conn_id,
                    deserialize_render_request(payload, header.payload_size,
                                               header.version));
      return;
    case MessageType::kStatsRequest: {
      if (header.payload_size != 0) {
        throw ProtocolError("stats-request payload must be empty");
      }
      StatsResponse resp;
      resp.json = stamped_stats_json(service_.stats());
      front_.respond(conn_id, serialize(resp));
      return;
    }
    case MessageType::kRenderResponse:
    case MessageType::kStatsResponse:
    case MessageType::kError:
      throw ProtocolError(std::string("unexpected ") + to_string(header.type) +
                          " frame from a client");
  }
}

void Server::handle_render(std::uint64_t conn_id, RenderRequest wire) {
  const bool want_image = (wire.flags & kWantImage) != 0;

  // Deadline admission. deadline_ms is a relative budget counted from
  // receipt; requests without one inherit the server's configured default
  // (0 = none). The absolute deadline is pinned here, once, and travels
  // with the job so the dequeuing worker can shed it if the budget runs
  // out in the queue.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point received = Clock::now();
  std::uint32_t deadline_ms = wire.deadline_ms;
  if (deadline_ms == 0 && config_.default_deadline_ms > 0) {
    deadline_ms = static_cast<std::uint32_t>(config_.default_deadline_ms);
  }
  std::optional<Clock::time_point> deadline;
  if (deadline_ms > 0) {
    deadline = received + std::chrono::milliseconds(deadline_ms);
  }
  if (deadline && Clock::now() >= *deadline) {
    RenderResponse resp;
    resp.request_id = wire.request_id;
    resp.status = RenderStatus::kDeadlineExceeded;
    resp.message = "deadline of " + std::to_string(deadline_ms) +
                   "ms expired before admission";
    front_.respond(conn_id, serialize(resp));
    return;
  }

  // Server-side refusals are explicit kServerError responses naming the
  // reason — the wire contract mirrors the CLI's capability diagnostics.
  auto refuse = [&](const std::string& why) {
    RenderResponse resp;
    resp.request_id = wire.request_id;
    resp.status = RenderStatus::kServerError;
    resp.message = why;
    front_.respond(conn_id, serialize(resp));
  };

  const std::string server_backend = service_.backend().name();
  if (!wire.backend.empty() && wire.backend != server_backend) {
    refuse("backend mismatch: this server serves '" + server_backend +
           "', request asked for '" + wire.backend + "'");
    return;
  }
  const char* server_kernel =
      pipeline::to_string(service_.config().renderer.kernel);
  if (!wire.kernel.empty() && wire.kernel != server_kernel) {
    refuse(std::string("kernel mismatch: this server serves '") +
           server_kernel + "', request asked for '" + wire.kernel + "'");
    return;
  }
  if (wire.gaussian_count > config_.max_gaussian_count) {
    refuse("gaussian_count " + std::to_string(wire.gaussian_count) +
           " exceeds the server limit of " +
           std::to_string(config_.max_gaussian_count));
    return;
  }
  if (want_image) {
    const std::uint64_t image_bytes =
        std::uint64_t(wire.width) * std::uint64_t(wire.height) * 3u * 4u;
    if (image_bytes + 1024 > kMaxPayloadBytes) {
      refuse("requested image does not fit in one frame payload (" +
             std::to_string(image_bytes) + " bytes)");
      return;
    }
  }

  runtime::ScenePtr scene;
  std::optional<scene::Camera> camera;
  try {
    camera.emplace(wire.camera());
    scene = service_.scene(wire.scene_key());
  } catch (const std::exception& e) {
    // Scene resolution failures — an unparseable key, a missing PLY, or a
    // scene-store admission rejection (over max_scene_bytes) — and camera
    // contract failures are request problems, not reactor problems: refuse
    // and keep serving.
    refuse(e.what());
    return;
  }
  runtime::RenderRequest request{std::move(scene), std::move(*camera)};
  request.deadline = deadline;

  // Completion bridge: the serving worker serializes the response (so the
  // loop never copies an image) and posts the finished frame through the
  // wakeup pipe. The connection id survives the round trip, the pointer
  // does not need to.
  const std::uint64_t request_id = wire.request_id;
  request.on_complete = [this, conn_id, request_id,
                         want_image](const runtime::JobResult& result) {
    RenderResponse resp;
    resp.request_id = request_id;
    resp.job_id = result.job_id;
    resp.latency_ms = result.latency_ms;
    resp.queue_wait_ms = result.queue_wait_ms;
    resp.service_ms = result.service_ms;
    if (result.deadline_expired) {
      // The worker shed the job: its deadline passed in the queue. There
      // is no frame; the client hears exactly why.
      resp.status = RenderStatus::kDeadlineExceeded;
      resp.message = "deadline expired in the service queue";
      front_.post_deliver(conn_id, serialize(resp));
      return;
    }
    resp.status = RenderStatus::kOk;
    if (want_image) {
      const Image& image = result.frame.image;
      resp.has_image = true;
      resp.image_width = image.width();
      resp.image_height = image.height();
      resp.pixels.reserve(image.pixel_count() * 3);
      for (const Vec3f& px : image.pixels()) {
        resp.pixels.push_back(px.x);
        resp.pixels.push_back(px.y);
        resp.pixels.push_back(px.z);
      }
    }
    front_.post_deliver(conn_id, serialize(resp));
  };

  auto future = service_.try_submit(std::move(request));
  if (!future) {
    // Admission control: the queue is full and the service shed the job.
    // The client gets told so on the open connection — never a silent drop.
    RenderResponse resp;
    resp.request_id = request_id;
    resp.status = RenderStatus::kOverloaded;
    resp.message = "service queue full: request shed";
    front_.respond(conn_id, serialize(resp));
    return;
  }
  // The worker's completion cannot land before this runs: we are on the
  // loop thread and post_deliver queues behind the current task.
  front_.add_pending(conn_id);
}

void Server::on_http_get(std::uint64_t conn_id, const std::string& target) {
  if (target == "/healthz" || target == "/stats") {
    front_.respond_http(conn_id, "200 OK",
                        stamped_stats_json(service_.stats()) + "\n");
  } else {
    front_.respond_http(conn_id, "404 Not Found",
                        "unknown target '" + target +
                            "' (try /healthz or /stats)\n");
  }
}

}  // namespace gaurast::net
