#include "net/server.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <iostream>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "scene/generator.hpp"

namespace gaurast::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

std::string stamped_stats_json(const runtime::ServiceStats& stats) {
  const std::string json = runtime::service_stats_json(stats);
  GAURAST_CHECK(!json.empty() && json.front() == '{');
  return "{\"schema\":\"" + std::string(kServeStatsSchema) + "\"," +
         json.substr(1);
}

Server::Server(runtime::RenderService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  {
    common::MutexLock lock(state_mutex_);
    GAURAST_CHECK(!running_);
    running_ = true;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    throw Error("invalid listen host '" + config_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(listen_fd_, config_.backlog) < 0) {
    const int saved = errno;
    close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno(("listen on " + config_.host).c_str());
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  loop_.add_fd(listen_fd_, kReadable, [this](std::uint32_t) {
    handle_accept();
  });
  // Tick often enough that an idle timeout is enforced within ~a quarter of
  // its length, but never busier than 10ms.
  int tick_ms = 250;
  if (config_.idle_timeout_ms > 0) {
    tick_ms = std::clamp(config_.idle_timeout_ms / 4, 10, 250);
  }
  loop_.set_tick([this] { on_tick(); }, tick_ms);
  loop_thread_ =
      std::thread([this] {  // lint-invariants: allow(raw-concurrency)
        try {
          loop_.run();
        } catch (const std::exception& e) {
          // A reactor-level failure (not a per-connection one) is fatal to
          // serving; surface it rather than dying silently.
          std::cerr << "net::Server loop failed: " << e.what() << "\n";
        }
      });
}

void Server::stop() {
  {
    common::MutexLock lock(state_mutex_);
    if (!running_) return;
    running_ = false;
  }
  // Ordering: (1) stop accepting and stop reading new frames, (2) let the
  // service finish every accepted job — each completion posts its response
  // onto the loop before drain() returns — then (3) a sentinel task behind
  // those posts flushes and closes. The loop exits once every connection
  // has drained.
  loop_.post([this] { begin_shutdown(); });
  service_.drain();
  loop_.post([this] { maybe_finish_shutdown(); });
  // start() may have thrown before the loop thread was spawned; joining a
  // non-joinable thread from ~Server would terminate the process.
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::handle_accept() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failures (ECONNABORTED, ...) — keep serving
    }
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.id = id;
    conn.last_activity = Clock::now();
    conns_.emplace(id, std::move(conn));
    loop_.add_fd(fd, kReadable, [this, id](std::uint32_t events) {
      handle_conn_event(id, events);
    });
  }
}

void Server::handle_conn_event(std::uint64_t conn_id, std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;

  if (events & kWritable) {
    flush_writes(conn);
    if (conns_.find(conn_id) == conns_.end()) return;  // flush closed it
  }
  if (!(events & kReadable)) return;

  bool peer_closed = false;
  for (;;) {
    std::uint8_t buf[4096];
    const ssize_t n = recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.read_buf.insert(conn.read_buf.end(), buf, buf + n);
      // During draining only write progress counts as activity — otherwise
      // a peer that keeps sending but never reads holds shutdown open.
      if (!draining_) conn.last_activity = Clock::now();
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn_id);  // reset or worse — nothing left to flush
    return;
  }

  if (!conn.closing && !draining_) process_read_buffer(conn);
  if (conns_.find(conn_id) == conns_.end()) return;
  if (peer_closed) {
    conn.closing = true;
    maybe_close(conn);
  }
}

void Server::process_read_buffer(Connection& conn) {
  // HTTP probe detection: the binary protocol's magic can never start with
  // ASCII "GET ", so sniffing the first bytes is unambiguous.
  if (!conn.http && conn.read_buf.size() >= 4 &&
      std::memcmp(conn.read_buf.data(), "GET ", 4) == 0) {
    conn.http = true;
  }
  if (conn.http) {
    handle_http(conn);
    return;
  }

  const std::uint64_t conn_id = conn.id;
  while (!conn.closing && conn.read_buf.size() >= kHeaderBytes) {
    FrameHeader header;
    try {
      header = decode_header(conn.read_buf.data());
    } catch (const ProtocolError& e) {
      protocol_error(conn, e.what());
      return;
    }
    const std::size_t total = kHeaderBytes + header.payload_size;
    if (conn.read_buf.size() < total) return;  // wait for the rest
    try {
      dispatch_frame(conn, header, conn.read_buf.data() + kHeaderBytes);
    } catch (const ProtocolError& e) {
      protocol_error(conn, e.what());
      return;
    }
    // dispatch_frame can erase the connection (respond -> flush_writes ->
    // EPIPE -> close_connection); `conn` dangles then. Map nodes are
    // stable, so if the id is still present the reference is still good.
    if (conns_.find(conn_id) == conns_.end()) return;
    conn.read_buf.erase(conn.read_buf.begin(),
                        conn.read_buf.begin() +
                            static_cast<std::ptrdiff_t>(total));
  }
}

void Server::dispatch_frame(Connection& conn, const FrameHeader& header,
                            const std::uint8_t* payload) {
  switch (header.type) {
    case MessageType::kRenderRequest:
      handle_render(conn, deserialize_render_request(payload,
                                                     header.payload_size));
      return;
    case MessageType::kStatsRequest: {
      if (header.payload_size != 0) {
        throw ProtocolError("stats-request payload must be empty");
      }
      StatsResponse resp;
      resp.json = stamped_stats_json(service_.stats());
      respond(conn, serialize(resp));
      return;
    }
    case MessageType::kRenderResponse:
    case MessageType::kStatsResponse:
    case MessageType::kError:
      throw ProtocolError(std::string("unexpected ") + to_string(header.type) +
                          " frame from a client");
  }
}

void Server::handle_render(Connection& conn, RenderRequest wire) {
  const bool want_image = (wire.flags & kWantImage) != 0;

  // Server-side refusals are explicit kServerError responses naming the
  // reason — the wire contract mirrors the CLI's capability diagnostics.
  auto refuse = [&](const std::string& why) {
    RenderResponse resp;
    resp.request_id = wire.request_id;
    resp.status = RenderStatus::kServerError;
    resp.message = why;
    respond(conn, serialize(resp));
  };

  const std::string server_backend = service_.backend().name();
  if (!wire.backend.empty() && wire.backend != server_backend) {
    refuse("backend mismatch: this server serves '" + server_backend +
           "', request asked for '" + wire.backend + "'");
    return;
  }
  const char* server_kernel =
      pipeline::to_string(service_.config().renderer.kernel);
  if (!wire.kernel.empty() && wire.kernel != server_kernel) {
    refuse(std::string("kernel mismatch: this server serves '") +
           server_kernel + "', request asked for '" + wire.kernel + "'");
    return;
  }
  if (wire.gaussian_count > config_.max_gaussian_count) {
    refuse("gaussian_count " + std::to_string(wire.gaussian_count) +
           " exceeds the server limit of " +
           std::to_string(config_.max_gaussian_count));
    return;
  }
  if (want_image) {
    const std::uint64_t image_bytes =
        std::uint64_t(wire.width) * std::uint64_t(wire.height) * 3u * 4u;
    if (image_bytes + 1024 > kMaxPayloadBytes) {
      refuse("requested image does not fit in one frame payload (" +
             std::to_string(image_bytes) + " bytes)");
      return;
    }
  }

  runtime::ScenePtr scene;
  std::optional<scene::Camera> camera;
  try {
    camera.emplace(wire.camera());
    scene = service_.scene(wire.scene_key(), [&wire] {
      scene::GeneratorParams params;
      params.gaussian_count = wire.gaussian_count;
      params.seed = wire.scene_seed;
      return scene::generate_scene(params);
    });
  } catch (const std::exception& e) {
    // Scene generation / camera contract failures are request problems,
    // not reactor problems — refuse and keep serving.
    refuse(e.what());
    return;
  }
  runtime::RenderRequest request{std::move(scene), std::move(*camera)};

  // Completion bridge: the serving worker serializes the response (so the
  // loop never copies an image) and posts the finished frame through the
  // wakeup pipe. The connection id survives the round trip, the pointer
  // does not need to.
  const std::uint64_t conn_id = conn.id;
  const std::uint64_t request_id = wire.request_id;
  request.on_complete = [this, conn_id, request_id,
                         want_image](const runtime::JobResult& result) {
    RenderResponse resp;
    resp.request_id = request_id;
    resp.status = RenderStatus::kOk;
    resp.job_id = result.job_id;
    resp.latency_ms = result.latency_ms;
    resp.queue_wait_ms = result.queue_wait_ms;
    resp.service_ms = result.service_ms;
    if (want_image) {
      const Image& image = result.frame.image;
      resp.has_image = true;
      resp.image_width = image.width();
      resp.image_height = image.height();
      resp.pixels.reserve(image.pixel_count() * 3);
      for (const Vec3f& px : image.pixels()) {
        resp.pixels.push_back(px.x);
        resp.pixels.push_back(px.y);
        resp.pixels.push_back(px.z);
      }
    }
    auto frame = serialize(resp);
    loop_.post([this, conn_id, frame = std::move(frame)]() mutable {
      deliver(conn_id, std::move(frame));
    });
  };

  auto future = service_.try_submit(std::move(request));
  if (!future) {
    // Admission control: the queue is full and the service shed the job.
    // The client gets told so on the open connection — never a silent drop.
    RenderResponse resp;
    resp.request_id = request_id;
    resp.status = RenderStatus::kOverloaded;
    resp.message = "service queue full: request shed";
    respond(conn, serialize(resp));
    return;
  }
  ++conn.pending_jobs;
}

void Server::handle_http(Connection& conn) {
  static const std::uint8_t kTerminator[] = {'\r', '\n', '\r', '\n'};
  auto it = std::search(conn.read_buf.begin(), conn.read_buf.end(),
                        std::begin(kTerminator), std::end(kTerminator));
  if (it == conn.read_buf.end()) {
    if (conn.read_buf.size() > 8192) {
      protocol_error(conn, "oversized HTTP request head");
    }
    return;  // headers not complete yet
  }

  const std::string head(conn.read_buf.begin(), it);
  conn.read_buf.clear();
  const std::size_t target_begin = head.find(' ');
  const std::size_t target_end =
      target_begin == std::string::npos
          ? std::string::npos
          : head.find(' ', target_begin + 1);
  std::string target;
  if (target_end != std::string::npos) {
    target = head.substr(target_begin + 1, target_end - target_begin - 1);
  }

  std::string status = "200 OK";
  std::string body;
  if (target == "/healthz" || target == "/stats") {
    body = stamped_stats_json(service_.stats()) + "\n";
  } else {
    status = "404 Not Found";
    body = "unknown target '" + target + "' (try /healthz or /stats)\n";
  }
  const std::string response =
      "HTTP/1.1 " + status +
      "\r\nContent-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  std::vector<std::uint8_t> bytes(response.begin(), response.end());
  conn.closing = true;  // one probe per connection, like Connection: close
  respond(conn, std::move(bytes));
}

void Server::protocol_error(Connection& conn, const std::string& message) {
  conn.closing = true;
  conn.read_buf.clear();
  respond(conn, serialize_error(message));
}

void Server::respond(Connection& conn, std::vector<std::uint8_t> frame) {
  conn.write_buf.insert(conn.write_buf.end(), frame.begin(), frame.end());
  flush_writes(conn);
}

void Server::flush_writes(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        send(conn.fd, conn.write_buf.data() + conn.write_pos,
             conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.modify_fd(conn.fd, kReadable | kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.id);  // peer gone (EPIPE/ECONNRESET)
    return;
  }
  conn.write_buf.clear();
  conn.write_pos = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_.modify_fd(conn.fd, kReadable);
  }
  maybe_close(conn);
}

void Server::maybe_close(Connection& conn) {
  if (conn.closing && conn.pending_jobs == 0 &&
      conn.write_pos >= conn.write_buf.size()) {
    close_connection(conn.id);
  }
}

void Server::close_connection(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.remove_fd(it->second.fd);
  close(it->second.fd);
  conns_.erase(it);
  if (draining_) maybe_finish_shutdown();
}

void Server::deliver(std::uint64_t conn_id,
                     std::vector<std::uint8_t> frame) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while the job ran
  Connection& conn = it->second;
  --conn.pending_jobs;
  respond(conn, std::move(frame));
  if (conns_.find(conn_id) != conns_.end() && draining_) {
    conn.closing = true;
    maybe_close(conn);
  }
  if (draining_) maybe_finish_shutdown();
}

void Server::on_tick() {
  const Clock::time_point now = Clock::now();
  const auto ms_since = [now](Clock::time_point then) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(now - then)
        .count();
  };
  if (config_.idle_timeout_ms > 0) {
    std::vector<std::uint64_t> idle;
    for (const auto& [id, conn] : conns_) {
      if (conn.pending_jobs > 0) continue;  // a job in flight is activity
      if (ms_since(conn.last_activity) > config_.idle_timeout_ms) {
        idle.push_back(id);
      }
    }
    for (std::uint64_t id : idle) close_connection(id);
  }
  if (draining_) {
    // Shutdown must terminate even with the idle sweep disabled: a peer
    // that never reads leaves write_buf undrained and maybe_close never
    // fires. Force-close connections with no job in flight and no send
    // progress within the drain bound.
    std::vector<std::uint64_t> stuck;
    for (const auto& [id, conn] : conns_) {
      if (conn.pending_jobs > 0) continue;
      if (ms_since(conn.last_activity) > config_.drain_timeout_ms) {
        stuck.push_back(id);
      }
    }
    for (std::uint64_t id : stuck) close_connection(id);
    maybe_finish_shutdown();
  }
}

void Server::begin_shutdown() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Existing connections: stop consuming new requests (handle_conn_event
  // checks draining_), flush what is owed, close when nothing is in flight.
  std::vector<std::uint64_t> closable;
  for (auto& [id, conn] : conns_) {
    conn.closing = true;
    if (conn.pending_jobs == 0 && conn.write_pos >= conn.write_buf.size()) {
      closable.push_back(id);
    }
  }
  for (std::uint64_t id : closable) close_connection(id);
  maybe_finish_shutdown();
}

void Server::maybe_finish_shutdown() {
  if (draining_ && conns_.empty()) loop_.stop();
}

}  // namespace gaurast::net
