// net::Client — a deliberately simple blocking client for the gaurast wire
// protocol, used by tests, the loopback bench, and `gaurast_cli request`.
// One request in flight at a time per client; throughput comes from running
// many clients (each bench thread owns one), not from pipelining.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"

namespace gaurast::net {

class Client {
 public:
  /// Connects immediately; throws gaurast::Error on refusal. `timeout_ms`
  /// bounds every individual send/recv (SO_SNDTIMEO/SO_RCVTIMEO).
  Client(const std::string& host, int port, int timeout_ms = 30000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one render request and blocks for its response. kOverloaded and
  /// kServerError come back as normal responses (the caller decides);
  /// a kError frame or any transport failure throws.
  RenderResponse render(const RenderRequest& request);

  /// Fetches the server's schema-stamped ServiceStats snapshot.
  StatsResponse stats();

  /// Issues a plain HTTP GET for `target` (e.g. "/healthz") and returns
  /// the raw response (status line, headers, body). The server closes the
  /// connection afterwards, as does this client — use a fresh Client for
  /// anything further.
  std::string http_get(const std::string& target);

 private:
  void send_all(const std::uint8_t* data, std::size_t size);
  /// Reads exactly one frame; throws ProtocolError on malformed input and
  /// gaurast::Error on EOF/timeout.
  std::pair<FrameHeader, std::vector<std::uint8_t>> recv_frame();

  int fd_ = -1;
};

}  // namespace gaurast::net
