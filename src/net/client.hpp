// net::Client — a deliberately simple blocking client for the gaurast wire
// protocol, used by tests, the loopback bench, the cluster router's
// forwarders, and `gaurast_cli request`. One request in flight at a time
// per client; throughput comes from running many clients (each bench thread
// owns one), not from pipelining.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"

namespace gaurast::net {

/// A send/recv/connect phase exceeded its timeout budget: the peer may be
/// alive but slow. Retrying elsewhere costs the same budget again, so retry
/// policies treat this as budget-consuming (backoff before the next try).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// The transport itself failed — connection refused, reset, EOF mid-frame,
/// broken pipe. The peer did no work on the request, so retry policies may
/// re-dial (or fail over) immediately without consuming backoff budget.
class ConnectionError : public Error {
 public:
  explicit ConnectionError(const std::string& what) : Error(what) {}
};

class Client {
 public:
  /// Connects immediately; throws ConnectionError on refusal and
  /// TimeoutError when the connect phase exceeds `connect_timeout_ms` (a
  /// black-holed peer must not stall the caller — the dial is nonblocking +
  /// poll). `timeout_ms` bounds every individual send/recv
  /// (SO_SNDTIMEO/SO_RCVTIMEO); connect_timeout_ms <= 0 means "use
  /// timeout_ms for the dial too".
  Client(const std::string& host, int port, int timeout_ms = 30000,
         int connect_timeout_ms = 0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one render request and blocks for its response. kOverloaded and
  /// kServerError come back as normal responses (the caller decides);
  /// a kError frame or any transport failure throws — TimeoutError when a
  /// timeout budget ran out, ConnectionError when the transport died — and
  /// marks the connection broken (a half-finished frame exchange is
  /// unrecoverable).
  RenderResponse render(const RenderRequest& request);

  /// Fetches the server's schema-stamped ServiceStats snapshot.
  StatsResponse stats();

  /// Issues a plain HTTP GET for `target` (e.g. "/healthz") and returns
  /// the raw response (status line, headers, body). The server closes the
  /// connection afterwards, as does this client — use a fresh Client (or
  /// reconnect()) for anything further.
  std::string http_get(const std::string& target);

  /// Cheap liveness check: true while the connection is usable. Detects
  /// broken transports (a thrown render()/stats()) immediately and peer
  /// close/reset via a zero-timeout poll — a false result means the next
  /// call would fail, so reconnect() first. A true result is best-effort
  /// (the peer can still die between the check and the call).
  bool is_alive() const;

  /// Drops the current connection (if any) and dials the original
  /// host:port again with the original timeouts. Throws gaurast::Error on
  /// failure, leaving the client not-alive.
  void reconnect();

  /// Rebounds the per-operation send/recv timeout on the live connection
  /// (and for future dials). Lets a router derate a pooled connection's
  /// timeout to a request's remaining deadline budget without re-dialing.
  /// Values <= 0 are ignored.
  void set_timeout_ms(int timeout_ms);

  int timeout_ms() const { return timeout_ms_; }

 private:
  void dial();
  void apply_timeout();
  void mark_broken();
  void send_all(const std::uint8_t* data, std::size_t size);
  /// Reads exactly one frame; throws ProtocolError on malformed input and
  /// gaurast::Error on EOF/timeout.
  std::pair<FrameHeader, std::vector<std::uint8_t>> recv_frame();

  std::string host_;
  int port_ = 0;
  int timeout_ms_ = 30000;
  int connect_timeout_ms_ = 0;
  int fd_ = -1;
};

}  // namespace gaurast::net
