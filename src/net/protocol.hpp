// gaurast::net wire protocol — the versioned, length-prefixed binary
// framing every gaurast network peer speaks. This header is the protocol's
// single source of truth: every constant, the frame layout, and the payload
// encodings are defined (and documented) here and nowhere else.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic          kFrameMagic ("GAUR")
//        4     1  version        kMinProtocolVersion..kProtocolVersion
//        5     1  type           MessageType
//        6     2  reserved       must be zero
//        8     4  payload_size   <= kMaxPayloadBytes
//       12     n  payload        MessageType-specific encoding below
//
// Versioning: peers emit kProtocolVersion and accept every version in
// [kMinProtocolVersion, kProtocolVersion]. A minor version bump appends
// fields to payload encodings; decoders branch on the received frame's
// version byte, so an old peer's frames keep decoding (the appended fields
// take their zero defaults) while a new-version frame truncated before an
// appended field is still rejected loudly.
//
// A peer that receives a frame violating any of these rules (bad magic,
// unknown version, nonzero reserved bits, oversized payload, unknown type,
// or a payload that does not decode exactly) must send a kError frame and
// close the connection — malformed input is a protocol error, never a
// silent drop or a hang.
//
// Payload encodings (strings are u32 length + raw bytes; floats are IEEE
// 754 little-endian, so image payloads round-trip bit-identically):
//
//   kRenderRequest   request_id u64, gaussian_count u64, scene_seed u64,
//                    width u32, height u32, fov_y f32, eye f32[3],
//                    target f32[3], up f32[3], flags u32 (bit 0 =
//                    kWantImage), backend string, kernel string,
//                    deadline_ms u32 (version >= 2 only; 0 = no deadline),
//                    scene string (version >= 3 only) — a canonical scene
//                    key ("synthetic:<count>[@<seed>]" or
//                    "ply:<path-or-name>", see scene/store.hpp). Empty
//                    scene means the key is derived from
//                    gaussian_count/scene_seed (the v1/v2 addressing);
//                    when scene is set, gaussian_count/scene_seed are
//                    advisory and may be zero.
//                    Empty backend/kernel mean "whatever the server is
//                    configured with"; a non-empty value that differs from
//                    the serving configuration yields a kServerError
//                    response naming the mismatch (explicit rejection, not
//                    a silent substitution). deadline_ms is the remaining
//                    latency budget in milliseconds, counted from the
//                    moment the receiver reads the frame; a router rewrites
//                    it to the remaining budget before each forward.
//   kRenderResponse  request_id u64, status u8 (RenderStatus), job_id u64,
//                    latency_ms f64, queue_wait_ms f64, service_ms f64,
//                    message string (empty unless status != kOk),
//                    has_image u8, [width u32, height u32,
//                    pixels f32[w*h*3]].
//                    RenderStatus::kOverloaded is the admission-control
//                    signal: the service queue was full and the request was
//                    shed — the connection stays open and the client may
//                    retry. RenderStatus::kFleetUnavailable is the cluster
//                    router's terminal routing failure: no shard could take
//                    the request (all dead or retry budget exhausted).
//                    RenderStatus::kDeadlineExceeded means the request's
//                    deadline_ms budget ran out before a render could
//                    complete — shed at admission, in the queue, or at a
//                    router hop; never sent for a request without a
//                    deadline, so version-1 peers never see it.
//   kStatsRequest    (empty payload)
//   kStatsResponse   json string — the server's ServiceStats snapshot as
//                    schema-stamped JSON (kServeStatsSchema).
//   kError           message string — protocol-level failure; the sender
//                    closes the connection after flushing this frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "scene/camera.hpp"

namespace gaurast::net {

/// Frame magic: "GAUR" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x52554147u;

/// The wire-format version byte peers emit. Minor bumps append payload
/// fields (decoders branch on the received version); an incompatible change
/// must also raise kMinProtocolVersion.
///
/// v1: initial protocol. v2: RenderRequest gains trailing deadline_ms u32;
/// RenderStatus gains kDeadlineExceeded. v3: RenderRequest gains a trailing
/// canonical scene-key string (empty = derive from gaussian_count/seed);
/// the stats schema moves to gaurast-serve-stats/v2 (scene-store counters).
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Oldest version byte still accepted. Frames outside
/// [kMinProtocolVersion, kProtocolVersion] are protocol errors.
inline constexpr std::uint8_t kMinProtocolVersion = 1;

/// Fixed frame-header size in bytes (magic + version + type + reserved +
/// payload_size).
inline constexpr std::size_t kHeaderBytes = 12;

/// Upper bound on a frame payload. Large enough for a 2048x2048 RGB float
/// image with headroom; anything bigger is a malformed frame by definition.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

/// Schema tag stamped on every ServiceStats JSON report a server emits
/// (the stats endpoint, `serve --json`, and kStatsResponse payloads).
/// v2 adds the scene-store counters (scene_evictions, scene_rejected,
/// scene_resident_bytes, scene_peak_resident_bytes, scene_resident_count)
/// to the flat per-shard object and to the fleet-merged sums.
inline constexpr const char* kServeStatsSchema = "gaurast-serve-stats/v2";

/// RenderRequest::flags bits.
inline constexpr std::uint32_t kWantImage = 1u << 0;

enum class MessageType : std::uint8_t {
  kRenderRequest = 1,
  kRenderResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kError = 5,
};

enum class RenderStatus : std::uint8_t {
  kOk = 0,
  /// Admission control: the service queue was full and try_submit shed the
  /// request. Never a dropped or hung connection.
  kOverloaded = 1,
  /// The server could not serve this request (e.g. a backend/kernel option
  /// mismatch); message names the reason.
  kServerError = 2,
  /// Only a cluster router emits this: every shard of the fleet is dead (or
  /// failed over exhaustively for this request). The connection stays open;
  /// the client may retry once the fleet recovers. Single servers never
  /// send it.
  kFleetUnavailable = 3,
  /// The request carried a deadline_ms budget and it ran out before a
  /// render could complete: shed at admission, dropped from a service
  /// queue, or given up by a router hop. Only requests that set a deadline
  /// can receive it, so version-1 peers (which cannot set one) never do.
  kDeadlineExceeded = 4,
};

const char* to_string(MessageType type);
const char* to_string(RenderStatus status);

/// Malformed wire input: bad magic/version/size, truncated payload, or a
/// payload that does not decode exactly. Receivers answer with a kError
/// frame and close.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// One frame request as it travels the wire. The scene is named by a
/// canonical scene-store key (v3) or its synthetic generator spec
/// (count + seed, the v1/v2 encoding) — either way the same key space the
/// RenderService scene store uses — and the camera by its constructor
/// inputs, so the server can rebuild an identical scene::Camera and the
/// rendered image is bit-identical to an in-process submission.
struct RenderRequest {
  std::uint64_t request_id = 0;  ///< client token, echoed in the response
  std::uint64_t gaussian_count = 0;
  std::uint64_t scene_seed = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  float fov_y = 0.9f;
  float eye[3] = {0.0f, 0.0f, 0.0f};
  float target[3] = {0.0f, 0.0f, 0.0f};
  float up[3] = {0.0f, 1.0f, 0.0f};
  std::uint32_t flags = 0;  ///< kWantImage, ...
  std::string backend;      ///< empty = server default
  std::string kernel;       ///< empty = server default
  /// Remaining latency budget in milliseconds, counted from the moment the
  /// receiver reads the frame; 0 = no deadline. Wire version >= 2 only —
  /// a v1 frame decodes with no deadline.
  std::uint32_t deadline_ms = 0;
  /// Canonical scene key ("synthetic:<n>[@<seed>]" / "ply:<name>"); empty =
  /// derive from gaussian_count/scene_seed. Wire version >= 3 only — a
  /// v1/v2 frame decodes with an empty scene.
  std::string scene;

  /// The scene-store key this request resolves to: `scene` when set, else
  /// scene::synthetic_scene_key(gaussian_count, scene_seed) — the same keys
  /// the workload generator emits.
  std::string scene_key() const;
  /// Rebuilds the camera from the serialized constructor inputs.
  scene::Camera camera() const;
};

struct RenderResponse {
  std::uint64_t request_id = 0;
  RenderStatus status = RenderStatus::kOk;
  std::uint64_t job_id = 0;
  double latency_ms = 0.0;
  double queue_wait_ms = 0.0;
  double service_ms = 0.0;
  std::string message;  ///< empty unless status != kOk
  bool has_image = false;
  std::int32_t image_width = 0;
  std::int32_t image_height = 0;
  /// Row-major RGB float pixels (3 floats per pixel), bit-exact.
  std::vector<float> pixels;
};

struct StatsResponse {
  std::string json;  ///< schema-stamped ServiceStats snapshot
};

/// A render request whose camera reproduces scene::default_camera (default
/// GeneratorParams) for the given dimensions — the same view
/// `gaurast_cli render` uses, so a wire render is bit-comparable with a
/// local one. Flags start at 0; set kWantImage to get pixels back.
RenderRequest default_render_request(std::uint64_t gaussian_count,
                                     std::uint64_t scene_seed, int width,
                                     int height);

// Each message serializes to a complete frame (header + payload) ready to
// write to a socket, and deserializes from a payload span already validated
// against the header by decode_header().

struct FrameHeader {
  MessageType type = MessageType::kError;
  std::uint32_t payload_size = 0;
  /// The version byte the frame carried — payload decoders branch on it.
  std::uint8_t version = kProtocolVersion;
};

/// Validates `kHeaderBytes` of header and returns the decoded
/// type/size/version. Throws ProtocolError on bad magic, a version outside
/// [kMinProtocolVersion, kProtocolVersion], reserved bits, payload size, or
/// unknown message type.
FrameHeader decode_header(const std::uint8_t* data);

std::vector<std::uint8_t> serialize(const RenderRequest& msg);
std::vector<std::uint8_t> serialize(const RenderResponse& msg);
std::vector<std::uint8_t> serialize_stats_request();
std::vector<std::uint8_t> serialize(const StatsResponse& msg);
std::vector<std::uint8_t> serialize_error(const std::string& message);

/// Payload decoders; `data`/`size` span exactly the frame payload. Every
/// decoder consumes the payload exactly — trailing bytes are a
/// ProtocolError, as is any truncation.
///
/// deserialize_render_request takes the frame's version byte (from
/// FrameHeader::version): a v1 payload ends at `kernel` and decodes with
/// deadline_ms = 0; a v2 payload must carry the trailing deadline_ms u32;
/// a v3 payload must additionally carry the trailing scene string.
RenderRequest deserialize_render_request(const std::uint8_t* data,
                                         std::size_t size,
                                         std::uint8_t version =
                                             kProtocolVersion);
RenderResponse deserialize_render_response(const std::uint8_t* data,
                                           std::size_t size);
StatsResponse deserialize_stats_response(const std::uint8_t* data,
                                         std::size_t size);
std::string deserialize_error(const std::uint8_t* data, std::size_t size);

}  // namespace gaurast::net
