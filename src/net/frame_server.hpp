// net::FrameServer — the reusable TCP front-end every gaurast wire endpoint
// shares (the single-process net::Server and the cluster::Router both build
// on it).
//
// One EventLoop thread owns the listen socket and every connection
// (per-connection read/write buffers, idle timeouts, frame/HTTP parsing).
// What a frame *means* is the application's business: complete,
// header-validated frames and parsed HTTP GET targets are handed to a
// FrameHandler, which answers either synchronously (respond / respond_http)
// or asynchronously (add_pending now, post_deliver later from any thread —
// the wakeup-pipe completion bridge). Keeping this machinery in one place
// keeps raw socket syscalls confined to src/net (the raw-sockets lint
// invariant) and means connection-lifetime hardening is fixed once, not per
// front-end.
//
// Threading: all connection state is confined to the loop thread;
// cross-thread traffic goes through EventLoop::post. The only server-level
// mutex guards the started/stopped lifecycle flags.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>  // lint-invariants: allow(raw-concurrency)
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace gaurast::net {

struct FrameServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; FrameServer::port() reports the actual one.
  int port = 0;
  /// Connections with no traffic and no in-flight work for this long are
  /// closed by the loop's tick sweep. 0 disables the sweep.
  int idle_timeout_ms = 30000;
  /// During stop(), a connection with no work in flight whose writes make no
  /// progress for this long is force-closed, independent of idle_timeout_ms
  /// — a peer that never reads must not hang shutdown.
  int drain_timeout_ms = 5000;
  int backlog = 64;
};

/// The application seam. Both callbacks run on the loop thread and identify
/// the connection by its stable id — never by fd or reference, so a handler
/// outcome that arrives after the connection died resolves to "gone".
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// One complete binary frame (header already validated by decode_header).
  /// Throwing ProtocolError rejects it per the wire contract (kError frame,
  /// close after flush). A handler that defers the answer must call
  /// add_pending() before returning and finish with post_deliver() later.
  virtual void on_frame(std::uint64_t conn_id, const FrameHeader& header,
                        const std::uint8_t* payload) = 0;

  /// One parsed HTTP GET target (e.g. "/healthz"). Same response options:
  /// respond_http() now, or add_pending() + post_deliver_http() later.
  virtual void on_http_get(std::uint64_t conn_id,
                           const std::string& target) = 0;
};

class FrameServer {
 public:
  /// The handler must outlive the server. start() is not implicit.
  FrameServer(FrameHandler& handler, FrameServerConfig config);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens, and spawns the loop thread. Throws gaurast::Error on
  /// socket failures (e.g. port in use).
  void start() GAURAST_EXCLUDES(state_mutex_);

  /// Graceful shutdown: stops accepting and reading, runs `drain` (the
  /// owner's hook to finish all deferred work — every post_deliver must land
  /// before it returns), flushes each connection's pending responses, then
  /// joins the loop thread. Idempotent; `drain` runs at most once.
  void stop(const std::function<void()>& drain = {})
      GAURAST_EXCLUDES(state_mutex_);

  /// The bound port (resolves ephemeral binds). Valid after start().
  int port() const { return port_; }
  const FrameServerConfig& config() const { return config_; }
  EventLoop& loop() { return loop_; }

  // Handler-side operations. Loop thread only:

  /// Queues a serialized frame (or raw bytes) on the connection.
  void respond(std::uint64_t conn_id, std::vector<std::uint8_t> frame);
  /// Queues a full HTTP response (status like "200 OK") and marks the
  /// connection close-after-flush — one probe per connection.
  void respond_http(std::uint64_t conn_id, const std::string& status,
                    const std::string& body);
  /// Serializes a kError frame, queues it, and marks the connection for
  /// close-after-flush — the malformed-frame contract.
  void protocol_error(std::uint64_t conn_id, const std::string& message);
  /// Marks one unit of deferred work in flight on the connection: the idle
  /// sweep spares it and shutdown waits for it until a deliver arrives.
  void add_pending(std::uint64_t conn_id);
  /// Completes one pending unit with a frame. Loop thread only.
  void deliver(std::uint64_t conn_id, std::vector<std::uint8_t> frame);
  /// Completes one pending unit with an HTTP response. Loop thread only.
  void deliver_http(std::uint64_t conn_id, const std::string& status,
                    const std::string& body);

  // Any-thread completion bridges (EventLoop::post under the hood):
  void post_deliver(std::uint64_t conn_id, std::vector<std::uint8_t> frame);
  void post_deliver_http(std::uint64_t conn_id, const std::string& status,
                         const std::string& body);

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-connection state, loop-thread-confined. Keyed by a monotonically
  /// increasing id (never a reused fd), so a completion posted for a
  /// connection that died in the meantime resolves to "gone", not to an
  /// unrelated client.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> read_buf;
    std::vector<std::uint8_t> write_buf;
    std::size_t write_pos = 0;
    Clock::time_point last_activity;
    int pending = 0;          ///< deferred answers owed (add_pending)
    bool http = false;        ///< speaking HTTP, not the binary protocol
    bool closing = false;     ///< close once flushed and nothing pending
    bool want_write = false;  ///< EPOLLOUT currently registered
  };

  // Everything below runs on the loop thread.
  void handle_accept();
  void handle_conn_event(std::uint64_t conn_id, std::uint32_t events);
  void process_read_buffer(Connection& conn);
  void handle_http(Connection& conn);
  void flush_writes(Connection& conn);
  /// Applies the unified close condition (closing + flushed + idle).
  void maybe_close(Connection& conn);
  void close_connection(std::uint64_t conn_id);
  void on_tick();
  void begin_shutdown();
  void maybe_finish_shutdown();

  FrameHandler& handler_;
  FrameServerConfig config_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> conns_;
  bool draining_ = false;

  // The loop thread is the module's one sanctioned std::thread: the epoll
  // reactor needs a dedicated runner, and common::parallel_for_workers is a
  // fork-join helper, not a long-lived event thread.
  std::thread loop_thread_;  // lint-invariants: allow(raw-concurrency)

  mutable common::Mutex state_mutex_;
  bool running_ GAURAST_GUARDED_BY(state_mutex_) = false;
};

}  // namespace gaurast::net
