#include "net/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"

namespace gaurast::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& host, int port, int timeout_ms) {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");

  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd_);
    fd_ = -1;
    throw Error("invalid host '" + host + "'");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno(("connect to " + host + ":" + std::to_string(port)).c_str());
  }
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

std::pair<FrameHeader, std::vector<std::uint8_t>> Client::recv_frame() {
  std::uint8_t header_bytes[kHeaderBytes];
  std::size_t got = 0;
  auto read_exact = [this](std::uint8_t* out, std::size_t want,
                           std::size_t& have) {
    while (have < want) {
      const ssize_t n = recv(fd_, out + have, want - have, 0);
      if (n > 0) {
        have += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) throw Error("connection closed mid-frame");
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
  };
  read_exact(header_bytes, kHeaderBytes, got);
  const FrameHeader header = decode_header(header_bytes);
  std::vector<std::uint8_t> payload(header.payload_size);
  got = 0;
  if (header.payload_size > 0) {
    read_exact(payload.data(), payload.size(), got);
  }
  return {header, std::move(payload)};
}

RenderResponse Client::render(const RenderRequest& request) {
  const auto frame = serialize(request);
  send_all(frame.data(), frame.size());
  auto [header, payload] = recv_frame();
  if (header.type == MessageType::kError) {
    throw ProtocolError("server protocol error: " +
                        deserialize_error(payload.data(), payload.size()));
  }
  if (header.type != MessageType::kRenderResponse) {
    throw ProtocolError(std::string("expected render-response, got ") +
                        to_string(header.type));
  }
  return deserialize_render_response(payload.data(), payload.size());
}

StatsResponse Client::stats() {
  const auto frame = serialize_stats_request();
  send_all(frame.data(), frame.size());
  auto [header, payload] = recv_frame();
  if (header.type == MessageType::kError) {
    throw ProtocolError("server protocol error: " +
                        deserialize_error(payload.data(), payload.size()));
  }
  if (header.type != MessageType::kStatsResponse) {
    throw ProtocolError(std::string("expected stats-response, got ") +
                        to_string(header.type));
  }
  return deserialize_stats_response(payload.data(), payload.size());
}

std::string Client::http_get(const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: gaurast\r\nConnection: "
                              "close\r\n\r\n";
  send_all(reinterpret_cast<const std::uint8_t*>(request.data()),
           request.size());
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closes after the response
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
  return response;
}

}  // namespace gaurast::net
