#include "net/client.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace gaurast::net {

namespace {

/// Classifies the errno into the client's error taxonomy: timeout budgets
/// (SO_RCVTIMEO/SO_SNDTIMEO expiry surfaces as EAGAIN/EWOULDBLOCK, the
/// poll-bounded dial as ETIMEDOUT) throw TimeoutError; dead transports
/// throw ConnectionError; anything else is a plain Error.
[[noreturn]] void throw_errno(const char* what) {
  const int err = errno;
  const std::string message =
      std::string(what) + ": " + std::strerror(err);
  switch (err) {
    case ETIMEDOUT:
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      throw TimeoutError(message);
    case ECONNREFUSED:
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
    case ENOTCONN:
    case EHOSTUNREACH:
    case ENETUNREACH:
      throw ConnectionError(message);
    default:
      throw Error(message);
  }
}

}  // namespace

Client::Client(const std::string& host, int port, int timeout_ms,
               int connect_timeout_ms)
    : host_(host),
      port_(port),
      timeout_ms_(timeout_ms),
      connect_timeout_ms_(connect_timeout_ms > 0 ? connect_timeout_ms
                                                 : timeout_ms) {
  dial();
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

void Client::dial() {
  GAURAST_FAULT_POINT("net.client.connect");
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");

  // Fail the whole dial attempt with the original errno, fd closed.
  auto fail = [this](const char* what) -> void {
    const int saved = errno;
    close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno(what);
  };

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close(fd_);
    fd_ = -1;
    throw Error("invalid host '" + host_ + "'");
  }

  // Nonblocking connect + poll: SO_SNDTIMEO does not reliably bound the
  // connect phase, so a black-holed peer (dropped SYNs) would otherwise
  // stall the caller for the kernel's SYN-retry budget (minutes).
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl");
  }
  const std::string peer = host_ + ":" + std::to_string(port_);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (errno != EINPROGRESS) fail(("connect to " + peer).c_str());
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = poll(&pfd, 1, connect_timeout_ms_);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) fail("poll");
    if (rc == 0) {
      errno = ETIMEDOUT;
      fail(("connect to " + peer).c_str());
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      fail("getsockopt");
    }
    if (err != 0) {
      errno = err;
      fail(("connect to " + peer).c_str());
    }
  }
  if (fcntl(fd_, F_SETFL, flags) < 0) fail("fcntl");

  apply_timeout();
}

void Client::apply_timeout() {
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void Client::set_timeout_ms(int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeout_ms_ = timeout_ms;
  if (fd_ >= 0) apply_timeout();
}

bool Client::is_alive() const {
  if (fd_ < 0) return false;
  // Zero-timeout poll: between requests nothing should be readable, so a
  // readable fd means EOF/reset (or an unexpected frame — equally fatal for
  // this one-request-at-a-time client), and POLLERR/POLLHUP are explicit.
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int rc;
  do {
    rc = poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return false;
  if (rc == 0) return true;  // quiet and connected
  return (pfd.revents & (POLLERR | POLLHUP | POLLNVAL | POLLIN)) == 0;
}

void Client::reconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  dial();
}

void Client::mark_broken() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

void Client::send_all(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) {
    throw ConnectionError("client connection is down (reconnect first)");
  }
  try {
    GAURAST_FAULT_POINT("net.client.send");
  } catch (...) {
    // An injected send fault behaves like a transport failure: the frame
    // may be half-written, so the connection is spent.
    mark_broken();
    throw;
  }
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int saved = errno;
    mark_broken();
    errno = saved;
    throw_errno("send");
  }
}

std::pair<FrameHeader, std::vector<std::uint8_t>> Client::recv_frame() {
  try {
    GAURAST_FAULT_POINT("net.client.recv");
  } catch (...) {
    mark_broken();
    throw;
  }
  std::uint8_t header_bytes[kHeaderBytes];
  std::size_t got = 0;
  auto read_exact = [this](std::uint8_t* out, std::size_t want,
                           std::size_t& have) {
    while (have < want) {
      const ssize_t n = recv(fd_, out + have, want - have, 0);
      if (n > 0) {
        have += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        mark_broken();
        throw ConnectionError("connection closed mid-frame");
      }
      if (errno == EINTR) continue;
      const int saved = errno;
      mark_broken();
      errno = saved;
      throw_errno("recv");
    }
  };
  read_exact(header_bytes, kHeaderBytes, got);
  const FrameHeader header = decode_header(header_bytes);
  std::vector<std::uint8_t> payload(header.payload_size);
  got = 0;
  if (header.payload_size > 0) {
    read_exact(payload.data(), payload.size(), got);
  }
  return {header, std::move(payload)};
}

RenderResponse Client::render(const RenderRequest& request) {
  const auto frame = serialize(request);
  send_all(frame.data(), frame.size());
  auto [header, payload] = recv_frame();
  if (header.type == MessageType::kError) {
    mark_broken();  // the sender closes after a kError frame
    throw ProtocolError("server protocol error: " +
                        deserialize_error(payload.data(), payload.size()));
  }
  if (header.type != MessageType::kRenderResponse) {
    mark_broken();
    throw ProtocolError(std::string("expected render-response, got ") +
                        to_string(header.type));
  }
  return deserialize_render_response(payload.data(), payload.size());
}

StatsResponse Client::stats() {
  const auto frame = serialize_stats_request();
  send_all(frame.data(), frame.size());
  auto [header, payload] = recv_frame();
  if (header.type == MessageType::kError) {
    mark_broken();
    throw ProtocolError("server protocol error: " +
                        deserialize_error(payload.data(), payload.size()));
  }
  if (header.type != MessageType::kStatsResponse) {
    mark_broken();
    throw ProtocolError(std::string("expected stats-response, got ") +
                        to_string(header.type));
  }
  return deserialize_stats_response(payload.data(), payload.size());
}

std::string Client::http_get(const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: gaurast\r\nConnection: "
                              "close\r\n\r\n";
  send_all(reinterpret_cast<const std::uint8_t*>(request.data()),
           request.size());
  std::string response;
  for (;;) {
    char buf[4096];
    const ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // server closes after the response
    if (errno == EINTR) continue;
    const int saved = errno;
    mark_broken();
    errno = saved;
    throw_errno("recv");
  }
  // The protocol is one GET per connection; the fd is spent either way.
  mark_broken();
  return response;
}

}  // namespace gaurast::net
