#include "net/protocol.hpp"

#include <cstdio>
#include <cstring>

#include "scene/generator.hpp"
#include "scene/store.hpp"

namespace gaurast::net {

namespace {

// Little-endian byte packing. memcpy through fixed-width integers keeps the
// encoding identical across hosts (and is the only strict-aliasing-safe way
// to reinterpret float bits).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u32(out, bits);
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Cursor over a frame payload. Every read is bounds-checked; reading past
/// the end (a truncated payload) is a ProtocolError naming the message
/// being decoded.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= std::uint16_t(data_[pos_ + i]) << (8 * i);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  /// A decoder must consume its payload exactly; trailing bytes mean the
  /// peer and we disagree about the encoding.
  void finish() const {
    if (pos_ != size_) {
      throw ProtocolError(std::string(what_) + " payload has " +
                          std::to_string(size_ - pos_) + " trailing byte(s)");
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw ProtocolError(std::string(what_) + " payload truncated (need " +
                          std::to_string(n) + " byte(s) at offset " +
                          std::to_string(pos_) + " of " +
                          std::to_string(size_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

/// Prepends the frame header to an already-built payload.
std::vector<std::uint8_t> frame(MessageType type,
                                std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kRenderRequest: return "render-request";
    case MessageType::kRenderResponse: return "render-response";
    case MessageType::kStatsRequest: return "stats-request";
    case MessageType::kStatsResponse: return "stats-response";
    case MessageType::kError: return "error";
  }
  return "?";
}

const char* to_string(RenderStatus status) {
  switch (status) {
    case RenderStatus::kOk: return "ok";
    case RenderStatus::kOverloaded: return "overloaded";
    case RenderStatus::kServerError: return "server-error";
    case RenderStatus::kFleetUnavailable: return "fleet-unavailable";
    case RenderStatus::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

std::string RenderRequest::scene_key() const {
  if (!scene.empty()) return scene;
  return scene::synthetic_scene_key(gaussian_count, scene_seed);
}

RenderRequest default_render_request(std::uint64_t gaussian_count,
                                     std::uint64_t scene_seed, int width,
                                     int height) {
  RenderRequest req;
  req.gaussian_count = gaussian_count;
  req.scene_seed = scene_seed;
  req.width = width;
  req.height = height;
  // Mirrors scene::default_camera over default GeneratorParams; the
  // net_test bit-identity case pins these two together.
  const scene::GeneratorParams params;
  const float r = 2.2f * params.scene_radius;
  req.fov_y = 0.9f;
  req.eye[0] = r;
  req.eye[1] = 0.6f * params.scene_radius;
  req.eye[2] = r;
  req.target[0] = 0.0f;
  req.target[1] = 0.3f * params.scene_radius;
  req.target[2] = 0.0f;
  return req;
}

scene::Camera RenderRequest::camera() const {
  return scene::Camera(width, height, fov_y, Vec3f{eye[0], eye[1], eye[2]},
                       Vec3f{target[0], target[1], target[2]},
                       Vec3f{up[0], up[1], up[2]});
}

FrameHeader decode_header(const std::uint8_t* data) {
  Reader r(data, kHeaderBytes, "frame header");
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw ProtocolError("bad frame magic 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x", magic);
      return std::string(buf);
    }());
  }
  const std::uint8_t version = r.u8();
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version) + " (this peer speaks " +
                        std::to_string(kMinProtocolVersion) + ".." +
                        std::to_string(kProtocolVersion) + ")");
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(MessageType::kRenderRequest) ||
      type > static_cast<std::uint8_t>(MessageType::kError)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  const std::uint16_t reserved = r.u16();
  if (reserved != 0) {
    throw ProtocolError("nonzero reserved header bits");
  }
  FrameHeader header;
  header.type = static_cast<MessageType>(type);
  header.version = version;
  header.payload_size = r.u32();
  if (header.payload_size > kMaxPayloadBytes) {
    throw ProtocolError("oversized frame payload (" +
                        std::to_string(header.payload_size) + " > " +
                        std::to_string(kMaxPayloadBytes) + " bytes)");
  }
  return header;
}

std::vector<std::uint8_t> serialize(const RenderRequest& msg) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, msg.request_id);
  put_u64(payload, msg.gaussian_count);
  put_u64(payload, msg.scene_seed);
  put_u32(payload, static_cast<std::uint32_t>(msg.width));
  put_u32(payload, static_cast<std::uint32_t>(msg.height));
  put_f32(payload, msg.fov_y);
  for (float v : msg.eye) put_f32(payload, v);
  for (float v : msg.target) put_f32(payload, v);
  for (float v : msg.up) put_f32(payload, v);
  put_u32(payload, msg.flags);
  put_string(payload, msg.backend);
  put_string(payload, msg.kernel);
  put_u32(payload, msg.deadline_ms);  // v2+
  put_string(payload, msg.scene);     // v3+
  return frame(MessageType::kRenderRequest, std::move(payload));
}

RenderRequest deserialize_render_request(const std::uint8_t* data,
                                         std::size_t size,
                                         std::uint8_t version) {
  Reader r(data, size, "render-request");
  RenderRequest msg;
  msg.request_id = r.u64();
  msg.gaussian_count = r.u64();
  msg.scene_seed = r.u64();
  msg.width = static_cast<std::int32_t>(r.u32());
  msg.height = static_cast<std::int32_t>(r.u32());
  msg.fov_y = r.f32();
  for (float& v : msg.eye) v = r.f32();
  for (float& v : msg.target) v = r.f32();
  for (float& v : msg.up) v = r.f32();
  msg.flags = r.u32();
  msg.backend = r.string();
  msg.kernel = r.string();
  // Fields appended by later versions: a v1 payload ends at kernel, a v2
  // one adds deadline_ms, a v3 one adds the scene key. A payload truncated
  // before a field its version promises is a loud ProtocolError.
  if (version >= 2) {
    msg.deadline_ms = r.u32();
  }
  if (version >= 3) {
    msg.scene = r.string();
  }
  r.finish();
  if (msg.width <= 0 || msg.height <= 0) {
    throw ProtocolError("render-request image dimensions must be positive");
  }
  // An explicit v3 scene key carries the scene identity itself;
  // gaussian_count is only load-bearing for the derived v1/v2 addressing.
  if (msg.scene.empty() && msg.gaussian_count == 0) {
    throw ProtocolError("render-request gaussian_count must be positive");
  }
  return msg;
}

std::vector<std::uint8_t> serialize(const RenderResponse& msg) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64 + msg.message.size() + msg.pixels.size() * 4);
  put_u64(payload, msg.request_id);
  put_u8(payload, static_cast<std::uint8_t>(msg.status));
  put_u64(payload, msg.job_id);
  put_f64(payload, msg.latency_ms);
  put_f64(payload, msg.queue_wait_ms);
  put_f64(payload, msg.service_ms);
  put_string(payload, msg.message);
  put_u8(payload, msg.has_image ? 1 : 0);
  if (msg.has_image) {
    put_u32(payload, static_cast<std::uint32_t>(msg.image_width));
    put_u32(payload, static_cast<std::uint32_t>(msg.image_height));
    for (float v : msg.pixels) put_f32(payload, v);
  }
  return frame(MessageType::kRenderResponse, std::move(payload));
}

RenderResponse deserialize_render_response(const std::uint8_t* data,
                                           std::size_t size) {
  Reader r(data, size, "render-response");
  RenderResponse msg;
  msg.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(RenderStatus::kDeadlineExceeded)) {
    throw ProtocolError("unknown render status " + std::to_string(status));
  }
  msg.status = static_cast<RenderStatus>(status);
  msg.job_id = r.u64();
  msg.latency_ms = r.f64();
  msg.queue_wait_ms = r.f64();
  msg.service_ms = r.f64();
  msg.message = r.string();
  msg.has_image = r.u8() != 0;
  if (msg.has_image) {
    msg.image_width = static_cast<std::int32_t>(r.u32());
    msg.image_height = static_cast<std::int32_t>(r.u32());
    if (msg.image_width <= 0 || msg.image_height <= 0) {
      throw ProtocolError("render-response image dimensions must be positive");
    }
    const std::uint64_t count = std::uint64_t(msg.image_width) *
                                std::uint64_t(msg.image_height) * 3;
    // Divide instead of multiplying: count * 4 can wrap u64 for dimensions
    // near INT32_MAX, which would bypass the bound and turn a malformed
    // frame into a length_error/bad_alloc instead of a ProtocolError.
    if (count > size / 4) {
      throw ProtocolError("render-response image larger than its payload");
    }
    msg.pixels.resize(count);
    for (float& v : msg.pixels) v = r.f32();
  }
  r.finish();
  return msg;
}

std::vector<std::uint8_t> serialize_stats_request() {
  return frame(MessageType::kStatsRequest, {});
}

std::vector<std::uint8_t> serialize(const StatsResponse& msg) {
  std::vector<std::uint8_t> payload;
  put_string(payload, msg.json);
  return frame(MessageType::kStatsResponse, std::move(payload));
}

StatsResponse deserialize_stats_response(const std::uint8_t* data,
                                         std::size_t size) {
  Reader r(data, size, "stats-response");
  StatsResponse msg;
  msg.json = r.string();
  r.finish();
  return msg;
}

std::vector<std::uint8_t> serialize_error(const std::string& message) {
  std::vector<std::uint8_t> payload;
  put_string(payload, message);
  return frame(MessageType::kError, std::move(payload));
}

std::string deserialize_error(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size, "error");
  std::string message = r.string();
  r.finish();
  return message;
}

}  // namespace gaurast::net
