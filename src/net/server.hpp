// net::Server — the TCP front-end that makes a RenderService externally
// reachable.
//
// One EventLoop thread owns the listen socket and every connection
// (per-connection read/write buffers, idle timeouts, protocol parsing).
// Render requests are bridged onto RenderService::try_submit: a shed job
// becomes an explicit RenderStatus::kOverloaded wire response — admission
// control the client can see and retry, never a silent drop — and job
// completions re-enter the loop through EventLoop::post's wakeup pipe (the
// RenderRequest::on_complete hook), so no service worker ever touches a
// socket. Besides the binary protocol the server answers plain
// `GET /healthz` and `GET /stats` HTTP probes with the schema-stamped
// ServiceStats JSON.
//
// Threading: all connection state is confined to the loop thread;
// cross-thread traffic goes through EventLoop::post. The only server-level
// mutex guards the started/stopped lifecycle flags.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>  // lint-invariants: allow(raw-concurrency)
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "runtime/service.hpp"

namespace gaurast::net {

/// ServiceStats JSON with the kServeStatsSchema identifier prepended —
/// the one stats encoding every surface (kStatsResponse frames, the HTTP
/// endpoints, `serve --json`) emits.
std::string stamped_stats_json(const runtime::ServiceStats& stats);

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  int port = 0;
  /// Connections with no traffic and no in-flight jobs for this long are
  /// closed by the loop's tick sweep. 0 disables the sweep.
  int idle_timeout_ms = 30000;
  /// During stop(), a connection with no job in flight whose writes make no
  /// progress for this long is force-closed, independent of idle_timeout_ms
  /// — a peer that never reads must not hang shutdown.
  int drain_timeout_ms = 5000;
  int backlog = 64;
  /// Requests above this are refused with kServerError before any scene is
  /// generated (a wire-reachable allocation guard).
  std::uint64_t max_gaussian_count = 10'000'000;
};

class Server {
 public:
  /// The service must outlive the server. start() is not implicit.
  Server(runtime::RenderService& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Throws gaurast::Error on
  /// socket failures (e.g. port in use).
  void start() GAURAST_EXCLUDES(state_mutex_);

  /// Graceful shutdown: stops accepting, lets the service drain every
  /// accepted job, flushes each connection's pending responses, then joins
  /// the loop thread. Idempotent.
  void stop() GAURAST_EXCLUDES(state_mutex_);

  /// The bound port (resolves ephemeral binds). Valid after start().
  int port() const { return port_; }
  const ServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-connection state, loop-thread-confined. Keyed by a monotonically
  /// increasing id (never a reused fd), so a completion posted for a
  /// connection that died in the meantime resolves to "gone", not to an
  /// unrelated client.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> read_buf;
    std::vector<std::uint8_t> write_buf;
    std::size_t write_pos = 0;
    Clock::time_point last_activity;
    int pending_jobs = 0;
    bool http = false;        ///< speaking HTTP, not the binary protocol
    bool closing = false;     ///< close once flushed and no jobs in flight
    bool want_write = false;  ///< EPOLLOUT currently registered
  };

  // Everything below runs on the loop thread.
  void handle_accept();
  void handle_conn_event(std::uint64_t conn_id, std::uint32_t events);
  void process_read_buffer(Connection& conn);
  void dispatch_frame(Connection& conn, const FrameHeader& header,
                      const std::uint8_t* payload);
  void handle_render(Connection& conn, RenderRequest wire);
  void handle_http(Connection& conn);
  /// Serializes a kError frame, queues it, and marks the connection for
  /// close-after-flush — the malformed-frame contract.
  void protocol_error(Connection& conn, const std::string& message);
  void respond(Connection& conn, std::vector<std::uint8_t> frame);
  void flush_writes(Connection& conn);
  /// Applies the unified close condition (closing + flushed + idle).
  void maybe_close(Connection& conn);
  void close_connection(std::uint64_t conn_id);
  /// Completion path: posted from RenderService workers with the already
  /// serialized response frame.
  void deliver(std::uint64_t conn_id, std::vector<std::uint8_t> frame);
  void on_tick();
  void begin_shutdown();
  void maybe_finish_shutdown();

  runtime::RenderService& service_;
  ServerConfig config_;
  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> conns_;
  bool draining_ = false;

  // The loop thread is the module's one sanctioned std::thread: the epoll
  // reactor needs a dedicated runner, and common::parallel_for_workers is a
  // fork-join helper, not a long-lived event thread.
  std::thread loop_thread_;  // lint-invariants: allow(raw-concurrency)

  mutable common::Mutex state_mutex_;
  bool running_ GAURAST_GUARDED_BY(state_mutex_) = false;
};

}  // namespace gaurast::net
