// net::Server — the TCP front-end that makes a RenderService externally
// reachable.
//
// The connection machinery (epoll loop, buffers, idle/drain timeouts,
// frame/HTTP parsing) lives in net::FrameServer; this class is the
// RenderService adapter on top of it. Render requests are bridged onto
// RenderService::try_submit: a shed job becomes an explicit
// RenderStatus::kOverloaded wire response — admission control the client
// can see and retry, never a silent drop — and job completions re-enter the
// loop through FrameServer::post_deliver (the RenderRequest::on_complete
// hook), so no service worker ever touches a socket. Besides the binary
// protocol the server answers plain `GET /healthz` and `GET /stats` HTTP
// probes with the schema-stamped ServiceStats JSON.
#pragma once

#include <cstdint>
#include <string>

#include "net/frame_server.hpp"
#include "net/protocol.hpp"
#include "runtime/service.hpp"

namespace gaurast::net {

/// ServiceStats JSON with the kServeStatsSchema identifier prepended —
/// the one stats encoding every surface (kStatsResponse frames, the HTTP
/// endpoints, `serve --json`) emits.
std::string stamped_stats_json(const runtime::ServiceStats& stats);

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the actual one.
  int port = 0;
  /// Connections with no traffic and no in-flight jobs for this long are
  /// closed by the loop's tick sweep. 0 disables the sweep.
  int idle_timeout_ms = 30000;
  /// During stop(), a connection with no job in flight whose writes make no
  /// progress for this long is force-closed, independent of idle_timeout_ms
  /// — a peer that never reads must not hang shutdown.
  int drain_timeout_ms = 5000;
  int backlog = 64;
  /// Requests above this are refused with kServerError before any scene is
  /// generated (a wire-reachable allocation guard).
  std::uint64_t max_gaussian_count = 10'000'000;
  /// Deadline budget (ms) applied to requests that carry none
  /// (wire deadline_ms == 0). 0 = no default: undeadlined requests render
  /// unconditionally. Requests with their own budget keep it.
  int default_deadline_ms = 0;
};

class Server : private FrameHandler {
 public:
  /// The service must outlive the server. start() is not implicit.
  Server(runtime::RenderService& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the loop thread. Throws gaurast::Error on
  /// socket failures (e.g. port in use).
  void start();

  /// Graceful shutdown: stops accepting, lets the service drain every
  /// accepted job, flushes each connection's pending responses, then joins
  /// the loop thread. Idempotent.
  void stop();

  /// The bound port (resolves ephemeral binds). Valid after start().
  int port() const { return front_.port(); }
  const ServerConfig& config() const { return config_; }

 private:
  // FrameHandler (loop thread).
  void on_frame(std::uint64_t conn_id, const FrameHeader& header,
                const std::uint8_t* payload) override;
  void on_http_get(std::uint64_t conn_id, const std::string& target) override;

  void handle_render(std::uint64_t conn_id, RenderRequest wire);

  static FrameServerConfig front_config(const ServerConfig& config);

  runtime::RenderService& service_;
  ServerConfig config_;
  FrameServer front_;
};

}  // namespace gaurast::net
