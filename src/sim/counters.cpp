#include "sim/counters.hpp"

namespace gaurast::sim {

std::uint64_t CounterSet::sum_prefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (std::string_view(it->first).substr(0, prefix.size()) != prefix) break;
    total += it->second;
  }
  return total;
}

}  // namespace gaurast::sim
