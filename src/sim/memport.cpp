#include "sim/memport.hpp"

#include <cmath>

namespace gaurast::sim {

MemPort::MemPort(MemPortConfig config) : config_(config) {
  GAURAST_CHECK(config_.bytes_per_cycle > 0.0);
}

std::uint64_t MemPort::request(std::uint64_t bytes, Cycle now) {
  MemTransfer t;
  t.id = next_id_++;
  t.bytes = bytes;
  t.issued_at = now;
  const Cycle start = now > pipe_free_at_ ? now : pipe_free_at_;
  const auto transfer_cycles = static_cast<Cycle>(
      std::ceil(static_cast<double>(bytes) / config_.bytes_per_cycle));
  pipe_free_at_ = start + transfer_cycles;
  t.completes_at = pipe_free_at_ + config_.latency;
  inflight_.push_back(t);
  total_bytes_ += bytes;
  return t.id;
}

bool MemPort::complete(std::uint64_t id, Cycle now) const {
  return completion_cycle(id) <= now;
}

Cycle MemPort::completion_cycle(std::uint64_t id) const {
  for (const MemTransfer& t : inflight_) {
    if (t.id == id) return t.completes_at;
  }
  // Retired transfers completed in the past.
  GAURAST_CHECK_MSG(id < next_id_, "unknown transfer id " << id);
  return 0;
}

void MemPort::retire_before(Cycle now) {
  while (!inflight_.empty() && inflight_.front().completes_at < now) {
    inflight_.pop_front();
  }
}

}  // namespace gaurast::sim
