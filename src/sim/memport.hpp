// Bandwidth/latency memory-port model.
//
// Models the rasterizer's cache/memory interface (paper Fig. 7(b)): a port
// with fixed access latency and a bytes/cycle bandwidth cap. Transfers are
// scheduled in request order; a transfer of B bytes issued at cycle t
// completes at max(t, last_completion) + ceil(B / bandwidth) + latency.
// This is the component that throttles tile-buffer fills when a tile's
// primitive list exceeds what the bus can stream during compute.
#pragma once

#include <cstdint>
#include <deque>

#include "common/error.hpp"
#include "sim/kernel.hpp"

namespace gaurast::sim {

struct MemPortConfig {
  double bytes_per_cycle = 64.0;  ///< sustained bandwidth
  Cycle latency = 20;             ///< fixed access latency (cycles)
};

/// One outstanding transfer.
struct MemTransfer {
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;
  Cycle issued_at = 0;
  Cycle completes_at = 0;
};

class MemPort {
 public:
  explicit MemPort(MemPortConfig config);

  /// Schedules a transfer at cycle `now`; returns the transfer id.
  std::uint64_t request(std::uint64_t bytes, Cycle now);

  /// True once the given transfer id has completed by cycle `now`.
  bool complete(std::uint64_t id, Cycle now) const;

  /// Completion cycle of a transfer id.
  Cycle completion_cycle(std::uint64_t id) const;

  /// Drops records of transfers completed before `now` (bookkeeping bound).
  void retire_before(Cycle now);

  bool busy(Cycle now) const { return now < pipe_free_at_; }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_requests() const { return next_id_; }

 private:
  MemPortConfig config_;
  std::uint64_t next_id_ = 0;
  Cycle pipe_free_at_ = 0;  ///< when the bus finishes its current queue
  std::deque<MemTransfer> inflight_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace gaurast::sim
