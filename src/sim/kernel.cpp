#include "sim/kernel.hpp"

namespace gaurast::sim {

void SimKernel::step() {
  for (ClockedModule* m : modules_) m->evaluate(now_);
  for (ClockedModule* m : modules_) m->commit(now_);
  ++now_;
}

bool SimKernel::all_idle() const {
  for (const ClockedModule* m : modules_) {
    if (!m->idle()) return false;
  }
  return true;
}

Cycle SimKernel::run(Cycle max_cycles) {
  const Cycle start = now_;
  while (now_ - start < max_cycles) {
    if (all_idle()) break;
    step();
  }
  GAURAST_CHECK_MSG(all_idle() || now_ - start < max_cycles,
                    "simulation did not converge within " << max_cycles
                                                          << " cycles");
  return now_ - start;
}

}  // namespace gaurast::sim
