// Cycle-driven simulation kernel.
//
// The GauRast detailed simulator is built from ClockedModules advanced in
// lockstep by a SimKernel. Each cycle has two phases, mirroring a
// synchronous-digital two-phase evaluation:
//   - evaluate(): combinational work; modules read peers' *registered* state
//     and compute next-state (may enqueue into Fifos' staging side).
//   - commit():   registered state update; Fifo staging becomes visible.
// This avoids intra-cycle ordering artifacts between modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace gaurast::sim {

using Cycle = std::uint64_t;

/// Interface for anything advanced by the kernel.
class ClockedModule {
 public:
  virtual ~ClockedModule() = default;

  /// Combinational phase; `now` is the cycle being computed.
  virtual void evaluate(Cycle now) = 0;

  /// State-update phase.
  virtual void commit(Cycle now) = 0;

  /// True when the module has no pending work; the kernel stops when every
  /// module is idle.
  virtual bool idle() const = 0;

  /// Debug name for diagnostics.
  virtual std::string name() const = 0;
};

/// Lockstep kernel. Modules are evaluated in registration order, then all
/// committed. Registration order must therefore not affect functional
/// results — the two-phase discipline enforces that as long as modules only
/// read committed state in evaluate().
class SimKernel {
 public:
  /// Registers a module (not owned). Must outlive the kernel run.
  void add_module(ClockedModule* module) {
    GAURAST_CHECK(module != nullptr);
    modules_.push_back(module);
  }

  /// Runs until all modules are idle or `max_cycles` elapse.
  /// Returns the number of cycles simulated.
  Cycle run(Cycle max_cycles);

  /// Advances exactly one cycle.
  void step();

  Cycle now() const { return now_; }
  bool all_idle() const;

 private:
  std::vector<ClockedModule*> modules_;
  Cycle now_ = 0;
};

}  // namespace gaurast::sim
