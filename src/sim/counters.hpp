// Named event counters for hardware activity accounting.
//
// Every datapath operation the PE model performs increments a counter here;
// the EnergyModel converts the final counts into joules. Keeping counting
// separate from energy lets tests assert exact op counts (paper Table II)
// without touching the energy tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gaurast::sim {

class CounterSet {
 public:
  /// Hot path: heterogeneous lookup avoids a std::string allocation per
  /// increment (the PE model increments several counters per pair).
  void increment(std::string_view name, std::uint64_t by = 1) {
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second += by;
    } else {
      counters_.emplace(std::string(name), by);
    }
  }

  std::uint64_t get(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void merge(const CounterSet& other) {
    for (const auto& [k, v] : other.counters_) increment(k, v);
  }

  void clear() { counters_.clear(); }

  const std::map<std::string, std::uint64_t, std::less<>>& all() const {
    return counters_;
  }

  /// Sum of counters whose name starts with `prefix` (e.g. "fp32.").
  std::uint64_t sum_prefix(std::string_view prefix) const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// Canonical datapath-op counter names shared by the PE model and the
/// energy/area tables. Using constants avoids silent typo mismatches.
namespace ops {
inline constexpr const char* kFp32Add = "fp32.add";
inline constexpr const char* kFp32Mul = "fp32.mul";
inline constexpr const char* kFp32Div = "fp32.div";
inline constexpr const char* kFp32Exp = "fp32.exp";
inline constexpr const char* kFp32Cmp = "fp32.cmp";
inline constexpr const char* kBufRead = "buf.read";
inline constexpr const char* kBufWrite = "buf.write";
inline constexpr const char* kMemBytes = "mem.bytes";
inline constexpr const char* kPairsProcessed = "pe.pairs";
inline constexpr const char* kPairsCulled = "pe.pairs_culled";
inline constexpr const char* kPrimitives = "pe.primitives";
}  // namespace ops

}  // namespace gaurast::sim
