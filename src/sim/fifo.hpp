// Two-phase FIFO queue for module-to-module links.
//
// Pushes during evaluate() land in a staging area and become pop-visible only
// after commit(), modeling a registered queue: a value written in cycle N is
// readable in cycle N+1. Capacity counts committed + staged entries so
// producers observe backpressure combinationally.
#pragma once

#include <cstddef>
#include <deque>

#include "common/error.hpp"

namespace gaurast::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {
    GAURAST_CHECK(capacity > 0);
  }

  /// True if a push this cycle would exceed capacity.
  bool full() const { return committed_.size() + staged_.size() >= capacity_; }

  bool empty() const { return committed_.empty(); }
  std::size_t size() const { return committed_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// True when nothing is committed or staged (used in idle checks).
  bool drained() const { return committed_.empty() && staged_.empty(); }

  /// Producer side; call only when !full().
  void push(T value) {
    GAURAST_CHECK_MSG(!full(), "push into full Fifo");
    staged_.push_back(std::move(value));
  }

  /// Consumer side; call only when !empty().
  const T& front() const {
    GAURAST_CHECK(!committed_.empty());
    return committed_.front();
  }

  T pop() {
    GAURAST_CHECK_MSG(!committed_.empty(), "pop from empty Fifo");
    T v = std::move(committed_.front());
    committed_.pop_front();
    return v;
  }

  /// Commit phase: staged entries become visible.
  void commit() {
    while (!staged_.empty()) {
      committed_.push_back(std::move(staged_.front()));
      staged_.pop_front();
    }
  }

 private:
  std::size_t capacity_;
  std::deque<T> committed_;
  std::deque<T> staged_;
};

}  // namespace gaurast::sim
