// GSCore comparison model (paper Sec. V-C).
//
// GSCore (Lee et al., ASPLOS 2024) is the only previously published
// dedicated 3DGS accelerator; the paper compares against its published
// figures of merit: a 20x Gaussian-rasterization speedup over the Jetson
// Xavier NX using 3.95 mm^2 of dedicated FP16 logic. GauRast re-implemented
// at FP16 matches that throughput while adding only the Gaussian-enhancement
// area to the existing rasterizer — a 24.7x area-efficiency advantage. This
// module reproduces that arithmetic from our area model plus GSCore's
// published numbers.
#pragma once

#include "core/area.hpp"
#include "core/config.hpp"
#include "gpu/config.hpp"
#include "scene/profile.hpp"

namespace gaurast::accel {

/// Published GSCore figures of merit.
struct GScoreSpec {
  double raster_speedup_vs_host = 20.0;  ///< over Jetson Xavier NX
  double area_mm2 = 3.95;                ///< dedicated FP16 logic
  std::string host_name = "Jetson Xavier NX";
};

GScoreSpec gscore_published();

/// Result of matching GauRast-FP16 against GSCore's throughput.
struct AreaEfficiencyComparison {
  double target_pairs_per_second = 0.0;  ///< GSCore-equivalent throughput
  int gaurast_fp16_pes = 0;              ///< PEs needed to match it
  double gaurast_enhanced_mm2 = 0.0;     ///< added silicon for those PEs
  double gscore_mm2 = 0.0;
  double area_efficiency_gain = 0.0;     ///< gscore_mm2 / gaurast_enhanced_mm2
};

/// Computes GSCore's effective rasterization throughput on the host GPU
/// (host software pair rate x published speedup), sizes a GauRast FP16
/// configuration to match it, and compares the *added* silicon against
/// GSCore's dedicated area.
AreaEfficiencyComparison compare_area_efficiency(
    const gpu::GpuConfig& host, const scene::SceneProfile& reference_scene,
    const GScoreSpec& spec = gscore_published());

/// The FP16 GauRast configuration sized to GSCore's published throughput on
/// `host` over the standard reference workload (bicycle, original 3DGS) —
/// the operating point the engine registry exposes as backend "gscore".
core::RasterizerConfig gscore_matched_config(const gpu::GpuConfig& host);

}  // namespace gaurast::accel
