#include "accel/gscore.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gaurast::accel {

GScoreSpec gscore_published() { return GScoreSpec{}; }

AreaEfficiencyComparison compare_area_efficiency(
    const gpu::GpuConfig& host, const scene::SceneProfile& reference_scene,
    const GScoreSpec& spec) {
  GAURAST_CHECK(spec.raster_speedup_vs_host > 0.0 && spec.area_mm2 > 0.0);

  AreaEfficiencyComparison cmp;
  // Host software rasterization pair rate on the reference workload.
  const double host_pairs_per_s =
      host.fma_rate_gfma * 1e9 /
      (reference_scene.cuda_fma_per_pair * host.sw_raster_overhead);
  cmp.target_pairs_per_second = host_pairs_per_s * spec.raster_speedup_vs_host;

  // Size the FP16 GauRast configuration to that throughput (1 GHz clock,
  // 4 pairs/cycle per FP16 PE — see RasterizerConfig).
  core::RasterizerConfig probe = core::RasterizerConfig::fp16(1);
  const double pairs_per_pe_per_s =
      probe.pairs_per_cycle_per_pe() * probe.clock_ghz * 1e9;
  cmp.gaurast_fp16_pes = static_cast<int>(
      std::ceil(cmp.target_pairs_per_second / pairs_per_pe_per_s));
  GAURAST_CHECK(cmp.gaurast_fp16_pes > 0);

  const core::RasterizerConfig matched =
      core::RasterizerConfig::fp16(cmp.gaurast_fp16_pes);
  const core::AreaModel area(matched);
  cmp.gaurast_enhanced_mm2 = area.enhanced_mm2();
  cmp.gscore_mm2 = spec.area_mm2;
  cmp.area_efficiency_gain = cmp.gscore_mm2 / cmp.gaurast_enhanced_mm2;
  return cmp;
}

core::RasterizerConfig gscore_matched_config(const gpu::GpuConfig& host) {
  const AreaEfficiencyComparison cmp = compare_area_efficiency(
      host, scene::profile_by_name("bicycle", scene::PipelineVariant::kOriginal));
  return core::RasterizerConfig::fp16(cmp.gaurast_fp16_pes);
}

}  // namespace gaurast::accel
