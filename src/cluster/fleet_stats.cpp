#include "cluster/fleet_stats.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace gaurast::cluster {

namespace {

double percentile(std::vector<double> sorted_samples, double q) {
  if (sorted_samples.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac;
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

/// Emits mean/p50/p95/max for one sample set under `prefix`.
void emit_latency_fields(std::ostringstream& os, const std::string& prefix,
                         std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  os << ",\"" << prefix << "_mean_ms\":" << mean(samples) << ",\"" << prefix
     << "_p50_ms\":" << percentile(samples, 0.50) << ",\"" << prefix
     << "_p95_ms\":" << percentile(samples, 0.95) << ",\"" << prefix
     << "_max_ms\":" << (samples.empty() ? 0.0 : samples.back());
}

}  // namespace

std::optional<double> extract_json_number(const std::string& json,
                                          const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* begin = json.c_str() + at + needle.size();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return value;
}

std::string merge_fleet_stats(const std::vector<ShardStatsEntry>& shards,
                              const RouterStatsSnapshot& router) {
  // Summed totals: a shard whose stats fetch failed contributes nothing —
  // the merged totals are a floor, and its "stats":null entry says why.
  double submitted = 0, completed = 0, rejected = 0;
  double cache_hits = 0, cache_misses = 0;
  double scene_evictions = 0, scene_rejected = 0;
  double scene_resident_bytes = 0, scene_resident_count = 0;
  std::size_t alive = 0;
  for (const ShardStatsEntry& entry : shards) {
    if (entry.shard.state != ShardState::kDead) ++alive;
    if (!entry.stats_json) continue;
    const std::string& json = *entry.stats_json;
    submitted += extract_json_number(json, "submitted").value_or(0.0);
    completed += extract_json_number(json, "completed").value_or(0.0);
    rejected += extract_json_number(json, "rejected").value_or(0.0);
    cache_hits += extract_json_number(json, "scene_cache_hits").value_or(0.0);
    cache_misses +=
        extract_json_number(json, "scene_cache_misses").value_or(0.0);
    scene_evictions +=
        extract_json_number(json, "scene_evictions").value_or(0.0);
    scene_rejected +=
        extract_json_number(json, "scene_rejected").value_or(0.0);
    scene_resident_bytes +=
        extract_json_number(json, "scene_resident_bytes").value_or(0.0);
    scene_resident_count +=
        extract_json_number(json, "scene_resident_count").value_or(0.0);
  }

  std::ostringstream os;
  os << "{\"schema\":\"" << kFleetStatsSchema << "\""
     << ",\"shards_total\":" << shards.size() << ",\"shards_alive\":" << alive
     << ",\"fleet\":{\"submitted\":" << submitted
     << ",\"completed\":" << completed << ",\"rejected\":" << rejected
     << ",\"scene_cache_hits\":" << cache_hits
     << ",\"scene_cache_misses\":" << cache_misses
     << ",\"scene_evictions\":" << scene_evictions
     << ",\"scene_rejected\":" << scene_rejected
     << ",\"scene_resident_bytes\":" << scene_resident_bytes
     << ",\"scene_resident_count\":" << scene_resident_count << "}"
     << ",\"router\":{\"routed_ok\":" << router.routed_ok
     << ",\"overloaded\":" << router.overloaded
     << ",\"server_errors\":" << router.server_errors
     << ",\"shed\":" << router.shed << ",\"failovers\":" << router.failovers
     << ",\"fleet_unavailable\":" << router.fleet_unavailable
     << ",\"deadline_exceeded\":" << router.deadline_exceeded
     << ",\"retries\":" << router.retries;
  emit_latency_fields(os, "latency", router.latency_ms);
  emit_latency_fields(os, "route_overhead", router.route_overhead_ms);
  os << "},\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStatsEntry& entry = shards[i];
    os << (i ? "," : "") << "{\"host\":\"" << entry.shard.id.host
       << "\",\"port\":" << entry.shard.id.port << ",\"state\":\""
       << to_string(entry.shard.state)
       << "\",\"breaker_open\":" << (entry.shard.breaker_open ? "true" : "false")
       << ",\"breaker_trips\":" << entry.shard.breaker_trips << ",\"stats\":";
    if (entry.stats_json) {
      os << *entry.stats_json;
    } else {
      os << "null";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace gaurast::cluster
