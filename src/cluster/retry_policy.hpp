// cluster::RetryPolicy — the router's explicit retry contract: a
// per-request attempt budget plus capped exponential backoff with
// deterministic jitter.
//
// The policy decides WHETHER a failed forward may try again and HOW LONG
// to wait first; the router supplies the failure classification and owns
// everything the decision cannot see (is there an untried shard left, has
// the request's deadline already passed). Retries are only ever consulted
// for failures that did not consume work on a shard:
//
//   kConnect    — the dial or an established connection failed before a
//                 response arrived. Immediate failover (no backoff): the
//                 shard is gone, waiting cannot help, and a different
//                 shard serves the retry.
//   kTimeout    — the forward timed out. Backoff applies: timeouts are the
//                 congestion signal, and hammering the fleet makes them
//                 worse.
//   kOverloaded — the shard answered kOverloaded (admission shed). Backoff
//                 applies, and the router only consults the policy when an
//                 untried shard exists; otherwise the shard's own response
//                 passes through untouched.
//
// A rendered response — any status the shard produced by doing the work —
// is NEVER retried: render requests are not idempotent in cost, and the
// client asked once.
//
// Jitter is deterministic: the delay for (seed, request_id, attempt) is a
// pure function, so a chaos run replays bit-identically under one seed.
#pragma once

#include <cstdint>

namespace gaurast::cluster {

struct RetryPolicyConfig {
  /// Total forward attempts per request across all shards (first try
  /// included). 1 disables retries entirely.
  int max_attempts = 3;
  /// Backoff before retry #1 (attempt #2); doubles per further failure.
  int base_backoff_ms = 10;
  /// Backoff growth cap.
  int max_backoff_ms = 250;
  /// Jitter stream seed — same seed, same request ids, same delays.
  std::uint64_t seed = 1;
};

enum class FailureKind : std::uint8_t {
  kConnect = 0,
  kTimeout = 1,
  kOverloaded = 2,
};

const char* to_string(FailureKind kind);

struct RetryDecision {
  /// False when the attempt budget is spent: deliver a terminal error.
  bool retry = false;
  /// Pre-retry delay (0 for connect failures — failover is immediate).
  int backoff_ms = 0;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = {});

  const RetryPolicyConfig& config() const { return config_; }

  /// Decision after the `failures`-th failed attempt (1-based) of
  /// `request_id`. Pure: no internal state advances, so concurrent
  /// forwarders may share one policy without locking.
  RetryDecision on_failure(std::uint64_t request_id, int failures,
                           FailureKind kind) const;

 private:
  RetryPolicyConfig config_;
};

}  // namespace gaurast::cluster
