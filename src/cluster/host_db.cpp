#include "cluster/host_db.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gaurast::cluster {

namespace {

/// 64-bit FNV-1a: stable across platforms and compilers, unlike std::hash.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: FNV-1a's low bits avalanche poorly, and HRW
/// ranking compares whole weights, so mix thoroughly.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::string ShardId::label() const {
  return host + ":" + std::to_string(port);
}

ShardId ShardId::parse(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    throw Error("shard spec '" + spec + "' is not host:port");
  }
  int port = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c < '0' || c > '9' || port > 65535) {
      throw Error("shard spec '" + spec + "' has an invalid port");
    }
    port = port * 10 + (c - '0');
  }
  if (port < 1 || port > 65535) {
    throw Error("shard spec '" + spec + "' has an invalid port");
  }
  return ShardId{spec.substr(0, colon), port};
}

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::kAlive: return "alive";
    case ShardState::kSuspect: return "suspect";
    case ShardState::kDead: return "dead";
  }
  return "?";
}

HostDb::HostDb(std::vector<ShardId> shards, HostDbConfig config)
    : shards_(std::move(shards)), config_(config) {
  GAURAST_CHECK_MSG(!shards_.empty(), "a fleet needs at least one shard");
  GAURAST_CHECK(config_.dead_after_failures >= 1);
  GAURAST_CHECK(config_.breaker_trip_failures >= 0);
  GAURAST_CHECK(config_.breaker_open_ms >= 0);
  common::MutexLock lock(mutex_);
  health_.resize(shards_.size());
}

ShardState HostDb::state(std::size_t index) const {
  common::MutexLock lock(mutex_);
  return health_[index].state;
}

bool HostDb::breaker_open(std::size_t index) const {
  common::MutexLock lock(mutex_);
  return health_[index].breaker_open;
}

std::vector<ShardSnapshot> HostDb::snapshot() const {
  common::MutexLock lock(mutex_);
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Health& h = health_[i];
    out.push_back(ShardSnapshot{shards_[i], h.state, h.successes, h.failures,
                                h.consecutive_failures, h.breaker_open,
                                h.breaker_trips});
  }
  return out;
}

std::size_t HostDb::alive_count() const {
  common::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const Health& h : health_) {
    if (h.state != ShardState::kDead) ++n;
  }
  return n;
}

void HostDb::report_success(std::size_t index) {
  common::MutexLock lock(mutex_);
  Health& h = health_[index];
  ++h.successes;
  h.consecutive_failures = 0;
  h.state = ShardState::kAlive;
  // Half-open recovery: a success inside the cooldown is ignored by the
  // breaker (a flapping shard must sit out the full window); the first one
  // after it closes the breaker and re-admits the shard.
  if (h.breaker_open &&
      Clock::now() >=
          h.breaker_opened_at +
              std::chrono::milliseconds(config_.breaker_open_ms)) {
    h.breaker_open = false;
  }
}

void HostDb::report_failure(std::size_t index) {
  common::MutexLock lock(mutex_);
  Health& h = health_[index];
  ++h.failures;
  ++h.consecutive_failures;
  h.state = h.consecutive_failures >= config_.dead_after_failures
                ? ShardState::kDead
                : ShardState::kSuspect;
  // The trip timestamp is NOT refreshed by further failures: the cooldown
  // measures from the trip, so a shard that keeps failing while open can
  // still recover on the first post-cooldown success.
  if (config_.breaker_trip_failures > 0 && !h.breaker_open &&
      h.consecutive_failures >= config_.breaker_trip_failures) {
    h.breaker_open = true;
    h.breaker_opened_at = Clock::now();
    ++h.breaker_trips;
  }
}

std::vector<std::size_t> HostDb::hrw_order(
    const std::string& scene_key) const {
  const std::uint64_t key_hash = fnv1a64(scene_key);
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t weight = mix64(key_hash ^ fnv1a64(shards_[i].label()));
    ranked.emplace_back(weight, i);
  }
  // Highest weight first; index breaks (astronomically unlikely) ties so
  // the order is a total one.
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<std::size_t> order;
  order.reserve(ranked.size());
  for (const auto& [weight, index] : ranked) order.push_back(index);
  return order;
}

std::optional<std::size_t> HostDb::route(
    const std::string& scene_key,
    const std::set<std::size_t>& exclude) const {
  const std::vector<std::size_t> order = hrw_order(scene_key);
  common::MutexLock lock(mutex_);
  for (const std::size_t index : order) {
    if (exclude.count(index)) continue;
    if (health_[index].state == ShardState::kDead) continue;
    if (health_[index].breaker_open) continue;
    return index;
  }
  return std::nullopt;
}

}  // namespace gaurast::cluster
