#include "cluster/retry_policy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace gaurast::cluster {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kConnect: return "connect";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kOverloaded: return "overloaded";
  }
  return "?";
}

RetryPolicy::RetryPolicy(RetryPolicyConfig config) : config_(config) {
  GAURAST_CHECK(config_.max_attempts >= 1);
  GAURAST_CHECK(config_.base_backoff_ms >= 1);
  GAURAST_CHECK(config_.max_backoff_ms >= config_.base_backoff_ms);
}

RetryDecision RetryPolicy::on_failure(std::uint64_t request_id, int failures,
                                      FailureKind kind) const {
  GAURAST_DCHECK(failures >= 1);
  RetryDecision decision;
  if (failures >= config_.max_attempts) return decision;  // budget spent
  decision.retry = true;
  if (kind == FailureKind::kConnect) return decision;  // immediate failover

  // Capped exponential: base * 2^(failures-1), saturating well before the
  // shift can overflow.
  std::int64_t backoff = config_.base_backoff_ms;
  for (int i = 1; i < failures && backoff < config_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<std::int64_t>(backoff, config_.max_backoff_ms);

  // Deterministic jitter in [backoff/2, backoff]: the delay is a pure
  // function of (seed, request_id, failures) — replayable, yet two requests
  // failing together do not retry in lockstep.
  SplitMix64 mixer(config_.seed ^ (request_id * 0x9E3779B97F4A7C15ULL) ^
                   static_cast<std::uint64_t>(failures));
  Pcg32 rng(mixer.next());
  const std::uint32_t half = static_cast<std::uint32_t>(backoff / 2);
  decision.backoff_ms =
      static_cast<int>(half + rng.next_below(half + 1));
  return decision;
}

}  // namespace gaurast::cluster
