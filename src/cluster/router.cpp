#include "cluster/router.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace gaurast::cluster {

namespace {

/// Latency/overhead sample ring bound: a long-running router must not grow
/// its stats arrays without limit, and 64k samples is plenty for stable
/// percentiles.
constexpr std::size_t kMaxSamples = 65536;

void push_sample(std::vector<double>& samples, std::size_t& slot,
                 double value) {
  if (samples.size() < kMaxSamples) {
    samples.push_back(value);
  } else {
    samples[slot] = value;
    slot = (slot + 1) % kMaxSamples;
  }
}

double ms_since(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - then)
      .count();
}

}  // namespace

Router::Router(HostDb& db, RouterConfig config)
    : db_(db), config_(std::move(config)), front_(*this, [this] {
        net::FrameServerConfig front;
        front.host = config_.host;
        front.port = config_.port;
        front.idle_timeout_ms = config_.idle_timeout_ms;
        front.drain_timeout_ms = config_.drain_timeout_ms;
        front.backlog = config_.backlog;
        return front;
      }()) {
  GAURAST_CHECK(config_.inflight_per_shard >= 1);
  // The queue is the forward channel itself (forwarders pop it), so a
  // zero-length "waiting room" would shed everything.
  GAURAST_CHECK(config_.queue_per_shard >= 1);
}

Router::~Router() { stop(); }

void Router::start() {
  {
    common::MutexLock lock(state_mutex_);
    GAURAST_CHECK(!running_);
    running_ = true;
  }
  // Workers first, listener last: a request must never arrive before the
  // crew that forwards it exists.
  shards_.reserve(db_.size());
  for (std::size_t i = 0; i < db_.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
    Shard& shard = *shards_.back();
    for (int f = 0; f < config_.inflight_per_shard; ++f) {
      shard.forwarders.emplace_back([this, &shard] { forwarder_main(shard); });
    }
  }
  stats_thread_ =
      std::thread([this] { stats_main(); });  // lint-invariants: allow(raw-concurrency)
  prober_thread_ =
      std::thread([this] { prober_main(); });  // lint-invariants: allow(raw-concurrency)
  front_.start();
}

void Router::stop() {
  {
    common::MutexLock lock(state_mutex_);
    if (!running_) return;
    running_ = false;
  }
  // FrameServer::stop posts begin_shutdown (no new frames are read), then
  // runs this drain hook: every queued forward finishes — success,
  // failover, or kFleetUnavailable — and posts its response onto the loop
  // before the final flush-and-close sentinel is queued behind them.
  front_.stop([this] {
    for (const auto& shard : shards_) {
      common::MutexLock lock(shard->mutex);
      shard->closed = true;
      shard->cv.notify_all();
    }
    for (const auto& shard : shards_) {
      for (std::thread& t : shard->forwarders) t.join();  // lint-invariants: allow(raw-concurrency)
    }
    {
      common::MutexLock lock(stats_queue_mutex_);
      stats_closed_ = true;
      stats_cv_.notify_all();
    }
    if (stats_thread_.joinable()) stats_thread_.join();
  });
  {
    common::MutexLock lock(prober_mutex_);
    prober_stop_ = true;
    prober_cv_.notify_all();
  }
  if (prober_thread_.joinable()) prober_thread_.join();
}

void Router::on_frame(std::uint64_t conn_id, const net::FrameHeader& header,
                      const std::uint8_t* payload) {
  switch (header.type) {
    case net::MessageType::kRenderRequest: {
      Job job;
      job.conn_id = conn_id;
      job.wire = net::deserialize_render_request(payload, header.payload_size);
      job.admitted = Clock::now();
      front_.add_pending(conn_id);
      route(std::move(job));
      return;
    }
    case net::MessageType::kStatsRequest: {
      if (header.payload_size != 0) {
        throw net::ProtocolError("stats-request payload must be empty");
      }
      common::MutexLock lock(stats_queue_mutex_);
      if (stats_closed_) {
        throw net::ProtocolError("router is shutting down");
      }
      front_.add_pending(conn_id);
      stats_queue_.push_back(StatsJob{conn_id, false});
      stats_cv_.notify_one();
      return;
    }
    case net::MessageType::kRenderResponse:
    case net::MessageType::kStatsResponse:
    case net::MessageType::kError:
      throw net::ProtocolError(std::string("unexpected ") +
                               net::to_string(header.type) +
                               " frame from a client");
  }
}

void Router::on_http_get(std::uint64_t conn_id, const std::string& target) {
  if (target == "/healthz") {
    // Cheap local answer — a fleet-wide poll would make the router's own
    // liveness probe as slow as its slowest shard.
    const std::size_t alive = db_.alive_count();
    front_.respond_http(
        conn_id, "200 OK",
        "{\"schema\":\"gaurast-fleet-health/v1\",\"shards_total\":" +
            std::to_string(db_.size()) + ",\"shards_alive\":" +
            std::to_string(alive) + "}\n");
    return;
  }
  if (target == "/stats") {
    common::MutexLock lock(stats_queue_mutex_);
    if (stats_closed_) {
      front_.respond_http(conn_id, "503 Service Unavailable",
                          "router is shutting down\n");
      return;
    }
    front_.add_pending(conn_id);
    stats_queue_.push_back(StatsJob{conn_id, true});
    stats_cv_.notify_one();
    return;
  }
  front_.respond_http(conn_id, "404 Not Found",
                      "unknown target '" + target +
                          "' (try /healthz or /stats)\n");
}

void Router::route(Job job) {
  const std::string scene_key = job.wire.scene_key();
  const bool job_was_failover = !job.tried.empty();
  const std::optional<std::size_t> target = db_.route(scene_key, job.tried);
  if (!target) {
    finish_unavailable(std::move(job));
    return;
  }
  Shard& shard = *shards_[*target];
  bool enqueued = false;
  bool shed = false;
  {
    common::MutexLock lock(shard.mutex);
    if (!shard.closed) {
      if (shard.queue.size() >=
          static_cast<std::size_t>(config_.queue_per_shard)) {
        shed = true;
      } else {
        shard.queue.push_back(std::move(job));
        shard.cv.notify_one();
        enqueued = true;
      }
    }
  }
  if (enqueued) {
    if (!job_was_failover) return;
    common::MutexLock lock(stats_mutex_);
    ++counters_.failovers;
    return;
  }
  if (shed) {
    {
      common::MutexLock lock(stats_mutex_);
      ++counters_.shed;
    }
    deliver_error(job.conn_id, job.wire.request_id,
                  net::RenderStatus::kOverloaded,
                  "router: shard " + db_.shard(*target).label() +
                      " at capacity",
                  true);
    return;
  }
  // The shard's channel closed under us (shutdown): no crew will ever pop
  // this job, so answer now.
  finish_unavailable(std::move(job));
}

void Router::finish_unavailable(Job job) {
  {
    common::MutexLock lock(stats_mutex_);
    ++counters_.fleet_unavailable;
  }
  deliver_error(job.conn_id, job.wire.request_id,
                net::RenderStatus::kFleetUnavailable,
                "fleet unavailable: no routable shard (of " +
                    std::to_string(db_.size()) + ") for scene '" +
                    job.wire.scene_key() + "'",
                true);
}

void Router::deliver_error(std::uint64_t conn_id, std::uint64_t request_id,
                           net::RenderStatus status,
                           const std::string& message, bool on_loop) {
  net::RenderResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.message = message;
  auto frame = net::serialize(resp);
  if (on_loop) {
    front_.deliver(conn_id, std::move(frame));
  } else {
    front_.post_deliver(conn_id, std::move(frame));
  }
}

void Router::forwarder_main(Shard& shard) {
  std::unique_ptr<net::Client> client;
  for (;;) {
    Job job;
    {
      common::MutexLock lock(shard.mutex);
      while (shard.queue.empty() && !shard.closed) shard.cv.wait(lock);
      if (shard.queue.empty()) return;  // closed and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (forward(shard, client, job)) continue;
    // Transport failure (already reported to the HostDb): hand the job back
    // to the loop for the failover walk. The post lands before shutdown's
    // final sentinel, so a draining router still answers it.
    job.tried.insert(shard.index);
    front_.loop().post([this, job = std::move(job)]() mutable {
      route(std::move(job));
    });
  }
}

bool Router::forward(Shard& shard, std::unique_ptr<net::Client>& client,
                     Job& job) {
  const ShardId& id = db_.shard(shard.index);
  const Clock::time_point start = Clock::now();
  const bool pooled = client && client->is_alive();
  net::RenderResponse resp;
  try {
    if (!pooled) {
      client = std::make_unique<net::Client>(id.host, id.port,
                                             config_.forward_timeout_ms,
                                             config_.connect_timeout_ms);
    }
    resp = client->render(job.wire);
  } catch (const std::exception&) {
    // A pooled connection can go stale between is_alive() and the send
    // (e.g. the shard's idle sweep closed it); that is not evidence the
    // shard is down, so retry exactly once on a fresh dial.
    bool retried_ok = false;
    if (pooled) {
      try {
        client = std::make_unique<net::Client>(id.host, id.port,
                                               config_.forward_timeout_ms,
                                               config_.connect_timeout_ms);
        resp = client->render(job.wire);
        retried_ok = true;
      } catch (const std::exception&) {
      }
    }
    if (!retried_ok) {
      client.reset();
      db_.report_failure(shard.index);
      return false;
    }
  }

  db_.report_success(shard.index);
  const double round_trip_ms = ms_since(start);
  {
    common::MutexLock lock(stats_mutex_);
    switch (resp.status) {
      case net::RenderStatus::kOk:
        ++counters_.routed_ok;
        push_sample(counters_.latency_ms, latency_slot_,
                    ms_since(job.admitted));
        push_sample(counters_.route_overhead_ms, overhead_slot_,
                    std::max(0.0, round_trip_ms - resp.latency_ms));
        break;
      case net::RenderStatus::kOverloaded:
        ++counters_.overloaded;
        break;
      case net::RenderStatus::kServerError:
      case net::RenderStatus::kFleetUnavailable:
        ++counters_.server_errors;
        break;
    }
  }
  front_.post_deliver(job.conn_id, net::serialize(resp));
  return true;
}

void Router::stats_main() {
  for (;;) {
    StatsJob job;
    {
      common::MutexLock lock(stats_queue_mutex_);
      while (stats_queue_.empty() && !stats_closed_) stats_cv_.wait(lock);
      if (stats_queue_.empty()) return;  // closed and drained
      job = stats_queue_.front();
      stats_queue_.pop_front();
    }
    const std::string json = fleet_stats_json();
    if (job.http) {
      front_.post_deliver_http(job.conn_id, "200 OK", json + "\n");
    } else {
      net::StatsResponse resp;
      resp.json = json;
      front_.post_deliver(job.conn_id, net::serialize(resp));
    }
  }
}

void Router::prober_main() {
  for (;;) {
    {
      common::MutexLock lock(prober_mutex_);
      if (prober_stop_) return;
      prober_cv_.wait_for(lock, config_.probe_interval_ms);
      if (prober_stop_) return;
    }
    // Probe every shard, dead ones included — a successful probe is the
    // recovery path back into the routing set.
    for (std::size_t i = 0; i < db_.size(); ++i) {
      const ShardId& id = db_.shard(i);
      try {
        net::Client probe(id.host, id.port, config_.probe_timeout_ms,
                          config_.probe_timeout_ms);
        const std::string response = probe.http_get("/healthz");
        if (response.rfind("HTTP/1.1 200", 0) == 0) {
          db_.report_success(i);
        } else {
          db_.report_failure(i);
        }
      } catch (const std::exception&) {
        db_.report_failure(i);
      }
    }
  }
}

std::string Router::fleet_stats_json() {
  std::vector<ShardStatsEntry> entries;
  const std::vector<ShardSnapshot> shards = db_.snapshot();
  entries.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardStatsEntry entry;
    entry.shard = shards[i];
    // Dead shards are not polled: recovery is the prober's job, and a
    // stats report must not stack up connect timeouts against a down
    // fleet.
    if (shards[i].state != ShardState::kDead) {
      try {
        net::Client client(shards[i].id.host, shards[i].id.port,
                           config_.stats_timeout_ms, config_.stats_timeout_ms);
        entry.stats_json = client.stats().json;
        db_.report_success(i);
      } catch (const std::exception&) {
        db_.report_failure(i);
        entry.shard = db_.snapshot()[i];  // reflect the demotion
      }
    }
    entries.push_back(std::move(entry));
  }
  return merge_fleet_stats(entries, stats_snapshot());
}

RouterStatsSnapshot Router::stats_snapshot() const {
  common::MutexLock lock(stats_mutex_);
  return counters_;
}

}  // namespace gaurast::cluster
