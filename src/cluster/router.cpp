#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <thread>  // lint-invariants: allow(raw-concurrency)
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace gaurast::cluster {

namespace {

/// Latency/overhead sample ring bound: a long-running router must not grow
/// its stats arrays without limit, and 64k samples is plenty for stable
/// percentiles.
constexpr std::size_t kMaxSamples = 65536;

void push_sample(std::vector<double>& samples, std::size_t& slot,
                 double value) {
  if (samples.size() < kMaxSamples) {
    samples.push_back(value);
  } else {
    samples[slot] = value;
    slot = (slot + 1) % kMaxSamples;
  }
}

double ms_since(std::chrono::steady_clock::time_point then) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - then)
      .count();
}

/// Slack added to a deadline-derated hop timeout: the shard should get the
/// chance to answer kDeadlineExceeded itself before the socket gives up.
constexpr int kDeadlineSlackMs = 50;

/// Transport failures split into the RetryPolicy's classes by exception
/// type; anything unclassified (including injected faults) counts as a
/// connect failure — retryable, immediately, elsewhere.
FailureKind classify_failure(const std::exception& e) {
  if (dynamic_cast<const net::TimeoutError*>(&e) != nullptr) {
    return FailureKind::kTimeout;
  }
  return FailureKind::kConnect;
}

}  // namespace

Router::Router(HostDb& db, RouterConfig config)
    : db_(db),
      config_(std::move(config)),
      retry_policy_(config_.retry),
      front_(*this, [this] {
        net::FrameServerConfig front;
        front.host = config_.host;
        front.port = config_.port;
        front.idle_timeout_ms = config_.idle_timeout_ms;
        front.drain_timeout_ms = config_.drain_timeout_ms;
        front.backlog = config_.backlog;
        return front;
      }()) {
  GAURAST_CHECK(config_.inflight_per_shard >= 1);
  // The queue is the forward channel itself (forwarders pop it), so a
  // zero-length "waiting room" would shed everything.
  GAURAST_CHECK(config_.queue_per_shard >= 1);
}

Router::~Router() { stop(); }

void Router::start() {
  {
    common::MutexLock lock(state_mutex_);
    GAURAST_CHECK(!running_);
    running_ = true;
  }
  // Workers first, listener last: a request must never arrive before the
  // crew that forwards it exists.
  shards_.reserve(db_.size());
  for (std::size_t i = 0; i < db_.size(); ++i) {
    shards_.push_back(std::make_unique<Shard>(i));
    Shard& shard = *shards_.back();
    for (int f = 0; f < config_.inflight_per_shard; ++f) {
      shard.forwarders.emplace_back([this, &shard] { forwarder_main(shard); });
    }
  }
  stats_thread_ =
      std::thread([this] { stats_main(); });  // lint-invariants: allow(raw-concurrency)
  prober_thread_ =
      std::thread([this] { prober_main(); });  // lint-invariants: allow(raw-concurrency)
  front_.start();
}

void Router::stop() {
  {
    common::MutexLock lock(state_mutex_);
    if (!running_) return;
    running_ = false;
  }
  // FrameServer::stop posts begin_shutdown (no new frames are read), then
  // runs this drain hook: every queued forward finishes — success,
  // failover, or kFleetUnavailable — and posts its response onto the loop
  // before the final flush-and-close sentinel is queued behind them.
  front_.stop([this] {
    for (const auto& shard : shards_) {
      common::MutexLock lock(shard->mutex);
      shard->closed = true;
      shard->cv.notify_all();
    }
    for (const auto& shard : shards_) {
      for (std::thread& t : shard->forwarders) t.join();  // lint-invariants: allow(raw-concurrency)
    }
    {
      common::MutexLock lock(stats_queue_mutex_);
      stats_closed_ = true;
      stats_cv_.notify_all();
    }
    if (stats_thread_.joinable()) stats_thread_.join();
  });
  {
    common::MutexLock lock(prober_mutex_);
    prober_stop_ = true;
    prober_cv_.notify_all();
  }
  if (prober_thread_.joinable()) prober_thread_.join();
}

void Router::on_frame(std::uint64_t conn_id, const net::FrameHeader& header,
                      const std::uint8_t* payload) {
  switch (header.type) {
    case net::MessageType::kRenderRequest: {
      Job job;
      job.conn_id = conn_id;
      // The frame's version byte picks the payload decode: a v1 request
      // has no deadline_ms field and decodes with no deadline.
      job.wire = net::deserialize_render_request(payload, header.payload_size,
                                                 header.version);
      job.admitted = Clock::now();
      // Deadline admission mirrors net::Server — pin the absolute deadline
      // once at receipt; the rest of the router only compares against it.
      std::uint32_t deadline_ms = job.wire.deadline_ms;
      if (deadline_ms == 0 && config_.default_deadline_ms > 0) {
        deadline_ms = static_cast<std::uint32_t>(config_.default_deadline_ms);
      }
      if (deadline_ms > 0) {
        job.deadline = job.admitted + std::chrono::milliseconds(deadline_ms);
      }
      front_.add_pending(conn_id);
      route(std::move(job));
      return;
    }
    case net::MessageType::kStatsRequest: {
      if (header.payload_size != 0) {
        throw net::ProtocolError("stats-request payload must be empty");
      }
      common::MutexLock lock(stats_queue_mutex_);
      if (stats_closed_) {
        throw net::ProtocolError("router is shutting down");
      }
      front_.add_pending(conn_id);
      stats_queue_.push_back(StatsJob{conn_id, false});
      stats_cv_.notify_one();
      return;
    }
    case net::MessageType::kRenderResponse:
    case net::MessageType::kStatsResponse:
    case net::MessageType::kError:
      throw net::ProtocolError(std::string("unexpected ") +
                               net::to_string(header.type) +
                               " frame from a client");
  }
}

void Router::on_http_get(std::uint64_t conn_id, const std::string& target) {
  if (target == "/healthz") {
    // Cheap local answer — a fleet-wide poll would make the router's own
    // liveness probe as slow as its slowest shard.
    const std::size_t alive = db_.alive_count();
    front_.respond_http(
        conn_id, "200 OK",
        "{\"schema\":\"gaurast-fleet-health/v1\",\"shards_total\":" +
            std::to_string(db_.size()) + ",\"shards_alive\":" +
            std::to_string(alive) + "}\n");
    return;
  }
  if (target == "/stats") {
    common::MutexLock lock(stats_queue_mutex_);
    if (stats_closed_) {
      front_.respond_http(conn_id, "503 Service Unavailable",
                          "router is shutting down\n");
      return;
    }
    front_.add_pending(conn_id);
    stats_queue_.push_back(StatsJob{conn_id, true});
    stats_cv_.notify_one();
    return;
  }
  front_.respond_http(conn_id, "404 Not Found",
                      "unknown target '" + target +
                          "' (try /healthz or /stats)\n");
}

void Router::route(Job job) {
  // Deadline gate at every (re-)route: a request whose budget ran out —
  // in the connection buffer, in a shard queue, or across failed forwards
  // — is answered, not forwarded.
  if (job.deadline && Clock::now() >= *job.deadline) {
    finish_deadline_exceeded(std::move(job), true);
    return;
  }
  const std::string scene_key = job.wire.scene_key();
  const bool job_was_failover = !job.tried.empty();
  const std::optional<std::size_t> target = db_.route(scene_key, job.tried);
  if (!target) {
    finish_unavailable(std::move(job));
    return;
  }
  Shard& shard = *shards_[*target];
  bool enqueued = false;
  bool shed = false;
  {
    common::MutexLock lock(shard.mutex);
    if (!shard.closed) {
      if (shard.queue.size() >=
          static_cast<std::size_t>(config_.queue_per_shard)) {
        shed = true;
      } else {
        shard.queue.push_back(std::move(job));
        shard.cv.notify_one();
        enqueued = true;
      }
    }
  }
  if (enqueued) {
    if (!job_was_failover) return;
    common::MutexLock lock(stats_mutex_);
    ++counters_.failovers;
    return;
  }
  if (shed) {
    {
      common::MutexLock lock(stats_mutex_);
      ++counters_.shed;
    }
    deliver_error(job.conn_id, job.wire.request_id,
                  net::RenderStatus::kOverloaded,
                  "router: shard " + db_.shard(*target).label() +
                      " at capacity",
                  true);
    return;
  }
  // The shard's channel closed under us (shutdown): no crew will ever pop
  // this job, so answer now.
  finish_unavailable(std::move(job));
}

void Router::finish_unavailable(Job job) {
  {
    common::MutexLock lock(stats_mutex_);
    ++counters_.fleet_unavailable;
  }
  deliver_error(job.conn_id, job.wire.request_id,
                net::RenderStatus::kFleetUnavailable,
                "fleet unavailable: no routable shard (of " +
                    std::to_string(db_.size()) + ") for scene '" +
                    job.wire.scene_key() + "'",
                true);
}

void Router::finish_deadline_exceeded(Job job, bool on_loop) {
  {
    common::MutexLock lock(stats_mutex_);
    ++counters_.deadline_exceeded;
  }
  deliver_error(job.conn_id, job.wire.request_id,
                net::RenderStatus::kDeadlineExceeded,
                "deadline expired at the router after " +
                    std::to_string(job.failures) + " failed forward(s)",
                on_loop);
}

std::optional<std::int64_t> Router::remaining_ms(const Job& job) {
  if (!job.deadline) return std::nullopt;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        *job.deadline - Clock::now())
                        .count();
  return std::max<std::int64_t>(left, 0);
}

void Router::deliver_error(std::uint64_t conn_id, std::uint64_t request_id,
                           net::RenderStatus status,
                           const std::string& message, bool on_loop) {
  net::RenderResponse resp;
  resp.request_id = request_id;
  resp.status = status;
  resp.message = message;
  auto frame = net::serialize(resp);
  if (on_loop) {
    front_.deliver(conn_id, std::move(frame));
  } else {
    front_.post_deliver(conn_id, std::move(frame));
  }
}

void Router::forwarder_main(Shard& shard) {
  std::unique_ptr<net::Client> client;
  for (;;) {
    Job job;
    {
      common::MutexLock lock(shard.mutex);
      while (shard.queue.empty() && !shard.closed) shard.cv.wait(lock);
      if (shard.queue.empty()) return;  // closed and drained
      job = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    // A job can outwait its budget in the shard queue — shed it here
    // rather than burn a forward slot rendering for nobody.
    if (job.deadline && Clock::now() >= *job.deadline) {
      finish_deadline_exceeded(std::move(job), false);
      continue;
    }
    const std::optional<FailureKind> failed = forward(shard, client, job);
    if (!failed) continue;
    // Failed forward (health already reported): consult the retry budget.
    ++job.failures;
    job.tried.insert(shard.index);
    const RetryDecision decision = retry_policy_.on_failure(
        job.wire.request_id, job.failures, *failed);
    if (!decision.retry) {
      // Budget spent. kOverloaded never lands here undelivered (forward()
      // only withholds it when the budget remains), so the terminal answer
      // is the transport one.
      finish_unavailable(std::move(job));
      continue;
    }
    {
      common::MutexLock lock(stats_mutex_);
      ++counters_.retries;
    }
    if (decision.backoff_ms > 0) {
      // Backoff on the forwarder thread, clamped to the remaining budget —
      // a deadline must cut a backoff short, never the other way around.
      std::int64_t sleep_ms = decision.backoff_ms;
      if (const auto left = remaining_ms(job)) {
        sleep_ms = std::min<std::int64_t>(sleep_ms, *left);
      }
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
    // Hand the job back to the loop for the failover walk. The post lands
    // before shutdown's final sentinel, so a draining router still
    // answers it.
    front_.loop().post([this, job = std::move(job)]() mutable {
      route(std::move(job));
    });
  }
}

std::optional<FailureKind> Router::forward(
    Shard& shard, std::unique_ptr<net::Client>& client, Job& job) {
  const ShardId& id = db_.shard(shard.index);
  const Clock::time_point start = Clock::now();

  // Derate this hop to the remaining budget: the shard hears only what is
  // left of the deadline (so it can shed an expired job itself), and the
  // socket timeout shrinks to the budget plus response slack — a stalled
  // shard times this hop out roughly when the deadline passes instead of
  // holding the forwarder for the full forward_timeout_ms.
  int hop_timeout_ms = config_.forward_timeout_ms;
  if (const auto left = remaining_ms(job)) {
    job.wire.deadline_ms =
        static_cast<std::uint32_t>(std::max<std::int64_t>(*left, 1));
    hop_timeout_ms = static_cast<int>(std::max<std::int64_t>(
        1, std::min<std::int64_t>(hop_timeout_ms, *left + kDeadlineSlackMs)));
  }

  const bool pooled = client && client->is_alive();
  net::RenderResponse resp;
  FailureKind kind = FailureKind::kConnect;
  const auto attempt = [&](bool fresh_dial) {
    GAURAST_FAULT_POINT("cluster.forward");
    if (fresh_dial) {
      client = std::make_unique<net::Client>(id.host, id.port,
                                             config_.forward_timeout_ms,
                                             config_.connect_timeout_ms);
    }
    client->set_timeout_ms(hop_timeout_ms);
    resp = client->render(job.wire);
  };
  try {
    attempt(!pooled);
  } catch (const std::exception& first) {
    kind = classify_failure(first);
    // A pooled connection can go stale between is_alive() and the send
    // (e.g. the shard's idle sweep closed it); that is not evidence the
    // shard is down, so retry exactly once on a fresh dial. Timeouts are
    // excluded — a stale socket fails fast, a timeout already ate the
    // budget once.
    bool retried_ok = false;
    if (pooled && kind == FailureKind::kConnect) {
      try {
        attempt(true);
        retried_ok = true;
      } catch (const std::exception& second) {
        kind = classify_failure(second);
      }
    }
    if (!retried_ok) {
      client.reset();
      db_.report_failure(shard.index);
      return kind;
    }
  }

  db_.report_success(shard.index);

  // A shard's admission shed is retryable on another shard — but only
  // when the retry budget and an untried shard both remain. Otherwise the
  // shard's own kOverloaded response passes through untouched (the
  // single-shard contract predating the retry policy).
  if (resp.status == net::RenderStatus::kOverloaded) {
    const RetryDecision peek = retry_policy_.on_failure(
        job.wire.request_id, job.failures + 1, FailureKind::kOverloaded);
    if (peek.retry) {
      std::set<std::size_t> tried = job.tried;
      tried.insert(shard.index);
      if (db_.route(job.wire.scene_key(), tried)) {
        return FailureKind::kOverloaded;
      }
    }
  }

  const double round_trip_ms = ms_since(start);
  {
    common::MutexLock lock(stats_mutex_);
    switch (resp.status) {
      case net::RenderStatus::kOk:
        ++counters_.routed_ok;
        push_sample(counters_.latency_ms, latency_slot_,
                    ms_since(job.admitted));
        push_sample(counters_.route_overhead_ms, overhead_slot_,
                    std::max(0.0, round_trip_ms - resp.latency_ms));
        break;
      case net::RenderStatus::kOverloaded:
        ++counters_.overloaded;
        break;
      case net::RenderStatus::kDeadlineExceeded:
        // The shard shed it against the derated budget we sent — the
        // same terminal answer the router itself would have given.
        ++counters_.deadline_exceeded;
        break;
      case net::RenderStatus::kServerError:
      case net::RenderStatus::kFleetUnavailable:
        ++counters_.server_errors;
        break;
    }
  }
  front_.post_deliver(job.conn_id, net::serialize(resp));
  return std::nullopt;
}

void Router::stats_main() {
  for (;;) {
    StatsJob job;
    {
      common::MutexLock lock(stats_queue_mutex_);
      while (stats_queue_.empty() && !stats_closed_) stats_cv_.wait(lock);
      if (stats_queue_.empty()) return;  // closed and drained
      job = stats_queue_.front();
      stats_queue_.pop_front();
    }
    const std::string json = fleet_stats_json();
    if (job.http) {
      front_.post_deliver_http(job.conn_id, "200 OK", json + "\n");
    } else {
      net::StatsResponse resp;
      resp.json = json;
      front_.post_deliver(job.conn_id, net::serialize(resp));
    }
  }
}

void Router::prober_main() {
  for (;;) {
    {
      common::MutexLock lock(prober_mutex_);
      if (prober_stop_) return;
      prober_cv_.wait_for(lock, config_.probe_interval_ms);
      if (prober_stop_) return;
    }
    // Probe every shard, dead ones included — a successful probe is the
    // recovery path back into the routing set.
    for (std::size_t i = 0; i < db_.size(); ++i) {
      const ShardId& id = db_.shard(i);
      try {
        net::Client probe(id.host, id.port, config_.probe_timeout_ms,
                          config_.probe_timeout_ms);
        const std::string response = probe.http_get("/healthz");
        if (response.rfind("HTTP/1.1 200", 0) == 0) {
          db_.report_success(i);
        } else {
          db_.report_failure(i);
        }
      } catch (const std::exception&) {
        db_.report_failure(i);
      }
    }
  }
}

std::string Router::fleet_stats_json() {
  std::vector<ShardStatsEntry> entries;
  const std::vector<ShardSnapshot> shards = db_.snapshot();
  entries.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ShardStatsEntry entry;
    entry.shard = shards[i];
    // Dead shards are not polled: recovery is the prober's job, and a
    // stats report must not stack up connect timeouts against a down
    // fleet.
    if (shards[i].state != ShardState::kDead) {
      try {
        net::Client client(shards[i].id.host, shards[i].id.port,
                           config_.stats_timeout_ms, config_.stats_timeout_ms);
        entry.stats_json = client.stats().json;
        db_.report_success(i);
      } catch (const std::exception&) {
        db_.report_failure(i);
        entry.shard = db_.snapshot()[i];  // reflect the demotion
      }
    }
    entries.push_back(std::move(entry));
  }
  return merge_fleet_stats(entries, stats_snapshot());
}

RouterStatsSnapshot Router::stats_snapshot() const {
  common::MutexLock lock(stats_mutex_);
  return counters_;
}

}  // namespace gaurast::cluster
