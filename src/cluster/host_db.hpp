// cluster::HostDb — the shard registry of a render fleet: a static
// host:port list plus a per-shard alive/suspect/dead health state machine
// and the rendezvous (HRW) hash that gives every scene a deterministic
// owner among the shards that are still up.
//
// Health inputs are outcome reports: the router's forwarders report
// per-request successes/failures and the prober reports periodic HTTP
// /healthz results, all through the same report_success/report_failure
// pair. One failure demotes alive -> suspect (still routable — a single
// timeout must not remap every scene the shard owns); consecutive failures
// reaching HostDbConfig::dead_after_failures demote to dead, which removes
// the shard from routing until any success resurrects it.
//
// Circuit breaker (opt-in): with breaker_trip_failures > 0, a shard whose
// consecutive failures reach that threshold trips a per-shard breaker OPEN
// — excluded from routing even after a success resurrects its health
// state. The breaker closes on the first success reported after
// breaker_open_ms of cooldown (probe-driven half-open recovery: the
// prober keeps probing, and its first post-cooldown success re-admits the
// shard); successes during the cooldown are ignored by the breaker, so a
// flapping shard cannot thrash the routing map once per flap.
//
// Routing: hrw_order() ranks ALL shards for a scene key by rendezvous
// weight — a pure function of (scene key, shard label), independent of
// health — and route() walks that ranking skipping dead shards. So the
// owner of a key is stable while its shard lives, moves deterministically
// to the key's next-ranked shard when it dies, and moves back on recovery;
// keys owned by other shards never remap (the rendezvous property).
//
// Thread-safe: health state sits behind one mutex; the shard list itself is
// immutable after construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gaurast::cluster {

struct ShardId {
  std::string host;
  int port = 0;

  /// "host:port" — the stable identity HRW weights hash.
  std::string label() const;
  /// Parses "host:port"; throws gaurast::Error on malformed specs.
  static ShardId parse(const std::string& spec);
};

enum class ShardState : std::uint8_t {
  kAlive = 0,
  /// One recent failure: still routable, but one more failure kills it.
  kSuspect = 1,
  /// Out of routing until a probe or request succeeds against it.
  kDead = 2,
};

const char* to_string(ShardState state);

struct HostDbConfig {
  /// Consecutive failures at which a shard is declared dead. The first
  /// failure always demotes to suspect.
  int dead_after_failures = 2;
  /// Consecutive failures at which the per-shard circuit breaker trips
  /// open (excluded from routing until a post-cooldown success). 0
  /// disables the breaker — the default, because an open breaker delays
  /// re-admission of a recovered shard by up to breaker_open_ms.
  int breaker_trip_failures = 0;
  /// Breaker cooldown: successes earlier than this after the trip are
  /// ignored by the breaker; the first success after it closes the
  /// breaker.
  int breaker_open_ms = 2000;
};

struct ShardSnapshot {
  ShardId id;
  ShardState state = ShardState::kAlive;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  int consecutive_failures = 0;
  bool breaker_open = false;
  std::uint64_t breaker_trips = 0;
};

class HostDb {
 public:
  /// At least one shard; shards start alive (optimistic — the first probe
  /// or request corrects that within one health interval).
  explicit HostDb(std::vector<ShardId> shards, HostDbConfig config = {});

  std::size_t size() const { return shards_.size(); }
  /// Immutable after construction — safe without the lock.
  const ShardId& shard(std::size_t index) const { return shards_[index]; }

  ShardState state(std::size_t index) const GAURAST_EXCLUDES(mutex_);
  /// True while the shard's circuit breaker is open (always false when the
  /// breaker is disabled).
  bool breaker_open(std::size_t index) const GAURAST_EXCLUDES(mutex_);
  std::vector<ShardSnapshot> snapshot() const GAURAST_EXCLUDES(mutex_);
  /// Shards currently routable (not dead).
  std::size_t alive_count() const GAURAST_EXCLUDES(mutex_);

  void report_success(std::size_t index) GAURAST_EXCLUDES(mutex_);
  void report_failure(std::size_t index) GAURAST_EXCLUDES(mutex_);

  /// Rendezvous ranking of ALL shard indices for this scene key, best
  /// first. Deterministic across processes and platforms (FNV-1a +
  /// splitmix64 finalizer, never std::hash) and independent of health —
  /// failover order is a property of the key, not of the moment.
  std::vector<std::size_t> hrw_order(const std::string& scene_key) const;

  /// The shard that should serve `scene_key` right now: the first
  /// routable (non-dead, breaker closed) shard in hrw_order not listed in
  /// `exclude` (the failover walk passes the shards it already tried).
  /// nullopt when the whole fleet is down.
  std::optional<std::size_t> route(const std::string& scene_key,
                                   const std::set<std::size_t>& exclude = {})
      const GAURAST_EXCLUDES(mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Health {
    ShardState state = ShardState::kAlive;
    int consecutive_failures = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
    bool breaker_open = false;
    Clock::time_point breaker_opened_at{};  ///< valid while breaker_open
    std::uint64_t breaker_trips = 0;
  };

  const std::vector<ShardId> shards_;
  const HostDbConfig config_;

  mutable common::Mutex mutex_;
  std::vector<Health> health_ GAURAST_GUARDED_BY(mutex_);
};

}  // namespace gaurast::cluster
