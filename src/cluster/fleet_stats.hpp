// cluster fleet stats — merging per-shard `gaurast-serve-stats/v2` reports
// into one `gaurast-fleet-stats/v1` document, the stats encoding the router
// serves on both the wire (kStatsResponse) and HTTP (/stats).
//
// Layout:
//
//   {"schema":"gaurast-fleet-stats/v1",
//    "shards_total":N,"shards_alive":A,
//    "fleet":{submitted, completed, rejected, scene_cache_hits,
//             scene_cache_misses, scene_evictions, scene_rejected,
//             scene_resident_bytes, scene_resident_count},
//                                                     <- summed over shards
//    "router":{routed_ok, overloaded, server_errors, shed, failovers,
//              fleet_unavailable, deadline_exceeded, retries,
//              latency_* (router-observed, ms),
//              route_overhead_* (router latency minus the shard-reported
//              per-request latency_ms, ms)},
//    "shards":[{"host","port","state","breaker_open","breaker_trips",
//               "stats":<shard JSON or null>}, ...]}
//
// Latency is deliberately reported per shard (each entry embeds the
// shard's own gaurast-serve-stats snapshot verbatim) rather than
// averaged across the fleet: shard queue depths differ and a fleet-wide
// mean would hide the straggler. The one fleet-wide latency figure that is
// meaningful is the route overhead the router itself adds, measured per
// forwarded request.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/host_db.hpp"

namespace gaurast::cluster {

/// Schema tag of the merged fleet report.
inline constexpr const char* kFleetStatsSchema = "gaurast-fleet-stats/v1";

/// One shard's contribution: its registry snapshot plus the serve-stats
/// JSON fetched from it (nullopt when the shard was dead or the fetch
/// failed — the entry then carries "stats":null).
struct ShardStatsEntry {
  ShardSnapshot shard;
  std::optional<std::string> stats_json;
};

/// The router's own counters and request-level samples, snapshotted for
/// one report.
struct RouterStatsSnapshot {
  std::uint64_t routed_ok = 0;
  std::uint64_t overloaded = 0;      ///< shard kOverloaded passed through
  std::uint64_t server_errors = 0;   ///< shard kServerError passed through
  std::uint64_t shed = 0;            ///< router-level queue-full sheds
  std::uint64_t failovers = 0;       ///< forwards retried on another shard
  std::uint64_t fleet_unavailable = 0;
  /// Requests answered kDeadlineExceeded — expired at the router (any
  /// hand-off point) or shed by a shard against the derated budget.
  std::uint64_t deadline_exceeded = 0;
  /// RetryPolicy-approved retries performed (every re-route after a failed
  /// forward; a subset also counts in `failovers` once re-enqueued).
  std::uint64_t retries = 0;
  /// Router-observed end-to-end latency per forwarded request (ms).
  std::vector<double> latency_ms;
  /// Route overhead per kOk forward: router-observed round trip minus the
  /// shard-reported latency_ms (ms, clamped at 0).
  std::vector<double> route_overhead_ms;
};

/// First top-level occurrence of `"key":<number>` in a flat JSON object —
/// sufficient for gaurast-serve-stats/v1, whose scalar totals precede the
/// "stages" array (the only nesting). nullopt when absent or non-numeric.
std::optional<double> extract_json_number(const std::string& json,
                                          const std::string& key);

/// Builds the merged gaurast-fleet-stats/v1 document.
std::string merge_fleet_stats(const std::vector<ShardStatsEntry>& shards,
                              const RouterStatsSnapshot& router);

}  // namespace gaurast::cluster
