// cluster::Spawner — forks and supervises a crew of local `gaurast_cli
// serve --listen` worker processes, the `route --spawn N` convenience that
// turns one machine into a self-contained fleet.
//
// Lifecycle: spawn() forks each worker onto an ephemeral port (`--listen 0`)
// with its stdout on a pipe, and blocks until every worker has printed its
// "Listening on host:port" line — that parsed address is the worker's
// ShardId for the router's HostDb. poll() (called periodically from the
// CLI's signal loop; no thread of its own) drains and prefix-logs worker
// stdout, reaps exited children with waitpid(WNOHANG), logs the exit, and
// relaunches the worker on its *original* port after a backoff — the
// HostDb entry stays valid and the prober re-admits the shard on its next
// successful /healthz. stop() SIGTERMs the crew, waits bounded, and
// SIGKILLs stragglers: shutdown never hangs on a wedged worker.
//
// This is the one module that spawns processes; the lint-invariants
// `process-spawn` rule confines fork/exec*/wait* to src/cluster.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <string>
#include <vector>

#include "cluster/host_db.hpp"

namespace gaurast::cluster {

struct SpawnerConfig {
  /// Executable to fork (normally the running gaurast_cli's own path).
  std::string exe;
  /// Arguments appended to `serve --listen <port>` for every worker (e.g.
  /// a pass-through --workers / --backend configuration).
  std::vector<std::string> serve_args;
  /// How long spawn() waits for each worker's listen announcement.
  int announce_timeout_ms = 10000;
  /// Delay before relaunching an exited worker (a crash-looping worker
  /// must not spin the supervisor).
  int restart_backoff_ms = 1000;
  /// stop(): grace period between SIGTERM and SIGKILL.
  int stop_timeout_ms = 5000;
};

class Spawner {
 public:
  explicit Spawner(SpawnerConfig config);
  /// Calls stop().
  ~Spawner();

  Spawner(const Spawner&) = delete;
  Spawner& operator=(const Spawner&) = delete;

  /// Forks `count` workers on ephemeral ports and blocks until each has
  /// announced its listen address (throws gaurast::Error when a worker dies
  /// or stays silent past announce_timeout_ms). Returns their shard ids in
  /// worker order. One-shot.
  std::vector<ShardId> spawn(int count);

  /// Supervises: drains worker stdout (prefix-logged), reaps exits,
  /// schedules and performs backoff restarts. Call periodically from one
  /// thread; not thread-safe, cheap when nothing happened.
  void poll();

  /// SIGTERM every worker, reap with a stop_timeout_ms deadline, SIGKILL
  /// whatever is left. Idempotent.
  void stop();

  /// Live (spawned, not currently waiting out a restart backoff) workers.
  std::size_t alive_count() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One supervised worker process.
  struct Worker {
    pid_t pid = -1;          ///< -1 while waiting out a restart backoff
    int stdout_fd = -1;      ///< nonblocking read end of the stdout pipe
    int port = 0;            ///< 0 until the first listen announcement
    std::string host;
    std::string line_buf;    ///< partial stdout line
    bool announced = false;  ///< saw "Listening on host:port"
    int restarts = 0;
    Clock::time_point restart_at{};  ///< valid while pid == -1
  };

  /// Forks one worker listening on `port` (0 = ephemeral); fills pid and
  /// stdout_fd.
  void launch(Worker& worker, int port);
  /// Drains stdout; parses the announcement or prefix-logs the line.
  void pump_stdout(Worker& worker);
  /// waitpid(WNOHANG); on exit: final stdout drain, log, schedule restart.
  void reap(Worker& worker);

  SpawnerConfig config_;
  std::vector<Worker> workers_;
  bool spawned_ = false;
  bool stopped_ = false;
};

}  // namespace gaurast::cluster
