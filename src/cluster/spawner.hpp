// cluster::Spawner — forks and supervises a crew of local `gaurast_cli
// serve --listen` worker processes, the `route --spawn N` convenience that
// turns one machine into a self-contained fleet.
//
// Lifecycle: spawn() forks each worker onto an ephemeral port (`--listen 0`)
// with its stdout on a pipe, and blocks until every worker has printed its
// "Listening on host:port" line — that parsed address is the worker's
// ShardId for the router's HostDb. poll() (called periodically from the
// CLI's signal loop; no thread of its own) drains and prefix-logs worker
// stdout, reaps exited children with waitpid(WNOHANG), logs the exit, and
// relaunches the worker on its *original* port after a backoff — the
// HostDb entry stays valid and the prober re-admits the shard on its next
// successful /healthz. stop() SIGTERMs the crew, waits bounded, and
// SIGKILLs stragglers: shutdown never hangs on a wedged worker.
//
// This is the one module that spawns processes; the lint-invariants
// `process-spawn` rule confines fork/exec*/wait* to src/cluster.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/host_db.hpp"
#include "common/prng.hpp"

namespace gaurast::cluster {

/// Restart pacing for one supervised worker: capped exponential backoff
/// over the CRASH STREAK (consecutive exits without a healthy run), with
/// deterministic ±25% jitter so a crew of workers felled by one cause does
/// not relaunch in lockstep. A worker that stayed up healthy_reset_ms
/// before exiting has its streak forgiven — a deploy-then-crash a day
/// later starts from the base backoff again, not the cap.
///
/// Pure bookkeeping (no clocks, no sleeps): the caller feeds uptimes in
/// and schedules the returned delay, which makes the schedule
/// unit-testable without forking a single process.
struct RestartBackoffConfig {
  /// Delay after the first crash of a streak; doubles per further crash.
  int base_ms = 1000;
  /// Backoff growth cap.
  int max_ms = 30000;
  /// A run at least this long resets the crash streak.
  int healthy_reset_ms = 10000;
  /// Jitter stream seed — one deterministic delay sequence per seed.
  std::uint64_t seed = 1;
};

class RestartBackoff {
 public:
  explicit RestartBackoff(RestartBackoffConfig config = {});

  /// Called once per worker exit with how long the worker ran. Returns the
  /// jittered delay (ms) to wait before relaunching; advances the streak.
  int on_exit(std::int64_t uptime_ms);

  /// Consecutive crashes in the current streak (after the last on_exit).
  int streak() const { return streak_; }

 private:
  RestartBackoffConfig config_;
  Pcg32 rng_;
  int streak_ = 0;
};

struct SpawnerConfig {
  /// Executable to fork (normally the running gaurast_cli's own path).
  std::string exe;
  /// Arguments appended to `serve --listen <port>` for every worker (e.g.
  /// a pass-through --workers / --backend configuration).
  std::vector<std::string> serve_args;
  /// How long spawn() waits for each worker's listen announcement.
  int announce_timeout_ms = 10000;
  /// Base delay before relaunching an exited worker (a crash-looping
  /// worker must not spin the supervisor); doubles per consecutive crash.
  int restart_backoff_ms = 1000;
  /// Cap on the per-worker restart backoff growth.
  int restart_backoff_max_ms = 30000;
  /// A worker that ran at least this long before exiting restarts from
  /// the base backoff again (its crash streak is forgiven).
  int healthy_reset_ms = 10000;
  /// Seed for the deterministic restart-jitter streams (one per worker).
  std::uint64_t backoff_seed = 1;
  /// stop(): grace period between SIGTERM and SIGKILL.
  int stop_timeout_ms = 5000;
};

class Spawner {
 public:
  explicit Spawner(SpawnerConfig config);
  /// Calls stop().
  ~Spawner();

  Spawner(const Spawner&) = delete;
  Spawner& operator=(const Spawner&) = delete;

  /// Forks `count` workers on ephemeral ports and blocks until each has
  /// announced its listen address (throws gaurast::Error when a worker dies
  /// or stays silent past announce_timeout_ms). Returns their shard ids in
  /// worker order. One-shot.
  std::vector<ShardId> spawn(int count);

  /// Supervises: drains worker stdout (prefix-logged), reaps exits,
  /// schedules and performs backoff restarts. Call periodically from one
  /// thread; not thread-safe, cheap when nothing happened.
  void poll();

  /// SIGTERM every worker, reap with a stop_timeout_ms deadline, SIGKILL
  /// whatever is left. Idempotent.
  void stop();

  /// Live (spawned, not currently waiting out a restart backoff) workers.
  std::size_t alive_count() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One supervised worker process.
  struct Worker {
    pid_t pid = -1;          ///< -1 while waiting out a restart backoff
    int stdout_fd = -1;      ///< nonblocking read end of the stdout pipe
    int port = 0;            ///< 0 until the first listen announcement
    std::string host;
    std::string line_buf;    ///< partial stdout line
    bool announced = false;  ///< saw "Listening on host:port"
    int restarts = 0;
    Clock::time_point started_at{};  ///< last launch time (uptime input)
    Clock::time_point restart_at{};  ///< valid while pid == -1
    RestartBackoff backoff;
  };

  /// Forks one worker listening on `port` (0 = ephemeral); fills pid and
  /// stdout_fd.
  void launch(Worker& worker, int port);
  /// Drains stdout; parses the announcement or prefix-logs the line.
  void pump_stdout(Worker& worker);
  /// waitpid(WNOHANG); on exit: final stdout drain, log, schedule restart.
  void reap(Worker& worker);

  SpawnerConfig config_;
  std::vector<Worker> workers_;
  bool spawned_ = false;
  bool stopped_ = false;
};

}  // namespace gaurast::cluster
