// cluster::Router — the scene-affine front-end of a sharded render fleet.
//
// A net::FrameServer accepts ordinary gaurast wire clients; every render
// request is routed by its scene key through HostDb's rendezvous hash and
// forwarded to the owning shard over a pooled net::Client, so a scene's
// precompute/cache affinity lands on exactly one worker. Per shard the
// router keeps a fixed crew of forwarder threads (the in-flight bound) plus
// a small waiting queue; when both are full the router sheds with
// kOverloaded — the same admission-control contract the shards themselves
// use, and a shard's own kOverloaded/kServerError responses pass through
// untouched. A transport failure against a shard reports into the health
// state machine and — under the RetryPolicy's attempt budget — fails the
// request over to the scene's next shard in HRW order (connect failures
// immediately, timeouts after a jittered backoff); when the budget is
// spent or no shard is routable the client gets an explicit
// kFleetUnavailable response — bounded errors, never a hang.
//
// Deadlines: a request's wire deadline_ms (or RouterConfig's default) is
// pinned as an absolute deadline at admission. Expiry is checked at every
// hand-off — admission, each (re-)route, each forwarder pop — and an
// expired request is answered kDeadlineExceeded instead of forwarded.
// Before each forward the wire deadline_ms is rewritten to the REMAINING
// budget and the per-hop client timeout is derated to match, so a shard
// never renders for a client that stopped waiting and a slow hop cannot
// eat the budget of the failover that follows it.
//
// Health: a prober thread issues periodic HTTP /healthz probes against
// every shard (dead ones included — that is the recovery path), feeding the
// same report_success/report_failure inputs as the forwarders.
//
// Stats: kStatsRequest frames and GET /stats answer with the merged
// gaurast-fleet-stats/v1 document (per-shard serve stats + router
// counters); GET /healthz answers a cheap local health summary without
// touching the shards.
//
// Threading: connection state lives on the FrameServer loop thread; routing
// decisions happen there too (the HostDb walk is cheap). Forwarder, stats,
// and prober threads never touch a connection — results re-enter the loop
// via FrameServer::post_deliver.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>  // lint-invariants: allow(raw-concurrency)
#include <vector>

#include "cluster/fleet_stats.hpp"
#include "cluster/host_db.hpp"
#include "cluster/retry_policy.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/client.hpp"
#include "net/frame_server.hpp"

namespace gaurast::cluster {

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Router::port() reports the actual one.
  int port = 0;
  int idle_timeout_ms = 30000;
  int drain_timeout_ms = 5000;
  int backlog = 64;
  /// Forwarder threads per shard — the bound on concurrently forwarded
  /// requests per shard.
  int inflight_per_shard = 2;
  /// Waiting room per shard beyond the in-flight bound; when full the
  /// router sheds the request with kOverloaded.
  int queue_per_shard = 8;
  /// Dial bound for forwarder connections (a black-holed shard must fail
  /// over quickly, not stall a forwarder).
  int connect_timeout_ms = 2000;
  /// Send/recv bound per forwarded request.
  int forward_timeout_ms = 30000;
  int probe_interval_ms = 1000;
  int probe_timeout_ms = 500;
  /// Per-shard bound when assembling a fleet stats report.
  int stats_timeout_ms = 2000;
  /// Deadline budget (ms) applied to requests that carry none (wire
  /// deadline_ms == 0). 0 = no default: undeadlined requests forward
  /// unconditionally. Requests with their own budget keep it.
  int default_deadline_ms = 0;
  /// Retry budget and backoff for failed forwards.
  RetryPolicyConfig retry;
};

class Router : private net::FrameHandler {
 public:
  /// The HostDb must outlive the router. start() is not implicit.
  Router(HostDb& db, RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  /// Graceful shutdown: stops accepting, finishes every admitted forward
  /// (or fails it over / reports it unavailable), flushes connections,
  /// joins every thread. Idempotent.
  void stop();

  /// The bound port (resolves ephemeral binds). Valid after start().
  int port() const { return front_.port(); }
  const RouterConfig& config() const { return config_; }

  /// Assembles the merged gaurast-fleet-stats/v1 document now: polls every
  /// non-dead shard (bounded by stats_timeout_ms each) and merges with the
  /// router's counters. Blocking — call from any thread except the loop
  /// thread (the stats worker and the CLI both use it).
  std::string fleet_stats_json();

  /// Snapshot of the router-level counters and samples.
  RouterStatsSnapshot stats_snapshot() const GAURAST_EXCLUDES(stats_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  /// One routed render request, loop-thread-owned between forward attempts.
  struct Job {
    std::uint64_t conn_id = 0;
    net::RenderRequest wire;
    Clock::time_point admitted;
    /// Absolute deadline pinned at admission (wire deadline_ms or the
    /// router default, relative to receipt); nullopt = no deadline.
    std::optional<Clock::time_point> deadline;
    /// Failed forward attempts so far — the RetryPolicy's budget input.
    int failures = 0;
    /// Shards already tried (failed forwards) — the failover walk excludes
    /// them so a flapping fleet cannot loop a request forever.
    std::set<std::size_t> tried;
  };

  /// Per-shard forward channel: a bounded queue drained by the shard's
  /// forwarder crew. Each forwarder owns one pooled net::Client.
  struct Shard {
    explicit Shard(std::size_t index) : index(index) {}
    const std::size_t index;
    common::Mutex mutex;
    common::CondVar cv;
    std::deque<Job> queue GAURAST_GUARDED_BY(mutex);
    bool closed GAURAST_GUARDED_BY(mutex) = false;
    // Long-lived forwarder crew; joined in stop()'s drain hook.
    std::vector<std::thread> forwarders;  // lint-invariants: allow(raw-concurrency)
  };

  /// One deferred stats request (wire frame or HTTP GET).
  struct StatsJob {
    std::uint64_t conn_id = 0;
    bool http = false;
  };

  // FrameHandler (loop thread).
  void on_frame(std::uint64_t conn_id, const net::FrameHeader& header,
                const std::uint8_t* payload) override;
  void on_http_get(std::uint64_t conn_id, const std::string& target) override;

  /// Routes (or re-routes, after a failover) one job. Loop thread.
  void route(Job job);
  void finish_unavailable(Job job);
  /// Answers kDeadlineExceeded for an expired job. `on_loop` as for
  /// deliver_error.
  void finish_deadline_exceeded(Job job, bool on_loop);
  /// Milliseconds left before the job's deadline; nullopt when it has
  /// none. Clamped at 0.
  static std::optional<std::int64_t> remaining_ms(const Job& job);

  // Worker bodies.
  void forwarder_main(Shard& shard);
  void stats_main();
  void prober_main();

  /// One forward attempt against `shard` using the forwarder's pooled
  /// client. Returns nullopt when a response was delivered (any status);
  /// otherwise the failure classification (health already reported) — the
  /// caller consults the RetryPolicy and fails over. A shard kOverloaded
  /// answer comes back as FailureKind::kOverloaded (undelivered) only when
  /// the retry budget and an untried shard both remain; otherwise it is
  /// delivered as-is.
  std::optional<FailureKind> forward(Shard& shard,
                                     std::unique_ptr<net::Client>& client,
                                     Job& job);

  void deliver_error(std::uint64_t conn_id, std::uint64_t request_id,
                     net::RenderStatus status, const std::string& message,
                     bool on_loop);

  HostDb& db_;
  RouterConfig config_;
  RetryPolicy retry_policy_;
  net::FrameServer front_;

  std::vector<std::unique_ptr<Shard>> shards_;

  common::Mutex stats_queue_mutex_;
  common::CondVar stats_cv_;
  std::deque<StatsJob> stats_queue_ GAURAST_GUARDED_BY(stats_queue_mutex_);
  bool stats_closed_ GAURAST_GUARDED_BY(stats_queue_mutex_) = false;
  std::thread stats_thread_;  // lint-invariants: allow(raw-concurrency)

  common::Mutex prober_mutex_;
  common::CondVar prober_cv_;
  bool prober_stop_ GAURAST_GUARDED_BY(prober_mutex_) = false;
  std::thread prober_thread_;  // lint-invariants: allow(raw-concurrency)

  mutable common::Mutex stats_mutex_;
  RouterStatsSnapshot counters_ GAURAST_GUARDED_BY(stats_mutex_);
  /// Ring-replacement cursors once the sample vectors hit their cap.
  std::size_t latency_slot_ GAURAST_GUARDED_BY(stats_mutex_) = 0;
  std::size_t overhead_slot_ GAURAST_GUARDED_BY(stats_mutex_) = 0;

  common::Mutex state_mutex_;
  bool running_ GAURAST_GUARDED_BY(state_mutex_) = false;
};

}  // namespace gaurast::cluster
