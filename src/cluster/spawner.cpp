#include "cluster/spawner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <thread>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace gaurast::cluster {

namespace {

constexpr const char* kAnnouncePrefix = "Listening on ";

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string exit_description(int status) {
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "unknown status " + std::to_string(status);
}

}  // namespace

RestartBackoff::RestartBackoff(RestartBackoffConfig config)
    : config_(config), rng_(SplitMix64(config.seed).next()) {
  GAURAST_CHECK(config_.base_ms >= 0);
  GAURAST_CHECK(config_.max_ms >= config_.base_ms);
  GAURAST_CHECK(config_.healthy_reset_ms >= 0);
}

int RestartBackoff::on_exit(std::int64_t uptime_ms) {
  if (uptime_ms >= config_.healthy_reset_ms) streak_ = 0;
  ++streak_;
  std::int64_t backoff = config_.base_ms;
  for (int i = 1; i < streak_ && backoff < config_.max_ms; ++i) backoff *= 2;
  backoff = std::min<std::int64_t>(backoff, config_.max_ms);
  // ±25% deterministic jitter: a crew felled together fans back out.
  return static_cast<int>(
      static_cast<double>(backoff) * (0.75 + 0.5 * rng_.uniform()));
}

Spawner::Spawner(SpawnerConfig config) : config_(std::move(config)) {
  GAURAST_CHECK_MSG(!config_.exe.empty(), "spawner needs an executable path");
}

Spawner::~Spawner() { stop(); }

void Spawner::launch(Worker& worker, int port) {
  GAURAST_FAULT_POINT("cluster.spawner.launch");
  int pipe_fds[2];
  if (pipe2(pipe_fds, O_CLOEXEC) != 0) {
    throw Error(std::string("pipe2 failed: ") + std::strerror(errno));
  }

  std::vector<std::string> args;
  args.push_back(config_.exe);
  args.push_back("serve");
  args.push_back("--listen");
  args.push_back(std::to_string(port));
  for (const std::string& extra : config_.serve_args) args.push_back(extra);

  const pid_t pid = fork();
  if (pid < 0) {
    const int saved = errno;
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    throw Error(std::string("fork failed: ") + std::strerror(saved));
  }
  if (pid == 0) {
    // Child: stdout and stderr both feed the supervisor pipe (dup2 clears
    // O_CLOEXEC on the duplicates; the pipe ends themselves close on exec).
    dup2(pipe_fds[1], STDOUT_FILENO);
    dup2(pipe_fds[1], STDERR_FILENO);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(config_.exe.c_str(), argv.data());
    // Only reached when exec failed; the message travels the pipe.
    const char* msg = "execv failed\n";
    (void)!write(STDERR_FILENO, msg, std::strlen(msg));
    _exit(127);
  }

  close(pipe_fds[1]);
  fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  worker.pid = pid;
  worker.stdout_fd = pipe_fds[0];
  worker.announced = false;
  worker.line_buf.clear();
  worker.started_at = Clock::now();
}

std::vector<ShardId> Spawner::spawn(int count) {
  GAURAST_CHECK_MSG(!spawned_, "spawn() is one-shot");
  GAURAST_CHECK(count >= 1);
  spawned_ = true;

  workers_.resize(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    RestartBackoffConfig backoff;
    backoff.base_ms = config_.restart_backoff_ms;
    backoff.max_ms =
        std::max(config_.restart_backoff_max_ms, config_.restart_backoff_ms);
    backoff.healthy_reset_ms = config_.healthy_reset_ms;
    // Independent per-worker jitter streams from the one seed.
    backoff.seed = SplitMix64(config_.backoff_seed ^ (i + 1)).next();
    workers_[i].backoff = RestartBackoff(backoff);
    launch(workers_[i], 0);
  }

  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config_.announce_timeout_ms);
  for (;;) {
    bool all_announced = true;
    for (Worker& worker : workers_) {
      pump_stdout(worker);
      if (worker.announced) continue;
      all_announced = false;
      int status = 0;
      if (waitpid(worker.pid, &status, WNOHANG) == worker.pid) {
        pump_stdout(worker);  // surface its last words first
        worker.pid = -1;
        throw Error("fleet worker exited before announcing its port (" +
                    exit_description(status) + ")");
      }
    }
    if (all_announced) break;
    if (Clock::now() >= deadline) {
      throw Error("fleet worker did not announce its listen port within " +
                  std::to_string(config_.announce_timeout_ms) + "ms");
    }
    sleep_ms(10);
  }

  std::vector<ShardId> ids;
  ids.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    ids.push_back(ShardId{worker.host, worker.port});
  }
  return ids;
}

void Spawner::pump_stdout(Worker& worker) {
  if (worker.stdout_fd < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(worker.stdout_fd, buf, sizeof(buf));
    if (n > 0) {
      worker.line_buf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or read error: the write end is gone.
    close(worker.stdout_fd);
    worker.stdout_fd = -1;
    break;
  }

  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = worker.line_buf.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = worker.line_buf.substr(start, nl - start);
    start = nl + 1;
    if (!worker.announced && line.rfind(kAnnouncePrefix, 0) == 0) {
      // "Listening on host:port (backend ..., N workers)" — the address
      // ends at the first space.
      std::string spec = line.substr(std::strlen(kAnnouncePrefix));
      spec = spec.substr(0, spec.find(' '));
      const ShardId id = ShardId::parse(spec);
      worker.host = id.host;
      worker.port = id.port;
      worker.announced = true;
      std::cout << "[spawner] worker " << worker.pid << " listening on "
                << id.label() << "\n"
                << std::flush;
      continue;
    }
    std::cout << "[worker " << worker.pid << "] " << line << "\n" << std::flush;
  }
  worker.line_buf.erase(0, start);
}

void Spawner::reap(Worker& worker) {
  if (worker.pid < 0) {
    // Waiting out a restart backoff.
    if (!stopped_ && worker.port != 0 && Clock::now() >= worker.restart_at) {
      ++worker.restarts;
      try {
        launch(worker, worker.port);
      } catch (const std::exception& e) {
        // A failed relaunch (fork/pipe exhaustion, injected fault) is an
        // instant zero-uptime crash: back off again rather than take the
        // supervisor down with the worker.
        const int delay_ms = worker.backoff.on_exit(0);
        std::cout << "[spawner] relaunch on port " << worker.port
                  << " failed (" << e.what() << "); retrying in " << delay_ms
                  << "ms\n"
                  << std::flush;
        worker.restart_at =
            Clock::now() + std::chrono::milliseconds(delay_ms);
        return;
      }
      std::cout << "[spawner] restarted worker " << worker.pid << " on port "
                << worker.port << " (restart #" << worker.restarts << ")\n"
                << std::flush;
    }
    return;
  }
  int status = 0;
  if (waitpid(worker.pid, &status, WNOHANG) != worker.pid) return;
  pump_stdout(worker);  // drain its last words
  if (worker.stdout_fd >= 0) {
    close(worker.stdout_fd);
    worker.stdout_fd = -1;
  }
  const std::int64_t uptime_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            worker.started_at)
          .count();
  const int delay_ms = worker.backoff.on_exit(uptime_ms);
  std::cout << "[spawner] worker " << worker.pid << " exited ("
            << exit_description(status) << ")";
  if (!stopped_) {
    std::cout << "; restarting on port " << worker.port << " in " << delay_ms
              << "ms (crash streak " << worker.backoff.streak() << ")";
  }
  std::cout << "\n" << std::flush;
  worker.pid = -1;
  worker.restart_at = Clock::now() + std::chrono::milliseconds(delay_ms);
}

void Spawner::poll() {
  if (!spawned_ || stopped_) return;
  for (Worker& worker : workers_) {
    pump_stdout(worker);
    reap(worker);
  }
}

void Spawner::stop() {
  if (!spawned_ || stopped_) return;
  stopped_ = true;
  for (const Worker& worker : workers_) {
    if (worker.pid >= 0) kill(worker.pid, SIGTERM);
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config_.stop_timeout_ms);
  for (;;) {
    bool any_left = false;
    for (Worker& worker : workers_) {
      if (worker.pid < 0) continue;
      reap(worker);  // stopped_ is set: reaping never restarts
      if (worker.pid >= 0) any_left = true;
    }
    if (!any_left) return;
    if (Clock::now() >= deadline) break;
    sleep_ms(20);
  }
  // Stragglers past the grace period: no more mercy, but still reap — a
  // zombie crew would outlive the supervisor.
  for (Worker& worker : workers_) {
    if (worker.pid < 0) continue;
    kill(worker.pid, SIGKILL);
    int status = 0;
    waitpid(worker.pid, &status, 0);
    pump_stdout(worker);
    if (worker.stdout_fd >= 0) {
      close(worker.stdout_fd);
      worker.stdout_fd = -1;
    }
    std::cout << "[spawner] worker " << worker.pid
              << " killed after stop timeout\n"
              << std::flush;
    worker.pid = -1;
  }
}

std::size_t Spawner::alive_count() const {
  std::size_t n = 0;
  for (const Worker& worker : workers_) {
    if (worker.pid >= 0) ++n;
  }
  return n;
}

}  // namespace gaurast::cluster
