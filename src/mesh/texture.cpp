#include "mesh/texture.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace gaurast::mesh {

Texture::Texture(Image image) : image_(std::move(image)) {
  GAURAST_CHECK(image_.width() > 0 && image_.height() > 0);
}

Texture Texture::checkerboard(int size, int cells, Vec3f a, Vec3f b) {
  GAURAST_CHECK(size > 0 && cells > 0);
  Image img(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const int cx = x * cells / size;
      const int cy = y * cells / size;
      img.at(x, y) = ((cx + cy) % 2 == 0) ? a : b;
    }
  }
  return Texture(std::move(img));
}

Texture Texture::uv_gradient(int size) {
  GAURAST_CHECK(size > 1);
  Image img(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      img.at(x, y) = {static_cast<float>(x) / static_cast<float>(size - 1),
                      static_cast<float>(y) / static_cast<float>(size - 1),
                      0.25f};
    }
  }
  return Texture(std::move(img));
}

Texture Texture::noise(int size, std::uint64_t seed, Vec3f base,
                       float amplitude) {
  GAURAST_CHECK(size > 0);
  Image img(size, size);
  Pcg32 rng(seed);
  for (auto& px : img.pixels()) {
    const auto jitter = [&]() {
      return static_cast<float>(rng.normal(0.0, amplitude));
    };
    px = {clampf(base.x + jitter(), 0.0f, 1.0f),
          clampf(base.y + jitter(), 0.0f, 1.0f),
          clampf(base.z + jitter(), 0.0f, 1.0f)};
  }
  return Texture(std::move(img));
}

float Texture::wrap_coord(float x, int extent, TextureWrap wrap) const {
  const float e = static_cast<float>(extent);
  if (wrap == TextureWrap::kRepeat) {
    const float f = std::fmod(x, e);
    return f < 0.0f ? f + e : f;
  }
  return std::clamp(x, 0.0f, e - 1.0f);
}

Vec3f Texture::texel(int x, int y) const {
  x = std::clamp(x, 0, image_.width() - 1);
  y = std::clamp(y, 0, image_.height() - 1);
  return image_.at(x, y);
}

Vec3f Texture::sample(Vec2f uv, TextureFilter filter, TextureWrap wrap) const {
  const float fx =
      wrap_coord(uv.x * static_cast<float>(image_.width()), image_.width(), wrap);
  const float fy = wrap_coord(uv.y * static_cast<float>(image_.height()),
                              image_.height(), wrap);
  if (filter == TextureFilter::kNearest) {
    return texel(static_cast<int>(fx), static_cast<int>(fy));
  }
  // Bilinear around the texel centers.
  const float gx = fx - 0.5f;
  const float gy = fy - 0.5f;
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const float tx = gx - static_cast<float>(x0);
  const float ty = gy - static_cast<float>(y0);
  auto pick = [&](int dx, int dy) {
    int x = x0 + dx;
    int y = y0 + dy;
    if (wrap == TextureWrap::kRepeat) {
      x = ((x % image_.width()) + image_.width()) % image_.width();
      y = ((y % image_.height()) + image_.height()) % image_.height();
    }
    return texel(x, y);
  };
  const Vec3f top = pick(0, 0) * (1.0f - tx) + pick(1, 0) * tx;
  const Vec3f bottom = pick(0, 1) * (1.0f - tx) + pick(1, 1) * tx;
  return top * (1.0f - ty) + bottom * ty;
}

}  // namespace gaurast::mesh
