#include "mesh/primitives.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gaurast::mesh {

namespace {
constexpr float kPi = 3.14159265358979323846f;
}

TriangleMesh make_cube() {
  TriangleMesh m;
  const Vec3f face_colors[6] = {{0.9f, 0.3f, 0.3f}, {0.3f, 0.9f, 0.3f},
                                {0.3f, 0.3f, 0.9f}, {0.9f, 0.9f, 0.3f},
                                {0.9f, 0.3f, 0.9f}, {0.3f, 0.9f, 0.9f}};
  const Vec3f normals[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                            {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  for (int f = 0; f < 6; ++f) {
    const Vec3f n = normals[f];
    // Build a tangent frame for the face.
    const Vec3f t = std::abs(n.y) < 0.9f ? n.cross({0, 1, 0}).normalized()
                                         : n.cross({1, 0, 0}).normalized();
    const Vec3f b = n.cross(t);
    const Vec3f center = n * 0.5f;
    Vertex v[4];
    const Vec2f uvs[4] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    const float su[4] = {-0.5f, 0.5f, 0.5f, -0.5f};
    const float sv[4] = {-0.5f, -0.5f, 0.5f, 0.5f};
    std::uint32_t idx[4];
    for (int k = 0; k < 4; ++k) {
      v[k].position = center + t * su[k] + b * sv[k];
      v[k].normal = n;
      v[k].uv = uvs[k];
      v[k].color = face_colors[f];
      idx[k] = m.add_vertex(v[k]);
    }
    m.add_triangle(idx[0], idx[1], idx[2]);
    m.add_triangle(idx[0], idx[2], idx[3]);
  }
  return m;
}

TriangleMesh make_sphere(int stacks, int slices, float radius) {
  GAURAST_CHECK(stacks >= 3 && slices >= 3 && radius > 0.0f);
  TriangleMesh m;
  for (int i = 0; i <= stacks; ++i) {
    const float phi = kPi * static_cast<float>(i) / static_cast<float>(stacks);
    for (int j = 0; j <= slices; ++j) {
      const float theta =
          2.0f * kPi * static_cast<float>(j) / static_cast<float>(slices);
      Vertex v;
      v.normal = {std::sin(phi) * std::cos(theta), std::cos(phi),
                  std::sin(phi) * std::sin(theta)};
      v.position = v.normal * radius;
      v.uv = {static_cast<float>(j) / static_cast<float>(slices),
              static_cast<float>(i) / static_cast<float>(stacks)};
      v.color = {0.5f + 0.5f * v.normal.x, 0.5f + 0.5f * v.normal.y,
                 0.5f + 0.5f * v.normal.z};
      m.add_vertex(v);
    }
  }
  const auto cols = static_cast<std::uint32_t>(slices + 1);
  for (int i = 0; i < stacks; ++i) {
    for (int j = 0; j < slices; ++j) {
      const auto a = static_cast<std::uint32_t>(i) * cols +
                     static_cast<std::uint32_t>(j);
      const auto b = a + cols;
      m.add_triangle(a, b, a + 1);
      m.add_triangle(a + 1, b, b + 1);
    }
  }
  return m;
}

TriangleMesh make_torus(int major_segments, int minor_segments,
                        float major_radius, float minor_radius) {
  GAURAST_CHECK(major_segments >= 3 && minor_segments >= 3);
  GAURAST_CHECK(major_radius > minor_radius && minor_radius > 0.0f);
  TriangleMesh m;
  for (int i = 0; i <= major_segments; ++i) {
    const float u = 2.0f * kPi * static_cast<float>(i) /
                    static_cast<float>(major_segments);
    for (int j = 0; j <= minor_segments; ++j) {
      const float v = 2.0f * kPi * static_cast<float>(j) /
                      static_cast<float>(minor_segments);
      Vertex vert;
      const Vec3f ring_center{major_radius * std::cos(u), 0.0f,
                              major_radius * std::sin(u)};
      const Vec3f radial{std::cos(u) * std::cos(v), std::sin(v),
                         std::sin(u) * std::cos(v)};
      vert.position = ring_center + radial * minor_radius;
      vert.normal = radial;
      vert.uv = {static_cast<float>(i) / static_cast<float>(major_segments),
                 static_cast<float>(j) / static_cast<float>(minor_segments)};
      vert.color = {0.8f, 0.5f + 0.3f * std::sin(v), 0.4f};
      m.add_vertex(vert);
    }
  }
  const auto cols = static_cast<std::uint32_t>(minor_segments + 1);
  for (int i = 0; i < major_segments; ++i) {
    for (int j = 0; j < minor_segments; ++j) {
      const auto a = static_cast<std::uint32_t>(i) * cols +
                     static_cast<std::uint32_t>(j);
      const auto b = a + cols;
      m.add_triangle(a, b, a + 1);
      m.add_triangle(a + 1, b, b + 1);
    }
  }
  return m;
}

TriangleMesh make_plane(int cells, float size) {
  GAURAST_CHECK(cells >= 1 && size > 0.0f);
  TriangleMesh m;
  for (int i = 0; i <= cells; ++i) {
    for (int j = 0; j <= cells; ++j) {
      Vertex v;
      const float fx = static_cast<float>(j) / static_cast<float>(cells);
      const float fz = static_cast<float>(i) / static_cast<float>(cells);
      v.position = {(fx - 0.5f) * size, 0.0f, (fz - 0.5f) * size};
      v.normal = {0, 1, 0};
      v.uv = {fx, fz};
      v.color = ((i + j) % 2 == 0) ? Vec3f{0.75f, 0.75f, 0.75f}
                                   : Vec3f{0.35f, 0.35f, 0.35f};
      m.add_vertex(v);
    }
  }
  const auto cols = static_cast<std::uint32_t>(cells + 1);
  for (int i = 0; i < cells; ++i) {
    for (int j = 0; j < cells; ++j) {
      const auto a = static_cast<std::uint32_t>(i) * cols +
                     static_cast<std::uint32_t>(j);
      const auto b = a + cols;
      // Winding chosen so the face normal points +y (up).
      m.add_triangle(a, b, a + 1);
      m.add_triangle(a + 1, b, b + 1);
    }
  }
  return m;
}

TriangleMesh make_terrain(int cells, float size, float height_scale,
                          std::uint64_t seed) {
  TriangleMesh m = make_plane(cells, size);
  Pcg32 rng(seed);
  // Sum of random low-frequency cosine waves — cheap smooth heightfield.
  struct Wave {
    float kx, kz, phase, amp;
  };
  std::vector<Wave> waves;
  for (int w = 0; w < 6; ++w) {
    waves.push_back({static_cast<float>(rng.uniform(0.5, 3.0)),
                     static_cast<float>(rng.uniform(0.5, 3.0)),
                     static_cast<float>(rng.uniform(0.0, 6.28)),
                     static_cast<float>(rng.uniform(0.1, 0.4))});
  }
  TriangleMesh out;
  for (Vertex v : m.vertices()) {
    float h = 0.0f;
    for (const Wave& w : waves) {
      h += w.amp * std::cos(w.kx * v.position.x + w.kz * v.position.z + w.phase);
    }
    v.position.y = h * height_scale;
    v.color = {0.3f + 0.2f * h, 0.5f + 0.2f * h, 0.3f};
    out.add_vertex(v);
  }
  for (std::size_t t = 0; t < m.triangle_count(); ++t) {
    std::uint32_t a, b, c;
    m.triangle(t, a, b, c);
    out.add_triangle(a, b, c);
  }
  out.recompute_normals();
  return out;
}

}  // namespace gaurast::mesh
