// Indexed triangle meshes — the workload the original (unenhanced) rasterizer
// serves, and which GauRast must keep serving (paper Sec. III-C: the enhanced
// rasterizer preserves triangle functionality).
#pragma once

#include <cstdint>
#include <vector>

#include "gsmath/mat.hpp"
#include "gsmath/vec.hpp"

namespace gaurast::mesh {

/// Per-vertex attributes.
struct Vertex {
  Vec3f position;
  Vec3f normal{0, 1, 0};
  Vec2f uv{0, 0};
  Vec3f color{0.8f, 0.8f, 0.8f};
};

/// Indexed triangle mesh with invariant-checked construction.
class TriangleMesh {
 public:
  TriangleMesh() = default;

  /// Appends a vertex, returning its index.
  std::uint32_t add_vertex(const Vertex& v);

  /// Appends a triangle; indices must reference existing vertices.
  void add_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c);

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t triangle_count() const { return indices_.size() / 3; }

  const std::vector<Vertex>& vertices() const { return vertices_; }
  const std::vector<std::uint32_t>& indices() const { return indices_; }

  /// Vertex indices of triangle t.
  void triangle(std::size_t t, std::uint32_t& a, std::uint32_t& b,
                std::uint32_t& c) const;

  /// Applies a rigid/affine transform to all vertex positions and (as a
  /// direction) to normals.
  void transform(const Mat4f& m);

  /// Recomputes per-vertex normals as the area-weighted average of incident
  /// face normals.
  void recompute_normals();

  /// Merges another mesh into this one (indices offset).
  void append(const TriangleMesh& other);

 private:
  std::vector<Vertex> vertices_;
  std::vector<std::uint32_t> indices_;
};

}  // namespace gaurast::mesh
