// Procedural mesh generators for examples, tests and the triangle-mode
// benchmarks (we have no asset loader dependency; meshes are built in code).
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "mesh/mesh.hpp"

namespace gaurast::mesh {

/// Unit cube centered at the origin, 12 triangles, face colors per axis.
TriangleMesh make_cube();

/// UV-sphere with the given tessellation (>= 3 each).
TriangleMesh make_sphere(int stacks, int slices, float radius = 1.0f);

/// Torus with major/minor radii.
TriangleMesh make_torus(int major_segments, int minor_segments,
                        float major_radius, float minor_radius);

/// Flat grid in the XZ plane, `cells` x `cells` quads, side length `size`.
TriangleMesh make_plane(int cells, float size);

/// Random-height terrain grid; deterministic in `seed`.
TriangleMesh make_terrain(int cells, float size, float height_scale,
                          std::uint64_t seed);

}  // namespace gaurast::mesh
