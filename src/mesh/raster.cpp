#include "mesh/raster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "mesh/texture.hpp"

namespace gaurast::mesh {

float edge_function(Vec2f a, Vec2f b, Vec2f p) {
  return (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
}

bool setup_triangle(const Vertex& v0, const Vertex& v1, const Vertex& v2,
                    const scene::Camera& camera, ScreenTriangle& out) {
  const Vec3f a = camera.to_view(v0.position);
  const Vec3f b = camera.to_view(v1.position);
  const Vec3f c = camera.to_view(v2.position);
  constexpr float kNear = 0.05f;
  if (a.z <= kNear || b.z <= kNear || c.z <= kNear) return false;

  out.p0 = camera.view_to_pixel(a);
  out.p1 = camera.view_to_pixel(b);
  out.p2 = camera.view_to_pixel(c);
  out.z0 = a.z;
  out.z1 = b.z;
  out.z2 = c.z;
  out.uv0 = v0.uv;
  out.uv1 = v1.uv;
  out.uv2 = v2.uv;

  // Headlight diffuse shading at the vertex stage (view-space normal z).
  auto lit = [&](const Vertex& v) {
    const Vec3f n_view = camera.view_rotation() * v.normal;
    const float lambert = std::max(0.0f, -n_view.z);  // light along +Z view
    const float shade = 0.30f + 0.70f * lambert;
    return v.color * shade;
  };
  out.c0 = lit(v0);
  out.c1 = lit(v1);
  out.c2 = lit(v2);

  const float double_area = edge_function(out.p0, out.p1, out.p2);
  // Cull back faces and slivers. In our convention front faces wind
  // counter-clockwise in screen space (positive area).
  if (!(double_area > 1e-6f)) return false;
  out.inv_double_area = 1.0f / double_area;  // the triangle-mode DIV
  return true;
}

TriangleFragment eval_triangle_at(const ScreenTriangle& tri, Vec2f pixel) {
  TriangleFragment frag;
  // Subtask 2: intersection detection via three edge functions.
  const float e0 = edge_function(tri.p1, tri.p2, pixel);
  const float e1 = edge_function(tri.p2, tri.p0, pixel);
  const float e2 = edge_function(tri.p0, tri.p1, pixel);
  if (e0 < 0.0f || e1 < 0.0f || e2 < 0.0f) return frag;
  frag.inside = true;
  // Subtask 3: barycentric (UV) weights from the edge values.
  frag.w0 = e0 * tri.inv_double_area;
  frag.w1 = e1 * tri.inv_double_area;
  frag.w2 = e2 * tri.inv_double_area;
  frag.depth = frag.w0 * tri.z0 + frag.w1 * tri.z1 + frag.w2 * tri.z2;
  frag.uv = tri.uv0 * frag.w0 + tri.uv1 * frag.w1 + tri.uv2 * frag.w2;
  frag.color = tri.c0 * frag.w0 + tri.c1 * frag.w1 + tri.c2 * frag.w2;
  return frag;
}

RasterOutput::RasterOutput(int width, int height, Vec3f background)
    : color(width, height, background),
      depth(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
            std::numeric_limits<float>::infinity()) {}

std::vector<ScreenTriangle> build_primitives(const TriangleMesh& mesh,
                                             const scene::Camera& camera,
                                             TriangleRasterStats* stats) {
  std::vector<ScreenTriangle> prims;
  prims.reserve(mesh.triangle_count());
  for (std::size_t t = 0; t < mesh.triangle_count(); ++t) {
    std::uint32_t ia, ib, ic;
    mesh.triangle(t, ia, ib, ic);
    ScreenTriangle tri;
    if (stats) ++stats->triangles_submitted;
    if (setup_triangle(mesh.vertices()[ia], mesh.vertices()[ib],
                       mesh.vertices()[ic], camera, tri)) {
      prims.push_back(tri);
    } else if (stats) {
      ++stats->triangles_culled;
    }
  }
  return prims;
}

RasterOutput render_mesh(const TriangleMesh& mesh, const scene::Camera& camera,
                         Vec3f background, TriangleRasterStats* stats) {
  RasterOutput out(camera.width(), camera.height(), background);
  const std::vector<ScreenTriangle> prims =
      build_primitives(mesh, camera, stats);

  const int w = camera.width();
  const int h = camera.height();
  for (const ScreenTriangle& tri : prims) {
    const float min_xf = std::min({tri.p0.x, tri.p1.x, tri.p2.x});
    const float max_xf = std::max({tri.p0.x, tri.p1.x, tri.p2.x});
    const float min_yf = std::min({tri.p0.y, tri.p1.y, tri.p2.y});
    const float max_yf = std::max({tri.p0.y, tri.p1.y, tri.p2.y});
    const int x0 = std::max(0, static_cast<int>(std::floor(min_xf)));
    const int x1 = std::min(w - 1, static_cast<int>(std::ceil(max_xf)));
    const int y0 = std::max(0, static_cast<int>(std::floor(min_yf)));
    const int y1 = std::min(h - 1, static_cast<int>(std::ceil(max_yf)));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const Vec2f pixel{static_cast<float>(x) + 0.5f,
                          static_cast<float>(y) + 0.5f};
        if (stats) ++stats->pixels_tested;
        const TriangleFragment frag = eval_triangle_at(tri, pixel);
        if (!frag.inside) continue;
        if (stats) ++stats->pixels_covered;
        const std::size_t idx = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(w) +
                                static_cast<std::size_t>(x);
        // Subtask 4: min-depth color hold (z-buffer).
        if (frag.depth < out.depth[idx]) {
          out.depth[idx] = frag.depth;
          out.color.at(x, y) = frag.color;
          if (stats) ++stats->depth_passes;
        }
      }
    }
  }
  return out;
}

RasterOutput render_mesh_textured(const TriangleMesh& mesh,
                                  const scene::Camera& camera,
                                  const Texture& texture, Vec3f background,
                                  TriangleRasterStats* stats) {
  RasterOutput out = render_mesh(mesh, camera, background, stats);
  // Second pass: re-walk covered pixels and modulate by the texture. We
  // re-rasterize rather than cache fragments to keep render_mesh lean; the
  // z-buffer from the first pass arbitrates exactly as before.
  const std::vector<ScreenTriangle> prims = build_primitives(mesh, camera);
  const int w = camera.width();
  const int h = camera.height();
  for (const ScreenTriangle& tri : prims) {
    const float min_xf = std::min({tri.p0.x, tri.p1.x, tri.p2.x});
    const float max_xf = std::max({tri.p0.x, tri.p1.x, tri.p2.x});
    const float min_yf = std::min({tri.p0.y, tri.p1.y, tri.p2.y});
    const float max_yf = std::max({tri.p0.y, tri.p1.y, tri.p2.y});
    const int x0 = std::max(0, static_cast<int>(std::floor(min_xf)));
    const int x1 = std::min(w - 1, static_cast<int>(std::ceil(max_xf)));
    const int y0 = std::max(0, static_cast<int>(std::floor(min_yf)));
    const int y1 = std::min(h - 1, static_cast<int>(std::ceil(max_yf)));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const Vec2f pixel{static_cast<float>(x) + 0.5f,
                          static_cast<float>(y) + 0.5f};
        const TriangleFragment frag = eval_triangle_at(tri, pixel);
        if (!frag.inside) continue;
        const std::size_t idx = static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(w) +
                                static_cast<std::size_t>(x);
        // Only the depth-test winner shades the pixel.
        if (frag.depth == out.depth[idx]) {
          out.color.at(x, y) = frag.color.hadamard(texture.sample(frag.uv));
        }
      }
    }
  }
  return out;
}

}  // namespace gaurast::mesh
