// Reference triangle rasterizer (the pipeline the pre-existing GPU rasterizer
// hardware implements; paper Table II left column).
//
// The per-pixel arithmetic is factored into ScreenTriangle/eval_triangle_at
// so the GauRast PE's triangle mode executes the *same* operations and tests
// can assert image equality between this software path and the hardware
// model, mirroring the paper's RTL validation against TinyRenderer.
#pragma once

#include <limits>
#include <vector>

#include "gsmath/image.hpp"
#include "mesh/mesh.hpp"
#include "scene/camera.hpp"

namespace gaurast::mesh {

/// A triangle after vertex processing, in screen space — the "primitive" the
/// rasterizer iterates over. 9 input floats characterize the geometry
/// (3 vertices x (x, y, z)), matching Table II's input width.
struct ScreenTriangle {
  Vec2f p0, p1, p2;   ///< pixel coordinates
  float z0 = 0.0f, z1 = 0.0f, z2 = 0.0f;  ///< view-space depths
  Vec2f uv0, uv1, uv2;
  Vec3f c0, c1, c2;   ///< lit vertex colors
  float inv_double_area = 0.0f;  ///< 1 / (2 * signed area); uses the DIV unit
};

/// Result of evaluating one triangle at one pixel center.
struct TriangleFragment {
  bool inside = false;
  float depth = std::numeric_limits<float>::infinity();
  Vec2f uv;
  Vec3f color;
  float w0 = 0.0f, w1 = 0.0f, w2 = 0.0f;  ///< barycentric weights
};

/// Edge function e(p) = (b-a) x (p-a); positive for p left of ab.
float edge_function(Vec2f a, Vec2f b, Vec2f p);

/// Builds the screen-space primitive from three transformed vertices.
/// Returns false (culled) for degenerate or back-facing triangles.
bool setup_triangle(const Vertex& v0, const Vertex& v1, const Vertex& v2,
                    const scene::Camera& camera, ScreenTriangle& out);

/// Evaluates coverage + attributes at a pixel center. This is the exact
/// arithmetic the PE's triangle datapath performs (subtasks 1-3 of
/// Table II); subtask 4 (min-depth color hold) is the z-buffer update done
/// by the caller.
TriangleFragment eval_triangle_at(const ScreenTriangle& tri, Vec2f pixel);

/// Full-frame depth buffer output alongside color.
struct RasterOutput {
  Image color;
  std::vector<float> depth;  ///< row-major, +inf where uncovered

  RasterOutput(int width, int height, Vec3f background);
};

/// Per-frame rasterization statistics used by cost models and tests.
struct TriangleRasterStats {
  std::uint64_t triangles_submitted = 0;
  std::uint64_t triangles_culled = 0;
  std::uint64_t pixels_tested = 0;   ///< pixel-primitive pairs evaluated
  std::uint64_t pixels_covered = 0;  ///< pairs passing the inside test
  std::uint64_t depth_passes = 0;    ///< pairs winning the depth test
};

/// Renders a mesh through the camera with a simple headlight diffuse model
/// applied at the vertex stage. Triangles crossing the near plane are
/// rejected (no clipping — adequate for the closed meshes we generate).
RasterOutput render_mesh(const TriangleMesh& mesh, const scene::Camera& camera,
                         Vec3f background = {0.05f, 0.05f, 0.08f},
                         TriangleRasterStats* stats = nullptr);

/// Vertex-stage transform + lighting only; returns the primitive stream that
/// render_mesh would rasterize. Exposed so the GauRast hardware model can
/// consume the identical primitives.
std::vector<ScreenTriangle> build_primitives(const TriangleMesh& mesh,
                                             const scene::Camera& camera,
                                             TriangleRasterStats* stats = nullptr);

class Texture;  // mesh/texture.hpp

/// render_mesh with a fragment stage that modulates the interpolated lit
/// vertex color by a texture sampled at the interpolated UV — the shading
/// the SMs perform downstream of the rasterizer's UV-weight output.
RasterOutput render_mesh_textured(const TriangleMesh& mesh,
                                  const scene::Camera& camera,
                                  const Texture& texture,
                                  Vec3f background = {0.05f, 0.05f, 0.08f},
                                  TriangleRasterStats* stats = nullptr);

}  // namespace gaurast::mesh
