// Textures for the triangle pipeline.
//
// The rasterizer's Table-II output is "UV weight + depth": texture lookup
// and shading happen downstream on the SMs in a real GPU, so texturing
// lives entirely in the software mesh pipeline — the GauRast hardware model
// is unaffected. Procedural constructors avoid any asset dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "gsmath/image.hpp"
#include "gsmath/vec.hpp"

namespace gaurast::mesh {

enum class TextureFilter { kNearest, kBilinear };
enum class TextureWrap { kRepeat, kClamp };

/// RGB float texture with nearest/bilinear sampling and repeat/clamp wrap.
class Texture {
 public:
  /// Builds from an image (copied).
  explicit Texture(Image image);

  /// Procedural checkerboard: `cells` squares per edge.
  static Texture checkerboard(int size, int cells, Vec3f a = {0.85f, 0.85f, 0.85f},
                              Vec3f b = {0.2f, 0.2f, 0.2f});

  /// Procedural UV gradient (u -> red, v -> green): makes interpolation
  /// errors visible in tests.
  static Texture uv_gradient(int size);

  /// Procedural value-noise texture, deterministic in seed.
  static Texture noise(int size, std::uint64_t seed, Vec3f base,
                       float amplitude = 0.25f);

  int width() const { return image_.width(); }
  int height() const { return image_.height(); }

  /// Samples at (u, v); (0,0) is the first texel's corner.
  Vec3f sample(Vec2f uv, TextureFilter filter = TextureFilter::kBilinear,
               TextureWrap wrap = TextureWrap::kRepeat) const;

 private:
  float wrap_coord(float x, int extent, TextureWrap wrap) const;
  Vec3f texel(int x, int y) const;

  Image image_;
};

}  // namespace gaurast::mesh
