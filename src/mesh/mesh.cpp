#include "mesh/mesh.hpp"

#include "common/error.hpp"

namespace gaurast::mesh {

std::uint32_t TriangleMesh::add_vertex(const Vertex& v) {
  vertices_.push_back(v);
  return static_cast<std::uint32_t>(vertices_.size() - 1);
}

void TriangleMesh::add_triangle(std::uint32_t a, std::uint32_t b,
                                std::uint32_t c) {
  const auto n = static_cast<std::uint32_t>(vertices_.size());
  GAURAST_CHECK_MSG(a < n && b < n && c < n,
                    "triangle (" << a << "," << b << "," << c
                                 << ") references missing vertex; have " << n);
  indices_.push_back(a);
  indices_.push_back(b);
  indices_.push_back(c);
}

void TriangleMesh::triangle(std::size_t t, std::uint32_t& a, std::uint32_t& b,
                            std::uint32_t& c) const {
  GAURAST_CHECK(t < triangle_count());
  a = indices_[3 * t];
  b = indices_[3 * t + 1];
  c = indices_[3 * t + 2];
}

void TriangleMesh::transform(const Mat4f& m) {
  for (Vertex& v : vertices_) {
    v.position = m.transform_point(v.position);
    const Vec3f n = m.transform_dir(v.normal);
    const float len = n.norm();
    if (len > 0.0f) v.normal = n / len;
  }
}

void TriangleMesh::recompute_normals() {
  for (Vertex& v : vertices_) v.normal = {0, 0, 0};
  for (std::size_t t = 0; t < triangle_count(); ++t) {
    std::uint32_t a, b, c;
    triangle(t, a, b, c);
    const Vec3f e1 = vertices_[b].position - vertices_[a].position;
    const Vec3f e2 = vertices_[c].position - vertices_[a].position;
    const Vec3f fn = e1.cross(e2);  // magnitude = 2x area (area weighting)
    vertices_[a].normal += fn;
    vertices_[b].normal += fn;
    vertices_[c].normal += fn;
  }
  for (Vertex& v : vertices_) {
    const float len = v.normal.norm();
    v.normal = len > 0.0f ? v.normal / len : Vec3f{0, 1, 0};
  }
}

void TriangleMesh::append(const TriangleMesh& other) {
  const auto offset = static_cast<std::uint32_t>(vertices_.size());
  for (const Vertex& v : other.vertices_) vertices_.push_back(v);
  for (std::uint32_t idx : other.indices_) indices_.push_back(idx + offset);
}

}  // namespace gaurast::mesh
