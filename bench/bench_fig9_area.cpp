// Reproduces paper Fig. 9: layout and area breakdown of the enhanced
// rasterizer prototype (16 PEs, 28 nm), plus the SoC-integration figures
// from Sec. V-A (enhanced logic ~0.2% of the Orin NX SoC) and the typical
// module power from the PrimePower analysis (~1.7 W).

#include "bench_util.hpp"
#include "core/area.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout, "Fig. 9 — Layout & area breakdown (16-PE module, 28nm)");

  const core::RasterizerConfig proto = core::RasterizerConfig::prototype16();
  const core::AreaModel area(proto);
  const core::ModuleArea m = area.module_area();

  TablePrinter table({"Component", "Area", "Share", "Paper"});
  table.add_row({"PE block (16 PEs + staging)",
                 format_fixed(m.pe_block_um2 * 1e-6, 3) + " mm2",
                 format_percent(m.pe_block_share()), "89.2%"});
  table.add_row({"Tile buffers",
                 format_fixed(m.tile_buffers_um2 * 1e-6, 3) + " mm2",
                 format_percent(m.tile_buffers_share()), "10.1%"});
  table.add_row({"Controller",
                 format_fixed(m.controller_um2 * 1e-6, 4) + " mm2",
                 format_percent(m.controller_share()), "0.1%"});
  table.add_row({"Module total", format_fixed(m.total_mm2(), 3) + " mm2", "100%",
                 "1.57mm x 1.55mm (2.43 mm2)"});
  table.print(std::cout);

  std::cout << "\nLayout: " << format_fixed(m.layout_width_mm(), 2) << " mm x "
            << format_fixed(m.layout_height_mm(), 2) << " mm\n";

  print_banner(std::cout, "Fig. 9 (right) — Breakdown of one PE");
  TablePrinter pe_table({"Logic", "Area (um2)", "Share", "Paper"});
  pe_table.add_row(
      {"Shared + triangle (pre-existing)",
       format_fixed(m.pe.shared_um2 + m.pe.triangle_um2, 0),
       format_percent(1.0 - m.pe.enhanced_share()), "79%"});
  pe_table.add_row({"Gaussian enhancement (2 add, 1 mul, 1 exp)",
                    format_fixed(m.pe.gaussian_um2, 0),
                    format_percent(m.pe.enhanced_share()), "21%"});
  pe_table.print(std::cout);

  print_banner(std::cout, "Sec. V-A — SoC integration & power");
  const gpu::GpuConfig host = gpu::orin_nx_10w();
  for (const char* label : {"scaled300", "scaled240"}) {
    const core::RasterizerConfig cfg =
        std::string(label) == "scaled300" ? core::RasterizerConfig::scaled300()
                                          : core::RasterizerConfig::scaled240();
    const core::AreaModel scaled(cfg);
    std::cout << label << ": enhanced area "
              << format_fixed(scaled.enhanced_mm2(), 2) << " mm2 @28nm, "
              << format_fixed(scaled.enhanced_soc_mm2(), 2)
              << " mm2 at SoC node = "
              << format_percent(scaled.soc_fraction(host), 2)
              << " of the Orin NX die (paper: ~0.2%)\n";
  }
  const core::EnergyModel energy(proto);
  std::cout << "Typical 16-PE module power: "
            << format_fixed(energy.typical_module_power_w(), 2)
            << " W (paper: 1.7 W)\n";
  return 0;
}
