// Render-service throughput scaling benchmark.
//
// Default mode drives the same closed-loop generated workload through
// RenderService at a sweep of worker counts and reports frames/sec, tail
// latency, and worker utilization per point, plus the speedup over the
// 1-worker baseline. This is the serving-side counterpart of the paper's
// per-frame FPS tables: it measures how far inter-frame parallelism takes
// the reference pipeline on a multi-core host.
//
// --pipeline switches to the execution-mode comparison: the same workload
// runs once monolithic and once stage-pipelined at EQUAL total worker
// count (monolithic gets stage_workers.total() pool workers), reporting
// both modes plus the pipelined/monolithic throughput ratio and the
// pipelined run's per-stage breakdown. --scene-size pins every request to
// one scene class (e.g. the canonical 20000-Gaussian scene) so the
// comparison isolates execution mode, not scene mix.
//
// Each measured point runs `--warmup` unmeasured full workload passes
// followed by `--repeat` measured passes (every pass on a fresh,
// scene-prewarmed service, so pass timing measures serving, not scene
// generation or stale queue state); the reported throughput is the mean
// across measured passes and the latency columns come from the
// best-throughput pass. `--json` emits machine-readable reports consumed
// by tools/bench_pipeline.sh:
//
//   default:    {"schema":"gaurast-bench-service/v1","backend":...,
//                "kernel":...,"jobs":...,"width":...,"height":...,
//                "seed":...,"warmup":...,"repeat":...,
//                "points":[{"workers":N,"throughput_mean_fps":...,
//                           "throughput_best_fps":...,"speedup":...,
//                           "stats":{...}}]}
//   --pipeline: {"schema":"gaurast-bench-service-pipeline/v1",
//                ...same config fields...,"scene_size":...,
//                "stage_workers":"P,S,R","total_workers":N,
//                "modes":[{"mode":"monolithic",...},
//                         {"mode":"pipelined",...}],
//                "derived":{"pipelined_speedup":...}}
//
//   bench_service_throughput [--jobs N] [--backend NAME]
//                            [--kernel reference|fast]
//                            [--warmup N] [--repeat N]
//                            [--width W] [--height H] [--seed S]
//                            [--scene-size G]
//                            [--pipeline] [--stage-workers P,S,R]
//                            [--json out.json]
//
// --backend takes any name in the engine registry (`gaurast_cli backends`);
// --kernel selects the Step-3 software kernel on backends whose
// capabilities support kernel selection; --pipeline requires a backend
// whose capabilities support stage-pipelined execution.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "pipeline/rasterize.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;

std::vector<int> worker_sweep() {
  const int max_workers =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep;
  for (int w = 1; w < max_workers; w *= 2) sweep.push_back(w);
  sweep.push_back(max_workers);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_service_throughput");
  cli.add_flag("jobs", "24", "frame requests per workload pass");
  cli.add_flag("backend", "sw",
               "Step-3 executor: " + engine::join_names(engine::names(), "|"));
  cli.add_flag("kernel", "reference",
               "Step-3 software kernel (reference|fast) on backends that "
               "support kernel selection");
  cli.add_flag("warmup", "1", "unmeasured workload passes per sweep point");
  cli.add_flag("repeat", "3", "measured workload passes per sweep point");
  cli.add_flag("width", "128", "render width");
  cli.add_flag("height", "96", "render height");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("scene-size", "0",
               "pin every request to one scene class of this many Gaussians "
               "(0 = default mixed sizes)");
  cli.add_flag("pipeline", "false",
               "compare monolithic vs stage-pipelined execution at equal "
               "total worker count instead of sweeping worker counts");
  cli.add_flag("stage-workers", "1,1,2",
               "pipelined worker split preprocess,sort,raster "
               "(with --pipeline; monolithic runs with the same total)");
  cli.add_flag("queue", "64",
               "service queue capacity (request queue; per-stage queues "
               "under --pipeline)");
  cli.add_flag("json", "", "write machine-readable results to this path");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Resolve --backend against the registry up front so a typo fails with
    // the enumerating diagnostic before any scene generation.
    const std::string backend = cli.get_string("backend");
    const engine::BackendInfo backend_info = engine::registry().info(backend);
    const pipeline::RasterKernel kernel =
        pipeline::raster_kernel_from_string(cli.get_string("kernel"));
    if (kernel != pipeline::RasterKernel::kReference &&
        !backend_info.capabilities.supports_kernel_select) {
      // Same shape as gaurast_cli's capability diagnostics: name the
      // offending backend and enumerate the backends that do accept it.
      const std::vector<std::string> accepting = engine::registry().names_where(
          [](const engine::Capabilities& c) { return c.supports_kernel_select; });
      throw CliParseError("--kernel does not apply to --backend " + backend +
                          " (its Step 3 does not run the software raster "
                          "kernels); backends that accept it: " +
                          engine::join_names(accepting));
    }
    const int warmup = cli.get_int("warmup");
    if (warmup < 0) throw CliParseError("--warmup must be >= 0");
    const int repeat = cli.get_positive_int("repeat");
    const bool compare_pipeline = cli.get_bool("pipeline");
    const runtime::StageWorkers stage_workers =
        runtime::stage_workers_from_string(cli.get_string("stage-workers"));
    if (compare_pipeline &&
        !backend_info.capabilities.supports_stage_pipeline) {
      const std::vector<std::string> accepting = engine::registry().names_where(
          [](const engine::Capabilities& c) {
            return c.supports_stage_pipeline;
          });
      throw CliParseError("--pipeline does not apply to --backend " + backend +
                          " (its stages cannot be invoked separately); "
                          "backends that accept it: " +
                          engine::join_names(accepting));
    }
    const int scene_size = cli.get_int("scene-size");
    if (scene_size < 0) throw CliParseError("--scene-size must be >= 0");

    runtime::WorkloadConfig workload;
    workload.seed = cli.get_uint64("seed");
    workload.jobs = cli.get_positive_int("jobs");
    workload.width = cli.get_positive_int("width");
    workload.height = cli.get_positive_int("height");
    workload.arrival = runtime::ArrivalModel::kClosedLoop;
    if (scene_size > 0) {
      workload.scene_sizes = {static_cast<std::uint64_t>(scene_size)};
    }

    // Generate each scene class once up front; per-pass services get their
    // caches pre-warmed with copies so pass timing measures serving, not
    // repeated scene generation.
    std::map<std::string, gaurast::scene::GaussianScene> master_scenes;
    for (const runtime::WorkloadRequest& req :
         runtime::generate_workload(workload)) {
      if (master_scenes.count(req.scene_key)) continue;
      gaurast::scene::GeneratorParams params;
      params.gaussian_count = req.gaussian_count;
      params.seed = req.scene_seed;
      master_scenes.emplace(req.scene_key,
                            gaurast::scene::generate_scene(params));
    }

    // One full workload pass over a fresh, scene-prewarmed service.
    const auto run_pass = [&](const runtime::ServiceConfig& base_config) {
      runtime::RenderService service(base_config);
      for (const auto& [key, master] : master_scenes) {
        service.scene(key, [&master = master] { return master; });
      }
      return run_workload(service, workload).stats;
    };

    // One measured point: warmup + repeat passes accumulated into
    // mean/best throughput, latency columns from the best pass.
    struct MeasuredPoint {
      double fps_sum = 0.0;
      double fps_mean = 0.0;
      double fps_best = 0.0;
      runtime::ServiceStats best_stats;

      void add_pass(const runtime::ServiceStats& stats) {
        fps_sum += stats.throughput_fps;
        if (stats.throughput_fps >= fps_best) {
          fps_best = stats.throughput_fps;
          best_stats = stats;
        }
      }
      void finalize(int passes) {
        fps_mean = fps_sum / static_cast<double>(passes);
      }
    };
    const auto measure = [&](const runtime::ServiceConfig& base_config) {
      MeasuredPoint point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        const runtime::ServiceStats stats = run_pass(base_config);
        if (pass < 0) continue;  // warmup pass: timing discarded
        point.add_pass(stats);
      }
      point.finalize(repeat);
      return point;
    };

    const std::string json_path = cli.get_string("json");
    std::ostringstream json;

    if (compare_pipeline) {
      print_banner(std::cout,
                   "Execution modes, backend " + backend + ", kernel " +
                       pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes, " +
                       std::to_string(stage_workers.total()) +
                       " total workers (pipelined split " +
                       to_string(stage_workers) + ")");
      runtime::ServiceConfig monolithic;
      monolithic.workers = stage_workers.total();
      monolithic.backend = backend;
      monolithic.renderer.kernel = kernel;
      monolithic.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));
      runtime::ServiceConfig pipelined = monolithic;
      pipelined.mode = runtime::ExecutionMode::kPipelined;
      pipelined.stage_workers = stage_workers;

      // The two modes run in interleaved pairs (mono, pipe, mono, pipe, …)
      // rather than as two grouped blocks, so slow machine-state drift
      // (frequency scaling, page cache) lands on both sides of the ratio
      // instead of biasing whichever mode ran last.
      MeasuredPoint mono_point;
      MeasuredPoint pipe_point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        const runtime::ServiceStats mono_stats = run_pass(monolithic);
        const runtime::ServiceStats pipe_stats = run_pass(pipelined);
        if (pass < 0) continue;
        mono_point.add_pass(mono_stats);
        pipe_point.add_pass(pipe_stats);
      }
      mono_point.finalize(repeat);
      pipe_point.finalize(repeat);
      const double speedup = mono_point.fps_mean > 0.0
                                 ? pipe_point.fps_mean / mono_point.fps_mean
                                 : 0.0;

      TablePrinter table({"Mode", "Workers", "Throughput", "p50", "p95",
                          "p99", "Utilization"});
      const auto mode_row = [&table](const std::string& name, int workers,
                                     const MeasuredPoint& point) {
        table.add_row({name, std::to_string(workers),
                       format_fixed(point.fps_mean, 1) + " fps",
                       format_time_ms(point.best_stats.latency_p50_ms),
                       format_time_ms(point.best_stats.latency_p95_ms),
                       format_time_ms(point.best_stats.latency_p99_ms),
                       format_percent(point.best_stats.worker_utilization)});
      };
      mode_row("monolithic", stage_workers.total(), mono_point);
      mode_row("pipelined", stage_workers.total(), pipe_point);
      table.print(std::cout);
      std::cout << "Pipelined/monolithic throughput: "
                << format_ratio(speedup, 3) << '\n';

      const auto mode_json = [](const std::string& name,
                                const MeasuredPoint& point) {
        return "{\"mode\":\"" + name + "\",\"throughput_mean_fps\":" +
               format_fixed(point.fps_mean, 4) + ",\"throughput_best_fps\":" +
               format_fixed(point.fps_best, 4) + ",\"stats\":" +
               runtime::service_stats_json(point.best_stats) + "}";
      };
      json << "{\"schema\":\"gaurast-bench-service-pipeline/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"scene_size\":" << scene_size
           << ",\"stage_workers\":\"" << to_string(stage_workers)
           << "\",\"total_workers\":" << stage_workers.total()
           << ",\"modes\":[" << mode_json("monolithic", mono_point) << ","
           << mode_json("pipelined", pipe_point) << "]"
           << ",\"derived\":{\"pipelined_speedup\":"
           << format_fixed(speedup, 4) << "}}";
    } else {
      print_banner(std::cout,
                   "Service throughput, backend " + backend + " (" +
                       backend_info.description + "), kernel " +
                       pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes per point");
      TablePrinter table({"Workers", "Throughput", "Speedup", "p50", "p95",
                          "p99", "Utilization"});
      std::vector<std::string> json_rows;
      double baseline_fps = 0.0;
      for (const int workers : worker_sweep()) {
        runtime::ServiceConfig config;
        config.workers = workers;
        config.backend = backend;
        config.renderer.kernel = kernel;
        config.queue_capacity =
            static_cast<std::size_t>(cli.get_positive_int("queue"));
        const MeasuredPoint point = measure(config);
        if (workers == 1) baseline_fps = point.fps_mean;
        const double speedup =
            baseline_fps > 0.0 ? point.fps_mean / baseline_fps : 0.0;
        table.add_row({std::to_string(workers),
                       format_fixed(point.fps_mean, 1) + " fps",
                       format_ratio(speedup, 2),
                       format_time_ms(point.best_stats.latency_p50_ms),
                       format_time_ms(point.best_stats.latency_p95_ms),
                       format_time_ms(point.best_stats.latency_p99_ms),
                       format_percent(point.best_stats.worker_utilization)});
        json_rows.push_back("{\"workers\":" + std::to_string(workers) +
                            ",\"throughput_mean_fps\":" +
                            format_fixed(point.fps_mean, 4) +
                            ",\"throughput_best_fps\":" +
                            format_fixed(point.fps_best, 4) +
                            ",\"speedup\":" + format_fixed(speedup, 4) +
                            ",\"stats\":" +
                            runtime::service_stats_json(point.best_stats) +
                            "}");
      }
      table.print(std::cout);
      json << "{\"schema\":\"gaurast-bench-service/v1\",\"backend\":\""
           << backend << "\",\"kernel\":\"" << pipeline::to_string(kernel)
           << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"points\":[";
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        json << (i ? "," : "") << json_rows[i];
      }
      json << "]}";
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path, std::ios::trunc);
      if (!os.good()) {
        throw CliParseError("cannot write --json file '" + json_path + "'");
      }
      os << json.str() << '\n';
      std::cout << "Wrote " << json_path << '\n';
    }
    return 0;
  } catch (const CliParseError& e) {
    std::cerr << "bench_service_throughput: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
