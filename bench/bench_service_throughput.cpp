// Render-service throughput scaling benchmark.
//
// Default mode drives the same closed-loop generated workload through
// RenderService at a sweep of worker counts and reports frames/sec, tail
// latency, and worker utilization per point, plus the speedup over the
// 1-worker baseline. This is the serving-side counterpart of the paper's
// per-frame FPS tables: it measures how far inter-frame parallelism takes
// the reference pipeline on a multi-core host.
//
// --pipeline switches to the execution-mode comparison: the same workload
// runs once monolithic and once stage-pipelined at EQUAL total worker
// count (monolithic gets stage_workers.total() pool workers), reporting
// both modes plus the pipelined/monolithic throughput ratio and the
// pipelined run's per-stage breakdown. --scene-size pins every request to
// one scene class (e.g. the canonical 20000-Gaussian scene) so the
// comparison isolates execution mode, not scene mix.
//
// --listen-loopback measures what the wire costs: the same request list
// runs once in-process (client threads calling RenderService::submit
// directly) and once over a real loopback TCP socket through net::Server /
// net::Client (full frames, image payloads included), at equal worker and
// client counts. The report includes the wire/in-process throughput ratio,
// so protocol+socket overhead is a tracked number instead of folklore.
//
// --fleet N measures what the router costs: the same request list runs
// once direct (each client dials the scene's owner shard itself, using the
// same rendezvous hash the router uses) and once routed (every frame
// through the cluster::Router front-end), over an identical fleet of N
// loopback shards. The report includes the routed/direct throughput ratio
// and the router's own per-frame route-overhead numbers, so the price of
// the fleet front-end is a tracked number instead of folklore.
//
// --faults measures what failures cost: the same request list, every
// request carrying a --deadline-ms budget, runs once clean and once with
// --fault-plan armed at the router's forwarding seam (cluster.forward),
// over an identical routed fleet of 2 loopback shards. The report carries
// both passes' tail latency and outcome counts (ok / deadline-exceeded /
// unavailable) plus the faulted/clean throughput ratio and the faulted
// pass's deadline hit rate, so the price of retries, failovers, and
// deadline shedding under a known fault rate is a tracked number instead
// of folklore. The plan is seeded, so injections are reproducible.
//
// --scene-sweep measures what a scene-store byte budget costs: a widened
// mix of scene classes runs once against an unbounded store and once
// against a --scene-budget-mb budget small enough that the working set
// does not fit (default: half the unbounded pass's peak resident bytes),
// so the budgeted pass pays real LRU evictions and re-admissions. The
// report carries both passes' throughput and tails plus the budgeted
// pass's hit rate, eviction count, and resident/peak byte high-water
// marks, so the price of bounding scene memory is a tracked number
// instead of folklore.
//
// Each measured point runs `--warmup` unmeasured full workload passes
// followed by `--repeat` measured passes (every pass on a fresh,
// scene-prewarmed service, so pass timing measures serving, not scene
// generation or stale queue state); the reported throughput is the mean
// across measured passes and the latency columns come from the
// best-throughput pass. `--json` emits machine-readable reports consumed
// by tools/bench_pipeline.sh:
//
//   default:    {"schema":"gaurast-bench-service/v1","backend":...,
//                "kernel":...,"jobs":...,"width":...,"height":...,
//                "seed":...,"warmup":...,"repeat":...,
//                "points":[{"workers":N,"throughput_mean_fps":...,
//                           "throughput_best_fps":...,"speedup":...,
//                           "stats":{...}}]}
//   --pipeline: {"schema":"gaurast-bench-service-pipeline/v1",
//                ...same config fields...,"scene_size":...,
//                "stage_workers":"P,S,R","total_workers":N,
//                "modes":[{"mode":"monolithic",...},
//                         {"mode":"pipelined",...}],
//                "derived":{"pipelined_speedup":...}}
//   --listen-loopback:
//               {"schema":"gaurast-bench-service-wire/v1",
//                ...same config fields...,"workers":W,"clients":C,
//                "modes":[{"mode":"inproc",...},{"mode":"wire",...}],
//                "derived":{"wire_relative_throughput":...}}
//   --fleet N:  {"schema":"gaurast-bench-service-fleet/v1",
//                ...same config fields...,"shards":N,"workers":W,
//                "clients":C,
//                "modes":[{"mode":"direct",...},
//                         {"mode":"routed",...,
//                          "route_overhead_mean_ms":...,
//                          "route_overhead_p95_ms":...}],
//                "derived":{"routed_relative_throughput":...}}
//   --faults:   {"schema":"gaurast-bench-service-faults/v1",
//                ...same config fields...,"shards":2,"workers":W,
//                "clients":C,"deadline_ms":D,"fault_plan":"...",
//                "modes":[{"mode":"clean",...,"ok":...,
//                          "deadline_exceeded":...,"unavailable":...,
//                          "deadline_hit_rate":...,"retries":...,
//                          "failovers":...},
//                         {"mode":"faulted",...}],
//                "derived":{"faulted_relative_throughput":...,
//                           "faulted_deadline_hit_rate":...,
//                           "faulted_p99_ms":...}}
//   --scene-sweep:
//               {"schema":"gaurast-bench-service-scenes/v1",
//                ...same config fields...,"workers":W,
//                "scene_classes":N,"budget_bytes":B,
//                "modes":[{"mode":"unbounded",...},
//                         {"mode":"budgeted",...}],
//                "derived":{"budgeted_relative_throughput":...,
//                           "budgeted_hit_rate":...,
//                           "budgeted_evictions":...,
//                           "budgeted_peak_resident_bytes":...,
//                           "budgeted_resident_bytes":...,
//                           "budgeted_resident_under_budget":true|false}}
//
// Peak resident bytes may transiently exceed the budget: eviction never
// frees a scene that queued or in-flight renders still pin. The enforced
// number is the post-drain residency (budgeted_resident_under_budget).
//
//   bench_service_throughput [--jobs N] [--backend NAME]
//                            [--kernel reference|fast]
//                            [--warmup N] [--repeat N]
//                            [--width W] [--height H] [--seed S]
//                            [--scene-size G]
//                            [--pipeline] [--stage-workers P,S,R]
//                            [--listen-loopback] [--clients C] [--workers W]
//                            [--fleet N]
//                            [--faults] [--deadline-ms D] [--fault-plan SPEC]
//                            [--scene-sweep] [--scene-budget-mb M]
//                            [--json out.json]
//
// --backend takes any name in the engine registry (`gaurast_cli backends`);
// --kernel selects the Step-3 software kernel on backends whose
// capabilities support kernel selection; --pipeline requires a backend
// whose capabilities support stage-pipelined execution.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/host_db.hpp"
#include "cluster/router.hpp"
#include "common/cli.hpp"
#include "common/fault.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "pipeline/rasterize.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"
#include "scene/generator.hpp"
#include "scene/store.hpp"

namespace {

using namespace gaurast;

std::vector<int> worker_sweep() {
  const int max_workers =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep;
  for (int w = 1; w < max_workers; w *= 2) sweep.push_back(w);
  sweep.push_back(max_workers);
  return sweep;
}

/// Linearly interpolated percentile (p in [0, 1]); sorts in place.
double percentile_ms(std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_service_throughput");
  cli.add_flag("jobs", "24", "frame requests per workload pass");
  cli.add_flag("backend", "sw",
               "Step-3 executor: " + engine::join_names(engine::names(), "|"));
  cli.add_flag("kernel", "reference",
               "Step-3 software kernel (reference|fast) on backends that "
               "support kernel selection");
  cli.add_flag("warmup", "1", "unmeasured workload passes per sweep point");
  cli.add_flag("repeat", "3", "measured workload passes per sweep point");
  cli.add_flag("width", "128", "render width");
  cli.add_flag("height", "96", "render height");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("scene-size", "0",
               "pin every request to one scene class of this many Gaussians "
               "(0 = default mixed sizes)");
  cli.add_flag("pipeline", "false",
               "compare monolithic vs stage-pipelined execution at equal "
               "total worker count instead of sweeping worker counts");
  cli.add_flag("stage-workers", "1,1,2",
               "pipelined worker split preprocess,sort,raster "
               "(with --pipeline; monolithic runs with the same total)");
  cli.add_flag("queue", "64",
               "service queue capacity (request queue; per-stage queues "
               "under --pipeline)");
  cli.add_flag("listen-loopback", "false",
               "compare in-process submission vs the same requests over a "
               "real loopback TCP socket (net::Server / net::Client)");
  cli.add_flag("clients", "4",
               "client threads driving each pass (with --listen-loopback)");
  cli.add_flag("workers", "2",
               "service worker count (with --listen-loopback; per shard "
               "with --fleet)");
  cli.add_flag("fleet", "0",
               "compare direct-to-shard vs routed-through-cluster::Router "
               "serving over this many loopback shards (0 = off)");
  cli.add_flag("faults", "false",
               "compare clean vs fault-injected routed serving over 2 "
               "loopback shards; every request carries --deadline-ms and "
               "the faulted pass arms --fault-plan");
  cli.add_flag("deadline-ms", "250",
               "per-request deadline budget (with --faults)");
  cli.add_flag("fault-plan",
               "seed=11;cluster.forward:error:p=0.01;"
               "cluster.forward:delay=10:p=0.05",
               "GAURAST_FAULT_PLAN spec armed during the faulted pass "
               "(with --faults); keep it to router-internal points like "
               "cluster.forward or the bench's own clients misbehave");
  cli.add_flag("scene-sweep", "false",
               "compare an unbounded scene store vs a --scene-budget-mb "
               "byte budget over a widened scene-class mix that does not "
               "fit under the budget");
  cli.add_flag("scene-budget-mb", "0",
               "scene-store byte budget in MiB for the budgeted "
               "--scene-sweep pass (0 = half the unbounded pass's peak "
               "resident bytes)");
  cli.add_flag("json", "", "write machine-readable results to this path");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Resolve --backend against the registry up front so a typo fails with
    // the enumerating diagnostic before any scene generation.
    const std::string backend = cli.get_string("backend");
    const engine::BackendInfo backend_info = engine::registry().info(backend);
    const pipeline::RasterKernel kernel =
        pipeline::raster_kernel_from_string(cli.get_string("kernel"));
    if (kernel != pipeline::RasterKernel::kReference &&
        !backend_info.capabilities.supports_kernel_select) {
      // Same shape as gaurast_cli's capability diagnostics: name the
      // offending backend and enumerate the backends that do accept it.
      const std::vector<std::string> accepting = engine::registry().names_where(
          [](const engine::Capabilities& c) { return c.supports_kernel_select; });
      throw CliParseError("--kernel does not apply to --backend " + backend +
                          " (its Step 3 does not run the software raster "
                          "kernels); backends that accept it: " +
                          engine::join_names(accepting));
    }
    const int warmup = cli.get_int("warmup");
    if (warmup < 0) throw CliParseError("--warmup must be >= 0");
    const int repeat = cli.get_positive_int("repeat");
    const bool compare_pipeline = cli.get_bool("pipeline");
    const bool listen_loopback = cli.get_bool("listen-loopback");
    const int fleet_shards = cli.get_int("fleet");
    if (fleet_shards < 0) throw CliParseError("--fleet must be >= 0");
    const bool run_faults = cli.get_bool("faults");
    const bool scene_sweep = cli.get_bool("scene-sweep");
    if ((listen_loopback ? 1 : 0) + (compare_pipeline ? 1 : 0) +
            (fleet_shards > 0 ? 1 : 0) + (run_faults ? 1 : 0) +
            (scene_sweep ? 1 : 0) >
        1) {
      throw CliParseError(
          "--listen-loopback, --pipeline, --fleet, --faults, and "
          "--scene-sweep are separate comparisons; run them as separate "
          "invocations");
    }
    const runtime::StageWorkers stage_workers =
        runtime::stage_workers_from_string(cli.get_string("stage-workers"));
    if (compare_pipeline &&
        !backend_info.capabilities.supports_stage_pipeline) {
      const std::vector<std::string> accepting = engine::registry().names_where(
          [](const engine::Capabilities& c) {
            return c.supports_stage_pipeline;
          });
      throw CliParseError("--pipeline does not apply to --backend " + backend +
                          " (its stages cannot be invoked separately); "
                          "backends that accept it: " +
                          engine::join_names(accepting));
    }
    const int scene_size = cli.get_int("scene-size");
    if (scene_size < 0) throw CliParseError("--scene-size must be >= 0");

    runtime::WorkloadConfig workload;
    workload.seed = cli.get_uint64("seed");
    workload.jobs = cli.get_positive_int("jobs");
    workload.width = cli.get_positive_int("width");
    workload.height = cli.get_positive_int("height");
    workload.arrival = runtime::ArrivalModel::kClosedLoop;
    if (scene_size > 0) {
      workload.scene_sizes = {static_cast<std::uint64_t>(scene_size)};
    } else if (scene_sweep) {
      // Widen the class mix so the budgeted pass genuinely cannot hold
      // every scene at once and must evict.
      workload.scene_sizes = {2000, 4000, 8000, 12000, 16000, 20000};
    }

    // Generate each scene class once up front; per-pass services get their
    // caches pre-warmed with copies so pass timing measures serving, not
    // repeated scene generation.
    std::map<std::string, gaurast::scene::GaussianScene> master_scenes;
    for (const runtime::WorkloadRequest& req :
         runtime::generate_workload(workload)) {
      if (master_scenes.count(req.scene_key)) continue;
      gaurast::scene::GeneratorParams params;
      params.gaussian_count = req.gaussian_count;
      params.seed = req.scene_seed;
      master_scenes.emplace(req.scene_key,
                            gaurast::scene::generate_scene(params));
    }
    // Every service in this bench resolves scenes through the shared
    // master map: a cache miss copies the pregenerated scene instead of
    // regenerating it, so pass timing measures serving (and, under a
    // store budget, re-admission), never scene synthesis.
    const auto master_source = std::make_shared<const scene::FunctionSource>(
        [&master_scenes](const std::string& key) {
          return master_scenes.at(key);
        });

    // One full workload pass over a fresh, scene-prewarmed service.
    const auto run_pass = [&](const runtime::ServiceConfig& base_config) {
      runtime::ServiceConfig pass_config = base_config;
      pass_config.scene_source = master_source;
      runtime::RenderService service(pass_config);
      for (const auto& [key, master] : master_scenes) {
        (void)master;
        service.scene(key);
      }
      return run_workload(service, workload).stats;
    };

    // One measured point: warmup + repeat passes accumulated into
    // mean/best throughput, latency columns from the best pass.
    struct MeasuredPoint {
      double fps_sum = 0.0;
      double fps_mean = 0.0;
      double fps_best = 0.0;
      runtime::ServiceStats best_stats;

      void add_pass(const runtime::ServiceStats& stats) {
        fps_sum += stats.throughput_fps;
        if (stats.throughput_fps >= fps_best) {
          fps_best = stats.throughput_fps;
          best_stats = stats;
        }
      }
      void finalize(int passes) {
        fps_mean = fps_sum / static_cast<double>(passes);
      }
    };
    const auto measure = [&](const runtime::ServiceConfig& base_config) {
      MeasuredPoint point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        const runtime::ServiceStats stats = run_pass(base_config);
        if (pass < 0) continue;  // warmup pass: timing discarded
        point.add_pass(stats);
      }
      point.finalize(repeat);
      return point;
    };

    const std::string json_path = cli.get_string("json");
    std::ostringstream json;

    if (listen_loopback) {
      const int clients = cli.get_positive_int("clients");
      const int workers = cli.get_positive_int("workers");
      runtime::ServiceConfig config;
      config.workers = workers;
      config.backend = backend;
      config.renderer.kernel = kernel;
      config.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));
      config.scene_source = master_source;

      // One request list shared by both sides: the wire pass sends these
      // frames verbatim; the in-process pass submits their exact
      // (scene, camera) equivalents. Image payloads are requested so the
      // wire pass pays the full serving cost, response serialization and
      // socket bandwidth included.
      std::vector<net::RenderRequest> requests;
      for (const runtime::WorkloadRequest& req :
           runtime::generate_workload(workload)) {
        net::RenderRequest wire = net::default_render_request(
            req.gaussian_count, req.scene_seed, workload.width,
            workload.height);
        wire.request_id = static_cast<std::uint64_t>(requests.size()) + 1;
        wire.flags = net::kWantImage;
        requests.push_back(std::move(wire));
      }

      const auto prewarm = [&](runtime::RenderService& service) {
        for (const auto& [key, master] : master_scenes) {
          (void)master;
          service.scene(key);
        }
      };

      // In-process side: C closed-loop client threads calling submit()
      // directly; throughput/latency come from the service stats.
      const auto run_inproc_pass = [&]() {
        runtime::RenderService service(config);
        prewarm(service);
        std::vector<std::thread> threads;
        for (int t = 0; t < clients; ++t) {
          threads.emplace_back([&, t] {
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < requests.size(); i += static_cast<std::size_t>(clients)) {
              const net::RenderRequest& wire = requests[i];
              runtime::ScenePtr scene = service.scene(wire.scene_key());
              service.submit({std::move(scene), wire.camera()}).get();
            }
          });
        }
        for (std::thread& t : threads) t.join();
        return service.stats();
      };

      struct WirePass {
        double fps = 0.0;
        std::vector<double> latencies_ms;  ///< client-observed round trips
      };

      // Wire side: the same service behind a real loopback net::Server, C
      // client threads each owning a blocking net::Client. kOverloaded is
      // the documented shed signal, so clients back off and retry rather
      // than counting a rejection as a served frame.
      const auto run_wire_pass = [&]() {
        runtime::RenderService service(config);
        prewarm(service);
        net::Server server(service, {});
        server.start();
        std::vector<std::vector<double>> latencies(
            static_cast<std::size_t>(clients));
        std::atomic<int> failed{0};
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int t = 0; t < clients; ++t) {
          threads.emplace_back([&, t] {
            net::Client client("127.0.0.1", server.port());
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < requests.size(); i += static_cast<std::size_t>(clients)) {
              for (;;) {
                const auto start = std::chrono::steady_clock::now();
                const net::RenderResponse resp = client.render(requests[i]);
                if (resp.status == net::RenderStatus::kOverloaded) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  continue;
                }
                if (resp.status != net::RenderStatus::kOk) {
                  failed.fetch_add(1);
                  break;
                }
                latencies[static_cast<std::size_t>(t)].push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
                break;
              }
            }
          });
        }
        for (std::thread& t : threads) t.join();
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        server.stop();
        if (failed.load() > 0) {
          throw Error("wire pass: " + std::to_string(failed.load()) +
                      " request(s) refused by the server");
        }
        WirePass pass;
        pass.fps = wall_s > 0.0
                       ? static_cast<double>(requests.size()) / wall_s
                       : 0.0;
        for (std::vector<double>& per_client : latencies) {
          pass.latencies_ms.insert(pass.latencies_ms.end(),
                                   per_client.begin(), per_client.end());
        }
        return pass;
      };

      print_banner(std::cout,
                   "Wire vs in-process serving, backend " + backend +
                       ", kernel " + pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes, " +
                       std::to_string(workers) + " workers, " +
                       std::to_string(clients) + " clients");

      // Interleaved passes, same rationale as the --pipeline comparison.
      MeasuredPoint inproc_point;
      double wire_fps_sum = 0.0;
      double wire_fps_best = 0.0;
      std::vector<double> wire_best_latencies;
      for (int pass = -warmup; pass < repeat; ++pass) {
        const runtime::ServiceStats inproc_stats = run_inproc_pass();
        WirePass wire_pass = run_wire_pass();
        if (pass < 0) continue;
        inproc_point.add_pass(inproc_stats);
        wire_fps_sum += wire_pass.fps;
        if (wire_pass.fps >= wire_fps_best) {
          wire_fps_best = wire_pass.fps;
          wire_best_latencies = std::move(wire_pass.latencies_ms);
        }
      }
      inproc_point.finalize(repeat);
      const double wire_fps_mean =
          wire_fps_sum / static_cast<double>(repeat);
      const double wire_p50 = percentile_ms(wire_best_latencies, 0.50);
      const double wire_p95 = percentile_ms(wire_best_latencies, 0.95);
      const double wire_p99 = percentile_ms(wire_best_latencies, 0.99);
      const double wire_relative = inproc_point.fps_mean > 0.0
                                       ? wire_fps_mean / inproc_point.fps_mean
                                       : 0.0;

      TablePrinter table(
          {"Mode", "Clients", "Throughput", "p50", "p95", "p99"});
      table.add_row(
          {"inproc", std::to_string(clients),
           format_fixed(inproc_point.fps_mean, 1) + " fps",
           format_time_ms(inproc_point.best_stats.latency_p50_ms),
           format_time_ms(inproc_point.best_stats.latency_p95_ms),
           format_time_ms(inproc_point.best_stats.latency_p99_ms)});
      table.add_row({"wire", std::to_string(clients),
                     format_fixed(wire_fps_mean, 1) + " fps",
                     format_time_ms(wire_p50), format_time_ms(wire_p95),
                     format_time_ms(wire_p99)});
      table.print(std::cout);
      std::cout << "Wire/in-process throughput: "
                << format_ratio(wire_relative, 3) << '\n';

      json << "{\"schema\":\"gaurast-bench-service-wire/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"workers\":" << workers
           << ",\"clients\":" << clients << ",\"modes\":["
           << "{\"mode\":\"inproc\",\"throughput_mean_fps\":"
           << format_fixed(inproc_point.fps_mean, 4)
           << ",\"throughput_best_fps\":"
           << format_fixed(inproc_point.fps_best, 4) << ",\"stats\":"
           << runtime::service_stats_json(inproc_point.best_stats) << "},"
           << "{\"mode\":\"wire\",\"throughput_mean_fps\":"
           << format_fixed(wire_fps_mean, 4) << ",\"throughput_best_fps\":"
           << format_fixed(wire_fps_best, 4) << ",\"latency_p50_ms\":"
           << format_fixed(wire_p50, 4) << ",\"latency_p95_ms\":"
           << format_fixed(wire_p95, 4) << ",\"latency_p99_ms\":"
           << format_fixed(wire_p99, 4) << "}]"
           << ",\"derived\":{\"wire_relative_throughput\":"
           << format_fixed(wire_relative, 4) << "}}";
    } else if (fleet_shards > 0) {
      const int clients = cli.get_positive_int("clients");
      const int workers = cli.get_positive_int("workers");
      runtime::ServiceConfig config;
      config.workers = workers;
      config.backend = backend;
      config.renderer.kernel = kernel;
      config.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));
      config.scene_source = master_source;

      // One request list shared by both sides, full image payloads: the
      // routed pass pays the real forwarding cost, pixels included.
      std::vector<net::RenderRequest> requests;
      for (const runtime::WorkloadRequest& req :
           runtime::generate_workload(workload)) {
        net::RenderRequest wire = net::default_render_request(
            req.gaussian_count, req.scene_seed, workload.width,
            workload.height);
        wire.request_id = static_cast<std::uint64_t>(requests.size()) + 1;
        wire.flags = net::kWantImage;
        requests.push_back(std::move(wire));
      }

      struct FleetPass {
        double fps = 0.0;
        std::vector<double> latencies_ms;  ///< client-observed round trips
        cluster::RouterStatsSnapshot router_stats;
      };

      // One pass over a fresh fleet of `fleet_shards` loopback shards.
      // Direct mode: every client resolves the scene's owner itself via the
      // same rendezvous hash and dials that shard. Routed mode: every frame
      // goes through one cluster::Router front-end. Identical shards,
      // identical requests — the delta is the router.
      const auto run_fleet_pass = [&](bool routed) {
        std::vector<std::unique_ptr<runtime::RenderService>> services;
        std::vector<std::unique_ptr<net::Server>> servers;
        std::vector<cluster::ShardId> ids;
        for (int s = 0; s < fleet_shards; ++s) {
          services.push_back(std::make_unique<runtime::RenderService>(config));
          for (const auto& [key, master] : master_scenes) {
            (void)master;
            services.back()->scene(key);
          }
          servers.push_back(std::make_unique<net::Server>(
              *services.back(), net::ServerConfig{}));
          servers.back()->start();
          ids.push_back(cluster::ShardId{"127.0.0.1", servers.back()->port()});
        }
        cluster::HostDb db(ids);
        std::unique_ptr<cluster::Router> router;
        if (routed) {
          cluster::RouterConfig router_config;
          // Capacity sized so the router never sheds: this pass measures
          // forwarding overhead, not admission control.
          router_config.inflight_per_shard = clients;
          router_config.queue_per_shard = static_cast<int>(requests.size());
          router = std::make_unique<cluster::Router>(db, router_config);
          router->start();
        }

        std::vector<std::vector<double>> latencies(
            static_cast<std::size_t>(clients));
        std::atomic<int> failed{0};
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int t = 0; t < clients; ++t) {
          threads.emplace_back([&, t] {
            // Direct mode keeps one lazily-dialed connection per shard;
            // routed mode one connection to the front-end — both sides
            // reuse connections across the pass.
            std::vector<std::unique_ptr<net::Client>> conns(
                routed ? 1 : static_cast<std::size_t>(fleet_shards));
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < requests.size(); i += static_cast<std::size_t>(clients)) {
              const net::RenderRequest& wire = requests[i];
              std::size_t slot = 0;
              int port = router ? router->port() : 0;
              if (!routed) {
                slot = *db.route(wire.scene_key());
                port = ids[slot].port;
              }
              if (!conns[slot]) {
                conns[slot] =
                    std::make_unique<net::Client>("127.0.0.1", port);
              }
              const auto start = std::chrono::steady_clock::now();
              const net::RenderResponse resp = conns[slot]->render(wire);
              if (resp.status != net::RenderStatus::kOk) {
                failed.fetch_add(1);
                continue;
              }
              latencies[static_cast<std::size_t>(t)].push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count());
            }
          });
        }
        for (std::thread& t : threads) t.join();
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        FleetPass pass;
        if (router) {
          pass.router_stats = router->stats_snapshot();
          router->stop();
        }
        for (auto& server : servers) server->stop();
        if (failed.load() > 0) {
          throw Error("fleet pass: " + std::to_string(failed.load()) +
                      " request(s) not served kOk");
        }
        pass.fps = wall_s > 0.0
                       ? static_cast<double>(requests.size()) / wall_s
                       : 0.0;
        for (std::vector<double>& per_client : latencies) {
          pass.latencies_ms.insert(pass.latencies_ms.end(),
                                   per_client.begin(), per_client.end());
        }
        return pass;
      };

      print_banner(std::cout,
                   "Direct vs routed fleet serving, backend " + backend +
                       ", kernel " + pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes, " +
                       std::to_string(fleet_shards) + " shards x " +
                       std::to_string(workers) + " workers, " +
                       std::to_string(clients) + " clients");

      // Interleaved passes, same rationale as the other comparisons.
      struct FleetPoint {
        double fps_sum = 0.0;
        double fps_mean = 0.0;
        double fps_best = 0.0;
        FleetPass best;

        void add_pass(FleetPass pass) {
          fps_sum += pass.fps;
          if (pass.fps >= fps_best) {
            fps_best = pass.fps;
            best = std::move(pass);
          }
        }
        void finalize(int passes) {
          fps_mean = fps_sum / static_cast<double>(passes);
        }
      };
      FleetPoint direct_point;
      FleetPoint routed_point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        FleetPass direct_pass = run_fleet_pass(/*routed=*/false);
        FleetPass routed_pass = run_fleet_pass(/*routed=*/true);
        if (pass < 0) continue;
        direct_point.add_pass(std::move(direct_pass));
        routed_point.add_pass(std::move(routed_pass));
      }
      direct_point.finalize(repeat);
      routed_point.finalize(repeat);
      const double routed_relative =
          direct_point.fps_mean > 0.0
              ? routed_point.fps_mean / direct_point.fps_mean
              : 0.0;
      std::vector<double> overhead =
          routed_point.best.router_stats.route_overhead_ms;
      const double overhead_mean =
          overhead.empty()
              ? 0.0
              : std::accumulate(overhead.begin(), overhead.end(), 0.0) /
                    static_cast<double>(overhead.size());
      const double overhead_p95 = percentile_ms(overhead, 0.95);

      TablePrinter table(
          {"Mode", "Clients", "Throughput", "p50", "p95", "p99"});
      const auto fleet_row = [&](const std::string& name,
                                 FleetPoint& point) {
        table.add_row(
            {name, std::to_string(clients),
             format_fixed(point.fps_mean, 1) + " fps",
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.50)),
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.95)),
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.99))});
      };
      fleet_row("direct", direct_point);
      fleet_row("routed", routed_point);
      table.print(std::cout);
      std::cout << "Routed/direct throughput: "
                << format_ratio(routed_relative, 3) << '\n'
                << "Route overhead: " << format_time_ms(overhead_mean)
                << " mean, " << format_time_ms(overhead_p95) << " p95\n";

      const auto fleet_mode_json = [&](const std::string& name,
                                       FleetPoint& point) {
        std::vector<double>& lat = point.best.latencies_ms;
        return "{\"mode\":\"" + name + "\",\"throughput_mean_fps\":" +
               format_fixed(point.fps_mean, 4) + ",\"throughput_best_fps\":" +
               format_fixed(point.fps_best, 4) + ",\"latency_p50_ms\":" +
               format_fixed(percentile_ms(lat, 0.50), 4) +
               ",\"latency_p95_ms\":" +
               format_fixed(percentile_ms(lat, 0.95), 4) +
               ",\"latency_p99_ms\":" +
               format_fixed(percentile_ms(lat, 0.99), 4);
      };
      json << "{\"schema\":\"gaurast-bench-service-fleet/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"shards\":" << fleet_shards
           << ",\"workers\":" << workers << ",\"clients\":" << clients
           << ",\"modes\":[" << fleet_mode_json("direct", direct_point)
           << "}," << fleet_mode_json("routed", routed_point)
           << ",\"route_overhead_mean_ms\":" << format_fixed(overhead_mean, 4)
           << ",\"route_overhead_p95_ms\":" << format_fixed(overhead_p95, 4)
           << "}],\"derived\":{\"routed_relative_throughput\":"
           << format_fixed(routed_relative, 4) << "}}";
    } else if (run_faults) {
      const int clients = cli.get_positive_int("clients");
      const int workers = cli.get_positive_int("workers");
      const int deadline_ms = cli.get_positive_int("deadline-ms");
      const std::string fault_plan = cli.get_string("fault-plan");
      fault::parse_plan(fault_plan);  // reject a typo'd plan before any pass
      constexpr int kShards = 2;
      runtime::ServiceConfig config;
      config.workers = workers;
      config.backend = backend;
      config.renderer.kernel = kernel;
      config.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));
      config.scene_source = master_source;

      // One request list shared by both passes, every request carrying the
      // same deadline budget, full image payloads: the faulted pass pays
      // the real retry/failover cost, pixels included.
      std::vector<net::RenderRequest> requests;
      for (const runtime::WorkloadRequest& req :
           runtime::generate_workload(workload)) {
        net::RenderRequest wire = net::default_render_request(
            req.gaussian_count, req.scene_seed, workload.width,
            workload.height);
        wire.request_id = static_cast<std::uint64_t>(requests.size()) + 1;
        wire.flags = net::kWantImage;
        wire.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
        requests.push_back(std::move(wire));
      }

      struct FaultsPass {
        double fps = 0.0;                  ///< kOk frames per wall second
        std::vector<double> latencies_ms;  ///< kOk round trips only
        std::uint64_t ok = 0;
        std::uint64_t deadline_exceeded = 0;
        std::uint64_t unavailable = 0;  ///< kFleetUnavailable and friends
        cluster::RouterStatsSnapshot router_stats;
      };

      // One pass over a fresh routed fleet of kShards loopback shards. The
      // faulted variant arms --fault-plan for the duration of the client
      // run; the seeded plan makes the injection sequence reproducible
      // pass to pass. The clean variant runs the identical fleet disarmed.
      const auto run_faults_pass = [&](bool faulted) {
        std::vector<std::unique_ptr<runtime::RenderService>> services;
        std::vector<std::unique_ptr<net::Server>> servers;
        std::vector<cluster::ShardId> ids;
        for (int s = 0; s < kShards; ++s) {
          services.push_back(std::make_unique<runtime::RenderService>(config));
          for (const auto& [key, master] : master_scenes) {
            (void)master;
            services.back()->scene(key);
          }
          servers.push_back(std::make_unique<net::Server>(
              *services.back(), net::ServerConfig{}));
          servers.back()->start();
          ids.push_back(cluster::ShardId{"127.0.0.1", servers.back()->port()});
        }
        cluster::HostDb db(ids);
        cluster::RouterConfig router_config;
        // Capacity sized so the router never sheds for queue reasons: the
        // outcome mix should reflect faults and deadlines, not admission.
        router_config.inflight_per_shard = clients;
        router_config.queue_per_shard = static_cast<int>(requests.size());
        cluster::Router router(db, router_config);
        router.start();

        std::vector<std::vector<double>> latencies(
            static_cast<std::size_t>(clients));
        std::atomic<std::uint64_t> ok{0};
        std::atomic<std::uint64_t> deadline_hit{0};
        std::atomic<std::uint64_t> unavailable{0};
        if (faulted) fault::arm(fault_plan);
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int t = 0; t < clients; ++t) {
          threads.emplace_back([&, t] {
            net::Client conn("127.0.0.1", router.port());
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < requests.size(); i += static_cast<std::size_t>(clients)) {
              const auto start = std::chrono::steady_clock::now();
              const net::RenderResponse resp = conn.render(requests[i]);
              switch (resp.status) {
                case net::RenderStatus::kOk:
                  ok.fetch_add(1);
                  latencies[static_cast<std::size_t>(t)].push_back(
                      std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
                  break;
                case net::RenderStatus::kDeadlineExceeded:
                  deadline_hit.fetch_add(1);
                  break;
                default:
                  unavailable.fetch_add(1);
                  break;
              }
            }
          });
        }
        for (std::thread& t : threads) t.join();
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        fault::disarm();
        FaultsPass pass;
        pass.router_stats = router.stats_snapshot();
        router.stop();
        for (auto& server : servers) server->stop();
        pass.ok = ok.load();
        pass.deadline_exceeded = deadline_hit.load();
        pass.unavailable = unavailable.load();
        pass.fps =
            wall_s > 0.0 ? static_cast<double>(pass.ok) / wall_s : 0.0;
        for (std::vector<double>& per_client : latencies) {
          pass.latencies_ms.insert(pass.latencies_ms.end(),
                                   per_client.begin(), per_client.end());
        }
        return pass;
      };

      print_banner(std::cout,
                   "Clean vs fault-injected routed serving, backend " +
                       backend + ", kernel " + pipeline::to_string(kernel) +
                       ", " + std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes, " +
                       std::to_string(kShards) + " shards x " +
                       std::to_string(workers) + " workers, " +
                       std::to_string(clients) + " clients, deadline " +
                       std::to_string(deadline_ms) + " ms");

      // Interleaved passes, same rationale as the other comparisons.
      struct FaultsPoint {
        double fps_sum = 0.0;
        double fps_mean = 0.0;
        double fps_best = 0.0;
        FaultsPass best;

        void add_pass(FaultsPass pass) {
          fps_sum += pass.fps;
          if (pass.fps >= fps_best) {
            fps_best = pass.fps;
            best = std::move(pass);
          }
        }
        void finalize(int passes) {
          fps_mean = fps_sum / static_cast<double>(passes);
        }
      };
      FaultsPoint clean_point;
      FaultsPoint faulted_point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        FaultsPass clean_pass = run_faults_pass(/*faulted=*/false);
        FaultsPass faulted_pass = run_faults_pass(/*faulted=*/true);
        if (pass < 0) continue;
        clean_point.add_pass(std::move(clean_pass));
        faulted_point.add_pass(std::move(faulted_pass));
      }
      clean_point.finalize(repeat);
      faulted_point.finalize(repeat);
      const double faulted_relative =
          clean_point.fps_mean > 0.0
              ? faulted_point.fps_mean / clean_point.fps_mean
              : 0.0;
      const auto hit_rate = [](const FaultsPass& pass) {
        const std::uint64_t total =
            pass.ok + pass.deadline_exceeded + pass.unavailable;
        return total > 0
                   ? static_cast<double>(pass.deadline_exceeded) /
                         static_cast<double>(total)
                   : 0.0;
      };

      TablePrinter table({"Mode", "Clients", "Throughput", "p50", "p95",
                          "p99", "Deadline", "Retries"});
      const auto faults_row = [&](const std::string& name,
                                  FaultsPoint& point) {
        table.add_row(
            {name, std::to_string(clients),
             format_fixed(point.fps_mean, 1) + " fps",
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.50)),
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.95)),
             format_time_ms(percentile_ms(point.best.latencies_ms, 0.99)),
             format_percent(hit_rate(point.best)),
             std::to_string(point.best.router_stats.retries)});
      };
      faults_row("clean", clean_point);
      faults_row("faulted", faulted_point);
      table.print(std::cout);
      std::cout << "Faulted/clean throughput: "
                << format_ratio(faulted_relative, 3) << '\n'
                << "Faulted pass outcomes: " << faulted_point.best.ok
                << " ok, " << faulted_point.best.deadline_exceeded
                << " deadline-exceeded, " << faulted_point.best.unavailable
                << " unavailable ("
                << faulted_point.best.router_stats.retries << " retries, "
                << faulted_point.best.router_stats.failovers
                << " failovers)\n";

      const auto faults_mode_json = [&](const std::string& name,
                                        FaultsPoint& point) {
        std::vector<double>& lat = point.best.latencies_ms;
        return "{\"mode\":\"" + name + "\",\"throughput_mean_fps\":" +
               format_fixed(point.fps_mean, 4) + ",\"throughput_best_fps\":" +
               format_fixed(point.fps_best, 4) + ",\"latency_p50_ms\":" +
               format_fixed(percentile_ms(lat, 0.50), 4) +
               ",\"latency_p95_ms\":" +
               format_fixed(percentile_ms(lat, 0.95), 4) +
               ",\"latency_p99_ms\":" +
               format_fixed(percentile_ms(lat, 0.99), 4) +
               ",\"ok\":" + std::to_string(point.best.ok) +
               ",\"deadline_exceeded\":" +
               std::to_string(point.best.deadline_exceeded) +
               ",\"unavailable\":" + std::to_string(point.best.unavailable) +
               ",\"deadline_hit_rate\":" +
               format_fixed(hit_rate(point.best), 6) + ",\"retries\":" +
               std::to_string(point.best.router_stats.retries) +
               ",\"failovers\":" +
               std::to_string(point.best.router_stats.failovers) + "}";
      };
      json << "{\"schema\":\"gaurast-bench-service-faults/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"shards\":" << kShards
           << ",\"workers\":" << workers << ",\"clients\":" << clients
           << ",\"deadline_ms\":" << deadline_ms << ",\"fault_plan\":\""
           << fault_plan << "\",\"modes\":["
           << faults_mode_json("clean", clean_point) << ","
           << faults_mode_json("faulted", faulted_point)
           << "],\"derived\":{\"faulted_relative_throughput\":"
           << format_fixed(faulted_relative, 4)
           << ",\"faulted_deadline_hit_rate\":"
           << format_fixed(hit_rate(faulted_point.best), 6)
           << ",\"faulted_p99_ms\":"
           << format_fixed(
                  percentile_ms(faulted_point.best.latencies_ms, 0.99), 4)
           << "}}";
    } else if (compare_pipeline) {
      print_banner(std::cout,
                   "Execution modes, backend " + backend + ", kernel " +
                       pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes, " +
                       std::to_string(stage_workers.total()) +
                       " total workers (pipelined split " +
                       to_string(stage_workers) + ")");
      runtime::ServiceConfig monolithic;
      monolithic.workers = stage_workers.total();
      monolithic.backend = backend;
      monolithic.renderer.kernel = kernel;
      monolithic.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));
      runtime::ServiceConfig pipelined = monolithic;
      pipelined.mode = runtime::ExecutionMode::kPipelined;
      pipelined.stage_workers = stage_workers;

      // The two modes run in interleaved pairs (mono, pipe, mono, pipe, …)
      // rather than as two grouped blocks, so slow machine-state drift
      // (frequency scaling, page cache) lands on both sides of the ratio
      // instead of biasing whichever mode ran last.
      MeasuredPoint mono_point;
      MeasuredPoint pipe_point;
      for (int pass = -warmup; pass < repeat; ++pass) {
        const runtime::ServiceStats mono_stats = run_pass(monolithic);
        const runtime::ServiceStats pipe_stats = run_pass(pipelined);
        if (pass < 0) continue;
        mono_point.add_pass(mono_stats);
        pipe_point.add_pass(pipe_stats);
      }
      mono_point.finalize(repeat);
      pipe_point.finalize(repeat);
      const double speedup = mono_point.fps_mean > 0.0
                                 ? pipe_point.fps_mean / mono_point.fps_mean
                                 : 0.0;

      TablePrinter table({"Mode", "Workers", "Throughput", "p50", "p95",
                          "p99", "Utilization"});
      const auto mode_row = [&table](const std::string& name, int workers,
                                     const MeasuredPoint& point) {
        table.add_row({name, std::to_string(workers),
                       format_fixed(point.fps_mean, 1) + " fps",
                       format_time_ms(point.best_stats.latency_p50_ms),
                       format_time_ms(point.best_stats.latency_p95_ms),
                       format_time_ms(point.best_stats.latency_p99_ms),
                       format_percent(point.best_stats.worker_utilization)});
      };
      mode_row("monolithic", stage_workers.total(), mono_point);
      mode_row("pipelined", stage_workers.total(), pipe_point);
      table.print(std::cout);
      std::cout << "Pipelined/monolithic throughput: "
                << format_ratio(speedup, 3) << '\n';

      const auto mode_json = [](const std::string& name,
                                const MeasuredPoint& point) {
        return "{\"mode\":\"" + name + "\",\"throughput_mean_fps\":" +
               format_fixed(point.fps_mean, 4) + ",\"throughput_best_fps\":" +
               format_fixed(point.fps_best, 4) + ",\"stats\":" +
               runtime::service_stats_json(point.best_stats) + "}";
      };
      json << "{\"schema\":\"gaurast-bench-service-pipeline/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"scene_size\":" << scene_size
           << ",\"stage_workers\":\"" << to_string(stage_workers)
           << "\",\"total_workers\":" << stage_workers.total()
           << ",\"modes\":[" << mode_json("monolithic", mono_point) << ","
           << mode_json("pipelined", pipe_point) << "]"
           << ",\"derived\":{\"pipelined_speedup\":"
           << format_fixed(speedup, 4) << "}}";
    } else if (scene_sweep) {
      const int workers = cli.get_positive_int("workers");
      const std::int64_t budget_flag_mb =
          static_cast<std::int64_t>(cli.get_int("scene-budget-mb"));
      if (budget_flag_mb < 0) {
        throw CliParseError("--scene-budget-mb must be >= 0");
      }
      runtime::ServiceConfig config;
      config.workers = workers;
      config.backend = backend;
      config.renderer.kernel = kernel;
      config.queue_capacity =
          static_cast<std::size_t>(cli.get_positive_int("queue"));

      print_banner(std::cout,
                   "Scene-store budget, backend " + backend + ", kernel " +
                       pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.scene_sizes.size()) +
                       " scene classes, " + std::to_string(workload.jobs) +
                       " jobs x " + std::to_string(repeat) + " passes");

      // Unbounded baseline first: its peak resident bytes is both a
      // reported number and, when --scene-budget-mb is 0, the yardstick
      // the budgeted pass is squeezed against (half of it, so roughly
      // half the working set must be evicted at any moment).
      const MeasuredPoint unbounded_point = measure(config);
      const std::uint64_t budget_bytes =
          budget_flag_mb > 0
              ? static_cast<std::uint64_t>(budget_flag_mb) * 1024u * 1024u
              : unbounded_point.best_stats.scene_peak_resident_bytes / 2;
      runtime::ServiceConfig budgeted_config = config;
      budgeted_config.scene_budget_bytes = budget_bytes;
      const MeasuredPoint budgeted_point = measure(budgeted_config);

      const auto hit_rate = [](const runtime::ServiceStats& stats) {
        const double total = static_cast<double>(stats.scene_cache_hits +
                                                 stats.scene_cache_misses);
        return total > 0.0
                   ? static_cast<double>(stats.scene_cache_hits) / total
                   : 0.0;
      };
      const double budgeted_relative =
          unbounded_point.fps_mean > 0.0
              ? budgeted_point.fps_mean / unbounded_point.fps_mean
              : 0.0;
      // Peak residency may legitimately overshoot the budget while every
      // scene is pinned by queued renders; the enforced number is the
      // post-drain residency, which the store trims once pins release.
      const bool resident_under_budget =
          budgeted_point.best_stats.scene_resident_bytes <= budget_bytes;

      TablePrinter table({"Store", "Throughput", "Hit rate", "Evictions",
                          "Peak resident", "End resident", "p99"});
      const auto sweep_row = [&](const std::string& name,
                                 const MeasuredPoint& point) {
        table.add_row({name, format_fixed(point.fps_mean, 1) + " fps",
                       format_percent(hit_rate(point.best_stats)),
                       std::to_string(point.best_stats.scene_evictions),
                       std::to_string(
                           point.best_stats.scene_peak_resident_bytes) +
                           " B",
                       std::to_string(point.best_stats.scene_resident_bytes) +
                           " B",
                       format_time_ms(point.best_stats.latency_p99_ms)});
      };
      sweep_row("unbounded", unbounded_point);
      sweep_row("budgeted", budgeted_point);
      table.print(std::cout);
      std::cout << "Budget: " << budget_bytes << " B ("
                << (budget_flag_mb > 0 ? "--scene-budget-mb"
                                       : "half of unbounded peak")
                << "); budgeted/unbounded throughput: "
                << format_ratio(budgeted_relative, 3)
                << "; post-drain residency "
                << (resident_under_budget ? "held under" : "EXCEEDED")
                << " the budget\n";

      const auto sweep_json = [](const std::string& name,
                                 const MeasuredPoint& point) {
        return "{\"mode\":\"" + name + "\",\"throughput_mean_fps\":" +
               format_fixed(point.fps_mean, 4) + ",\"throughput_best_fps\":" +
               format_fixed(point.fps_best, 4) + ",\"stats\":" +
               runtime::service_stats_json(point.best_stats) + "}";
      };
      json << "{\"schema\":\"gaurast-bench-service-scenes/v1\","
           << "\"backend\":\"" << backend << "\",\"kernel\":\""
           << pipeline::to_string(kernel) << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"workers\":" << workers
           << ",\"scene_classes\":" << workload.scene_sizes.size()
           << ",\"budget_bytes\":" << budget_bytes
           << ",\"modes\":[" << sweep_json("unbounded", unbounded_point)
           << "," << sweep_json("budgeted", budgeted_point) << "]"
           << ",\"derived\":{\"budgeted_relative_throughput\":"
           << format_fixed(budgeted_relative, 4)
           << ",\"budgeted_hit_rate\":"
           << format_fixed(hit_rate(budgeted_point.best_stats), 6)
           << ",\"budgeted_evictions\":"
           << budgeted_point.best_stats.scene_evictions
           << ",\"budgeted_peak_resident_bytes\":"
           << budgeted_point.best_stats.scene_peak_resident_bytes
           << ",\"budgeted_resident_bytes\":"
           << budgeted_point.best_stats.scene_resident_bytes
           << ",\"budgeted_resident_under_budget\":"
           << (resident_under_budget ? "true" : "false") << "}}";
    } else {
      print_banner(std::cout,
                   "Service throughput, backend " + backend + " (" +
                       backend_info.description + "), kernel " +
                       pipeline::to_string(kernel) + ", " +
                       std::to_string(workload.jobs) + " jobs x " +
                       std::to_string(repeat) + " passes per point");
      TablePrinter table({"Workers", "Throughput", "Speedup", "p50", "p95",
                          "p99", "Utilization"});
      std::vector<std::string> json_rows;
      double baseline_fps = 0.0;
      for (const int workers : worker_sweep()) {
        runtime::ServiceConfig config;
        config.workers = workers;
        config.backend = backend;
        config.renderer.kernel = kernel;
        config.queue_capacity =
            static_cast<std::size_t>(cli.get_positive_int("queue"));
        const MeasuredPoint point = measure(config);
        if (workers == 1) baseline_fps = point.fps_mean;
        const double speedup =
            baseline_fps > 0.0 ? point.fps_mean / baseline_fps : 0.0;
        table.add_row({std::to_string(workers),
                       format_fixed(point.fps_mean, 1) + " fps",
                       format_ratio(speedup, 2),
                       format_time_ms(point.best_stats.latency_p50_ms),
                       format_time_ms(point.best_stats.latency_p95_ms),
                       format_time_ms(point.best_stats.latency_p99_ms),
                       format_percent(point.best_stats.worker_utilization)});
        json_rows.push_back("{\"workers\":" + std::to_string(workers) +
                            ",\"throughput_mean_fps\":" +
                            format_fixed(point.fps_mean, 4) +
                            ",\"throughput_best_fps\":" +
                            format_fixed(point.fps_best, 4) +
                            ",\"speedup\":" + format_fixed(speedup, 4) +
                            ",\"stats\":" +
                            runtime::service_stats_json(point.best_stats) +
                            "}");
      }
      table.print(std::cout);
      json << "{\"schema\":\"gaurast-bench-service/v1\",\"backend\":\""
           << backend << "\",\"kernel\":\"" << pipeline::to_string(kernel)
           << "\",\"jobs\":" << workload.jobs
           << ",\"width\":" << workload.width
           << ",\"height\":" << workload.height
           << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"points\":[";
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        json << (i ? "," : "") << json_rows[i];
      }
      json << "]}";
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path, std::ios::trunc);
      if (!os.good()) {
        throw CliParseError("cannot write --json file '" + json_path + "'");
      }
      os << json.str() << '\n';
      std::cout << "Wrote " << json_path << '\n';
    }
    return 0;
  } catch (const CliParseError& e) {
    std::cerr << "bench_service_throughput: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
