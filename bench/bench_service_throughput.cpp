// Render-service throughput scaling benchmark.
//
// Drives the same closed-loop generated workload through RenderService at a
// sweep of worker counts and reports frames/sec, tail latency, and worker
// utilization per point, plus the speedup over the 1-worker baseline. This
// is the serving-side counterpart of the paper's per-frame FPS tables: it
// measures how far inter-frame parallelism takes the reference pipeline on a
// multi-core host.
//
// Each sweep point runs `--warmup` unmeasured full workload passes followed
// by `--repeat` measured passes (every pass on a fresh, scene-prewarmed
// service, so pass timing measures serving, not scene generation or stale
// queue state); the reported throughput is the mean across measured passes
// and the latency columns come from the best-throughput pass. `--json`
// emits the gaurast-bench-service/v1 schema consumed by
// tools/bench_pipeline.sh:
//
//   {"schema":"gaurast-bench-service/v1","backend":...,"kernel":...,
//    "jobs":...,"width":...,"height":...,"seed":...,"warmup":...,
//    "repeat":...,
//    "points":[{"workers":N,"throughput_mean_fps":...,
//               "throughput_best_fps":...,"speedup":...,"stats":{...}}]}
//
//   bench_service_throughput [--jobs N] [--backend NAME]
//                            [--kernel reference|fast]
//                            [--warmup N] [--repeat N]
//                            [--width W] [--height H] [--seed S]
//                            [--json out.json]
//
// --backend takes any name in the engine registry (`gaurast_cli backends`);
// --kernel selects the Step-3 software kernel on backends whose
// capabilities support kernel selection.

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "pipeline/rasterize.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;

std::vector<int> worker_sweep() {
  const int max_workers =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep;
  for (int w = 1; w < max_workers; w *= 2) sweep.push_back(w);
  sweep.push_back(max_workers);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_service_throughput");
  cli.add_flag("jobs", "24", "frame requests per workload pass");
  cli.add_flag("backend", "sw",
               "Step-3 executor: " + engine::join_names(engine::names(), "|"));
  cli.add_flag("kernel", "reference",
               "Step-3 software kernel (reference|fast) on backends that "
               "support kernel selection");
  cli.add_flag("warmup", "1", "unmeasured workload passes per sweep point");
  cli.add_flag("repeat", "3", "measured workload passes per sweep point");
  cli.add_flag("width", "128", "render width");
  cli.add_flag("height", "96", "render height");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("json", "", "write machine-readable results to this path");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Resolve --backend against the registry up front so a typo fails with
    // the enumerating diagnostic before any scene generation.
    const std::string backend = cli.get_string("backend");
    const engine::BackendInfo backend_info = engine::registry().info(backend);
    const pipeline::RasterKernel kernel =
        pipeline::raster_kernel_from_string(cli.get_string("kernel"));
    if (kernel != pipeline::RasterKernel::kReference &&
        !backend_info.capabilities.supports_kernel_select) {
      // Same shape as gaurast_cli's capability diagnostics: name the
      // offending backend and enumerate the backends that do accept it.
      const std::vector<std::string> accepting = engine::registry().names_where(
          [](const engine::Capabilities& c) { return c.supports_kernel_select; });
      throw CliParseError("--kernel does not apply to --backend " + backend +
                          " (its Step 3 does not run the software raster "
                          "kernels); backends that accept it: " +
                          engine::join_names(accepting));
    }
    const int warmup = cli.get_int("warmup");
    if (warmup < 0) throw CliParseError("--warmup must be >= 0");
    const int repeat = cli.get_positive_int("repeat");

    runtime::WorkloadConfig workload;
    workload.seed = cli.get_uint64("seed");
    workload.jobs = cli.get_positive_int("jobs");
    workload.width = cli.get_positive_int("width");
    workload.height = cli.get_positive_int("height");
    workload.arrival = runtime::ArrivalModel::kClosedLoop;

    print_banner(std::cout,
                 "Service throughput, backend " + backend + " (" +
                     backend_info.description + "), kernel " +
                     pipeline::to_string(kernel) + ", " +
                     std::to_string(workload.jobs) + " jobs x " +
                     std::to_string(repeat) + " passes per point");
    TablePrinter table({"Workers", "Throughput", "Speedup", "p50", "p95",
                        "p99", "Utilization"});
    // Generate each scene class once up front; per-pass services get their
    // caches pre-warmed with copies so pass timing measures serving, not
    // repeated scene generation.
    std::map<std::string, gaurast::scene::GaussianScene> master_scenes;
    for (const runtime::WorkloadRequest& req :
         runtime::generate_workload(workload)) {
      if (master_scenes.count(req.scene_key)) continue;
      gaurast::scene::GeneratorParams params;
      params.gaussian_count = req.gaussian_count;
      params.seed = req.scene_seed;
      master_scenes.emplace(req.scene_key,
                            gaurast::scene::generate_scene(params));
    }

    std::vector<std::string> json_rows;
    double baseline_fps = 0.0;
    for (const int workers : worker_sweep()) {
      double fps_sum = 0.0;
      double fps_best = 0.0;
      runtime::ServiceStats best_stats;
      for (int pass = -warmup; pass < repeat; ++pass) {
        runtime::ServiceConfig config;
        config.workers = workers;
        config.backend = backend;
        config.renderer.kernel = kernel;
        runtime::RenderService service(config);
        for (const auto& [key, master] : master_scenes) {
          service.scene(key, [&master = master] { return master; });
        }
        const runtime::WorkloadRunResult run = run_workload(service, workload);
        if (pass < 0) continue;  // warmup pass: timing discarded
        fps_sum += run.stats.throughput_fps;
        if (run.stats.throughput_fps >= fps_best) {
          fps_best = run.stats.throughput_fps;
          best_stats = run.stats;
        }
      }
      const double fps_mean = fps_sum / static_cast<double>(repeat);
      if (workers == 1) baseline_fps = fps_mean;
      const double speedup =
          baseline_fps > 0.0 ? fps_mean / baseline_fps : 0.0;
      table.add_row({std::to_string(workers),
                     format_fixed(fps_mean, 1) + " fps",
                     format_ratio(speedup, 2),
                     format_time_ms(best_stats.latency_p50_ms),
                     format_time_ms(best_stats.latency_p95_ms),
                     format_time_ms(best_stats.latency_p99_ms),
                     format_percent(best_stats.worker_utilization)});
      json_rows.push_back("{\"workers\":" + std::to_string(workers) +
                          ",\"throughput_mean_fps\":" +
                          format_fixed(fps_mean, 4) +
                          ",\"throughput_best_fps\":" +
                          format_fixed(fps_best, 4) +
                          ",\"speedup\":" + format_fixed(speedup, 4) +
                          ",\"stats\":" +
                          runtime::service_stats_json(best_stats) + "}");
    }
    table.print(std::cout);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      std::ofstream os(json_path, std::ios::trunc);
      if (!os.good()) {
        throw CliParseError("cannot write --json file '" + json_path + "'");
      }
      os << "{\"schema\":\"gaurast-bench-service/v1\",\"backend\":\""
         << backend << "\",\"kernel\":\"" << pipeline::to_string(kernel)
         << "\",\"jobs\":" << workload.jobs
         << ",\"width\":" << workload.width
         << ",\"height\":" << workload.height
         << ",\"seed\":" << workload.seed << ",\"warmup\":" << warmup
         << ",\"repeat\":" << repeat << ",\"points\":[";
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        os << (i ? "," : "") << json_rows[i];
      }
      os << "]}\n";
      std::cout << "Wrote " << json_path << '\n';
    }
    return 0;
  } catch (const CliParseError& e) {
    std::cerr << "bench_service_throughput: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
