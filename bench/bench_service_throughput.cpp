// Render-service throughput scaling benchmark.
//
// Drives the same closed-loop generated workload through RenderService at a
// sweep of worker counts and reports frames/sec, tail latency, and worker
// utilization per point, plus the speedup over the 1-worker baseline. This
// is the serving-side counterpart of the paper's per-frame FPS tables: it
// measures how far inter-frame parallelism takes the reference pipeline on a
// multi-core host. `--json out.json` emits the same rows machine-readably so
// the trajectory can be tracked across PRs.
//
//   bench_service_throughput [--jobs N] [--backend NAME]
//                            [--width W] [--height H] [--seed S]
//                            [--json out.json]
//
// --backend takes any name in the engine registry (`gaurast_cli backends`).

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "runtime/service.hpp"
#include "runtime/workload.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;

std::vector<int> worker_sweep() {
  const int max_workers =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> sweep;
  for (int w = 1; w < max_workers; w *= 2) sweep.push_back(w);
  sweep.push_back(max_workers);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_service_throughput");
  cli.add_flag("jobs", "24", "frame requests per sweep point");
  cli.add_flag("backend", "sw",
               "Step-3 executor: " + engine::join_names(engine::names(), "|"));
  cli.add_flag("width", "128", "render width");
  cli.add_flag("height", "96", "render height");
  cli.add_flag("seed", "42", "workload seed");
  cli.add_flag("json", "", "write machine-readable results to this path");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Resolve --backend against the registry up front so a typo fails with
    // the enumerating diagnostic before any scene generation.
    const std::string backend = cli.get_string("backend");
    const engine::BackendInfo backend_info = engine::registry().info(backend);
    runtime::WorkloadConfig workload;
    workload.seed = cli.get_uint64("seed");
    workload.jobs = cli.get_positive_int("jobs");
    workload.width = cli.get_positive_int("width");
    workload.height = cli.get_positive_int("height");
    workload.arrival = runtime::ArrivalModel::kClosedLoop;

    print_banner(std::cout, "Service throughput, backend " + backend + " (" +
                                backend_info.description + "), " +
                                std::to_string(workload.jobs) +
                                " jobs per point");
    TablePrinter table({"Workers", "Throughput", "Speedup", "p50", "p95",
                        "p99", "Utilization"});
    // Generate each scene class once up front; per-point services get their
    // caches pre-warmed with copies so sweep timing measures serving, not
    // repeated scene generation.
    std::map<std::string, gaurast::scene::GaussianScene> master_scenes;
    for (const runtime::WorkloadRequest& req :
         runtime::generate_workload(workload)) {
      if (master_scenes.count(req.scene_key)) continue;
      gaurast::scene::GeneratorParams params;
      params.gaussian_count = req.gaussian_count;
      params.seed = req.scene_seed;
      master_scenes.emplace(req.scene_key,
                            gaurast::scene::generate_scene(params));
    }

    std::vector<std::string> json_rows;
    double baseline_fps = 0.0;
    for (const int workers : worker_sweep()) {
      runtime::ServiceConfig config;
      config.workers = workers;
      config.backend = backend;
      runtime::RenderService service(config);
      for (const auto& [key, master] : master_scenes) {
        service.scene(key, [&master = master] { return master; });
      }
      const runtime::WorkloadRunResult run = run_workload(service, workload);
      if (workers == 1) baseline_fps = run.stats.throughput_fps;
      const double speedup =
          baseline_fps > 0.0 ? run.stats.throughput_fps / baseline_fps : 0.0;
      table.add_row({std::to_string(workers),
                     format_fixed(run.stats.throughput_fps, 1) + " fps",
                     format_ratio(speedup, 2),
                     format_time_ms(run.stats.latency_p50_ms),
                     format_time_ms(run.stats.latency_p95_ms),
                     format_time_ms(run.stats.latency_p99_ms),
                     format_percent(run.stats.worker_utilization)});
      json_rows.push_back("{\"workers\":" + std::to_string(workers) +
                          ",\"speedup\":" + format_fixed(speedup, 4) +
                          ",\"stats\":" +
                          runtime::service_stats_json(run.stats) + "}");
    }
    table.print(std::cout);

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      std::ofstream os(json_path, std::ios::trunc);
      if (!os.good()) {
        throw CliParseError("cannot write --json file '" + json_path + "'");
      }
      os << "{\"bench\":\"service_throughput\",\"backend\":\"" << backend
         << "\",\"jobs\":" << workload.jobs
         << ",\"width\":" << workload.width
         << ",\"height\":" << workload.height
         << ",\"seed\":" << workload.seed << ",\"points\":[";
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        os << (i ? "," : "") << json_rows[i];
      }
      os << "]}\n";
      std::cout << "Wrote " << json_path << '\n';
    }
    return 0;
  } catch (const CliParseError& e) {
    std::cerr << "bench_service_throughput: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
