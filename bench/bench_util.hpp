// Shared helpers for the experiment harnesses.
//
// Every bench binary regenerates one paper artifact (table or figure) and
// prints the paper's published value next to the model's output so the
// reproduction can be audited row by row (EXPERIMENTS.md records the same).
#pragma once

#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/profile_sim.hpp"
#include "gpu/cost_model.hpp"
#include "scene/profile.hpp"

namespace gaurast::bench {

/// The scaled GauRast deployment used for all headline numbers (the paper's
/// stated 300-PE aggregate across 15 modules at 1 GHz).
inline core::RasterizerConfig headline_config() {
  return core::RasterizerConfig::scaled300();
}

/// GauRast Step-3 runtime (ms) for a full-scale profile.
inline core::ProfileSimResult simulate_gaurast(
    const scene::SceneProfile& profile,
    const core::RasterizerConfig& config = headline_config()) {
  const core::ProfileSimulator sim(config);
  return sim.simulate(profile);
}

/// Geometric-mean-free arithmetic average, as the paper reports.
inline double average(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Paper Table III baselines (ms) for the original pipeline, for
/// side-by-side display.
inline double paper_tab3_baseline_ms(const std::string& scene) {
  if (scene == "bicycle") return 321;
  if (scene == "stump") return 149;
  if (scene == "garden") return 232;
  if (scene == "room") return 236;
  if (scene == "counter") return 216;
  if (scene == "kitchen") return 269;
  if (scene == "bonsai") return 147;
  return 0;
}

inline double paper_tab3_gaurast_ms(const std::string& scene) {
  if (scene == "bicycle") return 15.0;
  if (scene == "stump") return 6.0;
  if (scene == "garden") return 9.6;
  if (scene == "room") return 10.5;
  if (scene == "counter") return 9.8;
  if (scene == "kitchen") return 12.2;
  if (scene == "bonsai") return 5.5;
  return 0;
}

}  // namespace gaurast::bench
