// Ablation studies over the design choices DESIGN.md calls out:
//   (a) PE count / module count scaling of rasterization runtime,
//   (b) ping-pong tile buffers vs a single buffer (fill/compute overlap),
//   (c) CUDA-collaborative pipelining vs serial handoff,
//   (d) FP16 vs FP32 datapath (runtime / energy / enhanced area),
//   (e) memory-interface bandwidth sensitivity.

#include "accel/gscore.hpp"
#include "bench_util.hpp"
#include "core/area.hpp"
#include "core/energy.hpp"
#include "core/scheduler.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  using namespace gaurast::bench;
  const scene::SceneProfile bicycle =
      scene::profile_by_name("bicycle", scene::PipelineVariant::kOriginal);
  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  const double base_ms = cuda.raster_ms(bicycle);

  print_banner(std::cout, "Ablation (a) — PE scaling (bicycle, original 3DGS)");
  {
    TablePrinter table({"Config", "PEs", "Raster", "Speedup", "Utilization"});
    for (int modules : {1, 2, 4, 8, 15}) {
      core::RasterizerConfig cfg = core::RasterizerConfig::prototype16();
      cfg.module_count = modules;
      cfg.pes_per_module = 20;
      const core::ProfileSimResult r = simulate_gaurast(bicycle, cfg);
      table.add_row({std::to_string(modules) + " modules",
                     std::to_string(cfg.total_pes()),
                     format_time_ms(r.runtime_ms()),
                     format_ratio(base_ms / r.runtime_ms()),
                     format_percent(r.utilization())});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Ablation (b) — memory bandwidth sensitivity");
  {
    TablePrinter table({"Bytes/cycle/module", "Raster", "Utilization"});
    for (double bpc : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
      core::RasterizerConfig cfg = headline_config();
      cfg.mem_bytes_per_cycle = bpc;
      const core::ProfileSimResult r = simulate_gaurast(bicycle, cfg);
      table.add_row({format_fixed(bpc, 0), format_time_ms(r.runtime_ms()),
                     format_percent(r.utilization())});
    }
    table.print(std::cout);
    std::cout << "Ping-pong buffering hides fills once the interface sustains\n"
                 "the tile primitive stream; below that the PE block starves.\n";
  }

  print_banner(std::cout, "Ablation (c) — pipelined vs serial CUDA handoff");
  {
    TablePrinter table({"Scene", "CUDA-only FPS", "Serial FPS",
                        "Pipelined FPS", "Pipelining gain"});
    for (const auto& profile : scene::nerf360_profiles()) {
      const gpu::StageTimes t = cuda.frame_times(profile);
      const core::ProfileSimResult hw = simulate_gaurast(profile);
      const core::EndToEndResult e2e = core::schedule_frame(t, hw.runtime_ms());
      table.add_row({profile.name, format_fixed(e2e.cuda_only_fps(), 1),
                     format_fixed(e2e.serial_fps(), 1),
                     format_fixed(e2e.pipelined_fps(), 1),
                     format_ratio(e2e.pipelined_fps() / e2e.serial_fps())});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Ablation (d) — FP16 vs FP32 datapath");
  {
    TablePrinter table({"Precision", "Raster (bicycle)", "Enhanced area @28nm",
                        "Module power"});
    for (const bool half : {false, true}) {
      core::RasterizerConfig cfg = headline_config();
      if (half) cfg.precision = core::Precision::kFp16;
      const core::ProfileSimResult r = simulate_gaurast(bicycle, cfg);
      const core::AreaModel area(cfg);
      const core::EnergyModel energy(
          half ? core::RasterizerConfig::fp16(16) : core::RasterizerConfig::prototype16());
      table.add_row({half ? "FP16" : "FP32", format_time_ms(r.runtime_ms()),
                     format_fixed(area.enhanced_mm2(), 2) + " mm2",
                     format_fixed(energy.typical_module_power_w(), 2) + " W"});
    }
    table.print(std::cout);
  }

  print_banner(std::cout,
               "Ablation (e) — tight ellipse culling (rendered scene)");
  {
    // Rendered at reduced scale so the effect is measured, not modeled.
    scene::GeneratorParams gp;
    gp.gaussian_count = 20000;
    const scene::GaussianScene sc = scene::generate_scene(gp);
    const scene::Camera cam = scene::default_camera(gp, 320, 240);
    TablePrinter table({"Culling", "Tile instances", "Pairs evaluated",
                        "Image max diff vs bbox"});
    pipeline::RendererConfig loose_cfg;
    const auto loose = pipeline::GaussianRenderer(loose_cfg).render(sc, cam);
    pipeline::RendererConfig tight_cfg;
    tight_cfg.culling = pipeline::CullingMode::kTightEllipse;
    const auto tight = pipeline::GaussianRenderer(tight_cfg).render(sc, cam);
    table.add_row({"bounding box (reference)",
                   std::to_string(loose.workload.instance_count()),
                   std::to_string(loose.raster_stats.pairs_evaluated), "-"});
    table.add_row({"tight ellipse",
                   std::to_string(tight.workload.instance_count()),
                   std::to_string(tight.raster_stats.pairs_evaluated),
                   format_fixed(tight.image.max_abs_diff(loose.image), 6)});
    table.print(std::cout);
    std::cout << "Shape-aware culling (as GSCore implements in hardware) cuts\n"
                 "sort + raster work with zero image change; it composes with\n"
                 "GauRast since Step 2 stays on the CUDA cores.\n";
  }

  print_banner(std::cout, "Ablation (f) — DVFS operating point (bicycle)");
  {
    TablePrinter table({"Clock", "Vdd", "Raster", "Power @SoC", "Energy @SoC"});
    for (double clk : {0.6, 0.8, 1.0, 1.2}) {
      core::RasterizerConfig cfg = headline_config();
      cfg.clock_ghz = clk;
      const core::EnergyTable table_at_clk =
          core::dvfs_scaled_table(core::EnergyTable{}, clk);
      const core::ProfileSimulator sim(cfg, table_at_clk);
      const core::ProfileSimResult r = sim.simulate(bicycle);
      table.add_row({format_fixed(clk, 1) + " GHz",
                     format_fixed(core::dvfs_voltage({}, clk), 2) + " V",
                     format_time_ms(r.runtime_ms()),
                     format_fixed(r.power_w_soc(), 2) + " W",
                     format_energy_mj(r.energy_soc.total_mj())});
    }
    table.print(std::cout);
    std::cout << "Lower clocks trade runtime for quadratic dynamic-energy\n"
                 "savings; 1 GHz is the paper's design point.\n";
  }

  print_banner(std::cout, "Ablation (g) — tile size");
  {
    TablePrinter table({"Tile", "Raster (bicycle)", "Utilization"});
    for (int ts : {8, 16, 32}) {
      core::RasterizerConfig cfg = headline_config();
      cfg.tile_size = ts;
      const core::ProfileSimResult r = simulate_gaurast(bicycle, cfg);
      table.add_row({std::to_string(ts) + "x" + std::to_string(ts),
                     format_time_ms(r.runtime_ms()),
                     format_percent(r.utilization())});
    }
    table.print(std::cout);
  }
  return 0;
}
