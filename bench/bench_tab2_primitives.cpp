// Reproduces paper Table II: computational primitives for triangle vs
// Gaussian rasterization. The table is regenerated from the *instrumented*
// PE datapath: we run both modes on a probe workload and report the counted
// operator mix per subtask, alongside the structural resource inventory.

#include "bench_util.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/pe.hpp"
#include "mesh/primitives.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

int main() {
  using namespace gaurast;
  print_banner(std::cout, "Table II — Computational primitives for rasterization");

  TablePrinter table({"Subtask", "Triangle rasterization", "Gaussian rasterization"});
  table.add_row({"Input", "vertices' coordinates (9 FP)",
                 "conic/mean/opacity/color (9 FP)"});
  table.add_row({"1. Coordinate shift", "ADD, MUL", "ADD (2 dedicated adders)"});
  table.add_row({"2. Intersection / probability", "ADD, MUL, DIV (edge fns)",
                 "ADD, MUL, EXP (conic form)"});
  table.add_row({"3. UV / color weight", "ADD, MUL (barycentric)",
                 "MUL (T x alpha x color)"});
  table.add_row({"4. Reduction", "min-depth color hold", "color accumulation"});
  table.add_row({"Output", "UV weight + depth (3 FP)", "accumulated color (3 FP)"});
  table.print(std::cout);

  // Structural inventory per PE.
  const core::PeResources res{};
  print_banner(std::cout, "PE resource inventory (paper Sec. IV-B)");
  std::cout << "Shared: " << res.shared_adders << " adders, "
            << res.shared_multipliers << " multipliers\n"
            << "Triangle-only: " << res.triangle_dividers << " divider\n"
            << "Gaussian enhancement: " << res.gaussian_adders << " adders, "
            << res.gaussian_multipliers << " multiplier, "
            << res.gaussian_exp_units << " exp unit\n";

  // Measured op mix from the functional hardware model on probe workloads.
  print_banner(std::cout, "Measured datapath op counts (per evaluated pair)");
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());

  scene::GeneratorParams params;
  params.gaussian_count = 4000;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 256, 192);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult frame = renderer.prepare(gscene, cam);
  const core::HwRasterResult gres =
      hw.rasterize_gaussians(frame.splats, frame.workload,
                             renderer.config().blend);

  const mesh::TriangleMesh sphere = mesh::make_sphere(24, 32);
  const std::vector<mesh::ScreenTriangle> prims =
      mesh::build_primitives(sphere, cam);
  const core::HwRasterResult tres =
      hw.rasterize_triangles(prims, 256, 192, {0, 0, 0});

  TablePrinter ops({"Mode", "pairs", "ADD/pair", "MUL/pair", "EXP/pair",
                    "DIV total", "CMP/pair"});
  auto per = [](std::uint64_t n, std::uint64_t pairs) {
    return format_fixed(pairs ? static_cast<double>(n) /
                                    static_cast<double>(pairs)
                              : 0.0, 2);
  };
  ops.add_row({"Gaussian", std::to_string(gres.pairs_evaluated),
               per(gres.counters.get(sim::ops::kFp32Add), gres.pairs_evaluated),
               per(gres.counters.get(sim::ops::kFp32Mul), gres.pairs_evaluated),
               per(gres.counters.get(sim::ops::kFp32Exp), gres.pairs_evaluated),
               std::to_string(gres.counters.get(sim::ops::kFp32Div)),
               per(gres.counters.get(sim::ops::kFp32Cmp), gres.pairs_evaluated)});
  ops.add_row({"Triangle", std::to_string(tres.pairs_evaluated),
               per(tres.counters.get(sim::ops::kFp32Add), tres.pairs_evaluated),
               per(tres.counters.get(sim::ops::kFp32Mul), tres.pairs_evaluated),
               per(tres.counters.get(sim::ops::kFp32Exp), tres.pairs_evaluated),
               std::to_string(tres.counters.get(sim::ops::kFp32Div)),
               per(tres.counters.get(sim::ops::kFp32Cmp), tres.pairs_evaluated)});
  ops.print(std::cout);
  std::cout << "\nBoth modes share the adder/multiplier pool; DIV appears only in\n"
               "triangle mode (per-primitive setup), EXP only in Gaussian mode.\n";
  return 0;
}
