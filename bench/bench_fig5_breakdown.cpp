// Reproduces paper Fig. 5: runtime breakdown of the 3DGS pipeline per stage
// on the Jetson Orin NX. The paper's finding: Step 3 (Gaussian
// rasterization) dominates at >80% of frame time in every scene.

#include "bench_util.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  print_banner(std::cout,
               "Fig. 5 — Runtime breakdown per stage (Jetson Orin NX, 10W)");

  const gpu::CudaCostModel model(gpu::orin_nx_10w());
  TablePrinter table({"Scene", "Step1 (preprocess)", "Step2 (sort)",
                      "Step3 (raster)", "Step3 share"});
  bool all_above_80 = true;
  for (const auto& profile : scene::nerf360_profiles()) {
    const gpu::StageTimes t = model.frame_times(profile);
    const double share = t.raster_share();
    all_above_80 = all_above_80 && share > 0.80;
    table.add_row({profile.name,
                   format_percent(t.preprocess_ms / t.total_ms()),
                   format_percent(t.sort_ms / t.total_ms()),
                   format_percent(share), format_percent(share)});
  }
  table.print(std::cout);
  std::cout << "\nStep 3 dominates (>80%) in all scenes: "
            << (all_above_80 ? "YES" : "NO")
            << "  (paper: >80% across all seven scenes)\n";
  return 0;
}
