// Reproduces paper Sec. V-C: comparison against GSCore, the SOTA dedicated
// 3DGS accelerator (ASPLOS'24). GSCore: 20x rasterization speedup on the
// Jetson Xavier NX with 3.95 mm^2 of dedicated FP16 logic. GauRast at FP16
// matches the throughput while only *adding* the Gaussian enhancement to the
// existing triangle rasterizer: paper reports 0.16 mm^2 and a 24.7x area-
// efficiency gain.

#include "accel/gscore.hpp"
#include "bench_util.hpp"
#include "engine/registry.hpp"
#include "gpu/config.hpp"
#include "scene/generator.hpp"

int main() {
  using namespace gaurast;
  print_banner(std::cout, "Sec. V-C — GauRast (FP16) vs GSCore area efficiency");

  const accel::GScoreSpec spec = accel::gscore_published();
  const scene::SceneProfile reference =
      scene::profile_by_name("bicycle", scene::PipelineVariant::kOriginal);
  const accel::AreaEfficiencyComparison cmp =
      accel::compare_area_efficiency(gpu::xavier_nx(), reference, spec);

  TablePrinter table({"Quantity", "Model", "Paper"});
  table.add_row({"GSCore speedup vs " + spec.host_name,
                 format_ratio(spec.raster_speedup_vs_host), "20x"});
  table.add_row({"Matched throughput (Gpairs/s)",
                 format_fixed(cmp.target_pairs_per_second / 1e9, 1), "-"});
  table.add_row({"GauRast FP16 PEs required",
                 std::to_string(cmp.gaurast_fp16_pes), "-"});
  table.add_row({"GauRast added area",
                 format_fixed(cmp.gaurast_enhanced_mm2, 3) + " mm2",
                 "0.16 mm2"});
  table.add_row({"GSCore dedicated area",
                 format_fixed(cmp.gscore_mm2, 2) + " mm2", "3.95 mm2"});
  table.add_row({"Area-efficiency gain",
                 format_ratio(cmp.area_efficiency_gain), "24.7x"});
  table.print(std::cout);
  std::cout << "\nThe gain comes from reusing the triangle rasterizer's shared\n"
               "adder/multiplier pool, buffers and controllers instead of\n"
               "duplicating them in a dedicated accelerator.\n";

  // The same operating point is servable end-to-end: the engine registry
  // exposes it as backend "gscore", so prove the sized deployment renders a
  // frame through the one API every consumer uses.
  const std::unique_ptr<engine::RenderBackend> backend =
      engine::create("gscore");
  scene::GeneratorParams params;
  params.gaussian_count = 2000;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const scene::Camera camera = scene::default_camera(params, 160, 120);
  const engine::FrameOutput frame =
      backend->render(gscene, camera, engine::FrameOptions{});
  std::cout << "\nEngine backend '" << backend->name()
            << "': " << backend->describe() << "\n  "
            << backend->rasterizer_config()->total_pes() << " "
            << engine::precision_name(
                   backend->capabilities().default_precision)
            << " PEs served a " << std::to_string(params.gaussian_count)
            << "-Gaussian frame in " << format_time_ms(frame.hw->raster_model_ms)
            << " (modeled Step 3, " << format_percent(frame.hw->utilization)
            << " utilization)\n";
  return 0;
}
