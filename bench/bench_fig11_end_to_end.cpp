// Reproduces paper Fig. 11: end-to-end FPS with and without GauRast under
// CUDA-collaborative scheduling, for both pipelines. Paper: 6x end-to-end
// speedup / ~24 FPS (original), 4x / ~46 FPS (Mini-Splatting).

#include "bench_util.hpp"
#include "common/chart.hpp"
#include "core/scheduler.hpp"
#include "gpu/config.hpp"

namespace {

void run_variant(const char* title,
                 const std::vector<gaurast::scene::SceneProfile>& profiles,
                 double paper_speedup, double paper_fps) {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout, title);

  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  TablePrinter table({"Scene", "FPS w/o GauRast", "FPS w/ GauRast",
                      "E2E speedup", "Stage1-2", "GauRast raster"});
  std::vector<double> fps_with, fps_without, speedups;
  for (const auto& profile : profiles) {
    const gpu::StageTimes times = cuda.frame_times(profile);
    const core::ProfileSimResult hw = simulate_gaurast(profile);
    const core::EndToEndResult e2e =
        core::schedule_frame(times, hw.runtime_ms());
    fps_without.push_back(e2e.cuda_only_fps());
    fps_with.push_back(e2e.pipelined_fps());
    speedups.push_back(e2e.end_to_end_speedup());
    table.add_row({profile.name, format_fixed(e2e.cuda_only_fps(), 1),
                   format_fixed(e2e.pipelined_fps(), 1),
                   format_ratio(e2e.end_to_end_speedup()),
                   format_time_ms(e2e.stage12_ms),
                   format_time_ms(e2e.gaurast_raster_ms)});
  }
  table.print(std::cout);
  BarChart chart("End-to-end FPS with GauRast (cf. paper Fig. 11)", "FPS");
  {
    std::size_t i = 0;
    for (const auto& profile : profiles) chart.add_bar(profile.name, fps_with[i++]);
  }
  std::cout << '\n';
  chart.print(std::cout);
  std::cout << "Average: " << format_fixed(average(fps_without), 1)
            << " FPS -> " << format_fixed(average(fps_with), 1)
            << " FPS, speedup " << format_ratio(average(speedups))
            << "  (paper: ~" << format_ratio(paper_speedup) << " to ~"
            << format_fixed(paper_fps, 0) << " FPS)\n";
}

}  // namespace

int main() {
  run_variant("Fig. 11 (left) — End-to-end FPS, original 3DGS",
              gaurast::scene::nerf360_profiles(), 6.0, 24.0);
  run_variant("Fig. 11 (right) — End-to-end FPS, Mini-Splatting",
              gaurast::scene::nerf360_mini_profiles(), 4.0, 46.0);
  return 0;
}
