// Google-benchmark microbenchmarks of the substrate implementations:
// PE datapath throughput, software rasterization, radix sort, preprocessing
// and the detailed cycle simulator. These gauge the *simulator's* host-side
// performance, not modeled hardware numbers.

#include <benchmark/benchmark.h>

#include "core/detailed_sim.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/pe.hpp"
#include "mesh/primitives.hpp"
#include "mesh/raster.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;

scene::GaussianScene& probe_scene() {
  static scene::GaussianScene s = [] {
    scene::GeneratorParams params;
    params.gaussian_count = 20000;
    return scene::generate_scene(params);
  }();
  return s;
}

scene::Camera probe_camera() {
  scene::GeneratorParams params;
  return scene::default_camera(params, 320, 240);
}

void BM_PeGaussianPair(benchmark::State& state) {
  pipeline::Splat2D splat;
  splat.mean = {10.0f, 10.0f};
  splat.conic = {0.05f, 0.01f, 0.07f};
  splat.opacity = 0.8f;
  splat.color = {0.5f, 0.4f, 0.3f};
  const pipeline::BlendParams params;
  sim::CounterSet counters;
  pipeline::PixelBlendState blend;
  for (auto _ : state) {
    blend = pipeline::PixelBlendState{};
    const auto r = core::pe_gaussian_pair(splat, {11.0f, 9.0f}, blend, params,
                                          core::Precision::kFp32, counters);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PeGaussianPair);

void BM_Preprocess(benchmark::State& state) {
  const auto cam = probe_camera();
  for (auto _ : state) {
    auto splats = pipeline::preprocess(probe_scene(), cam);
    benchmark::DoNotOptimize(splats);
  }
}
BENCHMARK(BM_Preprocess);

void BM_SortSplats(benchmark::State& state) {
  const auto cam = probe_camera();
  const auto splats = pipeline::preprocess(probe_scene(), cam);
  pipeline::TileGrid grid;
  grid.width = cam.width();
  grid.height = cam.height();
  for (auto _ : state) {
    auto work = pipeline::sort_splats(splats, grid);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_SortSplats);

void BM_SoftwareRasterize(benchmark::State& state) {
  const auto cam = probe_camera();
  const pipeline::GaussianRenderer renderer;
  const auto frame = renderer.prepare(probe_scene(), cam);
  for (auto _ : state) {
    auto img = pipeline::rasterize(frame.splats, frame.workload,
                                   renderer.config().blend);
    benchmark::DoNotOptimize(img);
  }
}
BENCHMARK(BM_SoftwareRasterize);

void BM_HardwareModelRasterize(benchmark::State& state) {
  const auto cam = probe_camera();
  const pipeline::GaussianRenderer renderer;
  const auto frame = renderer.prepare(probe_scene(), cam);
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  for (auto _ : state) {
    auto r = hw.rasterize_gaussians(frame.splats, frame.workload,
                                    renderer.config().blend);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HardwareModelRasterize);

void BM_TriangleReference(benchmark::State& state) {
  const auto cam = probe_camera();
  const mesh::TriangleMesh sphere = mesh::make_sphere(32, 48);
  for (auto _ : state) {
    auto out = mesh::render_mesh(sphere, cam);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TriangleReference);

void BM_DetailedSim(benchmark::State& state) {
  std::vector<core::TileLoad> tiles;
  for (int i = 0; i < 64; ++i) {
    tiles.push_back(core::TileLoad{
        static_cast<std::uint64_t>(2000 + 37 * i),
        static_cast<std::uint64_t>(4096 + 13 * i)});
  }
  const auto cfg = core::RasterizerConfig::prototype16();
  for (auto _ : state) {
    auto r = core::run_detailed_module_sim(tiles, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DetailedSim);

}  // namespace

BENCHMARK_MAIN();
