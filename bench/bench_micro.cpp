// bench_micro — microbenchmarks of the substrate implementations: PE
// datapath throughput, software rasterization (reference vs fast kernel),
// Step-2 sorting (serial vs parallel binning), preprocessing, the hardware
// functional model, the triangle reference path and the detailed cycle
// simulator. These gauge the *simulator's* host-side performance, not
// modeled hardware numbers.
//
// Self-contained harness (no third-party benchmark dependency): every
// benchmark runs `--warmup` unmeasured iterations followed by `--repeat`
// measured ones and reports mean/median/min/max/stddev wall milliseconds.
// `--json` emits the machine-readable gaurast-bench-micro/v1 schema the
// tools/bench_pipeline.sh runner aggregates into BENCH_pipeline.json:
//
//   {"schema":"gaurast-bench-micro/v1",
//    "config":{"synthetic":...,"width":...,"height":...,"threads":...,
//              "warmup":...,"repeat":...,"seed":...},
//    "results":[{"name":"raster_reference","repeats":N,"mean_ms":...,
//                "median_ms":...,"min_ms":...,"max_ms":...,
//                "stddev_ms":...}, ...],
//    "derived":{"raster_fast_speedup":R, "sort_parallel_speedup":R,
//               "raster_mt_speedup":R}}
//
// The canonical configuration is the flag defaults (20000 synthetic
// Gaussians at 320x240, warmup 2, repeat 5); the recorded perf trajectory
// in BENCH_pipeline.json is measured at exactly these settings.
//
//   bench_micro [--synthetic N] [--width W] [--height H] [--seed S]
//               [--warmup N] [--repeat N] [--threads T] [--filter SUBSTR]
//               [--json out.json|-]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/detailed_sim.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/pe.hpp"
#include "mesh/primitives.hpp"
#include "mesh/raster.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;

struct BenchResult {
  std::string name;
  int repeats = 0;
  double mean_ms = 0.0;
  double median_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double stddev_ms = 0.0;
};

BenchResult measure(const std::string& name, int warmup, int repeat,
                    const std::function<void()>& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  BenchResult r;
  r.name = name;
  r.repeats = repeat;
  double sum = 0.0;
  r.min_ms = samples.front();
  r.max_ms = samples.front();
  for (double s : samples) {
    sum += s;
    r.min_ms = std::min(r.min_ms, s);
    r.max_ms = std::max(r.max_ms, s);
  }
  r.mean_ms = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  r.median_ms = samples.size() % 2 == 1
                    ? samples[mid]
                    : 0.5 * (samples[mid - 1] + samples[mid]);
  double var = 0.0;
  for (double s : samples) var += (s - r.mean_ms) * (s - r.mean_ms);
  r.stddev_ms = samples.size() > 1
                    ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                    : 0.0;
  return r;
}

// Same fixed-precision formatting bench_service_throughput uses for its
// JSON numbers, so both gaurast-bench-*/v1 reports format identically.
std::string json_number(double v) { return format_fixed(v, 6); }

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_micro");
  cli.add_flag("synthetic", "20000", "synthetic Gaussian count");
  cli.add_flag("width", "320", "render width");
  cli.add_flag("height", "240", "render height");
  cli.add_flag("seed", "42", "scene generator seed");
  cli.add_flag("warmup", "2", "unmeasured iterations per benchmark");
  cli.add_flag("repeat", "5", "measured iterations per benchmark");
  cli.add_flag("threads", "4", "thread count for the *_mt / parallel points");
  cli.add_flag("filter", "", "run only benchmarks whose name contains this");
  cli.add_flag("json", "",
               "write the gaurast-bench-micro/v1 report to this path "
               "('-' for stdout)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const int warmup = cli.get_int("warmup");
    if (warmup < 0) throw CliParseError("--warmup must be >= 0");
    const int repeat = cli.get_positive_int("repeat");
    const int threads = cli.get_positive_int("threads");
    const std::string filter = cli.get_string("filter");

    scene::GeneratorParams params;
    params.gaussian_count =
        static_cast<std::uint64_t>(cli.get_positive_int("synthetic"));
    params.seed = cli.get_uint64("seed");
    const scene::GaussianScene gscene = scene::generate_scene(params);
    const scene::Camera camera = scene::default_camera(
        params, cli.get_positive_int("width"), cli.get_positive_int("height"));

    const pipeline::GaussianRenderer renderer;
    const pipeline::FrameResult frame = renderer.prepare(gscene, camera);
    const pipeline::BlendParams blend = renderer.config().blend;
    pipeline::TileGrid grid;
    grid.width = camera.width();
    grid.height = camera.height();

    std::vector<BenchResult> results;
    const auto bench = [&](const std::string& name,
                           const std::function<void()>& fn) {
      if (!filter.empty() && name.find(filter) == std::string::npos) return;
      results.push_back(measure(name, warmup, repeat, fn));
    };

    bench("pe_gaussian_pair", [&] {
      pipeline::Splat2D splat;
      splat.mean = {10.0f, 10.0f};
      splat.conic = {0.05f, 0.01f, 0.07f};
      splat.opacity = 0.8f;
      splat.color = {0.5f, 0.4f, 0.3f};
      sim::CounterSet counters;
      pipeline::PixelBlendState state;
      for (int i = 0; i < 200000; ++i) {
        state = pipeline::PixelBlendState{};
        core::pe_gaussian_pair(splat, {11.0f, 9.0f}, state, blend,
                               core::Precision::kFp32, counters);
      }
    });

    bench("preprocess", [&] {
      auto splats = pipeline::preprocess(gscene, camera);
      (void)splats;
    });

    bench("sort_serial", [&] {
      auto work = pipeline::sort_splats(frame.splats, grid);
      (void)work;
    });
    bench("sort_parallel", [&] {
      auto work = pipeline::sort_splats(frame.splats, grid, nullptr,
                                        pipeline::CullingMode::kBoundingBox,
                                        blend.alpha_min, threads);
      (void)work;
    });

    // The raster kernel pair the recorded trajectory tracks: both run with
    // stats off (the serving configuration) on a single thread.
    bench("raster_reference", [&] {
      auto img = pipeline::rasterize(frame.splats, frame.workload, blend,
                                     nullptr, 1,
                                     pipeline::RasterKernel::kReference);
      (void)img;
    });
    bench("raster_fast", [&] {
      auto img = pipeline::rasterize(frame.splats, frame.workload, blend,
                                     nullptr, 1, pipeline::RasterKernel::kFast);
      (void)img;
    });
    bench("raster_reference_stats", [&] {
      pipeline::RasterStats stats;
      auto img = pipeline::rasterize(frame.splats, frame.workload, blend,
                                     &stats, 1,
                                     pipeline::RasterKernel::kReference);
      (void)img;
    });
    bench("raster_fast_stats", [&] {
      pipeline::RasterStats stats;
      auto img = pipeline::rasterize(frame.splats, frame.workload, blend,
                                     &stats, 1, pipeline::RasterKernel::kFast);
      (void)img;
    });
    bench("raster_fast_mt", [&] {
      auto img = pipeline::rasterize(frame.splats, frame.workload, blend,
                                     nullptr, threads,
                                     pipeline::RasterKernel::kFast);
      (void)img;
    });

    // Setup (rasterizer/mesh/tile-load construction) stays outside the
    // timed lambdas so the recorded points measure the operation itself.
    const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
    bench("raster_hw_model", [&] {
      auto r = hw.rasterize_gaussians(frame.splats, frame.workload, blend);
      (void)r;
    });

    const mesh::TriangleMesh sphere = mesh::make_sphere(32, 48);
    bench("triangle_reference", [&] {
      auto out = mesh::render_mesh(sphere, camera);
      (void)out;
    });

    std::vector<core::TileLoad> sim_tiles;
    for (int i = 0; i < 64; ++i) {
      sim_tiles.push_back(core::TileLoad{
          static_cast<std::uint64_t>(2000 + 37 * i),
          static_cast<std::uint64_t>(4096 + 13 * i)});
    }
    bench("detailed_sim", [&] {
      auto r = core::run_detailed_module_sim(
          sim_tiles, core::RasterizerConfig::prototype16());
      (void)r;
    });

    const auto median_of = [&](const std::string& name) -> double {
      for (const BenchResult& r : results) {
        if (r.name == name) return r.median_ms;
      }
      return 0.0;
    };
    const auto ratio = [](double a, double b) {
      return (a > 0.0 && b > 0.0) ? a / b : 0.0;
    };
    const double raster_fast_speedup =
        ratio(median_of("raster_reference"), median_of("raster_fast"));
    const double sort_parallel_speedup =
        ratio(median_of("sort_serial"), median_of("sort_parallel"));
    const double raster_mt_speedup =
        ratio(median_of("raster_fast"), median_of("raster_fast_mt"));

    print_banner(std::cout,
                 "bench_micro: " + std::to_string(params.gaussian_count) +
                     " Gaussians at " + std::to_string(camera.width()) + "x" +
                     std::to_string(camera.height()) + ", warmup " +
                     std::to_string(warmup) + ", repeat " +
                     std::to_string(repeat));
    TablePrinter table({"Benchmark", "Median", "Mean", "Min", "Stddev"});
    for (const BenchResult& r : results) {
      table.add_row({r.name, format_time_ms(r.median_ms),
                     format_time_ms(r.mean_ms), format_time_ms(r.min_ms),
                     format_time_ms(r.stddev_ms)});
    }
    table.print(std::cout);
    if (raster_fast_speedup > 0.0) {
      std::cout << "Raster fast-vs-reference speedup (single thread, median): "
                << format_ratio(raster_fast_speedup) << '\n';
    }

    const std::string json_path = cli.get_string("json");
    if (!json_path.empty()) {
      std::ostringstream json;
      json << "{\"schema\":\"gaurast-bench-micro/v1\",\"config\":{"
           << "\"synthetic\":" << params.gaussian_count
           << ",\"width\":" << camera.width()
           << ",\"height\":" << camera.height()
           << ",\"threads\":" << threads << ",\"warmup\":" << warmup
           << ",\"repeat\":" << repeat << ",\"seed\":" << params.seed
           << "},\"results\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult& r = results[i];
        json << (i ? "," : "") << "{\"name\":\"" << r.name
             << "\",\"repeats\":" << r.repeats
             << ",\"mean_ms\":" << json_number(r.mean_ms)
             << ",\"median_ms\":" << json_number(r.median_ms)
             << ",\"min_ms\":" << json_number(r.min_ms)
             << ",\"max_ms\":" << json_number(r.max_ms)
             << ",\"stddev_ms\":" << json_number(r.stddev_ms) << "}";
      }
      json << "],\"derived\":{\"raster_fast_speedup\":"
           << json_number(raster_fast_speedup)
           << ",\"sort_parallel_speedup\":"
           << json_number(sort_parallel_speedup)
           << ",\"raster_mt_speedup\":" << json_number(raster_mt_speedup)
           << "}}";
      if (json_path == "-") {
        std::cout << json.str() << '\n';
      } else {
        std::ofstream os(json_path, std::ios::trunc);
        if (!os.good()) {
          throw CliParseError("cannot write --json file '" + json_path + "'");
        }
        os << json.str() << '\n';
        std::cout << "Wrote " << json_path << '\n';
      }
    }
    return 0;
  } catch (const CliParseError& e) {
    std::cerr << "bench_micro: " << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
