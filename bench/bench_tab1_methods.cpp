// Reproduces paper Table I: comparison of rendering methodologies (triangle
// mesh vs NeRF vs 3D Gaussian) on a GPU. Qualitative in the paper; here we
// back the qualitative rows with modeled frame times on the Orin NX.

#include "bench_util.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout, "Table I — Rendering methodology comparison (Orin NX, 10W)");

  const gpu::CudaCostModel model(gpu::orin_nx_10w());
  const scene::SceneProfile bicycle =
      scene::profile_by_name("bicycle", scene::PipelineVariant::kOriginal);
  const auto pixels = bicycle.pixel_count();

  // A game-grade mesh of the same scene: ~1M triangles, 2x overdraw.
  const double mesh_ms = model.triangle_render_ms(1'000'000, pixels, 2.0);
  // Vanilla NeRF: 192 samples/ray through an 8x256 MLP.
  const double nerf_ms = model.nerf_render_ms(pixels);
  // 3DGS: full pipeline from the calibrated profile.
  const double gs_ms = model.frame_times(bicycle).total_ms();

  TablePrinter table({"Method", "Scene reconstruction", "Quality",
                      "Frame time (model)", "FPS", "Paper speed class"});
  table.add_row({"Triangle mesh", "manual", "manually decided",
                 format_time_ms(mesh_ms), format_fixed(1000.0 / mesh_ms, 0),
                 "Fast"});
  table.add_row({"NeRF", "automatic", "high", format_time_ms(nerf_ms),
                 format_fixed(1000.0 / nerf_ms, 3), "Slow"});
  table.add_row({"3D Gaussian", "automatic", "very high",
                 format_time_ms(gs_ms), format_fixed(1000.0 / gs_ms, 1),
                 "Medium"});
  table.print(std::cout);
  std::cout << "\nOrdering matches the paper: mesh >> 3DGS >> NeRF in speed,\n"
               "with 3DGS the only automatic + very-high-quality option.\n";
  return 0;
}
