// Reproduces paper Sec. V-D: compatibility with non-NVIDIA GPUs. The paper
// runs OpenSplat on an Apple M2 Pro (2.6x the Orin NX FP32 rate) and reports
// an 11.2x GauRast rasterization speedup on the `bicycle` scene, showing the
// enhancement applies to any GPU with a triangle rasterizer.

#include "bench_util.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout, "Sec. V-D — Portability: Apple M2 Pro + OpenSplat");

  const gpu::GpuConfig m2 = gpu::m2_pro();
  const gpu::CudaCostModel software(m2);
  const scene::SceneProfile bicycle =
      scene::profile_by_name("bicycle", scene::PipelineVariant::kOriginal);

  const double sw_ms = software.raster_ms(bicycle);
  const core::ProfileSimResult hw = simulate_gaurast(bicycle);
  const double speedup = sw_ms / hw.runtime_ms();

  TablePrinter table({"Quantity", "Model", "Paper"});
  table.add_row({"Host FP32 rate vs Orin NX",
                 format_ratio(m2.fma_rate_gfma / gpu::orin_nx_10w().fma_rate_gfma),
                 "2.6x"});
  table.add_row({"OpenSplat raster (bicycle)", format_time_ms(sw_ms), "-"});
  table.add_row({"GauRast raster (bicycle)", format_time_ms(hw.runtime_ms()), "-"});
  table.add_row({"Rasterization speedup", format_ratio(speedup), "11.2x"});
  table.print(std::cout);
  std::cout << "\nGauRast attaches to any GPU with a triangle rasterizer; the\n"
               "speedup shrinks with host FP32 capability but remains >10x on\n"
               "a laptop-class part.\n";
  return 0;
}
