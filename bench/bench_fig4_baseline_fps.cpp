// Reproduces paper Fig. 4: end-to-end throughput (FPS) of the original 3DGS
// pipeline on the Jetson Orin NX (10 W) across the seven NeRF-360 scenes.
// The paper reports 2-5 FPS; the CUDA cost model regenerates the series.

#include <algorithm>

#include "bench_util.hpp"
#include "common/chart.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  print_banner(std::cout, "Fig. 4 — Baseline 3DGS throughput on Jetson Orin NX (10W)");

  const gpu::CudaCostModel model(gpu::orin_nx_10w());
  TablePrinter table({"Scene", "Preprocess", "Sort", "Raster", "Frame", "FPS"});
  std::vector<double> fps_series;
  for (const auto& profile : scene::nerf360_profiles()) {
    const gpu::StageTimes t = model.frame_times(profile);
    fps_series.push_back(t.fps());
    table.add_row({profile.name, format_time_ms(t.preprocess_ms),
                   format_time_ms(t.sort_ms), format_time_ms(t.raster_ms),
                   format_time_ms(t.total_ms()), format_fixed(t.fps(), 2)});
  }
  table.print(std::cout);
  BarChart chart("Throughput per scene (cf. paper Fig. 4)", "FPS");
  {
    std::size_t i = 0;
    for (const auto& profile : scene::nerf360_profiles()) {
      chart.add_bar(profile.name, fps_series[i++]);
    }
  }
  std::cout << '\n';
  chart.print(std::cout);
  std::cout << "\nModel FPS range: " << format_fixed(*std::min_element(fps_series.begin(), fps_series.end()), 1)
            << " - " << format_fixed(*std::max_element(fps_series.begin(), fps_series.end()), 1)
            << "  (paper: 2-5 FPS across all seven scenes)\n";
  return 0;
}
