// Reproduces paper Fig. 10: GauRast rasterization speedup and energy-
// efficiency improvement over the CUDA implementation on the Jetson Orin NX,
// for both the original 3DGS algorithm and the efficiency-optimized
// (Mini-Splatting) pipeline. Paper averages: 23x / 24x (original) and
// 20x / 22x (optimized).

#include "bench_util.hpp"
#include "common/chart.hpp"
#include "gpu/config.hpp"

namespace {

void run_variant(const char* title,
                 const std::vector<gaurast::scene::SceneProfile>& profiles,
                 double paper_speedup, double paper_energy) {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout, title);

  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  TablePrinter table({"Scene", "Speedup", "Energy gain", "GauRast power",
                      "GauRast energy", "Baseline energy"});
  std::vector<double> speedups, energy_gains;
  for (const auto& profile : profiles) {
    const double base_ms = cuda.raster_ms(profile);
    const double base_mj = cuda.raster_energy_mj(profile);
    const core::ProfileSimResult hw = simulate_gaurast(profile);
    const double speedup = base_ms / hw.runtime_ms();
    const double energy_gain = base_mj / hw.energy_soc.total_mj();
    speedups.push_back(speedup);
    energy_gains.push_back(energy_gain);
    table.add_row({profile.name, format_ratio(speedup),
                   format_ratio(energy_gain),
                   format_fixed(hw.power_w_soc(), 2) + " W",
                   format_energy_mj(hw.energy_soc.total_mj()),
                   format_energy_mj(base_mj)});
  }
  table.print(std::cout);
  BarChart chart("Rasterization speedup per scene (cf. paper Fig. 10)", "x");
  {
    std::size_t i = 0;
    for (const auto& profile : profiles) chart.add_bar(profile.name, speedups[i++]);
  }
  std::cout << '\n';
  chart.print(std::cout);
  std::cout << "Average: speedup " << format_ratio(average(speedups))
            << " (paper ~" << format_ratio(paper_speedup) << "), energy gain "
            << format_ratio(average(energy_gains)) << " (paper ~"
            << format_ratio(paper_energy) << ")\n";
}

}  // namespace

int main() {
  run_variant(
      "Fig. 10 (top) — Rasterization speedup & energy, original 3DGS",
      gaurast::scene::nerf360_profiles(), 23.0, 24.0);
  run_variant(
      "Fig. 10 (bottom) — Rasterization speedup & energy, Mini-Splatting",
      gaurast::scene::nerf360_mini_profiles(), 20.0, 22.0);
  return 0;
}
