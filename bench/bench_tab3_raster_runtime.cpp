// Reproduces paper Table III: absolute Gaussian-rasterization runtime with
// and without GauRast on the Jetson Orin NX, original 3DGS pipeline, all
// seven NeRF-360 scenes. Baseline comes from the CUDA cost model; GauRast
// from the cycle-level profile simulator (300-PE scaled configuration).

#include "bench_util.hpp"
#include "gpu/config.hpp"

int main() {
  using namespace gaurast;
  using namespace gaurast::bench;
  print_banner(std::cout,
               "Table III — Rasterization runtime w/ and w/o GauRast (original 3DGS)");

  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  TablePrinter table({"Scene", "Baseline (model)", "Baseline (paper)",
                      "GauRast (model)", "GauRast (paper)", "Speedup (model)",
                      "Utilization"});
  std::vector<double> speedups;
  for (const auto& profile : scene::nerf360_profiles()) {
    const double base_ms = cuda.raster_ms(profile);
    const core::ProfileSimResult hw = simulate_gaurast(profile);
    const double speedup = base_ms / hw.runtime_ms();
    speedups.push_back(speedup);
    table.add_row({profile.name, format_time_ms(base_ms),
                   format_time_ms(paper_tab3_baseline_ms(profile.name)),
                   format_time_ms(hw.runtime_ms()),
                   format_time_ms(paper_tab3_gaurast_ms(profile.name)),
                   format_ratio(speedup), format_percent(hw.utilization())});
  }
  table.print(std::cout);
  std::cout << "\nAverage rasterization speedup: "
            << format_ratio(average(speedups))
            << "  (paper: ~23x average)\n";
  return 0;
}
