// Tests for the concurrent render-service runtime (src/runtime): thread-pool
// semantics (bounded queue, backpressure, graceful shutdown), service-level
// determinism (images must be bit-identical for any worker count), per-scene
// caching, load-generator reproducibility, and the engine seam — every
// service job runs over a registry-created (or injected)
// engine::RenderBackend.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engine/backends.hpp"
#include "engine/registry.hpp"
#include "runtime/service.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workload.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;
using namespace gaurast::runtime;

scene::GaussianScene small_scene(std::uint64_t count = 600,
                                 std::uint64_t seed = 7) {
  scene::GeneratorParams params;
  params.gaussian_count = count;
  params.seed = seed;
  return scene::generate_scene(params);
}

std::vector<scene::Camera> test_cameras(int count, int width = 64,
                                        int height = 48) {
  return scene::orbit_path(width, height, 0.9f, {0.0f, 1.2f, 0.0f}, 8.8f,
                           2.4f, count);
}

/// Injects a key->scene callable as the service's SceneSource — the
/// test-double path every scene() call resolves through.
ServiceConfig with_scenes(ServiceConfig config,
                          scene::FunctionSource::Fn fn) {
  config.scene_source =
      std::make_shared<const scene::FunctionSource>(std::move(fn));
  return config;
}

/// Renders `cameras` through a fresh service and returns the images in
/// submission order (futures keep the request association regardless of
/// completion order).
std::vector<Image> render_all(const ServiceConfig& config,
                              const std::vector<scene::Camera>& cameras) {
  RenderService service(
      with_scenes(config, [](const std::string&) { return small_scene(); }));
  const ScenePtr scene = service.scene("test");
  std::vector<std::future<JobResult>> futures;
  futures.reserve(cameras.size());
  for (const scene::Camera& camera : cameras) {
    futures.push_back(service.submit({scene, camera}));
  }
  std::vector<Image> images;
  images.reserve(futures.size());
  for (std::future<JobResult>& f : futures) {
    images.push_back(f.get().frame.image);
  }
  return images;
}

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool pool({2, 8});
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(pool.tasks_executed(), 20u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool({1, 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  // Occupy the single worker, then fill the single queue slot.
  pool.submit([opened] { opened.wait(); });
  pool.submit([opened] { opened.wait(); });
  EXPECT_FALSE(pool.try_submit([] {}));  // bounded queue refuses
  gate.set_value();
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_executed(), 2u);
}

TEST(ThreadPool, SubmitBlocksUntilSpaceFrees) {
  ThreadPool pool({1, 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  pool.submit([opened] { opened.wait(); });  // occupies the worker
  pool.submit([opened] { opened.wait(); });  // fills the queue
  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    pool.submit([] {});  // must block: queue is at capacity
    third_accepted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load()) << "submit returned on a full queue";
  gate.set_value();  // worker drains, space frees, producer unblocks
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_executed(), 3u);
}

TEST(ThreadPool, ThrowingTaskDoesNotKillTheWorker) {
  ThreadPool pool({1, 4});
  pool.submit([] { throw Error("task failure"); });
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1) << "worker died with the throwing task";
  EXPECT_EQ(pool.tasks_failed(), 1u);
  EXPECT_EQ(pool.tasks_executed(), 2u);
}

TEST(ThreadPool, ShutdownDrainsAcceptedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool({2, 16});
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    pool.submit([opened] { opened.wait(); });
    pool.submit([opened] { opened.wait(); });
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    gate.set_value();
    pool.shutdown();  // must run all 10 queued increments before joining
    EXPECT_EQ(counter.load(), 10);
    EXPECT_EQ(pool.tasks_executed(), 12u);
    EXPECT_THROW(pool.submit([] {}), Error);
    EXPECT_FALSE(pool.try_submit([] {}));
    pool.shutdown();  // idempotent
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(RenderService, ImagesBitIdenticalAcrossWorkerCounts) {
  const std::vector<scene::Camera> cameras = test_cameras(6);
  ServiceConfig one;
  one.workers = 1;
  one.backend = "sw";
  ServiceConfig four = one;
  four.workers = 4;
  const std::vector<Image> serial = render_all(one, cameras);
  const std::vector<Image> parallel = render_all(four, cameras);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].max_abs_diff(parallel[i]), 0.0f)
        << "frame " << i << " differs between 1 and 4 workers";
    EXPECT_GT(serial[i].mean_luminance(), 0.0);
  }
}

TEST(RenderService, ImagesBitIdenticalAcrossRasterThreadCounts) {
  const std::vector<scene::Camera> cameras = test_cameras(3);
  ServiceConfig one_thread;
  one_thread.workers = 2;
  one_thread.backend = "sw";
  one_thread.renderer.num_threads = 1;
  ServiceConfig four_threads = one_thread;
  four_threads.renderer.num_threads = 4;
  const std::vector<Image> a = render_all(one_thread, cameras);
  const std::vector<Image> b = render_all(four_threads, cameras);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].max_abs_diff(b[i]), 0.0f)
        << "frame " << i << " differs between num_threads 1 and 4";
  }
}

TEST(RenderService, FastKernelServesBitIdenticalFrames) {
  // The serving configuration of the fast kernel: pool workers render job
  // after job reusing their thread-local scratch arenas; every frame must
  // stay bit-identical to the reference kernel, for any worker count.
  const std::vector<scene::Camera> cameras = test_cameras(4);
  ServiceConfig reference;
  reference.workers = 2;
  reference.backend = "sw";
  ServiceConfig fast = reference;
  fast.renderer.kernel = pipeline::RasterKernel::kFast;
  const std::vector<Image> a = render_all(reference, cameras);
  const std::vector<Image> b = render_all(fast, cameras);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].max_abs_diff(b[i]), 0.0f)
        << "fast-kernel frame " << i << " deviates from reference";
  }
}

TEST(RenderService, GauRastBackendMatchesSoftwareBitExactly) {
  const std::vector<scene::Camera> cameras = test_cameras(2);
  ServiceConfig sw;
  sw.workers = 2;
  sw.backend = "sw";
  ServiceConfig hw = sw;
  hw.backend = "gaurast";
  const std::vector<Image> sw_images = render_all(sw, cameras);
  const std::vector<Image> hw_images = render_all(hw, cameras);
  ASSERT_EQ(sw_images.size(), hw_images.size());
  for (std::size_t i = 0; i < sw_images.size(); ++i) {
    EXPECT_EQ(sw_images[i].max_abs_diff(hw_images[i]), 0.0f)
        << "hardware-model frame " << i << " deviates from software";
  }
}

TEST(RenderService, GScoreBackendServesFrames) {
  ServiceConfig config;
  config.workers = 1;
  config.backend = "gscore";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(300); }));
  const ScenePtr scene = service.scene("s");
  const JobResult result =
      service.submit({scene, test_cameras(1)[0]}).get();
  EXPECT_GT(result.frame.image.mean_luminance(), 0.0);
  EXPECT_GT(result.raster_model_ms, 0.0);
}

TEST(RenderService, SceneCacheLoadsEachKeyOnce) {
  ServiceConfig config;
  config.workers = 1;
  config.backend = "sw";
  std::atomic<int> loads{0};
  RenderService service(
      with_scenes(config, [&loads](const std::string&) {
        ++loads;
        return small_scene(200);
      }));
  const ScenePtr a1 = service.scene("a");
  const ScenePtr a2 = service.scene("a");
  const ScenePtr b = service.scene("b");
  EXPECT_EQ(loads.load(), 2);
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_NE(a1.get(), b.get());
  EXPECT_EQ(service.cached_scene_count(), 2u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.scene_cache_hits, 1u);
  EXPECT_EQ(stats.scene_cache_misses, 2u);
}

TEST(RenderService, TrySubmitShedsLoadOnFullQueue) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.backend = "sw";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(30000, 11); }));
  // A deliberately heavy frame pins the worker for long enough that the
  // immediate follow-up submissions observe worker-busy + queue-full.
  const ScenePtr heavy = service.scene("heavy");
  const std::vector<scene::Camera> cams = test_cameras(1, 320, 240);
  std::vector<std::future<JobResult>> futures;
  futures.push_back(service.submit({heavy, cams[0]}));
  // The first request is either already on the worker or still queued; with
  // capacity 1, at most one more immediate submission can be accepted
  // before the bounded queue must reject (the heavy frame far outlasts
  // these sub-millisecond attempts).
  bool saw_rejection = false;
  for (int i = 0; i < 4 && !saw_rejection; ++i) {
    auto attempt = service.try_submit({heavy, cams[0]});
    if (!attempt) {
      saw_rejection = true;
    } else {
      futures.push_back(std::move(*attempt));
    }
  }
  EXPECT_TRUE(saw_rejection) << "bounded queue never rejected";
  for (auto& f : futures) f.get();
  EXPECT_GE(service.stats().rejected, 1u);
}

TEST(RenderService, StatsAreConsistent) {
  ServiceConfig config;
  config.workers = 2;
  config.backend = "sw";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(400); }));
  const ScenePtr scene = service.scene("s");
  std::vector<std::future<JobResult>> futures;
  for (const scene::Camera& camera : test_cameras(5)) {
    futures.push_back(service.submit({scene, camera}));
  }
  for (auto& f : futures) {
    const JobResult r = f.get();
    EXPECT_GE(r.latency_ms, r.service_ms);
    EXPECT_GE(r.queue_wait_ms, 0.0);
    EXPECT_GT(r.job_id, 0u);
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_GT(stats.throughput_fps, 0.0);
  EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
  EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  EXPECT_LE(stats.latency_p99_ms, stats.latency_max_ms + 1e-9);
  EXPECT_GT(stats.worker_utilization, 0.0);
  EXPECT_LE(stats.worker_utilization, 1.0);
  const std::string json = service_stats_json(stats);
  EXPECT_NE(json.find("\"completed\":5"), std::string::npos);
  EXPECT_NE(json.find("\"latency_p99_ms\":"), std::string::npos);
}

TEST(RenderService, ServesOverAnyRegistryCreatedBackend) {
  // The service resolves its backend through the engine registry, so every
  // registered operating point — including the non-default ones — serves
  // without any runtime-side dispatch code.
  for (const char* name : {"edge-fp16", "orin-agx"}) {
    ServiceConfig config;
    config.workers = 1;
    config.backend = name;
    RenderService service(with_scenes(
        config, [](const std::string&) { return small_scene(300); }));
    EXPECT_EQ(service.backend().name(), name);
    const ScenePtr scene = service.scene("s");
    const JobResult result =
        service.submit({scene, test_cameras(1)[0]}).get();
    EXPECT_GT(result.frame.image.mean_luminance(), 0.0) << name;
    EXPECT_GT(result.raster_model_ms, 0.0)
        << name << " is a hardware model; jobs must carry modeled metrics";
  }
}

TEST(RenderService, UnknownBackendNameFailsAtConstruction) {
  ServiceConfig config;
  config.backend = "gsocre";
  try {
    RenderService service(config);
    FAIL() << "service constructed over an unknown backend";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown backend 'gsocre'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("gscore"), std::string::npos)
        << "diagnostic does not enumerate registered names: " << message;
  }
}

TEST(RenderService, InjectedBackendInstanceIsUsed) {
  // A caller-constructed backend (here a counting wrapper over the software
  // path) bypasses the registry entirely — the extension seam for tests and
  // embedders.
  class CountingBackend : public engine::RenderBackend {
   public:
    explicit CountingBackend(std::atomic<int>& calls) : calls_(&calls) {}
    std::string name() const override { return "counting"; }
    std::string describe() const override { return "test double"; }
    engine::Capabilities capabilities() const override {
      return engine::SoftwareBackend{}.capabilities();
    }
    engine::FrameOutput render(const scene::GaussianScene& scene,
                               const scene::Camera& camera,
                               const engine::FrameOptions& options)
        const override {
      ++*calls_;
      return engine::SoftwareBackend{}.render(scene, camera, options);
    }

   private:
    std::atomic<int>* calls_;
  };

  std::atomic<int> calls{0};
  ServiceConfig config;
  config.workers = 2;
  config.backend_instance = std::make_shared<const CountingBackend>(calls);
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(200); }));
  EXPECT_EQ(service.backend().name(), "counting");
  const ScenePtr scene = service.scene("s");
  std::vector<std::future<JobResult>> futures;
  for (const scene::Camera& camera : test_cameras(3)) {
    futures.push_back(service.submit({scene, camera}));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(calls.load(), 3);
}

TEST(Workload, GenerationIsDeterministicInSeed) {
  WorkloadConfig config;
  config.jobs = 16;
  const std::vector<WorkloadRequest> a = generate_workload(config);
  const std::vector<WorkloadRequest> b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scene_key, b[i].scene_key);
    EXPECT_EQ(a[i].camera.eye().x, b[i].camera.eye().x);
    EXPECT_EQ(a[i].camera.eye().z, b[i].camera.eye().z);
    EXPECT_EQ(a[i].arrival_offset_ms, b[i].arrival_offset_ms);
  }
  WorkloadConfig other = config;
  other.seed = 43;
  const std::vector<WorkloadRequest> c = generate_workload(other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    any_difference = a[i].scene_key != c[i].scene_key ||
                     a[i].camera.eye().x != c[i].camera.eye().x;
  }
  EXPECT_TRUE(any_difference) << "seed had no effect on the workload";
}

TEST(Workload, ArrivalDisciplinesShapeOffsets) {
  WorkloadConfig closed;
  closed.jobs = 8;
  for (const WorkloadRequest& r : generate_workload(closed)) {
    EXPECT_EQ(r.arrival_offset_ms, 0.0);
  }
  WorkloadConfig poisson = closed;
  poisson.arrival = ArrivalModel::kPoisson;
  poisson.rate_hz = 1000.0;
  double last = 0.0;
  for (const WorkloadRequest& r : generate_workload(poisson)) {
    EXPECT_GE(r.arrival_offset_ms, last);
    last = r.arrival_offset_ms;
  }
  EXPECT_GT(last, 0.0);
}

TEST(Workload, MixedScenesExerciseTheCache) {
  WorkloadConfig config;
  config.jobs = 24;
  std::size_t distinct = 0;
  {
    std::vector<std::string> keys;
    for (const WorkloadRequest& r : generate_workload(config)) {
      if (std::find(keys.begin(), keys.end(), r.scene_key) == keys.end()) {
        keys.push_back(r.scene_key);
      }
    }
    distinct = keys.size();
  }
  EXPECT_GT(distinct, 1u);
  EXPECT_LE(distinct, config.scene_sizes.size());
}

TEST(Workload, RunAccountsForEveryRequest) {
  ServiceConfig service_config;
  service_config.workers = 2;
  service_config.backend = "sw";
  RenderService service(service_config);
  WorkloadConfig config;
  config.jobs = 6;
  config.width = 48;
  config.height = 36;
  config.scene_sizes = {300, 900};
  const WorkloadRunResult run = run_workload(service, config);
  EXPECT_EQ(run.accepted, 6u);
  EXPECT_EQ(run.rejected, 0u);
  EXPECT_EQ(run.stats.completed, 6u);
  EXPECT_GT(run.stats.throughput_fps, 0.0);
  // One miss per distinct scene class drawn; every other acquire is a
  // hit. The driver warms each request's scene before the arrival clock
  // starts and then resolves it again per request, so each of the 6
  // requests contributes two acquires.
  EXPECT_GE(run.stats.scene_cache_misses, 1u);
  EXPECT_LE(run.stats.scene_cache_misses, 2u);
  EXPECT_EQ(run.stats.scene_cache_hits + run.stats.scene_cache_misses, 12u);
}

}  // namespace
