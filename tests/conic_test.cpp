// Tests for EWA covariance projection and conic math — the arithmetic core
// both the software rasterizer and the GauRast PE evaluate.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "gsmath/conic.hpp"

namespace gaurast {
namespace {

TEST(Covariance3d, IdentityRotationGivesDiagonal) {
  const Mat3f cov = covariance3d(Quatf::identity(), {2.0f, 3.0f, 4.0f});
  EXPECT_FLOAT_EQ(cov.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(cov.at(1, 1), 9.0f);
  EXPECT_FLOAT_EQ(cov.at(2, 2), 16.0f);
  EXPECT_FLOAT_EQ(cov.at(0, 1), 0.0f);
}

TEST(Covariance3d, SymmetricForRandomInputs) {
  Pcg32 rng(3);
  for (int i = 0; i < 30; ++i) {
    const Quatf q = Quatf::from_axis_angle(
        {static_cast<float>(rng.normal()), static_cast<float>(rng.normal()),
         static_cast<float>(rng.normal() + 1.5)},
        static_cast<float>(rng.uniform(0, 6.28)));
    const Vec3f s{static_cast<float>(rng.lognormal(-1, 0.5)),
                  static_cast<float>(rng.lognormal(-1, 0.5)),
                  static_cast<float>(rng.lognormal(-1, 0.5))};
    const Mat3f cov = covariance3d(q, s);
    EXPECT_NEAR(cov.at(0, 1), cov.at(1, 0), 1e-6f);
    EXPECT_NEAR(cov.at(0, 2), cov.at(2, 0), 1e-6f);
    EXPECT_NEAR(cov.at(1, 2), cov.at(2, 1), 1e-6f);
  }
}

TEST(Covariance3d, RotationPreservesDeterminant) {
  const Vec3f s{0.5f, 1.0f, 2.0f};
  const float det0 = covariance3d(Quatf::identity(), s).det();
  const Quatf q = Quatf::from_axis_angle({1, 1, 0}, 1.2f);
  EXPECT_NEAR(covariance3d(q, s).det(), det0, det0 * 1e-4f);
}

TEST(Covariance3d, NegativeScaleThrows) {
  EXPECT_THROW(covariance3d(Quatf::identity(), {-1.0f, 1.0f, 1.0f}), Error);
}

TEST(Covariance3d, PositiveSemidefinite) {
  Pcg32 rng(7);
  for (int i = 0; i < 30; ++i) {
    const Quatf q = Quatf::from_axis_angle(
        {1.0f, static_cast<float>(rng.normal()), 0.3f},
        static_cast<float>(rng.uniform(0, 6.28)));
    const Mat3f cov = covariance3d(
        q, {static_cast<float>(rng.lognormal(-2, 0.8)),
            static_cast<float>(rng.lognormal(-2, 0.8)),
            static_cast<float>(rng.lognormal(-2, 0.8))});
    const Vec3f v{static_cast<float>(rng.normal()),
                  static_cast<float>(rng.normal()),
                  static_cast<float>(rng.normal())};
    EXPECT_GE(v.dot(cov * v), -1e-5f);
  }
}

TEST(ProjectCovariance, LowPassFloorApplied) {
  // A point-like Gaussian still gets the +0.3 px^2 dilation.
  const Mat3f tiny = covariance3d(Quatf::identity(), {1e-6f, 1e-6f, 1e-6f});
  const Cov2 cov = project_covariance(tiny, {0, 0, 5.0f}, 500.0f, 500.0f,
                                      0.5f, 0.5f, Mat3f::identity());
  EXPECT_GE(cov.a, 0.3f);
  EXPECT_GE(cov.c, 0.3f);
}

TEST(ProjectCovariance, FootprintShrinksWithDepth) {
  const Mat3f cov3d = covariance3d(Quatf::identity(), {0.1f, 0.1f, 0.1f});
  const Cov2 near = project_covariance(cov3d, {0, 0, 2.0f}, 500.0f, 500.0f,
                                       0.5f, 0.5f, Mat3f::identity());
  const Cov2 far = project_covariance(cov3d, {0, 0, 20.0f}, 500.0f, 500.0f,
                                      0.5f, 0.5f, Mat3f::identity());
  EXPECT_GT(near.a, far.a);
  EXPECT_GT(near.c, far.c);
}

TEST(ProjectCovariance, RequiresPositiveDepth) {
  const Mat3f cov3d = covariance3d(Quatf::identity(), {0.1f, 0.1f, 0.1f});
  EXPECT_THROW(project_covariance(cov3d, {0, 0, -1.0f}, 500, 500, 0.5f, 0.5f,
                                  Mat3f::identity()),
               Error);
}

TEST(InvertCovariance, RoundTripsAgainstMat2) {
  const Cov2 cov{5.0f, 1.0f, 3.0f};
  Conic2 conic;
  ASSERT_TRUE(invert_covariance(cov, conic));
  const Mat2f m{cov.a, cov.b, cov.b, cov.c};
  const Mat2f mi = m.inverse();
  EXPECT_NEAR(conic.a, mi.a, 1e-5f);
  EXPECT_NEAR(conic.b, mi.b, 1e-5f);
  EXPECT_NEAR(conic.c, mi.d, 1e-5f);
}

TEST(InvertCovariance, DegenerateReturnsFalse) {
  Conic2 conic;
  EXPECT_FALSE(invert_covariance({1.0f, 1.0f, 1.0f}, conic));  // det == 0
  EXPECT_FALSE(invert_covariance({0.0f, 0.0f, 0.0f}, conic));
  EXPECT_FALSE(
      invert_covariance({std::nanf(""), 0.0f, 1.0f}, conic));
}

TEST(SplatRadius, ThreeSigmaOfIsotropicGaussian) {
  // sigma = 2 px; the reference implementation's 0.1 discriminant floor
  // nudges the major eigenvalue to 4.316, so ceil(3*sqrt(4.316)) = 7.
  const Cov2 cov{4.0f, 0.0f, 4.0f};
  EXPECT_FLOAT_EQ(splat_radius(cov), 7.0f);
}

TEST(SplatRadius, UsesMajorAxis) {
  const Cov2 wide{100.0f, 0.0f, 1.0f};
  EXPECT_FLOAT_EQ(splat_radius(wide), 30.0f);
}

TEST(Cov2Eigenvalues, DiagonalCase) {
  float l1, l2;
  cov2_eigenvalues({9.0f, 0.0f, 4.0f}, l1, l2);
  EXPECT_NEAR(l1, 9.0f, 1e-3f);
  EXPECT_NEAR(l2, 4.0f, 0.11f);  // the reference 0.1 discriminant floor
}

TEST(GaussianPower, ZeroAtCenterNegativeElsewhere) {
  const Conic2 conic{0.5f, 0.0f, 0.5f};
  EXPECT_FLOAT_EQ(gaussian_power(conic, {0, 0}), 0.0f);
  EXPECT_LT(gaussian_power(conic, {1, 0}), 0.0f);
  EXPECT_LT(gaussian_power(conic, {0, -2}), 0.0f);
}

TEST(GaussianPower, MatchesQuadraticForm) {
  const Conic2 conic{0.3f, 0.1f, 0.6f};
  const Vec2f d{1.5f, -0.7f};
  const float expected =
      -0.5f * (conic.a * d.x * d.x + conic.c * d.y * d.y) - conic.b * d.x * d.y;
  EXPECT_NEAR(gaussian_power(conic, d), expected, 1e-6f);
}

/// Property sweep over random PSD covariances: inversion must succeed, the
/// resulting conic must be PSD, and alpha must decay monotonically with
/// distance along any ray from the center.
class ConicPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConicPropertyTest, InverseIsPsdAndDecaysMonotonically) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 11);
  // Random PSD 2x2 via A = R D R^T with positive diagonal.
  const float theta = static_cast<float>(rng.uniform(0, 3.14159));
  const float c = std::cos(theta), s = std::sin(theta);
  const float d1 = static_cast<float>(rng.lognormal(0.5, 0.8)) + 0.3f;
  const float d2 = static_cast<float>(rng.lognormal(0.5, 0.8)) + 0.3f;
  Cov2 cov;
  cov.a = c * c * d1 + s * s * d2;
  cov.b = c * s * (d1 - d2);
  cov.c = s * s * d1 + c * c * d2;

  Conic2 conic;
  ASSERT_TRUE(invert_covariance(cov, conic));
  EXPECT_GT(conic.a, 0.0f);
  EXPECT_GT(conic.a * conic.c - conic.b * conic.b, 0.0f);

  const float dir_t = static_cast<float>(rng.uniform(0, 6.28));
  const Vec2f dir{std::cos(dir_t), std::sin(dir_t)};
  float last = gaussian_power(conic, {0, 0});
  for (float r = 0.5f; r < 8.0f; r += 0.5f) {
    const float p = gaussian_power(conic, dir * r);
    EXPECT_LT(p, last + 1e-6f) << "r=" << r;
    last = p;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCovariances, ConicPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace gaurast
