// Parameterized configuration sweeps: monotonicity and scaling properties of
// the simulator, energy and area models across the design space. These are
// the "does the model behave like hardware" checks that complement the
// point-wise paper reproductions.

#include <gtest/gtest.h>

#include "core/area.hpp"
#include "core/energy.hpp"
#include "core/profile_sim.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "scene/profile.hpp"

namespace gaurast::core {
namespace {

// ------------------------------------------- runtime vs PE count sweep --

class PeCountSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PeCountSweepTest, RuntimeInverselyProportionalToPes) {
  const int modules = GetParam();
  const auto profile = scene::profile_by_name("garden");
  RasterizerConfig base = RasterizerConfig::prototype16();
  RasterizerConfig scaled = base;
  scaled.module_count = modules;
  const double t_base = ProfileSimulator(base).simulate(profile).runtime_ms();
  const double t_scaled =
      ProfileSimulator(scaled).simulate(profile).runtime_ms();
  // Near-ideal scaling while the workload stays compute-bound.
  EXPECT_NEAR(t_base / t_scaled, static_cast<double>(modules),
              0.15 * modules);
}

INSTANTIATE_TEST_SUITE_P(Modules, PeCountSweepTest,
                         ::testing::Values(2, 3, 5, 8, 12, 15));

// ------------------------------------------------- per-scene invariants --

class SceneProfileSweepTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SceneProfileSweepTest, SimulatorInvariantsHoldPerScene) {
  const auto profile = scene::profile_by_name(GetParam());
  const ProfileSimulator sim(RasterizerConfig::scaled300());
  const ProfileSimResult r = sim.simulate(profile);
  // Runtime bounded below by the peak-rate roofline, above by 1.5x it.
  const double ideal_ms = static_cast<double>(profile.total_pairs()) /
                          RasterizerConfig::scaled300().peak_pairs_per_second() *
                          1e3;
  EXPECT_GE(r.runtime_ms(), ideal_ms * 0.999);
  EXPECT_LE(r.runtime_ms(), ideal_ms * 1.5);
  // Energy at the SoC node beats the CUDA baseline by at least 10x.
  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  EXPECT_GT(cuda.raster_energy_mj(profile) / r.energy_soc.total_mj(), 10.0);
}

TEST_P(SceneProfileSweepTest, MiniVariantAlwaysLighter) {
  const auto orig = scene::profile_by_name(GetParam());
  const auto mini = scene::profile_by_name(
      GetParam(), scene::PipelineVariant::kMiniSplatting);
  const ProfileSimulator sim(RasterizerConfig::scaled300());
  EXPECT_LT(sim.simulate(mini).runtime_ms(), sim.simulate(orig).runtime_ms());
  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  EXPECT_LT(cuda.frame_times(mini).total_ms(),
            cuda.frame_times(orig).total_ms());
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneProfileSweepTest,
                         ::testing::Values("bicycle", "stump", "garden",
                                           "room", "counter", "kitchen",
                                           "bonsai"));

// --------------------------------------------------- area monotonicity --

class AreaSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(AreaSweepTest, AreaGrowsLinearlyWithPes) {
  const int pes = GetParam();
  RasterizerConfig cfg = RasterizerConfig::prototype16();
  cfg.pes_per_module = pes;
  const AreaModel model(cfg);
  const AreaModel base(RasterizerConfig::prototype16());
  const double expected_ratio = static_cast<double>(pes) / 16.0;
  EXPECT_NEAR(model.enhanced_mm2() / base.enhanced_mm2(), expected_ratio,
              1e-9);
  // The module total includes fixed buffers/controller, so it dilutes the
  // PE scaling: for more PEs the ratio falls short of linear, for fewer it
  // overshoots.
  const double total_ratio =
      model.module_area().total_mm2() / base.module_area().total_mm2();
  if (pes > 16) {
    EXPECT_LT(total_ratio, expected_ratio);
  } else if (pes < 16) {
    EXPECT_GT(total_ratio, expected_ratio);
  } else {
    EXPECT_NEAR(total_ratio, 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PeCounts, AreaSweepTest,
                         ::testing::Values(4, 8, 16, 24, 32, 64));

// ------------------------------------------------- energy monotonicity --

class ClockSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ClockSweepTest, EnergyPerOpMonotoneInClock) {
  const double clk = GetParam();
  const EnergyTable at_clk = dvfs_scaled_table({}, clk);
  const EnergyTable slower = dvfs_scaled_table({}, clk * 0.8);
  EXPECT_LE(slower.fp_mul_pj, at_clk.fp_mul_pj);
  EXPECT_LE(slower.module_leakage_w, at_clk.module_leakage_w);
}

TEST_P(ClockSweepTest, ProfileSimRuntimeScalesWithClock) {
  const double clk = GetParam();
  const auto profile = scene::profile_by_name("bonsai");
  RasterizerConfig cfg = RasterizerConfig::scaled300();
  cfg.clock_ghz = clk;
  RasterizerConfig nominal = RasterizerConfig::scaled300();
  const double t = ProfileSimulator(cfg).simulate(profile).runtime_ms();
  const double t0 = ProfileSimulator(nominal).simulate(profile).runtime_ms();
  EXPECT_NEAR(t * clk, t0 * 1.0, t0 * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Clocks, ClockSweepTest,
                         ::testing::Values(0.5, 0.75, 1.0, 1.25, 1.5));

// ---------------------------------- host-GPU sensitivity of the speedup --

TEST(HostSweep, SpeedupScalesInverselyWithHostCapability) {
  const auto profile = scene::profile_by_name("bicycle");
  const ProfileSimulator sim(RasterizerConfig::scaled300());
  const double gau_ms = sim.simulate(profile).runtime_ms();
  double last_speedup = 1e9;
  for (double host_scale : {0.5, 1.0, 2.0, 4.0}) {
    gpu::GpuConfig host = gpu::orin_nx_10w();
    host.fma_rate_gfma *= host_scale;
    const gpu::CudaCostModel cuda(host);
    const double speedup = cuda.raster_ms(profile) / gau_ms;
    EXPECT_LT(speedup, last_speedup);
    last_speedup = speedup;
  }
  // Even a 4x Orin-class host still gains >4x from GauRast.
  EXPECT_GT(last_speedup, 4.0);
}

}  // namespace
}  // namespace gaurast::core
