// Tests for the stage-pipelined frame scheduler (runtime/stage_pipeline +
// the RenderService execution-mode switch): stage-worker spec parsing, the
// hard bit-identity contract (pipelined frames must match monolithic
// frames exactly, across backends, kernels, and worker apportionments),
// per-stage statistics, camera-independent per-scene precompute reuse, and
// the drain semantics under shutdown — including shutdown while every
// stage queue is full, the most deadlock-prone path in the runtime.

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "engine/backends.hpp"
#include "pipeline/preprocess.hpp"
#include "pipeline/renderer.hpp"
#include "runtime/service.hpp"
#include "runtime/stage_pipeline.hpp"
#include "scene/generator.hpp"

namespace {

using namespace gaurast;
using namespace gaurast::runtime;

scene::GaussianScene small_scene(std::uint64_t count = 600,
                                 std::uint64_t seed = 7) {
  scene::GeneratorParams params;
  params.gaussian_count = count;
  params.seed = seed;
  return scene::generate_scene(params);
}

std::vector<scene::Camera> test_cameras(int count, int width = 64,
                                        int height = 48) {
  return scene::orbit_path(width, height, 0.9f, {0.0f, 1.2f, 0.0f}, 8.8f,
                           2.4f, count);
}


/// Injects a key->scene callable as the service's SceneSource — the
/// test-double path every scene() call resolves through.
ServiceConfig with_scenes(ServiceConfig config,
                          scene::FunctionSource::Fn fn) {
  config.scene_source =
      std::make_shared<const scene::FunctionSource>(std::move(fn));
  return config;
}

/// Renders `cameras` through a fresh service and returns the images in
/// submission order.
std::vector<Image> serve_images(const ServiceConfig& config,
                                const std::vector<scene::Camera>& cameras) {
  RenderService service(
      with_scenes(config, [](const std::string&) { return small_scene(); }));
  const ScenePtr scene = service.scene("s");
  std::vector<std::future<JobResult>> futures;
  futures.reserve(cameras.size());
  for (const scene::Camera& camera : cameras) {
    futures.push_back(service.submit({scene, camera}));
  }
  std::vector<Image> images;
  images.reserve(futures.size());
  for (std::future<JobResult>& f : futures) {
    images.push_back(f.get().frame.image);
  }
  return images;
}

/// Test double over the software backend whose chosen stage blocks on a
/// caller-controlled gate — the lever for filling stage queues
/// deterministically.
class GatedStageBackend : public engine::RenderBackend {
 public:
  GatedStageBackend(std::shared_future<void> gate, int gated_stage)
      : gate_(std::move(gate)), gated_stage_(gated_stage) {}

  std::string name() const override { return "gated"; }
  std::string describe() const override { return "gated test double"; }
  engine::Capabilities capabilities() const override {
    return sw_.capabilities();
  }
  engine::FrameOutput render(const scene::GaussianScene& scene,
                             const scene::Camera& camera,
                             const engine::FrameOptions& options)
      const override {
    return sw_.render(scene, camera, options);
  }
  pipeline::FrameResult stage_preprocess(
      const scene::GaussianScene& scene, const scene::Camera& camera,
      const engine::FrameOptions& options) const override {
    if (gated_stage_ == 0) gate_.wait();
    return sw_.stage_preprocess(scene, camera, options);
  }
  void stage_sort(pipeline::FrameResult& frame,
                  const engine::FrameOptions& options) const override {
    if (gated_stage_ == 1) gate_.wait();
    sw_.stage_sort(frame, options);
  }
  engine::FrameOutput stage_raster(
      pipeline::FrameResult frame,
      const engine::FrameOptions& options) const override {
    if (gated_stage_ == 2) gate_.wait();
    return sw_.stage_raster(std::move(frame), options);
  }

 private:
  engine::SoftwareBackend sw_;
  std::shared_future<void> gate_;
  int gated_stage_;
};

TEST(StageWorkers, ParsesAndPrints) {
  const StageWorkers w = stage_workers_from_string("1,2,3");
  EXPECT_EQ(w.preprocess, 1);
  EXPECT_EQ(w.sort, 2);
  EXPECT_EQ(w.raster, 3);
  EXPECT_EQ(w.total(), 6);
  EXPECT_EQ(to_string(w), "1,2,3");
  EXPECT_EQ(to_string(StageWorkers{}), "1,1,2");
}

TEST(StageWorkers, RejectsMalformedSpecs) {
  for (const char* bad : {"", "1", "1,1", "1,1,1,1", "0,1,1", "1,-2,1",
                          "a,b,c", "1,1,2x"}) {
    EXPECT_THROW(stage_workers_from_string(bad), Error) << bad;
  }
}

TEST(ExecutionMode, StringsRoundTrip) {
  EXPECT_EQ(execution_mode_from_string("monolithic"),
            ExecutionMode::kMonolithic);
  EXPECT_EQ(execution_mode_from_string("pipelined"),
            ExecutionMode::kPipelined);
  EXPECT_STREQ(to_string(ExecutionMode::kPipelined), "pipelined");
  EXPECT_THROW(execution_mode_from_string("staged"), Error);
}

TEST(StagePipelineService, BitIdenticalToMonolithicAcrossBackendsAndKernels) {
  // The tentpole invariant: for every backend with stage support and both
  // software kernels, pipelined frames match monolithic frames bit for
  // bit, for any worker apportionment (1-4 workers per stage).
  const std::vector<scene::Camera> cameras = test_cameras(4);
  struct Case {
    const char* backend;
    pipeline::RasterKernel kernel;
  };
  const Case cases[] = {
      {"sw", pipeline::RasterKernel::kReference},
      {"sw", pipeline::RasterKernel::kFast},
      {"gaurast", pipeline::RasterKernel::kReference},
      {"gscore", pipeline::RasterKernel::kReference},
  };
  const StageWorkers splits[] = {{1, 1, 1}, {2, 1, 2}, {1, 4, 2}};
  for (const Case& c : cases) {
    ServiceConfig monolithic;
    monolithic.workers = 2;
    monolithic.backend = c.backend;
    monolithic.renderer.kernel = c.kernel;
    const std::vector<Image> reference = serve_images(monolithic, cameras);
    for (const StageWorkers& split : splits) {
      SCOPED_TRACE(std::string(c.backend) + "/" +
                   pipeline::to_string(c.kernel) + "/" + to_string(split));
      ServiceConfig pipelined = monolithic;
      pipelined.mode = ExecutionMode::kPipelined;
      pipelined.stage_workers = split;
      const std::vector<Image> staged = serve_images(pipelined, cameras);
      ASSERT_EQ(reference.size(), staged.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].max_abs_diff(staged[i]), 0.0f)
            << "frame " << i << " differs from monolithic";
        EXPECT_GT(reference[i].mean_luminance(), 0.0);
      }
    }
  }
}

TEST(StagePipelineService, HardwareModelJobsCarryModeledMetrics) {
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 1, 1};
  config.backend = "gaurast";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(300); }));
  const ScenePtr scene = service.scene("s");
  const JobResult result = service.submit({scene, test_cameras(1)[0]}).get();
  EXPECT_GT(result.frame.image.mean_luminance(), 0.0);
  EXPECT_GT(result.raster_model_ms, 0.0)
      << "hardware-model raster stage must report modeled Step-3 time";
}

TEST(StagePipelineService, StatsExposePerStageBreakdown) {
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 2, 1};
  config.backend = "sw";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(400); }));
  EXPECT_EQ(service.worker_count(), 4);
  const ScenePtr scene = service.scene("s");
  std::vector<std::future<JobResult>> futures;
  for (const scene::Camera& camera : test_cameras(5)) {
    futures.push_back(service.submit({scene, camera}));
  }
  for (auto& f : futures) {
    const JobResult r = f.get();
    EXPECT_GE(r.latency_ms, r.service_ms);
    EXPECT_GE(r.queue_wait_ms, 0.0);
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 5u);
  ASSERT_EQ(stats.stages.size(), 3u);
  EXPECT_EQ(stats.stages[0].name, "preprocess");
  EXPECT_EQ(stats.stages[1].name, "sort");
  EXPECT_EQ(stats.stages[2].name, "raster");
  EXPECT_EQ(stats.stages[1].workers, 2);
  for (const StageSnapshot& stage : stats.stages) {
    EXPECT_EQ(stage.completed, 5u) << stage.name;
    EXPECT_GE(stage.service_mean_ms, 0.0);
    EXPECT_GE(stage.utilization, 0.0);
    EXPECT_LE(stage.utilization, 1.0);
  }
  const std::string json = service_stats_json(stats);
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"preprocess\""),
            std::string::npos)
      << json;
}

TEST(StagePipelineService, MonolithicStatsHaveNoStages) {
  ServiceConfig config;
  config.workers = 1;
  config.backend = "sw";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(200); }));
  const ScenePtr scene = service.scene("s");
  service.submit({scene, test_cameras(1)[0]}).get();
  EXPECT_TRUE(service.stats().stages.empty());
  EXPECT_EQ(service.cached_precompute_count(), 0u);
  const std::string json = service_stats_json(service.stats());
  EXPECT_NE(json.find("\"stages\":[]"), std::string::npos) << json;
}

TEST(StagePipelineService, PrecomputeBuiltOncePerSceneAndReused) {
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 1, 1};
  config.backend = "sw";
  RenderService service(with_scenes(config, [](const std::string& key) {
    return small_scene(300, key == "a" ? 1 : 2);
  }));
  const ScenePtr a = service.scene("a");
  const ScenePtr b = service.scene("b");
  std::vector<std::future<JobResult>> futures;
  for (const scene::Camera& camera : test_cameras(3)) {
    futures.push_back(service.submit({a, camera}));
    futures.push_back(service.submit({b, camera}));
  }
  for (auto& f : futures) f.get();
  // One precompute per distinct scene, however many frames each served.
  EXPECT_EQ(service.cached_precompute_count(), 2u);
}

TEST(ScenePrecompute, RenderingWithPrecomputeIsBitIdentical) {
  const scene::GaussianScene scene = small_scene(500, 3);
  const scene::Camera camera = test_cameras(1)[0];
  for (const pipeline::RasterKernel kernel :
       {pipeline::RasterKernel::kReference, pipeline::RasterKernel::kFast}) {
    pipeline::RendererConfig config;
    config.kernel = kernel;
    const pipeline::GaussianRenderer renderer(config);
    const pipeline::ScenePrecompute pre =
        pipeline::precompute_scene(scene, config.blend.alpha_min);
    EXPECT_EQ(pre.cov3d.size(), scene.size());
    EXPECT_EQ(pre.raster_cutoff.size(), scene.size());
    const pipeline::FrameResult plain = renderer.render(scene, camera);
    const pipeline::FrameResult reused = renderer.render(scene, camera, &pre);
    EXPECT_EQ(plain.image.max_abs_diff(reused.image), 0.0f)
        << pipeline::to_string(kernel);
    EXPECT_EQ(plain.raster_stats.pairs_evaluated,
              reused.raster_stats.pairs_evaluated);
  }
}

TEST(StagePipelineService, RejectsBackendWithoutStageSupport) {
  // A backend that never overrides the stage entry points (capabilities
  // without supports_stage_pipeline) cannot serve pipelined.
  class MonolithicOnlyBackend : public engine::RenderBackend {
   public:
    std::string name() const override { return "mono-only"; }
    std::string describe() const override { return "test double"; }
    engine::Capabilities capabilities() const override { return {}; }
    engine::FrameOutput render(const scene::GaussianScene& scene,
                               const scene::Camera& camera,
                               const engine::FrameOptions& options)
        const override {
      return engine::SoftwareBackend{}.render(scene, camera, options);
    }
  };
  const auto backend = std::make_shared<const MonolithicOnlyBackend>();

  // The default stage entry points themselves refuse with a diagnostic.
  pipeline::FrameResult frame;
  EXPECT_THROW(backend->stage_sort(frame, engine::FrameOptions{}), Error);

  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.backend_instance = backend;
  try {
    RenderService service(config);
    FAIL() << "pipelined service constructed over a stage-less backend";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("mono-only"), std::string::npos) << message;
    EXPECT_NE(message.find("stage-pipelined"), std::string::npos) << message;
  }
}

TEST(StagePipelineService, TrySubmitShedsWhenEntryQueueFull) {
  std::promise<void> gate;
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 1, 1};
  config.queue_capacity = 1;
  config.backend_instance = std::make_shared<const GatedStageBackend>(
      gate.get_future().share(), /*gated_stage=*/0);
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(100); }));
  const ScenePtr scene = service.scene("s");
  const scene::Camera camera = test_cameras(1)[0];

  std::vector<std::future<JobResult>> futures;
  // First request occupies the gated preprocess worker; with entry capacity
  // 1, at most one more is queued before try_submit must shed.
  futures.push_back(service.submit({scene, camera}));
  bool saw_rejection = false;
  for (int i = 0; i < 3 && !saw_rejection; ++i) {
    auto attempt = service.try_submit({scene, camera});
    if (!attempt) {
      saw_rejection = true;
    } else {
      futures.push_back(std::move(*attempt));
    }
  }
  EXPECT_TRUE(saw_rejection) << "bounded entry queue never rejected";
  gate.set_value();
  for (auto& f : futures) f.get();
  EXPECT_GE(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().completed, futures.size());
}

TEST(StagePipelineService, ShutdownWhileStagesFullDrainsEveryAcceptedJob) {
  // Fill every queue of a minimal pipeline behind a closed raster gate,
  // call shutdown() while all of it is in flight, and require that
  // shutdown completes every accepted job (values, not broken promises)
  // before returning — the front-to-back drain contract.
  std::promise<void> gate;
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 1, 1};
  config.queue_capacity = 1;
  config.backend_instance = std::make_shared<const GatedStageBackend>(
      gate.get_future().share(), /*gated_stage=*/2);
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(150); }));
  const ScenePtr scene = service.scene("s");
  const scene::Camera camera = test_cameras(1)[0];

  constexpr int kJobs = 6;  // > workers + queue slots: every stage fills
  std::vector<std::future<JobResult>> futures;
  std::thread producer([&] {
    for (int i = 0; i < kJobs; ++i) {
      futures.push_back(service.submit({scene, camera}));
    }
  });
  producer.join();  // all six accepted (submit blocks until accepted)

  std::atomic<bool> shutdown_returned{false};
  std::thread closer([&] {
    service.shutdown();
    shutdown_returned = true;
  });
  // Give shutdown a moment to park against the gated, completely full
  // pipeline: it must wait for the drain, not give up.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(shutdown_returned.load())
      << "shutdown returned while accepted jobs were still gated";

  gate.set_value();
  closer.join();
  EXPECT_TRUE(shutdown_returned.load());
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get()) << "accepted job dropped during shutdown";
  }
  EXPECT_EQ(service.stats().completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_THROW(service.submit({scene, camera}), Error)
      << "intake stayed open after shutdown";
}

TEST(StagePipelineService, DrainWaitsForAllStages) {
  ServiceConfig config;
  config.mode = ExecutionMode::kPipelined;
  config.stage_workers = {1, 1, 2};
  config.backend = "sw";
  RenderService service(with_scenes(
      config, [](const std::string&) { return small_scene(400); }));
  const ScenePtr scene = service.scene("s");
  for (const scene::Camera& camera : test_cameras(6)) {
    service.submit({scene, camera});
  }
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 6u);
  ASSERT_EQ(stats.stages.size(), 3u);
  for (const StageSnapshot& stage : stats.stages) {
    EXPECT_EQ(stage.completed, 6u) << stage.name;
  }
}

}  // namespace
