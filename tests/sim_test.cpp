// Tests for the cycle-simulation kernel, two-phase FIFO, memory port and
// counters.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/counters.hpp"
#include "sim/fifo.hpp"
#include "sim/kernel.hpp"
#include "sim/memport.hpp"

namespace gaurast::sim {
namespace {

/// Counts down N cycles then goes idle.
class Countdown final : public ClockedModule {
 public:
  explicit Countdown(int n) : remaining_(n) {}
  void evaluate(Cycle) override {
    if (staged_ > 0) return;
    if (remaining_ > 0) staged_ = 1;
  }
  void commit(Cycle) override {
    remaining_ -= staged_;
    staged_ = 0;
  }
  bool idle() const override { return remaining_ == 0; }
  std::string name() const override { return "countdown"; }

 private:
  int remaining_;
  int staged_ = 0;
};

TEST(SimKernel, RunsUntilAllIdle) {
  Countdown a(5), b(3);
  SimKernel kernel;
  kernel.add_module(&a);
  kernel.add_module(&b);
  const Cycle cycles = kernel.run(100);
  EXPECT_EQ(cycles, 5u);
  EXPECT_TRUE(kernel.all_idle());
}

TEST(SimKernel, ThrowsOnNonConvergence) {
  class Forever final : public ClockedModule {
   public:
    void evaluate(Cycle) override {}
    void commit(Cycle) override {}
    bool idle() const override { return false; }
    std::string name() const override { return "forever"; }
  } forever;
  SimKernel kernel;
  kernel.add_module(&forever);
  EXPECT_THROW(kernel.run(10), Error);
}

TEST(SimKernel, RejectsNullModule) {
  SimKernel kernel;
  EXPECT_THROW(kernel.add_module(nullptr), Error);
}

TEST(SimKernel, StepAdvancesClock) {
  SimKernel kernel;
  EXPECT_EQ(kernel.now(), 0u);
  kernel.step();
  kernel.step();
  EXPECT_EQ(kernel.now(), 2u);
}

// ---------------------------------------------------------------- Fifo --

TEST(Fifo, PushVisibleOnlyAfterCommit) {
  Fifo<int> f(4);
  f.push(42);
  EXPECT_TRUE(f.empty());  // staged, not committed
  f.commit();
  ASSERT_FALSE(f.empty());
  EXPECT_EQ(f.front(), 42);
  EXPECT_EQ(f.pop(), 42);
}

TEST(Fifo, CapacityCountsStagedEntries) {
  Fifo<int> f(2);
  f.push(1);
  f.push(2);
  EXPECT_TRUE(f.full());
  EXPECT_THROW(f.push(3), Error);
  f.commit();
  EXPECT_TRUE(f.full());
  (void)f.pop();
  EXPECT_FALSE(f.full());
}

TEST(Fifo, FifoOrderPreserved) {
  Fifo<int> f(8);
  for (int i = 0; i < 5; ++i) f.push(i);
  f.commit();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(f.pop(), i);
}

TEST(Fifo, PopEmptyThrows) {
  Fifo<int> f(2);
  EXPECT_THROW(f.pop(), Error);
}

TEST(Fifo, DrainedChecksStagedToo) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.drained());
  f.push(1);
  EXPECT_FALSE(f.drained());
  f.commit();
  EXPECT_FALSE(f.drained());
  (void)f.pop();
  EXPECT_TRUE(f.drained());
}

TEST(Fifo, ZeroCapacityRejected) {
  EXPECT_THROW(Fifo<int>(0), Error);
}

// ------------------------------------------------------------- MemPort --

TEST(MemPort, TransferTimeMatchesBandwidthPlusLatency) {
  MemPort port({/*bytes_per_cycle=*/32.0, /*latency=*/10});
  const auto id = port.request(320, /*now=*/0);
  EXPECT_EQ(port.completion_cycle(id), 10u + 10u);  // 320/32 + latency
  EXPECT_FALSE(port.complete(id, 19));
  EXPECT_TRUE(port.complete(id, 20));
}

TEST(MemPort, BackToBackTransfersSerialize) {
  MemPort port({32.0, 5});
  const auto a = port.request(320, 0);   // occupies bus cycles 0-10
  const auto b = port.request(320, 0);   // starts at 10
  EXPECT_EQ(port.completion_cycle(a), 15u);
  EXPECT_EQ(port.completion_cycle(b), 25u);
}

TEST(MemPort, IdleGapResetsPipe) {
  MemPort port({32.0, 5});
  (void)port.request(32, 0);  // done transferring at 1
  const auto b = port.request(32, 100);
  EXPECT_EQ(port.completion_cycle(b), 106u);
}

TEST(MemPort, TracksTotals) {
  MemPort port({16.0, 2});
  (void)port.request(100, 0);
  (void)port.request(50, 1);
  EXPECT_EQ(port.total_bytes(), 150u);
  EXPECT_EQ(port.total_requests(), 2u);
}

TEST(MemPort, RetireDropsOldRecords) {
  MemPort port({16.0, 2});
  const auto a = port.request(16, 0);  // completes at 3
  port.retire_before(10);
  // Retired ids report completion 0 (treated as long past).
  EXPECT_EQ(port.completion_cycle(a), 0u);
}

TEST(MemPort, UnknownIdThrows) {
  MemPort port({16.0, 2});
  EXPECT_THROW(port.completion_cycle(99), Error);
}

TEST(MemPort, RejectsZeroBandwidth) {
  EXPECT_THROW(MemPort({0.0, 2}), Error);
}

// ------------------------------------------------------------ Counters --

TEST(CounterSet, IncrementAndGet) {
  CounterSet c;
  c.increment("fp32.add");
  c.increment("fp32.add", 4);
  EXPECT_EQ(c.get("fp32.add"), 5u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(CounterSet, MergeAccumulates) {
  CounterSet a, b;
  a.increment("x", 2);
  b.increment("x", 3);
  b.increment("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
}

TEST(CounterSet, SumPrefixSelectsFamily) {
  CounterSet c;
  c.increment(ops::kFp32Add, 10);
  c.increment(ops::kFp32Mul, 20);
  c.increment(ops::kBufRead, 99);
  EXPECT_EQ(c.sum_prefix("fp32."), 30u + c.get(ops::kFp32Div) +
                                       c.get(ops::kFp32Exp) +
                                       c.get(ops::kFp32Cmp));
  EXPECT_EQ(c.sum_prefix("buf."), 99u);
  EXPECT_EQ(c.sum_prefix("zzz"), 0u);
}

TEST(CounterSet, ClearEmpties) {
  CounterSet c;
  c.increment("x");
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_TRUE(c.all().empty());
}

}  // namespace
}  // namespace gaurast::sim
