// Chaos harness for the fleet's robustness layer: seeded fault plans
// driving deterministic failure scenarios end to end.
//
// Unit level: fault-plan parsing, the nth/p= trigger semantics, and the
// seed-determinism contract (same plan, same hit order, same injections).
// Fleet level, each against an in-process router + real net::Servers:
//
//   expired-deadline flood  every response is an explicit
//                           kDeadlineExceeded within the deadline plus a
//                           small epsilon — never a hang, never silence;
//   drop-storm              injected forward failures (cluster.forward,
//                           p=0.3) are absorbed by retry/failover; every
//                           request terminates, and every successful frame
//                           is bit-identical to its clean-run twin;
//   breaker                 injected consecutive failures trip the
//                           per-shard circuit breaker open, and the
//                           prober's first post-cooldown success closes it;
//   crash-loop              a worker process armed (via GAURAST_FAULT_PLAN,
//                           the env inheritance a spawned fleet really
//                           uses) to _exit mid-respond is reaped and
//                           relaunched on its original port by the Spawner
//                           after its restart backoff, and serves again.
//
// The crash-loop scenario forks the real gaurast_cli binary; it skips
// unless ctest exported its path as GAURAST_CLI.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/host_db.hpp"
#include "cluster/router.hpp"
#include "cluster/spawner.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "engine/backends.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "runtime/service.hpp"

namespace {

using namespace gaurast;
using namespace gaurast::cluster;

/// Every test that arms a plan holds one of these: the registry is
/// process-global, and a plan leaking into the next test would make its
/// failures incomprehensible.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

// ---------------------------------------------------------------------------
// Fault plans: parsing, triggers, determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesSpecsAndRejectsMalformed) {
  const fault::Plan plan = fault::parse_plan(
      "seed=7;net.client.recv:error:p=0.25;cluster.forward:delay=40:nth=3");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 2u);
  EXPECT_EQ(plan.rules[0].point, "net.client.recv");
  EXPECT_EQ(plan.rules[0].action, fault::Action::kError);
  EXPECT_EQ(plan.rules[0].probability, 0.25);
  EXPECT_EQ(plan.rules[1].point, "cluster.forward");
  EXPECT_EQ(plan.rules[1].action, fault::Action::kDelay);
  EXPECT_EQ(plan.rules[1].delay_ms, 40);
  EXPECT_EQ(plan.rules[1].nth, 3u);

  // Seed stays at its default when the spec has none.
  EXPECT_EQ(fault::parse_plan("a.b:drop:p=1").seed, 1u);

  EXPECT_THROW(fault::parse_plan(""), Error);                    // no rules
  EXPECT_THROW(fault::parse_plan("seed=7"), Error);              // no rules
  EXPECT_THROW(fault::parse_plan("a.b:error"), Error);           // no trigger
  EXPECT_THROW(fault::parse_plan(":error:p=0.5"), Error);        // no point
  EXPECT_THROW(fault::parse_plan("a.b:explode:p=0.5"), Error);   // bad action
  EXPECT_THROW(fault::parse_plan("a.b:delay:p=0.5"), Error);     // no ms arg
  EXPECT_THROW(fault::parse_plan("a.b:error=1:p=0.5"), Error);   // stray arg
  EXPECT_THROW(fault::parse_plan("a.b:error:p=1.5"), Error);     // p > 1
  EXPECT_THROW(fault::parse_plan("a.b:error:nth=0"), Error);     // 1-based
  EXPECT_THROW(fault::parse_plan("a.b:error:always"), Error);    // bad trigger
}

TEST(FaultPlan, NthTriggerFiresOnExactlyTheNthHit) {
  DisarmGuard guard;
  fault::arm("chaos.test.point:error:nth=3");
  for (int hit = 1; hit <= 6; ++hit) {
    const fault::Hit result = fault::evaluate("chaos.test.point");
    EXPECT_EQ(result.action,
              hit == 3 ? fault::Action::kError : fault::Action::kNone)
        << "hit " << hit;
  }
  // Other points never trip a rule that does not name them.
  EXPECT_EQ(fault::evaluate("chaos.test.other").action, fault::Action::kNone);
}

TEST(FaultPlan, ProbabilisticInjectionIsSeedDeterministic) {
  DisarmGuard guard;
  auto pattern = [](const std::string& spec) {
    fault::arm(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(fault::evaluate("chaos.test.point").action !=
                      fault::Action::kNone);
    }
    return fired;
  };
  const auto a = pattern("seed=7;chaos.test.point:error:p=0.5");
  const auto b = pattern("seed=7;chaos.test.point:error:p=0.5");
  const auto c = pattern("seed=8;chaos.test.point:error:p=0.5");
  EXPECT_EQ(a, b) << "same plan must replay the same injection sequence";
  EXPECT_NE(a, c) << "a different seed must draw a different stream";
  // p=0.5 over 64 hits: both extremes mean the RNG stream is broken.
  const int fired = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST(FaultPlan, DisarmedPointsAreInert) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::evaluate("chaos.test.point").action, fault::Action::kNone);
  EXPECT_NO_THROW(fault::inject("chaos.test.point"));
  // inject() throws only while a matching rule is armed.
  {
    DisarmGuard guard;
    fault::arm("chaos.test.point:error:p=1");
    EXPECT_THROW(fault::inject("chaos.test.point"), fault::InjectedFault);
  }
  EXPECT_NO_THROW(fault::inject("chaos.test.point"));
}

// ---------------------------------------------------------------------------
// Fleet scenarios
// ---------------------------------------------------------------------------

/// Backend that sleeps before rendering — a deterministically slow shard,
/// without arming delay faults that would also slow the test's own clients.
class SlowBackend : public engine::RenderBackend {
 public:
  explicit SlowBackend(int delay_ms) : delay_ms_(delay_ms) {}

  std::string name() const override { return "slow"; }
  std::string describe() const override { return "slow test double"; }
  engine::Capabilities capabilities() const override {
    return sw_.capabilities();
  }
  engine::FrameOutput render(const scene::GaussianScene& scene,
                             const scene::Camera& camera,
                             const engine::FrameOptions& options)
      const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return sw_.render(scene, camera, options);
  }

 private:
  engine::SoftwareBackend sw_;
  int delay_ms_ = 0;
};

/// An in-process fleet: N real net::Servers over their own RenderServices,
/// plus a HostDb and Router fronting them (cluster_test's harness, minus
/// the pieces these scenarios do not need).
class Fleet {
 public:
  explicit Fleet(int shard_count, runtime::ServiceConfig service_config = {},
                 RouterConfig router_config = {},
                 HostDbConfig db_config = {}) {
    if (service_config.backend.empty() && !service_config.backend_instance) {
      service_config.backend = "sw";
    }
    std::vector<ShardId> ids;
    for (int i = 0; i < shard_count; ++i) {
      services_.push_back(
          std::make_unique<runtime::RenderService>(service_config));
      servers_.push_back(
          std::make_unique<net::Server>(*services_.back(),
                                        net::ServerConfig{}));
      servers_.back()->start();
      ids.push_back(ShardId{"127.0.0.1", servers_.back()->port()});
    }
    db_ = std::make_unique<HostDb>(ids, db_config);
    router_ = std::make_unique<Router>(*db_, router_config);
    router_->start();
  }

  ~Fleet() {
    router_->stop();
    for (auto& server : servers_) {
      if (server) server->stop();
    }
  }

  HostDb& db() { return *db_; }
  Router& router() { return *router_; }
  int router_port() const { return router_->port(); }

  void kill_shard(std::size_t i) {
    servers_[i]->stop();
    servers_[i].reset();
  }

  void restart_shard(std::size_t i) {
    net::ServerConfig config;
    config.port = db_->shard(i).port;
    servers_[i] = std::make_unique<net::Server>(*services_[i], config);
    servers_[i]->start();
  }

  /// A seed whose scene key is owned by shard `owner` under this fleet's
  /// HRW map.
  std::uint64_t seed_owned_by(std::size_t owner, std::uint64_t count,
                              int width, int height) const {
    for (std::uint64_t seed = 0;; ++seed) {
      net::RenderRequest req =
          net::default_render_request(count, seed, width, height);
      if (db_->hrw_order(req.scene_key())[0] == owner) return seed;
    }
  }

 private:
  std::vector<std::unique_ptr<runtime::RenderService>> services_;
  std::vector<std::unique_ptr<net::Server>> servers_;
  std::unique_ptr<HostDb> db_;
  std::unique_ptr<Router> router_;
};

TEST(Chaos, ExpiredDeadlineFloodIsAnsweredNotHung) {
  // A shard whose renders take far longer than the 1ms budget every
  // request carries: no request can ever be served in time, so every
  // response must be an explicit kDeadlineExceeded — promptly, whether it
  // was shed at a router hand-off or by the shard itself.
  runtime::ServiceConfig service_config;
  service_config.workers = 1;
  service_config.backend_instance = std::make_shared<SlowBackend>(100);
  Fleet fleet(1, service_config);

  net::Client client("127.0.0.1", fleet.router_port());
  for (int i = 0; i < 6; ++i) {
    net::RenderRequest wire = net::default_render_request(
        600, static_cast<std::uint64_t>(i), 64, 48);
    wire.request_id = static_cast<std::uint64_t>(i);
    wire.deadline_ms = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const net::RenderResponse resp = client.render(wire);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(resp.status, net::RenderStatus::kDeadlineExceeded)
        << resp.message;
    EXPECT_EQ(resp.request_id, wire.request_id);
    EXPECT_FALSE(resp.message.empty());
    // The deadline-propagation invariant: an expired request is answered
    // within its budget plus a small epsilon, never held to the render's
    // or the transport's own (much larger) timetable.
    EXPECT_LE(elapsed_ms, 1 + 250) << "request " << i << " overstayed";
  }

  const RouterStatsSnapshot stats = fleet.router().stats_snapshot();
  EXPECT_GE(stats.deadline_exceeded +
                static_cast<std::uint64_t>(stats.latency_ms.size()),
            1u)
      << "no hand-off ever observed the expired deadline";
}

TEST(Chaos, DropStormPreservesBitIdenticalFrames) {
  Fleet fleet(2);
  constexpr int kScenes = 4;
  constexpr int kRequestsPerScene = 6;

  auto make_wire = [](int scene, std::uint64_t request_id) {
    net::RenderRequest wire = net::default_render_request(
        600, static_cast<std::uint64_t>(scene), 64, 48);
    wire.request_id = request_id;
    wire.flags = net::kWantImage;
    return wire;
  };

  // Clean pass: the reference frame per scene, rendered through the same
  // router so the comparison isolates the storm, not the route.
  std::map<int, std::vector<float>> reference;
  {
    net::Client client("127.0.0.1", fleet.router_port());
    for (int scene = 0; scene < kScenes; ++scene) {
      const net::RenderResponse resp =
          client.render(make_wire(scene, 1000 + scene));
      ASSERT_EQ(resp.status, net::RenderStatus::kOk) << resp.message;
      ASSERT_TRUE(resp.has_image);
      reference[scene] = resp.pixels;
    }
  }

  // The storm: ~30% of forward attempts fail before reaching the shard.
  // Retry/failover must absorb them into terminal answers — a rendered
  // frame (bit-identical to the clean one) or an explicit
  // kFleetUnavailable when a request's attempt budget drowned. Nothing
  // else, and nothing hangs.
  DisarmGuard guard;
  fault::arm("seed=5;cluster.forward:error:p=0.3");
  int ok = 0, unavailable = 0;
  {
    net::Client client("127.0.0.1", fleet.router_port());
    for (int i = 0; i < kScenes * kRequestsPerScene; ++i) {
      const int scene = i % kScenes;
      const net::RenderRequest wire =
          make_wire(scene, static_cast<std::uint64_t>(i));
      const net::RenderResponse resp = client.render(wire);
      EXPECT_EQ(resp.request_id, wire.request_id);
      if (resp.status == net::RenderStatus::kOk) {
        ++ok;
        ASSERT_TRUE(resp.has_image);
        ASSERT_EQ(resp.pixels.size(), reference[scene].size());
        EXPECT_EQ(std::memcmp(resp.pixels.data(), reference[scene].data(),
                              resp.pixels.size() * sizeof(float)),
                  0)
            << "request " << i << ": a storm survivor must be bit-identical";
      } else {
        EXPECT_EQ(resp.status, net::RenderStatus::kFleetUnavailable)
            << "request " << i << ": " << resp.message;
        ++unavailable;
      }
    }
  }
  fault::disarm();

  // p=0.3 over 24 requests: a storm that injected nothing (or drowned
  // everything) means the fault plan never reached the forward seam.
  EXPECT_GT(ok, 0) << "every request drowned";
  const RouterStatsSnapshot stats = fleet.router().stats_snapshot();
  EXPECT_GE(stats.retries + stats.failovers, 1u)
      << "the storm never injected a failure";
  EXPECT_EQ(static_cast<std::uint64_t>(unavailable), stats.fleet_unavailable);
}

TEST(Chaos, BreakerOpensUnderFailuresAndProberRecloses) {
  RouterConfig router_config;
  router_config.connect_timeout_ms = 500;
  router_config.probe_interval_ms = 50;
  HostDbConfig db_config;
  db_config.breaker_trip_failures = 2;
  db_config.breaker_open_ms = 300;
  Fleet fleet(2, {}, router_config, db_config);

  const std::size_t victim = 0;
  const std::uint64_t seed = fleet.seed_owned_by(victim, 600, 64, 48);
  net::RenderRequest wire = net::default_render_request(600, seed, 64, 48);

  fleet.kill_shard(victim);
  // Drive failures through the router until the breaker trips (each
  // failed forward reports into the same HostDb the prober feeds).
  net::Client client("127.0.0.1", fleet.router_port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!fleet.db().breaker_open(victim)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "breaker never tripped";
    // Failover still answers kOk off the surviving shard while the victim
    // racks up failures.
    EXPECT_EQ(client.render(wire).status, net::RenderStatus::kOk);
  }
  EXPECT_GE(fleet.db().snapshot()[victim].breaker_trips, 1u);

  // Recovery: the shard comes back, the prober's post-cooldown success
  // closes the breaker, and ownership deterministically returns.
  fleet.restart_shard(victim);
  while (fleet.db().breaker_open(victim) ||
         fleet.db().state(victim) != ShardState::kAlive) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "breaker never closed after recovery";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(*fleet.db().route(wire.scene_key()), victim);
  EXPECT_EQ(client.render(wire).status, net::RenderStatus::kOk);
}

TEST(Chaos, CrashLoopingWorkerIsRelaunchedAndServesAgain) {
  const char* cli = std::getenv("GAURAST_CLI");
#ifdef GAURAST_CLI_PATH
  if (cli == nullptr || cli[0] == '\0') cli = GAURAST_CLI_PATH;
#endif
  if (cli == nullptr || cli[0] == '\0') {
    GTEST_SKIP() << "no gaurast_cli path (set GAURAST_CLI or build via CMake)";
  }

  // Arm the WORKER via the environment — the same inheritance a real
  // `route --spawn` fleet uses. The plan crashes the worker mid-respond on
  // its second response; this process never arms it (only gaurast_cli's
  // main reads the variable).
  ASSERT_EQ(setenv("GAURAST_FAULT_PLAN", "net.server.respond:crash:nth=2", 1),
            0);
  SpawnerConfig config;
  config.exe = cli;
  config.serve_args = {"--backend", "sw", "--workers", "1"};
  config.restart_backoff_ms = 100;
  Spawner spawner(config);
  std::vector<ShardId> ids;
  try {
    ids = spawner.spawn(1);
  } catch (...) {
    unsetenv("GAURAST_FAULT_PLAN");
    throw;
  }
  // Restarted workers fork with the CURRENT environment: clearing the plan
  // now means the relaunch comes back healthy.
  unsetenv("GAURAST_FAULT_PLAN");
  ASSERT_EQ(ids.size(), 1u);
  const int port = ids[0].port;

  {
    net::Client client(ids[0].host, port, /*timeout_ms=*/30000);
    net::RenderRequest wire = net::default_render_request(600, 7, 64, 48);
    wire.request_id = 1;
    EXPECT_EQ(client.render(wire).status, net::RenderStatus::kOk);
    // Second response: the armed rule _exits the worker mid-respond. The
    // client sees the transport die — an exception, never a hang.
    wire.request_id = 2;
    EXPECT_THROW(client.render(wire), Error);
  }

  // The supervisor reaps the corpse and relaunches on the ORIGINAL port
  // after the restart backoff; the relaunched (plan-free) worker serves.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool served = false;
  while (!served) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker never came back";
    spawner.poll();
    try {
      net::Client retry(ids[0].host, port, /*timeout_ms=*/30000,
                        /*connect_timeout_ms=*/500);
      net::RenderRequest wire = net::default_render_request(600, 7, 64, 48);
      wire.request_id = 3;
      served = retry.render(wire).status == net::RenderStatus::kOk;
    } catch (const Error&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(spawner.alive_count(), 1u);
  spawner.stop();
}

}  // namespace
