// Cross-module integration tests: the full 3DGS frame path through software
// and hardware models, workload-statistics consistency between rendered
// synthetic scenes and profiles, Mini-Splatting pruning effects, and the
// CUDA-collaborative end-to-end flow.

#include <gtest/gtest.h>

#include "core/hw_rasterizer.hpp"
#include "core/profile_sim.hpp"
#include "core/scheduler.hpp"
#include "gpu/config.hpp"
#include "gpu/cost_model.hpp"
#include "mesh/primitives.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"
#include "scene/scene_io.hpp"

namespace gaurast {
namespace {

TEST(Integration, FullFramePathSoftwareVsHardware) {
  // Generate -> save -> load -> render -> hardware Step 3 -> images equal.
  scene::GeneratorParams params;
  params.gaussian_count = 3000;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const std::string path = ::testing::TempDir() + "/integration_scene.gsc";
  scene::save_scene(gscene, path);
  const scene::GaussianScene loaded = scene::load_scene(path);

  const scene::Camera camera = scene::default_camera(params, 192, 144);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult frame = renderer.render(loaded, camera);

  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  const core::HwRasterResult hwres = hw.rasterize_gaussians(
      frame.splats, frame.workload, renderer.config().blend);
  EXPECT_EQ(hwres.image.max_abs_diff(frame.image), 0.0f);
  EXPECT_GT(hwres.timing.makespan_cycles, 0u);
  std::remove(path.c_str());
}

TEST(Integration, MultiViewpointConsistency) {
  scene::GeneratorParams params;
  params.gaussian_count = 1500;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const auto cams = scene::orbit_path(96, 72, 0.9f, {0, 1, 0}, 9.0f, 3.0f, 5);
  const pipeline::GaussianRenderer renderer;
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  for (const scene::Camera& cam : cams) {
    const pipeline::FrameResult frame = renderer.render(gscene, cam);
    const core::HwRasterResult hwres = hw.rasterize_gaussians(
        frame.splats, frame.workload, renderer.config().blend);
    EXPECT_EQ(hwres.image.max_abs_diff(frame.image), 0.0f);
  }
}

TEST(Integration, PrunedSceneShrinksWorkloadButKeepsContent) {
  scene::GeneratorParams params;
  params.gaussian_count = 5000;
  const scene::GaussianScene full = scene::generate_scene(params);
  const scene::GaussianScene mini = full.pruned(full.size() / 10);

  const scene::Camera camera = scene::default_camera(params, 128, 96);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult f_full = renderer.render(full, camera);
  const pipeline::FrameResult f_mini = renderer.render(mini, camera);

  // Mini-Splatting effect: far fewer pairs, image still has content.
  EXPECT_LT(f_mini.raster_stats.pairs_evaluated,
            f_full.raster_stats.pairs_evaluated);
  EXPECT_GT(f_mini.image.mean_luminance(), 0.005);
}

TEST(Integration, HardwareSpeedupGrowsWithWorkload) {
  // A denser scene keeps the PE array busier relative to fixed overheads.
  const scene::Camera camera = scene::default_camera({}, 128, 96);
  const pipeline::GaussianRenderer renderer;
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  double util_small = 0.0, util_large = 0.0;
  for (const std::uint64_t count : {300u, 6000u}) {
    scene::GeneratorParams params;
    params.gaussian_count = count;
    const scene::GaussianScene gscene = scene::generate_scene(params);
    const pipeline::FrameResult frame = renderer.render(gscene, camera);
    const core::HwRasterResult r = hw.rasterize_gaussians(
        frame.splats, frame.workload, renderer.config().blend);
    (count == 300u ? util_small : util_large) = r.utilization();
  }
  EXPECT_GT(util_large, util_small);
}

TEST(Integration, MeasuredBlendFractionInModeledBand) {
  // The statistical energy model assumes kBlendedFraction of evaluated
  // pairs complete the blend datapath; rendered synthetic scenes must land
  // in the band that assumption was drawn from (tile-based evaluation
  // rejects most pairs of small splats at the alpha threshold).
  scene::GeneratorParams params;
  params.gaussian_count = 8000;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult frame =
      renderer.render(gscene, scene::default_camera(params, 160, 120));
  const double measured =
      static_cast<double>(frame.raster_stats.pairs_blended) /
      static_cast<double>(frame.raster_stats.pairs_evaluated);
  EXPECT_GT(measured, 0.005);
  EXPECT_LT(measured, 0.5);
}

TEST(Integration, GeneratorDuplicationTracksProfileKnob) {
  // The generator sizes splats from the profile's tile-duplication factor;
  // at the same resolution, a high-duplication profile must measure more
  // tile instances per splat than a low-duplication one.
  scene::SceneProfile low = scene::profile_by_name("stump").scaled(0.01);
  scene::SceneProfile high = low;
  low.tile_instances_per_gaussian = 1.5;
  high.tile_instances_per_gaussian = 25.0;
  low.gaussian_count = high.gaussian_count = 3000;
  low.width = high.width = 256;
  low.height = high.height = 192;
  const pipeline::GaussianRenderer renderer;
  auto dup = [&](const scene::SceneProfile& p) {
    const scene::GaussianScene s = scene::generate_scene_for_profile(p);
    scene::GeneratorParams params;
    const pipeline::FrameResult f =
        renderer.render(s, scene::default_camera(params, p.width, p.height));
    return f.sort_stats.instances_per_splat;
  };
  EXPECT_GT(dup(high), dup(low) * 1.5);
}

TEST(Integration, EndToEndPipelineWithHardwareNumbers) {
  // Full collaborative flow at reduced scale: CUDA model stage1-2 +
  // hardware-model stage3 -> sane FPS accounting.
  const auto profile = scene::profile_by_name("bonsai");
  const gpu::CudaCostModel cuda(gpu::orin_nx_10w());
  const core::ProfileSimulator sim(core::RasterizerConfig::scaled300());
  const core::ProfileSimResult hw = sim.simulate(profile);
  const core::EndToEndResult e2e =
      core::schedule_frame(cuda.frame_times(profile), hw.runtime_ms());
  EXPECT_GT(e2e.end_to_end_speedup(), 3.0);
  EXPECT_GT(e2e.pipelined_fps(), e2e.cuda_only_fps());
  // The explicit Fig. 8 timeline agrees with the closed form over N frames.
  const int frames = 20;
  const double explicit_ms = core::simulate_pipeline_ms(
      e2e.stage12_ms, e2e.gaurast_raster_ms, frames);
  const double steady = e2e.pipelined_frame_ms();
  EXPECT_NEAR(explicit_ms / frames, steady, steady * 0.15);
}

TEST(Integration, TriangleAndGaussianModesShareOneRasterizer) {
  // Mode switching on the same instance: triangle frame, then Gaussian
  // frame, then triangle again; results stay independent and exact.
  const scene::Camera cam = scene::default_camera({}, 96, 72);
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());

  const mesh::TriangleMesh cube = mesh::make_cube();
  const auto prims = mesh::build_primitives(cube, cam);
  const Vec3f bg{0, 0, 0};
  const mesh::RasterOutput ref = mesh::render_mesh(cube, cam, bg);

  const core::HwRasterResult t1 = hw.rasterize_triangles(prims, 96, 72, bg);

  scene::GeneratorParams params;
  params.gaussian_count = 800;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const pipeline::GaussianRenderer renderer;
  const pipeline::FrameResult frame = renderer.render(gscene, cam);
  const core::HwRasterResult g = hw.rasterize_gaussians(
      frame.splats, frame.workload, renderer.config().blend);

  const core::HwRasterResult t2 = hw.rasterize_triangles(prims, 96, 72, bg);

  EXPECT_EQ(t1.image.max_abs_diff(ref.color), 0.0f);
  EXPECT_EQ(t2.image.max_abs_diff(t1.image), 0.0f);
  EXPECT_EQ(g.image.max_abs_diff(frame.image), 0.0f);
}

/// Sweep: hardware/software equality must hold across tile sizes.
class TileSizeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TileSizeSweepTest, EqualityHoldsForTileSize) {
  const int ts = GetParam();
  scene::GeneratorParams params;
  params.gaussian_count = 1200;
  const scene::GaussianScene gscene = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 96, 80);

  pipeline::RendererConfig rc;
  rc.tile_size = ts;
  const pipeline::GaussianRenderer renderer(rc);
  const pipeline::FrameResult frame = renderer.render(gscene, cam);

  core::RasterizerConfig hc = core::RasterizerConfig::prototype16();
  hc.tile_size = ts;
  const core::HardwareRasterizer hw(hc);
  const core::HwRasterResult r =
      hw.rasterize_gaussians(frame.splats, frame.workload, rc.blend);
  EXPECT_EQ(r.image.max_abs_diff(frame.image), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileSizeSweepTest,
                         ::testing::Values(8, 16, 32));

}  // namespace
}  // namespace gaurast
