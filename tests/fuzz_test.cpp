// Differential fuzzing across random configurations and scenes — the repo's
// random-stimulus verification testbench. For every random (scene, camera,
// rasterizer-config) triple it checks the full invariant set:
//   * FP32 hardware image == software reference image (bit-exact),
//   * pair counts agree between the two,
//   * the analytic tile timeline agrees with the per-cycle detailed
//     simulator within 5%,
//   * utilization and energy stay within physical bounds.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "core/detailed_sim.hpp"
#include "core/energy.hpp"
#include "core/hw_rasterizer.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"

namespace gaurast::core {
namespace {

struct FuzzInputs {
  scene::GeneratorParams scene_params;
  int width = 0;
  int height = 0;
  RasterizerConfig config;
};

FuzzInputs make_inputs(std::uint64_t seed) {
  Pcg32 rng(seed * 0x9E3779B9u + 7);
  FuzzInputs in;
  in.scene_params.gaussian_count = 200 + rng.next_below(2800);
  in.scene_params.seed = seed;
  in.scene_params.sh_degree = static_cast<int>(rng.next_below(4));
  in.scene_params.log_scale_mu = rng.uniform(-4.5, -2.8);
  in.scene_params.opacity_alpha = rng.uniform(1.0, 4.0);
  in.width = 48 + static_cast<int>(rng.next_below(120));
  in.height = 48 + static_cast<int>(rng.next_below(90));

  RasterizerConfig cfg = RasterizerConfig::prototype16();
  cfg.pes_per_module = 4 << rng.next_below(3);  // 4, 8, 16
  cfg.module_count = 1 + static_cast<int>(rng.next_below(4));
  const int tile_choices[3] = {8, 16, 32};
  cfg.tile_size = tile_choices[rng.next_below(3)];
  cfg.mem_bytes_per_cycle = 8.0 * static_cast<double>(1 + rng.next_below(8));
  cfg.mem_latency = 5 + rng.next_below(60);
  cfg.pipeline_depth = 1 + static_cast<int>(rng.next_below(8));
  in.config = cfg;
  return in;
}

class DifferentialFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzzTest, AllInvariantsHold) {
  const FuzzInputs in = make_inputs(static_cast<std::uint64_t>(GetParam()));
  SCOPED_TRACE(::testing::Message()
               << "gaussians=" << in.scene_params.gaussian_count << " res="
               << in.width << "x" << in.height << " pes="
               << in.config.pes_per_module << " modules="
               << in.config.module_count << " tile=" << in.config.tile_size);

  const scene::GaussianScene gscene = scene::generate_scene(in.scene_params);
  const scene::Camera camera =
      scene::default_camera(in.scene_params, in.width, in.height);

  pipeline::RendererConfig rc;
  rc.tile_size = in.config.tile_size;
  const pipeline::GaussianRenderer renderer(rc);
  const pipeline::FrameResult frame = renderer.render(gscene, camera);

  const HardwareRasterizer hw(in.config);
  const HwRasterResult r =
      hw.rasterize_gaussians(frame.splats, frame.workload, rc.blend);

  // 1. Bit-exact functional equivalence.
  EXPECT_EQ(r.image.max_abs_diff(frame.image), 0.0f);
  // 2. Identical work accounting.
  EXPECT_EQ(r.pairs_evaluated, frame.raster_stats.pairs_evaluated);
  EXPECT_EQ(r.pairs_blended, frame.raster_stats.pairs_blended);
  // 3. Timing model vs per-cycle simulation (single-module slice).
  if (!r.tile_loads.empty()) {
    RasterizerConfig single = in.config;
    single.module_count = 1;
    const ModuleTimelineResult analytic =
        run_module_timeline(r.tile_loads, single);
    const DetailedSimResult detailed =
        run_detailed_module_sim(r.tile_loads, single);
    EXPECT_EQ(detailed.pairs, analytic.pairs);
    if (analytic.busy_cycles > 0) {
      const double rel =
          std::abs(static_cast<double>(detailed.cycles) -
                   static_cast<double>(analytic.busy_cycles)) /
          static_cast<double>(analytic.busy_cycles);
      EXPECT_LT(rel, 0.05);
    }
  }
  // 4. Physical bounds.
  EXPECT_GE(r.utilization(), 0.0);
  EXPECT_LE(r.utilization(), 1.0);
  const EnergyModel energy(in.config);
  const EnergyBreakdown e = energy.from_counters(r.counters, r.runtime_ms());
  EXPECT_GE(e.total_mj(), 0.0);
  if (r.pairs_evaluated > 0) {
    EXPECT_GT(e.datapath_mj, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStimulus, DifferentialFuzzTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace gaurast::core
