// Tests for the extension subsystems: 3DGS PLY interop, SSIM, workload
// traces, tight ellipse culling, and DVFS energy scaling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "core/detailed_sim.hpp"
#include "core/config_io.hpp"
#include "core/energy.hpp"
#include "core/scheduler.hpp"
#include "core/hw_rasterizer.hpp"
#include "core/trace.hpp"
#include "gsmath/ssim.hpp"
#include "pipeline/renderer.hpp"
#include "scene/generator.hpp"
#include "scene/ply_io.hpp"

namespace gaurast {
namespace {

// ----------------------------------------------------------------- PLY --

TEST(PlyIo, RoundTripPreservesSceneWithinCheckpointPrecision) {
  scene::GeneratorParams params;
  params.gaussian_count = 128;
  const scene::GaussianScene original = scene::generate_scene(params);
  const std::string path = ::testing::TempDir() + "/roundtrip.ply";
  scene::save_ply(original, path);
  const scene::GaussianScene loaded = scene::load_ply(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.sh_degree(), 3);
  for (std::size_t i = 0; i < original.size(); i += 7) {
    EXPECT_EQ(loaded.positions()[i], original.positions()[i]);
    // Opacity goes through logit/sigmoid, scales through log/exp.
    EXPECT_NEAR(loaded.opacities()[i], original.opacities()[i], 1e-5f);
    EXPECT_NEAR(loaded.scales()[i].x, original.scales()[i].x,
                original.scales()[i].x * 1e-4f + 1e-6f);
    EXPECT_EQ(loaded.sh()[i][0], original.sh()[i][0]);
    EXPECT_NEAR(loaded.sh()[i][5].y, original.sh()[i][5].y, 1e-6f);
  }
  std::remove(path.c_str());
}

TEST(PlyIo, LoadedSceneRendersIdentically) {
  scene::GeneratorParams params;
  params.gaussian_count = 1000;
  const scene::GaussianScene original = scene::generate_scene(params);
  const std::string path = ::testing::TempDir() + "/render.ply";
  scene::save_ply(original, path);
  const scene::GaussianScene loaded = scene::load_ply(path);
  const scene::Camera cam = scene::default_camera(params, 96, 72);
  const pipeline::GaussianRenderer renderer;
  const auto a = renderer.render(original, cam);
  const auto b = renderer.render(loaded, cam);
  // logit/sigmoid and log/exp round-trips cost a few ULPs.
  EXPECT_GT(b.image.psnr(a.image), 55.0);
  std::remove(path.c_str());
}

TEST(PlyIo, SigmoidLogitInverse) {
  for (float p : {0.01f, 0.2f, 0.5f, 0.73f, 0.99f}) {
    EXPECT_NEAR(scene::ply_sigmoid(scene::ply_logit(p)), p, 1e-6f);
  }
}

TEST(PlyIo, RejectsNonPlyFile) {
  const std::string path = ::testing::TempDir() + "/notply.ply";
  {
    std::ofstream os(path);
    os << "definitely not a ply\n";
  }
  EXPECT_THROW(scene::load_ply(path), Error);
  std::remove(path.c_str());
}

TEST(PlyIo, RejectsAsciiFormat) {
  const std::string path = ::testing::TempDir() + "/ascii.ply";
  {
    std::ofstream os(path);
    os << "ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\n"
          "end_header\n0.0\n";
  }
  EXPECT_THROW(scene::load_ply(path), Error);
  std::remove(path.c_str());
}

TEST(PlyIo, RejectsMissingProperties) {
  const std::string path = ::testing::TempDir() + "/short.ply";
  {
    std::ofstream os(path, std::ios::binary);
    os << "ply\nformat binary_little_endian 1.0\nelement vertex 1\n"
          "property float x\nproperty float y\nproperty float z\n"
          "end_header\n";
    const float xyz[3] = {0, 0, 0};
    os.write(reinterpret_cast<const char*>(xyz), sizeof(xyz));
  }
  EXPECT_THROW(scene::load_ply(path), Error);
  std::remove(path.c_str());
}

TEST(PlyIo, TruncatedPayloadThrows) {
  scene::GeneratorParams params;
  params.gaussian_count = 8;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const std::string path = ::testing::TempDir() + "/trunc.ply";
  scene::save_ply(sc, path);
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  const auto full = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::string content(full, '\0');
  is.read(content.data(), static_cast<std::streamsize>(full));
  is.close();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(content.data(), static_cast<std::streamsize>(content.size() - 64));
  os.close();
  EXPECT_THROW(scene::load_ply(path), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- SSIM --

TEST(Ssim, IdenticalImagesScoreOne) {
  Image img(32, 32, {0.4f, 0.5f, 0.6f});
  img.at(10, 10) = {0.9f, 0.1f, 0.2f};
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(Ssim, DegradesWithNoise) {
  scene::GeneratorParams params;
  params.gaussian_count = 2000;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const pipeline::GaussianRenderer renderer;
  const auto frame = renderer.render(sc, scene::default_camera(params, 96, 72));
  Image noisy = frame.image;
  Pcg32 rng(1);
  for (auto& px : noisy.pixels()) {
    px.x = clampf(px.x + static_cast<float>(rng.normal(0.0, 0.1)), 0.0f, 1.0f);
  }
  const double s = ssim(frame.image, noisy);
  EXPECT_LT(s, 0.99);
  EXPECT_GT(s, 0.1);
}

TEST(Ssim, ConstantShiftScoresHigherThanStructuredError) {
  Image base(32, 32, {0.5f, 0.5f, 0.5f});
  Pcg32 rng(2);
  for (auto& px : base.pixels()) {
    px = {static_cast<float>(rng.uniform(0.2, 0.8)),
          static_cast<float>(rng.uniform(0.2, 0.8)),
          static_cast<float>(rng.uniform(0.2, 0.8))};
  }
  Image shifted = base;
  for (auto& px : shifted.pixels()) px += {0.05f, 0.05f, 0.05f};
  Image scrambled = base;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; x += 2) {
      std::swap(scrambled.at(x, y), scrambled.at(31 - x, 31 - y));
    }
  }
  EXPECT_GT(ssim(base, shifted), ssim(base, scrambled));
}

TEST(Ssim, RequiresMatchingAndMinimumSize) {
  Image a(16, 16), b(32, 32), tiny(4, 4);
  EXPECT_THROW(ssim(a, b), Error);
  EXPECT_THROW(ssim(tiny, tiny), Error);
}

TEST(Ssim, Fp16HardwareQualityHigh) {
  scene::GeneratorParams params;
  params.gaussian_count = 2000;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 128, 96);
  const pipeline::GaussianRenderer renderer;
  const auto frame = renderer.render(sc, cam);
  const core::HardwareRasterizer hw(core::RasterizerConfig::fp16(16));
  const auto r = hw.rasterize_gaussians(frame.splats, frame.workload,
                                        renderer.config().blend);
  EXPECT_GT(ssim(r.image, frame.image), 0.98);
}

// --------------------------------------------------------------- Trace --

TEST(Trace, SaveLoadRoundTrip) {
  std::vector<core::TileLoad> tiles;
  for (std::uint64_t i = 0; i < 100; ++i) {
    tiles.push_back({i * 13 + 1, i * 97 + 36});
  }
  const std::string path = ::testing::TempDir() + "/loads.gtr";
  core::save_trace(tiles, path);
  const auto loaded = core::load_trace(path);
  ASSERT_EQ(loaded.size(), tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(loaded[i].pairs, tiles[i].pairs);
    EXPECT_EQ(loaded[i].fill_bytes, tiles[i].fill_bytes);
  }
  std::remove(path.c_str());
}

TEST(Trace, SummaryMatchesTotals) {
  std::vector<core::TileLoad> tiles{{10, 100}, {30, 300}, {20, 200}};
  const core::TraceSummary s = core::summarize_trace(tiles);
  EXPECT_EQ(s.tiles, 3u);
  EXPECT_EQ(s.total_pairs, 60u);
  EXPECT_EQ(s.total_fill_bytes, 600u);
  EXPECT_EQ(s.max_tile_pairs, 30u);
  EXPECT_DOUBLE_EQ(s.mean_tile_pairs, 20.0);
}

TEST(Trace, CapturedFromHardwareAndReplayedMatchesTiming) {
  scene::GeneratorParams params;
  params.gaussian_count = 1500;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const pipeline::GaussianRenderer renderer;
  const auto frame = renderer.render(sc, scene::default_camera(params, 96, 72));
  const core::RasterizerConfig cfg = core::RasterizerConfig::prototype16();
  const core::HardwareRasterizer hw(cfg);
  const auto r = hw.rasterize_gaussians(frame.splats, frame.workload,
                                        renderer.config().blend);
  ASSERT_FALSE(r.tile_loads.empty());

  const std::string path = ::testing::TempDir() + "/capture.gtr";
  core::save_trace(r.tile_loads, path);
  const auto replayed = core::load_trace(path);
  const core::DesignTimelineResult timing = core::replay_trace(replayed, cfg);
  EXPECT_EQ(timing.makespan_cycles, r.timing.makespan_cycles);
  EXPECT_EQ(timing.pairs, r.timing.pairs);
  std::remove(path.c_str());
}

TEST(Trace, ReplayOnLargerConfigIsFaster) {
  std::vector<core::TileLoad> tiles(64, core::TileLoad{4000, 2048});
  core::RasterizerConfig small = core::RasterizerConfig::prototype16();
  core::RasterizerConfig big = small;
  big.module_count = 4;
  EXPECT_LT(core::replay_trace(tiles, big).makespan_cycles,
            core::replay_trace(tiles, small).makespan_cycles);
}

TEST(Trace, BadMagicThrows) {
  const std::string path = ::testing::TempDir() + "/bad.gtr";
  {
    std::ofstream os(path, std::ios::binary);
    os << "XXXXjunk";
  }
  EXPECT_THROW(core::load_trace(path), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------------- Tight culling --

TEST(TightCulling, ExtentSubsetOfBoundingRadius) {
  pipeline::Splat2D s;
  s.conic = {0.08f, 0.02f, 0.3f};
  s.opacity = 0.8f;
  // radius from the inverse covariance's major eigenvalue, as preprocess
  // computes it.
  const float det = s.conic.a * s.conic.c - s.conic.b * s.conic.b;
  Cov2 cov{s.conic.c / det, -s.conic.b / det, s.conic.a / det};
  s.radius = splat_radius(cov);
  float rx = 0, ry = 0;
  ASSERT_TRUE(pipeline::tight_splat_extent(s, 1.0f / 255.0f, rx, ry));
  EXPECT_LE(rx, s.radius + 1.0f);
  EXPECT_LE(ry, s.radius + 1.0f);
  // Anisotropic conic (c >> a): tighter vertically.
  EXPECT_LT(ry, rx);
}

TEST(TightCulling, FaintSplatFullyCulled) {
  pipeline::Splat2D s;
  s.conic = {0.5f, 0.0f, 0.5f};
  s.opacity = 0.001f;  // can never reach 1/255? 0.001 < 1/255 ~ 0.0039
  float rx, ry;
  EXPECT_FALSE(pipeline::tight_splat_extent(s, 1.0f / 255.0f, rx, ry));
}

TEST(TightCulling, ReducesInstancesAndPairs) {
  scene::GeneratorParams params;
  params.gaussian_count = 3000;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 128, 96);
  pipeline::RendererConfig loose;
  pipeline::RendererConfig tight;
  tight.culling = pipeline::CullingMode::kTightEllipse;
  const auto f_loose = pipeline::GaussianRenderer(loose).render(sc, cam);
  const auto f_tight = pipeline::GaussianRenderer(tight).render(sc, cam);
  EXPECT_LT(f_tight.workload.instance_count(),
            f_loose.workload.instance_count());
  EXPECT_LT(f_tight.raster_stats.pairs_evaluated,
            f_loose.raster_stats.pairs_evaluated);
}

TEST(TightCulling, ImageUnchangedBecauseConservative) {
  scene::GeneratorParams params;
  params.gaussian_count = 2500;
  params.seed = 9;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 112, 80);
  pipeline::RendererConfig loose;
  pipeline::RendererConfig tight;
  tight.culling = pipeline::CullingMode::kTightEllipse;
  const auto f_loose = pipeline::GaussianRenderer(loose).render(sc, cam);
  const auto f_tight = pipeline::GaussianRenderer(tight).render(sc, cam);
  // Tight culling only removes pairs below the alpha threshold... except
  // where early termination order interacts: removing a non-contributing
  // pair never changes T, so images must match exactly.
  EXPECT_EQ(f_tight.image.max_abs_diff(f_loose.image), 0.0f);
}

TEST(TightCulling, HardwareStillBitExact) {
  scene::GeneratorParams params;
  params.gaussian_count = 1500;
  const scene::GaussianScene sc = scene::generate_scene(params);
  const scene::Camera cam = scene::default_camera(params, 96, 72);
  pipeline::RendererConfig rc;
  rc.culling = pipeline::CullingMode::kTightEllipse;
  const pipeline::GaussianRenderer renderer(rc);
  const auto frame = renderer.render(sc, cam);
  const core::HardwareRasterizer hw(core::RasterizerConfig::prototype16());
  const auto r = hw.rasterize_gaussians(frame.splats, frame.workload, rc.blend);
  EXPECT_EQ(r.image.max_abs_diff(frame.image), 0.0f);
}

// ---------------------------------------------------------------- DVFS --

TEST(Dvfs, NominalPointUnchanged) {
  const core::EnergyTable base{};
  const core::EnergyTable same = core::dvfs_scaled_table(base, 1.0);
  EXPECT_DOUBLE_EQ(same.fp_mul_pj, base.fp_mul_pj);
  EXPECT_DOUBLE_EQ(same.module_leakage_w, base.module_leakage_w);
}

TEST(Dvfs, VoltageMonotoneInClockAndClamped) {
  const core::EnergyTable base{};
  EXPECT_LT(core::dvfs_voltage(base, 0.5), core::dvfs_voltage(base, 1.0));
  EXPECT_LT(core::dvfs_voltage(base, 1.0), core::dvfs_voltage(base, 1.5));
  EXPECT_GE(core::dvfs_voltage(base, 0.01), 0.7);
  EXPECT_LE(core::dvfs_voltage(base, 10.0), 1.2);
}

TEST(Dvfs, LowerClockLowersEnergyPerOp) {
  const core::EnergyTable base{};
  const core::EnergyTable slow = core::dvfs_scaled_table(base, 0.6);
  const core::EnergyTable fast = core::dvfs_scaled_table(base, 1.4);
  EXPECT_LT(slow.fp_mul_pj, base.fp_mul_pj);
  EXPECT_GT(fast.fp_mul_pj, base.fp_mul_pj);
  EXPECT_LT(slow.module_leakage_w, fast.module_leakage_w);
}

TEST(Dvfs, IsoThroughputWideSlowBeatsNarrowFast) {
  // Classic DVFS result: 2x the PEs at half the clock burn less energy for
  // the same throughput, because dynamic energy scales with V^2.
  core::RasterizerConfig narrow = core::RasterizerConfig::prototype16();
  narrow.clock_ghz = 1.0;
  core::RasterizerConfig wide = narrow;
  wide.pes_per_module = 32;
  wide.clock_ghz = 0.5;
  const core::EnergyModel narrow_model(
      narrow, core::dvfs_scaled_table({}, narrow.clock_ghz));
  const core::EnergyModel wide_model(
      wide, core::dvfs_scaled_table({}, wide.clock_ghz));
  // Same pair throughput; compare energy for a fixed pair count.
  const auto e_narrow =
      narrow_model.from_pair_statistics(1'000'000'000, 0.15, 0, 62.5);
  const auto e_wide =
      wide_model.from_pair_statistics(1'000'000'000, 0.15, 0, 62.5);
  EXPECT_LT(e_wide.datapath_mj, e_narrow.datapath_mj);
}

TEST(Dvfs, InvalidClockThrows) {
  EXPECT_THROW(core::dvfs_voltage({}, 0.0), Error);
}

// ----------------------------------------------------------- Config IO --

TEST(ConfigIo, RoundTripAllFields) {
  core::RasterizerConfig cfg = core::RasterizerConfig::fp16(24, 3);
  cfg.clock_ghz = 1.2;
  cfg.tile_size = 32;
  cfg.tile_buffer_bytes = 128 * 1024;
  cfg.mem_bytes_per_cycle = 48.0;
  cfg.mem_latency = 17;
  cfg.pipeline_depth = 6;
  const std::string path = ::testing::TempDir() + "/rast.cfg";
  core::save_config(cfg, path);
  const core::RasterizerConfig loaded = core::load_config(path);
  EXPECT_EQ(loaded.pes_per_module, cfg.pes_per_module);
  EXPECT_EQ(loaded.module_count, cfg.module_count);
  EXPECT_DOUBLE_EQ(loaded.clock_ghz, cfg.clock_ghz);
  EXPECT_EQ(loaded.precision, cfg.precision);
  EXPECT_EQ(loaded.tile_size, cfg.tile_size);
  EXPECT_EQ(loaded.tile_buffer_bytes, cfg.tile_buffer_bytes);
  EXPECT_DOUBLE_EQ(loaded.mem_bytes_per_cycle, cfg.mem_bytes_per_cycle);
  EXPECT_EQ(loaded.mem_latency, cfg.mem_latency);
  EXPECT_EQ(loaded.pipeline_depth, cfg.pipeline_depth);
  std::remove(path.c_str());
}

TEST(ConfigIo, PartialFileKeepsDefaults) {
  const std::string path = ::testing::TempDir() + "/partial.cfg";
  {
    std::ofstream os(path);
    os << "# only override the module count\nmodule_count = 15\n";
  }
  const core::RasterizerConfig loaded = core::load_config(path);
  EXPECT_EQ(loaded.module_count, 15);
  EXPECT_EQ(loaded.pes_per_module, 16);  // prototype default
  std::remove(path.c_str());
}

TEST(ConfigIo, UnknownKeyAndBadValueThrow) {
  const std::string path = ::testing::TempDir() + "/bad.cfg";
  {
    std::ofstream os(path);
    os << "warp_drive = 9\n";
  }
  EXPECT_THROW(core::load_config(path), Error);
  {
    std::ofstream os(path);
    os << "clock_ghz = fast\n";
  }
  EXPECT_THROW(core::load_config(path), Error);
  {
    std::ofstream os(path);
    os << "precision = fp8\n";
  }
  EXPECT_THROW(core::load_config(path), Error);
  std::remove(path.c_str());
}

TEST(ConfigIo, LoadedConfigIsValidated) {
  const std::string path = ::testing::TempDir() + "/invalid.cfg";
  {
    std::ofstream os(path);
    os << "pes_per_module = 0\n";
  }
  EXPECT_THROW(core::load_config(path), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------------ Pipeline series --

TEST(PipelineSeries, UniformWorkloadMatchesClosedForm) {
  std::vector<core::FrameWork> frames(30, core::FrameWork{20.0, 8.0});
  const core::PipelineSeriesResult r = core::simulate_pipeline_series(frames);
  ASSERT_EQ(r.completion_ms.size(), 30u);
  // Steady-state interval is max(stage12, stage3) = 20 ms.
  EXPECT_NEAR(r.interval_ms.back(), 20.0, 1e-9);
  EXPECT_NEAR(r.completion_ms.back(),
              core::simulate_pipeline_ms(20.0, 8.0, 30), 1e-9);
}

TEST(PipelineSeries, JitterReflectsWorkloadVariation) {
  std::vector<core::FrameWork> uniform(50, core::FrameWork{20.0, 30.0});
  std::vector<core::FrameWork> bursty = uniform;
  for (std::size_t i = 0; i < bursty.size(); i += 10) {
    bursty[i].stage3_ms = 60.0;  // every 10th frame is heavy
  }
  const auto ru = core::simulate_pipeline_series(uniform);
  const auto rb = core::simulate_pipeline_series(bursty);
  EXPECT_GT(rb.p99_interval_ms(), ru.p99_interval_ms());
  EXPECT_GT(rb.mean_interval_ms(), ru.mean_interval_ms());
}

TEST(PipelineSeries, IntervalsSumToCompletion) {
  std::vector<core::FrameWork> frames{{10, 5}, {8, 20}, {12, 3}, {9, 9}};
  const auto r = core::simulate_pipeline_series(frames);
  double sum = 0.0;
  for (double v : r.interval_ms) sum += v;
  EXPECT_NEAR(sum, r.completion_ms.back(), 1e-9);
}

TEST(PipelineSeries, EmptyOrNegativeRejected) {
  EXPECT_THROW(core::simulate_pipeline_series({}), Error);
  EXPECT_THROW(core::simulate_pipeline_series({{-1.0, 5.0}}), Error);
}

}  // namespace
}  // namespace gaurast
