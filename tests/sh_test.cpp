// Tests for spherical-harmonics color evaluation (pipeline Step 1's
// view-dependent color path).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"
#include "gsmath/sh.hpp"

namespace gaurast {
namespace {

TEST(ShBasis, CountsPerDegree) {
  EXPECT_EQ(sh_basis_count(0), 1u);
  EXPECT_EQ(sh_basis_count(1), 4u);
  EXPECT_EQ(sh_basis_count(2), 9u);
  EXPECT_EQ(sh_basis_count(3), 16u);
}

TEST(ShBasis, InvalidDegreeThrows) {
  std::array<float, kMaxShBasis> out;
  EXPECT_THROW(sh_basis({0, 0, 1}, -1, out), Error);
  EXPECT_THROW(sh_basis({0, 0, 1}, 4, out), Error);
}

TEST(ShBasis, Band0IsConstant) {
  std::array<float, kMaxShBasis> a, b;
  sh_basis({0, 0, 1}, 3, a);
  sh_basis({1, 0, 0}, 3, b);
  EXPECT_FLOAT_EQ(a[0], b[0]);
  EXPECT_NEAR(a[0], 0.2820948f, 1e-6f);
}

TEST(ShBasis, Band1IsLinearInDirection) {
  std::array<float, kMaxShBasis> out;
  sh_basis({0, 1, 0}, 1, out);
  EXPECT_NEAR(out[1], -0.4886025f, 1e-6f);  // -c1 * y
  EXPECT_NEAR(out[2], 0.0f, 1e-6f);
  EXPECT_NEAR(out[3], 0.0f, 1e-6f);
}

TEST(ShBasis, HigherBandsZeroBelowDegree) {
  std::array<float, kMaxShBasis> out;
  sh_basis({0.3f, 0.5f, 0.8f}, 1, out);
  for (std::size_t i = 4; i < kMaxShBasis; ++i) EXPECT_EQ(out[i], 0.0f);
}

TEST(EvalShColor, DcOnlyIsViewIndependent) {
  ShCoefficients coeffs{};
  coeffs[0] = sh_dc_from_rgb({0.7f, 0.2f, 0.4f});
  const Vec3f a = eval_sh_color(coeffs, 0, {0, 0, 1});
  const Vec3f b = eval_sh_color(coeffs, 0, {1, -2, 0.5f});
  EXPECT_NEAR(a.x, 0.7f, 1e-5f);
  EXPECT_NEAR(a.y, 0.2f, 1e-5f);
  EXPECT_NEAR(a.z, 0.4f, 1e-5f);
  EXPECT_NEAR((a - b).norm(), 0.0f, 1e-6f);
}

TEST(EvalShColor, ClampsNegativeToZero) {
  ShCoefficients coeffs{};
  coeffs[0] = sh_dc_from_rgb({-5.0f, 0.5f, 0.5f});  // pushes red negative
  const Vec3f c = eval_sh_color(coeffs, 0, {0, 0, 1});
  EXPECT_EQ(c.x, 0.0f);
}

TEST(EvalShColor, DirectionNeedNotBeNormalized) {
  ShCoefficients coeffs{};
  coeffs[0] = sh_dc_from_rgb({0.5f, 0.5f, 0.5f});
  coeffs[1] = {0.3f, 0.0f, 0.0f};
  const Vec3f a = eval_sh_color(coeffs, 1, {0, 2, 0});
  const Vec3f b = eval_sh_color(coeffs, 1, {0, 0.1f, 0});
  EXPECT_NEAR(a.x, b.x, 1e-5f);
}

TEST(EvalShColor, ZeroDirectionFallsBackSafely) {
  ShCoefficients coeffs{};
  coeffs[0] = sh_dc_from_rgb({0.5f, 0.5f, 0.5f});
  const Vec3f c = eval_sh_color(coeffs, 3, {0, 0, 0});
  EXPECT_TRUE(std::isfinite(c.x));
}

TEST(ShDcFromRgb, InvertsEvaluation) {
  Pcg32 rng(21);
  for (int i = 0; i < 20; ++i) {
    const Vec3f rgb{static_cast<float>(rng.uniform(0.05, 0.95)),
                    static_cast<float>(rng.uniform(0.05, 0.95)),
                    static_cast<float>(rng.uniform(0.05, 0.95))};
    ShCoefficients coeffs{};
    coeffs[0] = sh_dc_from_rgb(rgb);
    const Vec3f back = eval_sh_color(coeffs, 0, {0, 0, 1});
    EXPECT_NEAR(back.x, rgb.x, 1e-5f);
    EXPECT_NEAR(back.y, rgb.y, 1e-5f);
    EXPECT_NEAR(back.z, rgb.z, 1e-5f);
  }
}

/// Property sweep: SH bands are orthogonal under Monte-Carlo integration on
/// the sphere (diagonal dominance at modest sample counts).
class ShOrthogonalityTest : public ::testing::TestWithParam<int> {};

TEST_P(ShOrthogonalityTest, BasisFunctionIsNormalizedOnSphere) {
  const int basis_idx = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(basis_idx) + 100);
  double integral = 0.0;
  const int samples = 60000;
  for (int s = 0; s < samples; ++s) {
    // Uniform sphere sampling.
    const double z = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, 2.0 * 3.14159265358979);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    const Vec3f dir{static_cast<float>(r * std::cos(phi)),
                    static_cast<float>(r * std::sin(phi)),
                    static_cast<float>(z)};
    std::array<float, kMaxShBasis> b;
    sh_basis(dir, 3, b);
    integral += static_cast<double>(b[static_cast<std::size_t>(basis_idx)]) *
                static_cast<double>(b[static_cast<std::size_t>(basis_idx)]);
  }
  integral *= 4.0 * 3.14159265358979 / samples;  // sphere area weight
  EXPECT_NEAR(integral, 1.0, 0.06) << "basis " << basis_idx;
}

INSTANTIATE_TEST_SUITE_P(AllBases, ShOrthogonalityTest,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace gaurast
